package inca_test

// Multi-process capacity-harness smoke test (DESIGN.md §5j): the real
// closed-loop load experiment — spawned inca-server, ramped workers over
// real TCP, saturation-knee detection — at a short ramp. It proves the
// whole pipeline end to end: process spawn and address scanning, the
// mixed write/read workload, /metrics scraping, per-stage percentile
// merging, knee detection, and the BENCH_load.json schema.
//
// The test builds and spawns the inca-server binary and runs a multi-
// second ramp, so it is gated behind INCA_LOAD_SMOKE=1 and run by
// `make load-smoke` (part of `make check`) rather than on every plain
// `go test ./...`.

import (
	"os"
	"testing"
	"time"

	"inca/internal/experiments"
)

func TestLoadSmoke(t *testing.T) {
	if os.Getenv("INCA_LOAD_SMOKE") == "" {
		t.Skip("set INCA_LOAD_SMOKE=1 (make load-smoke) to run the capacity-harness smoke test")
	}
	stages := []int{1, 2, 4, 8, 16, 32}
	r, err := experiments.Load(experiments.LoadOptions{
		Stages:        stages,
		StageDuration: 400 * time.Millisecond,
		Warmup:        100 * time.Millisecond,
		Modes:         []string{"single"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "load" {
		t.Fatalf("result id %q", r.ID)
	}
	t.Logf("\n%s", r.String())

	// Round-trip through the BENCH_<id>.json writer and the shared schema
	// validator, then hold the smoke run to the same contract a committed
	// capacity artifact carries: a full monotone ramp and a detected knee.
	path := t.TempDir() + "/BENCH_load.json"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := experiments.ValidateResultFile(path)
	if err != nil {
		t.Fatalf("smoke result fails the shared schema: %v", err)
	}
	if err := experiments.ValidateLoadResult(rf, len(stages), "single"); err != nil {
		t.Fatalf("smoke ramp incomplete: %v", err)
	}
}
