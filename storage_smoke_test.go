package inca_test

// Multi-process storage smoke test (DESIGN.md §5g): a real -storage disk
// inca-server is killed with SIGKILL mid-stream — once after a clean drain
// (every report acknowledged) and once with writes still in flight — and
// restarted over the same data directory. The test asserts that no
// acknowledged report or archive is lost across the crash, that a torn
// WAL tail (garbage appended to the live segment) is truncated rather
// than fatal, and that a graceful shutdown folds the WAL into a
// checkpoint the next start restores from.
//
// The test builds and spawns the inca-server binary, so it is gated
// behind INCA_STORAGE_SMOKE=1 and run by `make storage-smoke` (part of
// `make check`) rather than on every plain `go test ./...`.

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"inca/internal/loadgen"
	"inca/internal/wire"
)

var (
	diskDepotRE  = regexp.MustCompile(`disk depot .*: \d+ cached entries, (\d+) archives, \d+ policies`)
	checkpointRE = regexp.MustCompile(`(depot checkpoint written)`)
	statsArchRE  = regexp.MustCompile(`archives="(\d+)"`)
)

func TestStorageSmoke(t *testing.T) {
	if os.Getenv("INCA_STORAGE_SMOKE") == "" {
		t.Skip("set INCA_STORAGE_SMOKE=1 (make storage-smoke) to run the multi-process smoke test")
	}
	bin := filepath.Join(t.TempDir(), "inca-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/inca-server")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build inca-server: %v", err)
	}
	dataDir := filepath.Join(t.TempDir(), "depot")
	serverArgs := []string{
		"-storage", "disk", "-data", dataDir, "-checkpoint", "0",
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0",
	}

	// --- Generation 1: drain (ack) a batch, then SIGKILL. -------------
	srv := startSmokeProc(t, bin, serverArgs...)
	srv.expectLine(t, diskDepotRE)
	wireAddr := srv.expectLine(t, wireAddrRE)
	httpAddr := srv.expectLine(t, httpAddrRE)

	// An archival policy matching the synthetic reports, so ingest also
	// exercises the paged RRD write path, not just the WAL.
	policyXML := `<archivalPolicy name="smoke-sample" prefix="vo=smoke"` +
		` path="value,statistic=sample" step="1m" granularity="2" history="24h"/>`
	resp, err := http.Post("http://"+httpAddr+"/policy", "text/xml", strings.NewReader(policyXML))
	if err != nil {
		t.Fatalf("POST /policy: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /policy: %d", resp.StatusCode)
	}

	const acked = 40
	data := loadgen.MustPremadeReport(smokeReportLen)
	client := wire.NewBatchClient(wireAddr, wire.BatchOptions{FlushInterval: 10 * time.Millisecond})
	for i := 0; i < acked; i++ {
		client.Enqueue(&wire.Message{
			Branch:   fmt.Sprintf("probe=p%02d,vo=smoke", i),
			Hostname: "smoke", Report: data,
		})
	}
	if err := client.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	client.Close()
	// Every one of those stores was acknowledged over the wire. Kill the
	// process with no chance to flush or checkpoint.
	if err := srv.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	srv.cmd.Wait()

	// Simulate a torn final append: garbage on the live WAL segment tail.
	seg := newestWALSegment(t, dataDir)
	tornSize := appendGarbage(t, seg, 137)

	// --- Generation 2: recover, verify nothing acked was lost. --------
	srv = startSmokeProc(t, bin, serverArgs...)
	archives := srv.expectLine(t, diskDepotRE)
	wireAddr = srv.expectLine(t, wireAddrRE)
	httpAddr = srv.expectLine(t, httpAddrRE)
	if got := storedReportCount(t, httpAddr); got != acked {
		t.Fatalf("after SIGKILL + torn tail: recovered %d of %d acked reports", got, acked)
	}
	if n, _ := strconv.Atoi(archives); n != acked {
		t.Fatalf("after SIGKILL: recovered %s archives, want %d (one per branch)", archives, acked)
	}
	if fi, err := os.Stat(seg); err != nil {
		t.Fatalf("stat %s: %v", seg, err)
	} else if fi.Size() >= tornSize {
		t.Fatalf("torn tail not truncated: %s still %d bytes (was %d)", seg, fi.Size(), tornSize)
	}

	// --- Generation 2 continued: SIGKILL mid-stream. ------------------
	// Reports are enqueued with no drain; whatever was acknowledged before
	// the kill must survive, and the half-written tail must not poison
	// recovery. The exact survivor count is timing-dependent by design.
	client = wire.NewBatchClient(wireAddr, wire.BatchOptions{FlushInterval: time.Millisecond})
	for i := 0; i < 200; i++ {
		client.Enqueue(&wire.Message{
			Branch:   fmt.Sprintf("probe=x%03d,vo=smoke", i),
			Hostname: "smoke", Report: data,
		})
	}
	time.Sleep(30 * time.Millisecond) // let some batches land mid-write
	if err := srv.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill mid-stream: %v", err)
	}
	srv.cmd.Wait()
	client.Close()

	// --- Generation 3: recover again, then shut down gracefully. ------
	srv = startSmokeProc(t, bin, serverArgs...)
	srv.expectLine(t, diskDepotRE)
	srv.expectLine(t, wireAddrRE)
	httpAddr = srv.expectLine(t, httpAddrRE)
	got := storedReportCount(t, httpAddr)
	if got < acked {
		t.Fatalf("after mid-stream SIGKILL: %d reports, want at least the %d previously acked", got, acked)
	}
	t.Logf("mid-stream kill: %d of up to %d extra reports survived", got-acked, 200)

	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	srv.expectLine(t, checkpointRE)
	srv.cmd.Wait()

	// --- Generation 4: start from the checkpoint alone. ---------------
	srv = startSmokeProc(t, bin, serverArgs...)
	srv.expectLine(t, diskDepotRE)
	srv.expectLine(t, wireAddrRE)
	httpAddr = srv.expectLine(t, httpAddrRE)
	if again := storedReportCount(t, httpAddr); again != got {
		t.Fatalf("checkpoint restart: %d reports, want %d", again, got)
	}
	if a := fetchStatsArchives(t, httpAddr); a < acked {
		t.Fatalf("checkpoint restart: %d archives, want >= %d", a, acked)
	}
}

// newestWALSegment returns the path of the highest-numbered WAL segment.
func newestWALSegment(t *testing.T, dataDir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments under %s (err=%v)", dataDir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// appendGarbage writes n bytes of junk to the end of path and returns the
// resulting size.
func appendGarbage(t *testing.T, path string, n int) int64 {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	junk := make([]byte, n)
	for i := range junk {
		junk[i] = 0x5a
	}
	if _, err := f.Write(junk); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	f.Close()
	return fi.Size()
}

func storedReportCount(t *testing.T, httpAddr string) int {
	t.Helper()
	var got int
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err = fetchStoredCount("http://" + httpAddr + "/reports")
		if err == nil {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET /reports: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchStatsArchives(t *testing.T, httpAddr string) int {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64<<10)
	n, _ := resp.Body.Read(buf)
	m := statsArchRE.FindStringSubmatch(string(buf[:n]))
	if m == nil {
		t.Fatalf("no Archives attribute in /stats response: %s", buf[:n])
	}
	v, _ := strconv.Atoi(m[1])
	return v
}
