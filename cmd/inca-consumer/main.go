// Command inca-consumer is a command-line data consumer (paper Section
// 3.3): it queries an inca-server's web-service interface for current and
// archived data, and can evaluate the cache against a service agreement to
// render a status summary.
//
//	inca-consumer -server http://127.0.0.1:8080 -action stats
//	inca-consumer -server http://127.0.0.1:8080 -action cache -branch site=siteA,vo=samplegrid
//	inca-consumer -server http://127.0.0.1:8080 -action cache -branch site=siteA,vo=samplegrid -watch 5s
//	inca-consumer -server http://127.0.0.1:8080 -action graph -branch ... -policy summary-percent
//	inca-consumer -server http://127.0.0.1:8080 -action summary -agreement agreement.xml
//	inca-consumer -server http://127.0.0.1:8080 -subscribe -branch site=siteA,vo=samplegrid
//
// With -watch the cache and reports actions poll with conditional
// requests: unchanged data costs a 304 Not Modified (no body transfer,
// no cache scan on the server), and a fresh body is printed only when
// the depot's generation has moved.
//
// With -subscribe the consumer flips from pull to push: it opens the
// server's /feed stream, catches up from a snapshot, and then receives
// only changes — reconnecting with -cursor (or the last cursor it saw)
// resumes without re-transferring an unchanged subtree. Servers without
// /feed degrade to -watch polling automatically.
package main

import (
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/query"
	"inca/internal/rrd"
)

func main() {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "inca-server querying interface URL")
		action    = flag.String("action", "stats", "stats | cache | reports | archive | graph | summary")
		branchID  = flag.String("branch", "", "branch identifier (empty = whole cache)")
		policy    = flag.String("policy", "", "archival policy name (archive/graph)")
		hours     = flag.Int("hours", 24, "history window for archive/graph")
		agreeFile = flag.String("agreement", "", "service agreement XML for -action summary (default: built-in TeraGrid agreement)")
		watch     = flag.Duration("watch", 0, "poll interval for cache/reports using ETag revalidation (0 = fetch once)")
		watchMax  = flag.Duration("watch-max", 0, "back off toward this interval while polls keep returning 304 (0 = 8x the -watch interval); any change resets to -watch")
		subscribe = flag.Bool("subscribe", false, "subscribe to the server's change feed (/feed) and print each change as it lands; falls back to -watch conditional polling when the server lacks /feed")
		cursor    = flag.String("cursor", "", "resume the -subscribe stream from this cursor (empty = fresh snapshot)")
	)
	flag.Parse()
	c := query.NewClient(*server)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	end := time.Now().UTC()
	start := end.Add(-time.Duration(*hours) * time.Hour)

	if *subscribe {
		subscribeFeed(c, *branchID, *cursor, *watch, *watchMax, fail)
		return
	}

	switch *action {
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Printf("reports received: %d (%d bytes)\ncache: %d entries, %d bytes\narchives: %d\n",
			st.Received, st.Bytes, st.CacheCount, st.CacheSize, st.Archives)
	case "cache":
		if *watch > 0 {
			watchConditional(*watch, *watchMax, func(etag string) ([]byte, string, bool, error) {
				return c.CacheConditional(*branchID, etag)
			}, fail)
		}
		data, err := c.Cache(*branchID)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	case "reports":
		if *watch > 0 {
			watchConditional(*watch, *watchMax, func(etag string) ([]byte, string, bool, error) {
				return c.ReportsConditional(*branchID, etag)
			}, fail)
		}
		data, err := c.Reports(*branchID)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	case "archive":
		points, err := c.Archive(*branchID, *policy, rrd.Average, start, end)
		if err != nil {
			fail(err)
		}
		for _, p := range points {
			fmt.Printf("%s %g\n", p.Time.Format(time.RFC3339), p.Value)
		}
	case "graph":
		g, err := c.Graph(*branchID, *policy, rrd.Average, start, end, *branchID, *policy)
		if err != nil {
			fail(err)
		}
		fmt.Println(g)
	case "summary":
		ag := agreement.TeraGrid()
		if *agreeFile != "" {
			data, err := os.ReadFile(*agreeFile)
			if err != nil {
				fail(err)
			}
			if ag, err = agreement.Parse(data); err != nil {
				fail(err)
			}
		}
		dump, err := c.Cache("")
		if err != nil {
			fail(err)
		}
		cache, err := depot.LoadDump(dump)
		if err != nil {
			fail(err)
		}
		status, err := agreement.Evaluate(ag, cache, time.Now().UTC())
		if err != nil {
			fail(err)
		}
		fmt.Print(consumer.SummaryText(status))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// watchConditional polls with ETag revalidation, printing a fresh body
// each time the depot changes; it never returns. Consecutive 304s double
// the sleep toward maxInterval — against a federated router every poll
// still fans out to all shards, so an idle watcher backing off cuts the
// whole federation's revalidation load, not just one server's. Any
// change (or the first fetch) resets the interval. Each sleep is
// jittered ±25% so a fleet of watchers started together (or woken by the
// same change) spreads back out instead of revalidating in lockstep.
func watchConditional(interval, maxInterval time.Duration, fetch func(etag string) ([]byte, string, bool, error), fail func(error)) {
	if maxInterval <= 0 {
		maxInterval = 8 * interval
	}
	if maxInterval < interval {
		maxInterval = interval
	}
	etag := ""
	sleep := interval
	for {
		body, newTag, notModified, err := fetch(etag)
		if err != nil {
			fail(err)
		}
		if notModified {
			fmt.Fprintf(os.Stderr, "%s unchanged (ETag %s, next poll in %s)\n", time.Now().UTC().Format(time.RFC3339), etag, sleep)
		} else {
			fmt.Fprintf(os.Stderr, "%s changed (ETag %s -> %s)\n", time.Now().UTC().Format(time.RFC3339), etag, newTag)
			fmt.Println(string(body))
			etag = newTag
			sleep = interval
		}
		time.Sleep(jitter(sleep))
		if notModified && sleep < maxInterval {
			sleep *= 2
			if sleep > maxInterval {
				sleep = maxInterval
			}
		}
	}
}

// jitter spreads d uniformly across [0.75d, 1.25d].
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// subscribeFeed consumes the server's change feed, materializing the
// subscribed subtree locally (snapshot, then incremental updates) and
// printing one machine-parsable line per event with the FNV-64a hash of
// the materialized state — so an external check can prove the pushed
// view converges on the polled one. Reconnects resume from the last
// cursor; when the server has no /feed it falls back to conditional
// polling.
func subscribeFeed(c *query.Client, branchID, cursor string, watch, watchMax time.Duration, fail func(error)) {
	state := depot.NewStreamCache()
	stateHash := func() string {
		h := fnv.New64a()
		h.Write(state.Dump())
		return fmt.Sprintf("%016x", h.Sum64())
	}
	backoff := time.Second
	for {
		fs, err := c.FeedSubscribe(branchID, cursor, "")
		if errors.Is(err, query.ErrFeedUnsupported) {
			if watch <= 0 {
				watch = 5 * time.Second
			}
			fmt.Fprintf(os.Stderr, "server lacks /feed; falling back to conditional polling every %s\n", watch)
			watchConditional(watch, watchMax, func(etag string) ([]byte, string, bool, error) {
				return c.CacheConditional(branchID, etag)
			}, fail)
			return
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "subscribe: %v (retrying in %s)\n", err, backoff)
			time.Sleep(jitter(backoff))
			if backoff *= 2; backoff > 30*time.Second {
				backoff = 30 * time.Second
			}
			continue
		}
		backoff = time.Second
		for {
			ev, err := fs.Next()
			if err != nil {
				fmt.Fprintf(os.Stderr, "feed closed: %v (resuming from %s)\n", err, cursor)
				break
			}
			switch ev.Type {
			case "snapshot":
				cursor = ev.Cursor
				if len(ev.Data) == 0 {
					state = depot.NewStreamCache()
				} else if state, err = depot.LoadDump(ev.Data); err != nil {
					fail(fmt.Errorf("bad snapshot: %w", err))
				}
				fmt.Printf("snapshot cursor=%s entries=%d hash=%s\n", cursor, state.Count(), stateHash())
			case "resume":
				cursor = ev.Cursor
				fmt.Printf("resume cursor=%s\n", cursor)
			case "change":
				cursor = ev.Cursor
				fc, cerr := ev.Change()
				if cerr != nil {
					fmt.Fprintf(os.Stderr, "bad change event: %v\n", cerr)
					continue
				}
				if fc.Kind == "report" {
					id, perr := branch.Parse(fc.Branch)
					if perr != nil {
						fmt.Fprintf(os.Stderr, "bad change branch: %v\n", perr)
						continue
					}
					if _, uerr := state.Update(id, []byte(fc.Report)); uerr != nil {
						fmt.Fprintf(os.Stderr, "apply change: %v\n", uerr)
						continue
					}
				}
				fmt.Printf("change cursor=%s branch=%s kind=%s hash=%s\n", cursor, fc.Branch, fc.Kind, stateHash())
			case "status":
				fmt.Printf("status cursor=%s %s\n", ev.Cursor, ev.Data)
			case "error":
				fmt.Fprintf(os.Stderr, "feed error: %s\n", ev.Data)
				cursor = ""
			}
		}
		fs.Close()
		time.Sleep(jitter(backoff))
	}
}
