// Command inca-consumer is a command-line data consumer (paper Section
// 3.3): it queries an inca-server's web-service interface for current and
// archived data, and can evaluate the cache against a service agreement to
// render a status summary.
//
//	inca-consumer -server http://127.0.0.1:8080 -action stats
//	inca-consumer -server http://127.0.0.1:8080 -action cache -branch site=siteA,vo=samplegrid
//	inca-consumer -server http://127.0.0.1:8080 -action graph -branch ... -policy summary-percent
//	inca-consumer -server http://127.0.0.1:8080 -action summary -agreement agreement.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/query"
	"inca/internal/rrd"
)

func main() {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "inca-server querying interface URL")
		action    = flag.String("action", "stats", "stats | cache | reports | archive | graph | summary")
		branchID  = flag.String("branch", "", "branch identifier (empty = whole cache)")
		policy    = flag.String("policy", "", "archival policy name (archive/graph)")
		hours     = flag.Int("hours", 24, "history window for archive/graph")
		agreeFile = flag.String("agreement", "", "service agreement XML for -action summary (default: built-in TeraGrid agreement)")
	)
	flag.Parse()
	c := query.NewClient(*server)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	end := time.Now().UTC()
	start := end.Add(-time.Duration(*hours) * time.Hour)

	switch *action {
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Printf("reports received: %d (%d bytes)\ncache: %d entries, %d bytes\narchives: %d\n",
			st.Received, st.Bytes, st.CacheCount, st.CacheSize, st.Archives)
	case "cache":
		data, err := c.Cache(*branchID)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	case "reports":
		data, err := c.Reports(*branchID)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	case "archive":
		points, err := c.Archive(*branchID, *policy, rrd.Average, start, end)
		if err != nil {
			fail(err)
		}
		for _, p := range points {
			fmt.Printf("%s %g\n", p.Time.Format(time.RFC3339), p.Value)
		}
	case "graph":
		g, err := c.Graph(*branchID, *policy, rrd.Average, start, end, *branchID, *policy)
		if err != nil {
			fail(err)
		}
		fmt.Println(g)
	case "summary":
		ag := agreement.TeraGrid()
		if *agreeFile != "" {
			data, err := os.ReadFile(*agreeFile)
			if err != nil {
				fail(err)
			}
			if ag, err = agreement.Parse(data); err != nil {
				fail(err)
			}
		}
		dump, err := c.Cache("")
		if err != nil {
			fail(err)
		}
		cache, err := depot.LoadDump(dump)
		if err != nil {
			fail(err)
		}
		status, err := agreement.Evaluate(ag, cache, time.Now().UTC())
		if err != nil {
			fail(err)
		}
		fmt.Print(consumer.SummaryText(status))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
