// Command inca-consumer is a command-line data consumer (paper Section
// 3.3): it queries an inca-server's web-service interface for current and
// archived data, and can evaluate the cache against a service agreement to
// render a status summary.
//
//	inca-consumer -server http://127.0.0.1:8080 -action stats
//	inca-consumer -server http://127.0.0.1:8080 -action cache -branch site=siteA,vo=samplegrid
//	inca-consumer -server http://127.0.0.1:8080 -action cache -branch site=siteA,vo=samplegrid -watch 5s
//	inca-consumer -server http://127.0.0.1:8080 -action graph -branch ... -policy summary-percent
//	inca-consumer -server http://127.0.0.1:8080 -action summary -agreement agreement.xml
//
// With -watch the cache and reports actions poll with conditional
// requests: unchanged data costs a 304 Not Modified (no body transfer,
// no cache scan on the server), and a fresh body is printed only when
// the depot's generation has moved.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/query"
	"inca/internal/rrd"
)

func main() {
	var (
		server    = flag.String("server", "http://127.0.0.1:8080", "inca-server querying interface URL")
		action    = flag.String("action", "stats", "stats | cache | reports | archive | graph | summary")
		branchID  = flag.String("branch", "", "branch identifier (empty = whole cache)")
		policy    = flag.String("policy", "", "archival policy name (archive/graph)")
		hours     = flag.Int("hours", 24, "history window for archive/graph")
		agreeFile = flag.String("agreement", "", "service agreement XML for -action summary (default: built-in TeraGrid agreement)")
		watch     = flag.Duration("watch", 0, "poll interval for cache/reports using ETag revalidation (0 = fetch once)")
		watchMax  = flag.Duration("watch-max", 0, "back off toward this interval while polls keep returning 304 (0 = 8x the -watch interval); any change resets to -watch")
	)
	flag.Parse()
	c := query.NewClient(*server)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	end := time.Now().UTC()
	start := end.Add(-time.Duration(*hours) * time.Hour)

	switch *action {
	case "stats":
		st, err := c.Stats()
		if err != nil {
			fail(err)
		}
		fmt.Printf("reports received: %d (%d bytes)\ncache: %d entries, %d bytes\narchives: %d\n",
			st.Received, st.Bytes, st.CacheCount, st.CacheSize, st.Archives)
	case "cache":
		if *watch > 0 {
			watchConditional(*watch, *watchMax, func(etag string) ([]byte, string, bool, error) {
				return c.CacheConditional(*branchID, etag)
			}, fail)
		}
		data, err := c.Cache(*branchID)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	case "reports":
		if *watch > 0 {
			watchConditional(*watch, *watchMax, func(etag string) ([]byte, string, bool, error) {
				return c.ReportsConditional(*branchID, etag)
			}, fail)
		}
		data, err := c.Reports(*branchID)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	case "archive":
		points, err := c.Archive(*branchID, *policy, rrd.Average, start, end)
		if err != nil {
			fail(err)
		}
		for _, p := range points {
			fmt.Printf("%s %g\n", p.Time.Format(time.RFC3339), p.Value)
		}
	case "graph":
		g, err := c.Graph(*branchID, *policy, rrd.Average, start, end, *branchID, *policy)
		if err != nil {
			fail(err)
		}
		fmt.Println(g)
	case "summary":
		ag := agreement.TeraGrid()
		if *agreeFile != "" {
			data, err := os.ReadFile(*agreeFile)
			if err != nil {
				fail(err)
			}
			if ag, err = agreement.Parse(data); err != nil {
				fail(err)
			}
		}
		dump, err := c.Cache("")
		if err != nil {
			fail(err)
		}
		cache, err := depot.LoadDump(dump)
		if err != nil {
			fail(err)
		}
		status, err := agreement.Evaluate(ag, cache, time.Now().UTC())
		if err != nil {
			fail(err)
		}
		fmt.Print(consumer.SummaryText(status))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// watchConditional polls with ETag revalidation, printing a fresh body
// each time the depot changes; it never returns. Consecutive 304s double
// the sleep toward maxInterval — against a federated router every poll
// still fans out to all shards, so an idle watcher backing off cuts the
// whole federation's revalidation load, not just one server's. Any
// change (or the first fetch) resets the interval.
func watchConditional(interval, maxInterval time.Duration, fetch func(etag string) ([]byte, string, bool, error), fail func(error)) {
	if maxInterval <= 0 {
		maxInterval = 8 * interval
	}
	if maxInterval < interval {
		maxInterval = interval
	}
	etag := ""
	sleep := interval
	for {
		body, newTag, notModified, err := fetch(etag)
		if err != nil {
			fail(err)
		}
		if notModified {
			fmt.Fprintf(os.Stderr, "%s unchanged (ETag %s, next poll in %s)\n", time.Now().UTC().Format(time.RFC3339), etag, sleep)
		} else {
			fmt.Fprintf(os.Stderr, "%s changed (ETag %s -> %s)\n", time.Now().UTC().Format(time.RFC3339), etag, newTag)
			fmt.Println(string(body))
			etag = newTag
			sleep = interval
		}
		time.Sleep(sleep)
		if notModified && sleep < maxInterval {
			sleep *= 2
			if sleep > maxInterval {
				sleep = maxInterval
			}
		}
	}
}
