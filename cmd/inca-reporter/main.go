// Command inca-reporter runs a single reporter standalone and prints its
// XML report — the way reporter developers exercise a probe before
// deploying it. It can also render the reporter as a standalone script
// (the Table 1 form) and check specification compliance.
//
//	inca-reporter -list
//	inca-reporter -run version.globus
//	inca-reporter -script pathload
//	inca-reporter -validate unit.mpich
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"inca/internal/catalog"
	"inca/internal/core"
	"inca/internal/report"
	"inca/internal/reporter"
)

func main() {
	var (
		host       = flag.String("host", "login.sitea.example.org", "demo resource to probe")
		seed       = flag.Int64("seed", 1, "grid seed")
		list       = flag.Bool("list", false, "list available reporters")
		run        = flag.String("run", "", "run the named reporter and print its report")
		script     = flag.String("script", "", "render the named reporter as a standalone script")
		validate   = flag.String("validate", "", "check the named reporter against the specification")
		export     = flag.String("export", "", "write the host's reporters as a checksummed script repository into this directory")
		verifyRepo = flag.String("verify-repo", "", "verify an installed reporter repository against its MANIFEST")
	)
	flag.Parse()

	grid := core.DemoGrid(*seed, time.Now().Add(-24*time.Hour))
	reps := core.DemoReporters(grid, *host)
	if reps == nil {
		fmt.Fprintf(os.Stderr, "unknown host %s\n", *host)
		os.Exit(1)
	}
	ctx := &reporter.Context{
		Hostname:     *host,
		Now:          time.Now(),
		WorkingDir:   "/home/inca",
		ReporterPath: "/home/inca/reporters",
	}
	lookup := func(name string) reporter.Reporter {
		r, ok := reps[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown reporter %q (try -list)\n", name)
			os.Exit(1)
		}
		return r
	}
	switch {
	case *list:
		names := make([]string, 0, len(reps))
		for n := range reps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r := reps[n]
			fmt.Printf("%-22s %-46s %s\n", n, r.Name(), r.Description())
		}
	case *run != "":
		r := lookup(*run)
		rep := r.Run(ctx)
		data, err := report.Marshal(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		if !rep.Succeeded() {
			os.Exit(1)
		}
	case *script != "":
		fmt.Print(catalog.Script(lookup(*script)))
	case *validate != "":
		r := lookup(*validate)
		if err := reporter.Validate(r, ctx); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("%s complies with the reporter specification\n", r.Name())
	case *export != "":
		var rs []reporter.Reporter
		names := make([]string, 0, len(reps))
		for n := range reps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rs = append(rs, reps[n])
		}
		n, err := catalog.WriteRepository(*export, rs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d reporter scripts and MANIFEST to %s\n", n, *export)
	case *verifyRepo != "":
		problems, err := catalog.VerifyRepository(*verifyRepo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(problems) == 0 {
			fmt.Println("repository matches its MANIFEST")
			return
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		os.Exit(1)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
