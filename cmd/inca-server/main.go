// Command inca-server runs the Inca server side (paper Figure 1): the
// centralized controller listening for distributed-controller TCP
// connections, an in-process depot, and the HTTP querying interface.
//
//	inca-server -tcp :6323 -http :8080 -allow hostA,hostB -mode body
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"inca/internal/agent"
	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/federation"
	"inca/internal/metrics"
	"inca/internal/query"
	"inca/internal/wire"
)

func main() {
	var (
		tcpAddr   = flag.String("tcp", "127.0.0.1:6323", "address for distributed-controller connections")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "address for the querying interface")
		allow     = flag.String("allow", "", "comma-separated hostname allowlist (empty = allow all)")
		mode      = flag.String("mode", "body", "envelope mode: body or attachment")
		cacheImp  = flag.String("cache", "stream", "cache implementation: stream, file, dom, split, or indexed")
		cacheFile = flag.String("cache-file", "inca-cache.xml", "backing file for -cache file")
		snapshot  = flag.String("snapshot", "", "depot snapshot file: loaded at startup if present, written at shutdown")

		storage    = flag.String("storage", "memory", "depot storage engine: memory (resident archives) or disk (paged archive files + WAL under -data)")
		dataDir    = flag.String("data", "inca-data", "storage directory for -storage disk")
		openFiles  = flag.Int("open-files", 64, "open archive file handles kept by the disk engine's LRU")
		checkpoint = flag.Duration("checkpoint", 5*time.Minute, "disk engine checkpoint interval (0 = only at shutdown)")

		archiveMode    = flag.String("archive", "sync", "archive pipeline mode: sync or async")
		archiveWorkers = flag.Int("archive-workers", 4, "async archive worker count")
		archiveQueue   = flag.Int("archive-queue", 256, "async archive queue capacity per worker")
		archiveDrop    = flag.Bool("archive-drop", false, "shed archive jobs when the async queue is full instead of blocking ingest")

		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "drop distributed-controller connections idle (or stalled mid-frame) this long, so dead peers cannot pin goroutines (0 = never)")

		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/ on the querying interface")

		feedOn    = flag.Bool("feed", true, "serve the depot change feed on /feed (SSE + long-poll push to consumers)")
		feedQueue = flag.Int("feed-queue", 256, "per-subscriber coalesced event queue limit; a slower subscriber is demoted to a fresh snapshot")
		agreeSpec = flag.String("agreement", "", "serve a live agreement status stream on /feed?stream=status and /summary: 'teragrid' or a path to an agreement XML file")
		reverify  = flag.Duration("reverify", 5*time.Minute, "periodic full re-evaluation interval for the status stream (staleness advances with wall time)")

		federate         = flag.String("federate", "", "run as a federation router over this comma-separated shard list (wireAddr/httpAddr[=followerWire/followerHTTP] per shard) instead of hosting a depot")
		federateReplicas = flag.Int("federate-replicas", federation.DefaultReplicas, "virtual nodes per shard on the consistent-hash ring")
		federateDepth    = flag.Int("federate-depth", federation.DefaultDepth, "branch-prefix affinity depth: identifiers sharing this many most-general components stay on one shard")
		replicate        = flag.String("replicate", "", "comma-separated follower list paired positionally with -federate shards (wireAddr/httpAddr, '-' = no follower): the router tees each shard's wire stream to its follower, and /federation/leave promotes the follower when the primary dies")
		replicateReads   = flag.Bool("replicate-reads", true, "let the federated query tier serve reads from followers (generation-gated so a lagging follower never moves a consumer backwards)")
	)
	flag.Parse()

	// One registry spans the whole pipeline — wire, controller, depot, and
	// query instruments all land on the same /metrics page.
	reg := metrics.NewRegistry()

	if *federate != "" {
		runFederated(*federate, *replicate, *tcpAddr, *httpAddr, *federateReplicas, *federateDepth, *idleTimeout, *replicateReads, reg)
		return
	}
	if *replicate != "" {
		fmt.Fprintln(os.Stderr, "-replicate requires -federate")
		os.Exit(2)
	}

	var opts depot.Options
	opts.Metrics = reg
	switch *archiveMode {
	case "sync":
	case "async":
		opts.AsyncArchive = true
		opts.ArchiveWorkers = *archiveWorkers
		opts.ArchiveQueue = *archiveQueue
		opts.DropOnFull = *archiveDrop
	default:
		fmt.Fprintf(os.Stderr, "unknown archive mode %q\n", *archiveMode)
		os.Exit(2)
	}

	var d *depot.Depot
	switch *storage {
	case "disk":
		dd, err := depot.OpenDisk(depot.DiskOptions{Options: opts, Dir: *dataDir, OpenFiles: *openFiles})
		if err != nil {
			fmt.Fprintf(os.Stderr, "storage %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		d = dd
		st := d.Stats()
		fmt.Printf("disk depot %s: %d cached entries, %d archives, %d policies\n",
			*dataDir, st.CacheCount, st.Archives, len(d.Policies()))
	case "memory":
		if *snapshot != "" {
			if f, err := os.Open(*snapshot); err == nil {
				restored, rerr := depot.ReadSnapshotOptions(f, opts)
				f.Close()
				if rerr != nil {
					fmt.Fprintf(os.Stderr, "snapshot %s: %v\n", *snapshot, rerr)
					os.Exit(1)
				}
				d = restored
				st := d.Stats()
				fmt.Printf("restored depot snapshot: %d cached entries, %d archives, %d policies\n",
					st.CacheCount, st.Archives, len(d.Policies()))
			}
		}
		if d == nil {
			var cache depot.Cache
			switch *cacheImp {
			case "stream":
				cache = depot.NewStreamCache()
			case "file":
				fc, err := depot.OpenFileCache(*cacheFile)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("cache file %s: %d entries\n", fc.Path(), fc.Count())
				cache = fc
			case "dom":
				cache = depot.NewDOMCache()
			case "split":
				cache = depot.NewSplitCacheDepth(2)
			case "indexed":
				cache = depot.NewIndexedCache()
			default:
				fmt.Fprintf(os.Stderr, "unknown cache %q\n", *cacheImp)
				os.Exit(2)
			}
			d = depot.NewWithOptions(cache, opts)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown storage %q\n", *storage)
		os.Exit(2)
	}
	// The availability policy ships with the server, but a restored depot
	// (snapshot or disk checkpoint/WAL) may already carry it.
	if !hasPolicy(d, consumer.AvailabilityPolicy().Name) {
		if err := d.AddPolicy(consumer.AvailabilityPolicy()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	envMode := envelope.Body
	if *mode == "attachment" {
		envMode = envelope.Attachment
	}
	var allowlist []string
	if *allow != "" {
		allowlist = strings.Split(*allow, ",")
	}
	ctl := controller.New(d, controller.Options{Allowlist: allowlist, Mode: envMode, Metrics: reg})

	srv, err := wire.ServeOptions(*tcpAddr, ctl.Handle, wire.ServerOptions{IdleTimeout: *idleTimeout, Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcp listen:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("centralized controller listening on %s (envelope mode %s)\n", srv.Addr(), envMode)

	// Central configuration: serve specification files over /spec. The
	// sample grid's specs are preloaded so `inca-agent -spec-url` works
	// out of the box; real deployments POST their own.
	qsrv := query.NewServerMetrics(d, reg)
	qsrv.WireStats = srv.Stats // delivery_* group on /debug/vars
	qsrv.Pprof = *pprofOn

	// Attach the change feed after the depot's own policy setup so feed
	// subscribers only ever observe steady-state commits.
	var qfeed *query.Feed
	if *feedOn {
		fopts := query.FeedOptions{QueueLimit: *feedQueue, Metrics: reg, Reverify: *reverify}
		if *agreeSpec != "" {
			ag := agreement.TeraGrid()
			if *agreeSpec != "teragrid" {
				data, err := os.ReadFile(*agreeSpec)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if ag, err = agreement.Parse(data); err != nil {
					fmt.Fprintf(os.Stderr, "agreement %s: %v\n", *agreeSpec, err)
					os.Exit(1)
				}
			}
			fopts.Agreement = ag
			fmt.Printf("status stream: agreement %s, reverify every %s\n", ag.Name, *reverify)
		}
		qfeed = query.NewFeed(d, fopts)
		qsrv.Feed = qfeed
	}
	specs := qsrv.EnableSpecs()
	demoGrid := core.DemoGrid(1, time.Now().Add(-24*time.Hour))
	for _, res := range demoGrid.Resources() {
		spec, err := core.DemoSpec(demoGrid, res.Host, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := agent.MarshalSpec(spec.Def())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := specs.Put(data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Listen before serving so ":0" reports the port actually bound —
	// smoke tests (and operators) read it off stdout.
	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "http listen:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: qsrv.Handler()}
	go func() {
		fmt.Printf("querying interface on http://%s (/cache /reports /archive /graph /feed /stats /metrics)\n", httpLn.Addr())
		if err := httpSrv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(60 * time.Second)
	defer ticker.Stop()
	// Periodic checkpoints bound both WAL replay time after a crash and the
	// page-cache durability window (DESIGN.md §5g).
	var ckptC <-chan time.Time
	if d.DiskBacked() && *checkpoint > 0 {
		ckptTicker := time.NewTicker(*checkpoint)
		defer ckptTicker.Stop()
		ckptC = ckptTicker.C
	}
	for {
		select {
		case <-ticker.C:
			st := d.Stats()
			accepted, rejected, errs := ctl.Counters()
			fmt.Printf("depot: %d reports (%d bytes), cache %d entries / %d bytes; controller: %d ok, %d rejected, %d errors\n",
				st.Received, st.Bytes, st.CacheCount, st.CacheSize, accepted, rejected, errs)
		case <-ckptC:
			if err := d.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "checkpoint:", err)
			}
		case <-sig:
			fmt.Println("shutting down")
			httpSrv.Close()
			// Stop ingest before depot teardown: srv.Close returns only
			// after every in-flight connection handler has finished, so no
			// store can race the archive pipeline shutdown.
			srv.Close()
			if qfeed != nil {
				// Detach the publisher and end subscribers before the
				// depot closes underneath them.
				qfeed.Close()
			}
			if d.DiskBacked() {
				// Fold the WAL into the checkpoint so the next start replays
				// nothing; the WAL still covers us if this fails mid-way.
				if err := d.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "checkpoint:", err)
				} else {
					fmt.Println("depot checkpoint written")
				}
			}
			if *snapshot != "" {
				// Written atomically (temp + fsync + rename): a crash here
				// leaves the previous snapshot intact, never a torn image.
				err := depot.AtomicWriteFile(*snapshot, func(w io.Writer) error {
					return d.WriteSnapshot(w)
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "snapshot %s: %v\n", *snapshot, err)
					os.Exit(1)
				}
				fmt.Printf("depot snapshot written to %s\n", *snapshot)
			}
			// Drains any queued archive work and, on disk, closes every
			// archive handle and the live WAL segment.
			d.Close()
			return
		}
	}
}

// hasPolicy reports whether the depot already carries a policy by name.
func hasPolicy(d *depot.Depot, name string) bool {
	for _, p := range d.Policies() {
		if p.Name == name {
			return true
		}
	}
	return false
}

// runFederated runs the binary as a federation router: the same wire
// listener agents already point at, but every accepted message forwards
// to the shard owning its branch (and tees to the shard's follower when
// one is configured — DESIGN.md §5i), and the HTTP side is the
// scatter-gather query tier instead of a local depot (DESIGN.md §5f).
func runFederated(topology, replicate, tcpAddr, httpAddr string, replicas, depth int, idleTimeout time.Duration, preferFollower bool, reg *metrics.Registry) {
	shards, err := federation.ParseShards(topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := federation.ApplyReplicas(shards, replicate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	router, err := federation.NewRouter(shards, federation.RouterOptions{
		Ring:    federation.RingOptions{Replicas: replicas, Depth: depth},
		Metrics: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv, err := wire.ServeOptions(tcpAddr, router.Handle, wire.ServerOptions{IdleTimeout: idleTimeout, Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcp listen:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("federation router listening on %s (%d shards, %d replicas, depth %d)\n",
		srv.Addr(), len(shards), replicas, depth)
	followers := 0
	for _, s := range shards {
		if s.HasReplica() {
			followers++
		}
	}
	if followers > 0 {
		fmt.Printf("replication: %d of %d shards have followers (tee mode, follower reads %v)\n",
			followers, len(shards), preferFollower)
	}

	fed := query.NewFederated(router, query.FederatedOptions{Metrics: reg, PreferFollower: preferFollower})
	// The tier subscribes to every shard's /feed and re-serves the merged
	// stream with composed cursors; shards without /feed turn the tier's
	// /feed into a 503 until they are upgraded.
	ffeed := fed.AttachFeed(query.FeedOptions{Metrics: reg})
	httpLn, err := net.Listen("tcp", httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "http listen:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: fed.Handler()}
	go func() {
		fmt.Printf("federated querying interface on http://%s (/cache /reports /archive /availability /feed /shards /metrics)\n", httpLn.Addr())
		if err := httpSrv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(60 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := router.Stats()
			fmt.Printf("router: %d routed, %d rerouted, %d unroutable, %d refused, %d reroute-dropped, %d promotions across %d shards\n",
				st.Routed, st.Rerouted, st.Unroutable, st.Refused, st.RerouteDropped, st.Promotions, len(st.Shards))
		case <-sig:
			fmt.Println("shutting down")
			httpSrv.Close()
			ffeed.Close()
			// Stop accepting before the drain so the barrier is final.
			srv.Close()
			if err := router.Drain(); err != nil {
				fmt.Fprintln(os.Stderr, "drain:", err)
			}
			router.Close()
			return
		}
	}
}
