// Command inca-bench regenerates the paper's evaluation tables and figures
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
// Usage:
//
//	inca-bench -experiment all                 # everything, default scales
//	inca-bench -experiment table4 -hours 24    # one experiment, scaled up
//	inca-bench -experiment fig5 -days 7        # the paper's full week
//	inca-bench -experiment fig9 -ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"inca/internal/experiments"
	"inca/internal/loadgen"
)

// parseStages turns "-stages 1,2,4,8" into a validated ramp ("" keeps
// the default).
func parseStages(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -stages entry %q: %v", part, err)
		}
		out = append(out, n)
	}
	if err := loadgen.ValidateStages(out); err != nil {
		return nil, err
	}
	return out, nil
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: all, table1-table4, fig4-fig9, shards, query, archive, federation, storage, feed, replication, load")
		hours      = flag.Int("hours", 0, "virtual hours for table4/fig8 (0 = default)")
		days       = flag.Int("days", 0, "virtual days for fig5/fig6/fig7 (0 = default)")
		updates    = flag.Int("updates", 0, "steady-state updates per fig9/shards cell (0 = default)")
		workers    = flag.Int("workers", 0, "concurrent submitters/readers for the shards and query ablations (0 = default)")
		ablations  = flag.Bool("ablations", false, "run fig9 design-choice ablations")
		seed       = flag.Int64("seed", 2004, "simulation seed")
		htmlOut    = flag.String("html", "", "also write the fig4 status page HTML here")
		out        = flag.String("out", "", "append results to this file as well as stdout")
		jsonDir    = flag.String("json", "", "write each result as machine-readable BENCH_<id>.json into this directory (\".\" for the working directory)")
		stages     = flag.String("stages", "", "load ramp as a comma-separated concurrency list, strictly increasing (default 1,2,4,8,16,32)")
		stageDur   = flag.Duration("stage-duration", 0, "measured window per load stage (0 = default 2s)")
		modes      = flag.String("modes", "", "load topologies, comma-separated: single, federated (default both)")
	)
	flag.Parse()

	var results []experiments.Result
	run := func(r experiments.Result) { results = append(results, r) }
	switch strings.ToLower(*experiment) {
	case "all":
		run(experiments.Table1())
		run(experiments.Table2())
		run(experiments.Table3())
		// Table 4 and Figure 8 measure the same replay; share one run.
		t4, responses := experiments.Table4WithResponses(experiments.Table4Options{Hours: *hours, Seed: *seed})
		run(t4)
		run(experiments.Fig4(experiments.Fig4Options{Seed: *seed, HTMLPath: *htmlOut}))
		run(experiments.Fig5(experiments.Fig5Options{Days: *days, Seed: *seed}))
		run(experiments.Fig6(experiments.Fig6Options{Days: *days, Seed: *seed}))
		run(experiments.Fig7(experiments.Fig7Options{Days: *days, Seed: *seed}))
		t4hours := *hours
		if t4hours <= 0 {
			t4hours = 6
		}
		run(experiments.Fig8FromResponses(responses, t4hours))
		run(experiments.Fig9(experiments.Fig9Options{UpdatesPerCell: *updates, Ablations: *ablations}))
	case "table1":
		run(experiments.Table1())
	case "table2":
		run(experiments.Table2())
	case "table3":
		run(experiments.Table3())
	case "table4":
		run(experiments.Table4(experiments.Table4Options{Hours: *hours, Seed: *seed}))
	case "fig4":
		run(experiments.Fig4(experiments.Fig4Options{Seed: *seed, HTMLPath: *htmlOut}))
	case "fig5":
		run(experiments.Fig5(experiments.Fig5Options{Days: *days, Seed: *seed}))
	case "fig6":
		run(experiments.Fig6(experiments.Fig6Options{Days: *days, Seed: *seed}))
	case "fig7":
		run(experiments.Fig7(experiments.Fig7Options{Days: *days, Seed: *seed}))
	case "fig8":
		run(experiments.Fig8(experiments.Fig8Options{Hours: *hours, Seed: *seed}))
	case "fig9":
		run(experiments.Fig9(experiments.Fig9Options{UpdatesPerCell: *updates, Ablations: *ablations}))
	case "shards":
		run(experiments.Shards(experiments.ShardsOptions{Updates: *updates, Workers: *workers}))
	case "query":
		run(experiments.Query(experiments.QueryOptions{Readers: *workers}))
	case "archive":
		run(experiments.Archive(experiments.ArchiveOptions{Updates: *updates, Workers: *workers}))
	case "federation":
		run(experiments.Federation(experiments.FederationOptions{Updates: *updates, Workers: *workers}))
	case "storage":
		run(experiments.Storage(experiments.StorageOptions{Updates: *updates, Workers: *workers}))
	case "feed":
		run(experiments.Feed(experiments.FeedOptions{}))
	case "replication":
		run(experiments.Replication(experiments.ReplicationOptions{Messages: *updates, Workers: *workers}))
	case "load":
		opt := experiments.LoadOptions{StageDuration: *stageDur}
		var err error
		if opt.Stages, err = parseStages(*stages); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *modes != "" {
			opt.Modes = strings.Split(*modes, ",")
		}
		r, err := experiments.Load(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(r)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q (all, table1-table4, fig4-fig9, shards, query, archive, federation, storage, feed, replication, load)\n", *experiment)
		os.Exit(2)
	}

	var sb strings.Builder
	for _, r := range results {
		sb.WriteString(r.String())
		sb.WriteString("\n")
	}
	fmt.Print(sb.String())
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := f.WriteString(sb.String()); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *jsonDir, err)
			os.Exit(1)
		}
		for _, r := range results {
			path := filepath.Join(*jsonDir, "BENCH_"+r.ID+".json")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
			err = r.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
