// Command inca-agent runs a distributed controller daemon (paper Section
// 3.1.3) over the built-in sample grid, executing its specification file on
// a live clock and forwarding reports to a centralized controller.
//
//	inca-agent -server 127.0.0.1:6323 -host login.sitea.example.org
//	inca-agent -list    # print the specification file and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"inca/internal/agent"
	"inca/internal/core"
	"inca/internal/metrics"
	"inca/internal/query"
	"inca/internal/simtime"
	"inca/internal/wire"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:6323", "centralized controller address")
		specURL = flag.String("spec-url", "", "fetch the specification file from this inca-server querying interface (central configuration) instead of building it locally")
		repoDir = flag.String("repo", "", "resolve reporters from this installed script repository (inca-reporter -export) instead of in-process probes")
		host    = flag.String("host", "login.sitea.example.org", "demo resource to run on")
		seed    = flag.Int64("seed", 1, "grid seed")
		list    = flag.Bool("list", false, "print the specification file and exit")

		flushSize     = flag.Int("flush-size", 0, "batch this many reports per wire flush (0 = one message per round trip, the deployed protocol)")
		flushInterval = flag.Duration("flush-interval", 0, "send a partial batch after this long (default 50ms when -flush-size is set)")

		spool   = flag.String("spool", "", "reliable delivery: spool reports through a bounded store-and-forward queue; 'mem' keeps it in memory only, any other value is a directory for disk overflow (survives agent restarts)")
		retry   = flag.Int("retry", 0, "with -spool: delivery attempts per report before it is dropped and counted (0 = retry until shutdown)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-attempt wire I/O deadline (dial is capped at 10s); a hung controller fails the attempt instead of wedging the agent")

		metricsAddr = flag.String("metrics", "", "serve Prometheus text metrics on this address's /metrics (empty = disabled)")
	)
	flag.Parse()

	grid := core.DemoGrid(*seed, time.Now().Add(-24*time.Hour))
	var spec agent.Spec
	var err error
	if *specURL != "" {
		data, gen, ferr := query.NewClient(*specURL).FetchSpec(*host)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		def, perr := agent.ParseSpec(data)
		if perr != nil {
			fmt.Fprintln(os.Stderr, perr)
			os.Exit(1)
		}
		if *repoDir != "" {
			// Deployed execution model: checksummed scripts from the
			// repository, run through /bin/sh.
			resolve, rerr := core.RepositoryResolver(*repoDir)
			if rerr != nil {
				fmt.Fprintln(os.Stderr, rerr)
				os.Exit(1)
			}
			spec, err = agent.BuildFromDef(def, resolve)
		} else {
			spec, err = core.RoundTripSpec(grid, def)
		}
		if err == nil {
			fmt.Printf("specification for %s fetched from %s (generation %d)\n", *host, *specURL, gen)
		}
	} else {
		spec, err = core.DemoSpec(grid, *host, rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *list {
		fmt.Printf("specification file for %s (%d series):\n", *host, len(spec.Series))
		for _, s := range spec.Series {
			fmt.Printf("  %-40s cron %-14q limit %-8v -> %s\n",
				s.Reporter.Name(), s.Cron.String(), s.Limit, s.Branch)
		}
		return
	}

	// One registry covers both the agent's scheduler/executor instruments
	// and the wire path underneath it.
	reg := metrics.NewRegistry()

	var sink *agent.WireSink
	switch {
	case *spool != "":
		// Reliable path: Submit lands in the spool immediately; a delivery
		// loop replays with backoff, reconnect, and per-attempt deadlines.
		dopt := agent.DeliveryOptions{
			Client:      wire.ClientOptions{IOTimeout: *timeout, Metrics: reg},
			MaxAttempts: *retry,
		}
		if *spool != "mem" {
			dopt.Spool.Dir = *spool
		}
		if *flushSize > 0 {
			dopt.Batch = &wire.BatchOptions{
				MaxBatch:      *flushSize,
				FlushInterval: *flushInterval,
				IOTimeout:     *timeout,
				Metrics:       reg,
			}
		}
		var serr error
		sink, serr = agent.NewWireSinkReliable(*server, dopt)
		if serr != nil {
			fmt.Fprintln(os.Stderr, serr)
			os.Exit(1)
		}
	case *flushSize > 0:
		sink = agent.NewWireSinkBatched(*server, wire.BatchOptions{
			MaxBatch:      *flushSize,
			FlushInterval: *flushInterval,
			IOTimeout:     *timeout,
			Metrics:       reg,
		})
	default:
		sink = agent.NewWireSinkOptions(*server, wire.ClientOptions{IOTimeout: *timeout, Metrics: reg})
	}
	defer sink.Close()
	a, err := agent.NewMetrics(spec, simtime.Real{}, sink, agent.Live, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "metrics listen:", lerr)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go http.Serve(ln, mux)
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}
	fmt.Printf("distributed controller on %s: %d reporter series, forwarding to %s\n",
		*host, a.SeriesCount(), *server)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		cancel()
	}()
	a.Run(ctx)
	if *spool != "" {
		// Best-effort final replay so a clean shutdown loses nothing; with
		// a spool directory, whatever cannot be delivered in time persists
		// on disk for the next start.
		if err := sink.Drain(10 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	st := a.Stats()
	fmt.Printf("stopped: %d runs, %d failures, %d killed, %d submit errors\n",
		st.Runs, st.Failures, st.Killed, st.SubmitErrs)
	if st.Delivery != nil {
		d := st.Delivery
		fmt.Printf("delivery: %d spooled, %d replayed, %d rejected, %d dropped, %d reconnects, %d still queued\n",
			d.Spooled, d.Replayed, d.Rejected, d.Dropped, d.Reconnects, d.Depth)
	}
}
