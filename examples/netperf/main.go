// Netperf: the Section 4.2 performance-collection use case over the real
// network stack. The depot runs behind an HTTP querying interface, the
// centralized controller listens on TCP, and an agent forwards bandwidth
// reports over both hops — virtual time drives the schedule so a week of
// hourly pathload measurements replays in seconds, but every report
// crosses real sockets (Figure 3's topology on localhost).
//
//	go run ./examples/netperf
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"time"

	"inca/internal/agent"
	"inca/internal/catalog"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/query"
	"inca/internal/rrd"
	"inca/internal/schedule"
	"inca/internal/simtime"
	"inca/internal/wire"
)

func main() {
	days := flag.Int("days", 7, "virtual days of hourly measurements")
	flag.Parse()

	start := time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewSim(start)
	grid := core.DemoGrid(11, start.Add(-24*time.Hour))
	const (
		srcHost = "login.sitea.example.org"
		dstHost = "login.siteb.example.org"
	)

	// Depot with an archival policy for pathload's lower bound, served
	// over HTTP.
	d := depot.New(depot.NewStreamCache())
	if err := d.AddPolicy(depot.Policy{
		Name: "bw-lower",
		Path: "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{
			Step: time.Hour, Granularity: 1, History: 30 * 24 * time.Hour,
		},
	}); err != nil {
		log.Fatal(err)
	}
	httpSrv := httptest.NewServer(query.NewServer(d).Handler())
	defer httpSrv.Close()

	// Centralized controller on TCP, forwarding to the depot over HTTP.
	ctl := controller.New(query.NewClient(httpSrv.URL), controller.Options{
		Allowlist: []string{srcHost},
		Mode:      envelope.Attachment,
		Now:       clock.Now,
	})
	tcpSrv, err := wire.Serve("127.0.0.1:0", ctl.Handle)
	if err != nil {
		log.Fatal(err)
	}
	defer tcpSrv.Close()
	fmt.Printf("depot at %s, centralized controller at %s\n", httpSrv.URL, tcpSrv.Addr())

	// The agent: hourly pathload + spruce probes toward siteB, forwarded
	// over the wire protocol.
	src, _ := grid.Resource(srcHost)
	rng := rand.New(rand.NewSource(3))
	spec := agent.Spec{
		Resource:   srcHost,
		WorkingDir: "/home/inca",
		Series: []agent.Series{
			{
				Reporter: &catalog.BandwidthReporter{Grid: grid, Source: src, DestHost: dstHost, Tool: catalog.Pathload},
				Branch:   core.BranchInVO("samplegrid", "grid.network.pathload.to."+dstHost, srcHost, "siteA"),
				Cron:     schedule.MustEvery(time.Hour, rng),
				Limit:    10 * time.Minute,
			},
			{
				Reporter: &catalog.BandwidthReporter{Grid: grid, Source: src, DestHost: dstHost, Tool: catalog.Spruce},
				Branch:   core.BranchInVO("samplegrid", "grid.network.spruce.to."+dstHost, srcHost, "siteA"),
				Cron:     schedule.MustEvery(time.Hour, rng),
				Limit:    10 * time.Minute,
			},
		},
	}
	sink := agent.NewWireSink(tcpSrv.Addr())
	defer sink.Close()
	a, err := agent.New(spec, clock, sink, agent.Simulated)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the measurement period.
	end := start.Add(time.Duration(*days) * 24 * time.Hour)
	core.DriveAgents(clock, []*agent.Agent{a}, end)
	st := a.Stats()
	fmt.Printf("agent forwarded %d reports (%d bytes) over TCP; %d failures\n",
		st.Runs, st.BytesSent, st.Failures)

	// A data consumer fetches the archived series and graph over HTTP —
	// the Figure 6 view.
	client := query.NewClient(httpSrv.URL)
	id := core.BranchInVO("samplegrid", "grid.network.pathload.to."+dstHost, srcHost, "siteA")
	graph, err := client.Graph(id.String(), "bw-lower", rrd.Average, start, end,
		"Pathload bandwidth siteA -> siteB (lower bound)", "Mbps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(graph)

	points, err := client.Archive(id.String(), "bw-lower", rrd.Average, start, end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchived points: %d (first %s, last %s)\n",
		len(points), points[0].Time.Format(time.RFC3339), points[len(points)-1].Time.Format(time.RFC3339))

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depot: %d reports, cache %d entries / %d bytes, %d archives\n",
		stats.Received, stats.CacheCount, stats.CacheSize, stats.Archives)
}
