// TeraGrid: the full Figure 3 deployment — ten resources at six sites
// running 1,060 reporters per hour, verified against the TeraGrid Hosting
// Environment agreement, with availability archived every ten minutes.
//
//	go run ./examples/teragrid            # four virtual hours
//	go run ./examples/teragrid -hours 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/gridsim"
)

func main() {
	hours := flag.Int("hours", 4, "virtual hours of operation to replay")
	seed := flag.Int64("seed", 2004, "simulation seed")
	htmlOut := flag.String("html", "", "write the status page HTML here")
	flag.Parse()

	d, err := core.NewTeraGridDeployment(core.Options{
		Seed:         *seed,
		Cache:        depot.NewDOMCache(),
		Availability: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := d.Clock.Now()
	fmt.Printf("deployment: %d resources, %d reporter series/hour (Table 2)\n",
		len(d.Agents), d.TotalSeries())

	// A mid-run incident: NCSA's SRB server goes down for 90 minutes.
	ncsa, _ := d.Grid.Resource("tg-login1.ncsa.teragrid.org")
	ncsa.AddOutage(gridsim.Outage{
		Service: "srb",
		From:    start.Add(90 * time.Minute), To: start.Add(3 * time.Hour),
		Reason: "SRB server out of file descriptors",
	})

	// Operators get transition notifications as verification cycles run.
	// The first hour is ramp-up (each reporter fires once per hour at a
	// random offset), so notifications begin after full coverage exists.
	notifier := consumer.NewNotifier()
	fmt.Println("\nfailure/recovery notifications (after the first full collection cycle):")
	end := start.Add(time.Duration(*hours) * time.Hour)
	d.RunUntil(end, 10*time.Minute, func(now time.Time) {
		status, err := d.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		if now.Before(start.Add(70 * time.Minute)) {
			return
		}
		if out := consumer.RenderEvents(notifier.Observe(status)); out != "" {
			fmt.Print(out)
		}
	})

	status, err := d.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(consumer.SummaryText(status))
	fmt.Println()
	fmt.Println("Detailed software stack view (first resources):")
	fmt.Print(consumer.StackViewText(status))

	// Availability series for one resource (Figure 5's view).
	fmt.Println()
	graph, err := consumer.AvailabilityGraph(d.Depot, "tg-login1.ncsa.teragrid.org",
		agreement.Grid, start, end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(graph)

	// VO-wide availability overview with sparklines.
	var hosts []string
	for _, h := range gridsim.TeraGridHosts {
		hosts = append(hosts, h.Host)
	}
	page, err := consumer.BuildAvailabilityPage(d.Depot, "TeraGrid availability overview",
		hosts, []agreement.Category{agreement.Grid}, start, end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(page.Text())

	if *htmlOut != "" {
		html, err := consumer.SummaryHTML(status)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*htmlOut, html, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstatus page written to %s\n", *htmlOut)
	}

	// Open incidents at the end of the run, oldest first.
	if open := notifier.Outstanding(d.Clock.Now()); len(open) > 0 {
		fmt.Println("\nopen incidents:")
		fmt.Print(consumer.RenderEvents(open))
	} else {
		fmt.Println("\nno open incidents")
	}

	st := d.Depot.Stats()
	accepted, rejected, errs := d.Controller.Counters()
	fmt.Printf("\ndepot: %d reports (%.1f MB); cache %d entries, %.2f MB; controller %d/%d/%d ok/rejected/errors\n",
		st.Received, float64(st.Bytes)/1024/1024, st.CacheCount,
		float64(st.CacheSize)/1024/1024, accepted, rejected, errs)
}
