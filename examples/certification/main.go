// Certification: the site-interoperability certification use case (paper
// Section 2.1) — "a Grid can define a suite of tests for service agreement
// verification and run that suite on any other Grid where user-level
// access can be obtained."
//
// TeraGrid wants to certify the two-site "samplegrid" collaboration for
// application porting. TeraGrid's certification suite (a trimmed service
// agreement: the packages and services a ported application needs) is run
// by agents on samplegrid's resources under a certification VO; the
// resulting compliance report says whether the collaboration can proceed
// and exactly what is missing.
//
//	go run ./examples/certification
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"inca/internal/agent"
	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/simtime"
)

func main() {
	start := time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewSim(start)

	// The collaborating grid we were given user-level accounts on. Note
	// siteB never installed atlas — certification should catch it.
	grid := core.DemoGrid(21, start.Add(-24*time.Hour))
	hosts := []string{"login.sitea.example.org", "login.siteb.example.org"}
	if r, ok := grid.Resource(hosts[1]); ok {
		// Simulate the gap by breaking the unit test permanently: the
		// package "exists" but never worked on siteB.
		if err := r.BreakPackage("atlas", start.Add(-23*time.Hour)); err != nil {
			log.Fatal(err)
		}
	}

	// The certification suite: what a ported TeraGrid application needs.
	suite := &agreement.Agreement{
		Name: "TeraGrid application-porting certification 1.0",
		VO:   "samplegrid",
		Packages: []agreement.PackageReq{
			{Name: "globus", Category: agreement.Grid, Version: agreement.Constraint{Op: ">=", Version: "2.4.0"}, UnitTest: true},
			{Name: "mpich", Category: agreement.Development, Version: agreement.Constraint{Op: ">=", Version: "1.2.5"}, UnitTest: true},
			{Name: "atlas", Category: agreement.Development, Version: agreement.Constraint{Op: "any"}, UnitTest: true},
		},
		Services: []agreement.ServiceReq{
			{Name: "gram-gatekeeper", Category: agreement.Grid, CrossSite: true},
			{Name: "gridftp", Category: agreement.Grid, CrossSite: true},
		},
		Env: []agreement.EnvReq{{Name: "GLOBUS_LOCATION", Category: agreement.Cluster}},
	}

	// Standard Inca plumbing under the certification account.
	d := depot.New(depot.NewStreamCache())
	ctl := controller.New(d, controller.Options{Allowlist: hosts, Now: clock.Now})
	var agents []*agent.Agent
	for _, host := range hosts {
		spec, err := core.DemoSpec(grid, host, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatal(err)
		}
		a, err := agent.New(spec, clock, agent.SinkFunc(ctl.SubmitReport), agent.Simulated)
		if err != nil {
			log.Fatal(err)
		}
		agents = append(agents, a)
	}

	// One certification pass: every reporter runs at least once.
	core.DriveAgents(clock, agents, start.Add(2*time.Minute))

	status, err := agreement.Evaluate(suite, d.Cache(), clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(consumer.SummaryText(status))

	// The certification verdict.
	fmt.Println()
	certified := true
	for _, rs := range status.Resources {
		total := rs.Total()
		verdict := "CERTIFIED"
		if total.Fail > 0 {
			verdict = "NOT certified"
			certified = false
		}
		fmt.Printf("%-30s %s (%d/%d checks passed)\n", rs.Resource, verdict, total.Pass, total.Pass+total.Fail)
	}
	if certified {
		fmt.Println("\ncollaboration certified: applications can be ported as-is")
	} else {
		fmt.Println("\ncollaboration blocked; the expanded error view above lists the exact gaps")
	}
}
