// Quickstart: the smallest end-to-end Inca deployment.
//
// Two simulated resources run reporters under a distributed controller;
// reports flow through the centralized controller into the depot; a data
// consumer verifies the cache against a small service agreement and prints
// the red/green summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"inca/internal/agent"
	"inca/internal/agreement"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/gridsim"
	"inca/internal/simtime"
)

func main() {
	start := time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewSim(start)

	// 1. A virtual organization to monitor: two sites, one login node each.
	grid := core.DemoGrid(42, start.Add(-24*time.Hour))

	// 2. The server side: depot (cache + archive) behind the centralized
	//    controller.
	d := depot.New(depot.NewStreamCache())
	ctl := controller.New(d, controller.Options{
		Allowlist: []string{"login.sitea.example.org", "login.siteb.example.org"},
		Now:       clock.Now,
	})

	// 3. One distributed controller per resource, forwarding to the server.
	var agents []*agent.Agent
	for _, host := range []string{"login.sitea.example.org", "login.siteb.example.org"} {
		spec, err := core.DemoSpec(grid, host, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatal(err)
		}
		a, err := agent.New(spec, clock, agent.SinkFunc(ctl.SubmitReport), agent.Simulated)
		if err != nil {
			log.Fatal(err)
		}
		agents = append(agents, a)
	}

	// 4. Replay ten minutes of operation on the virtual clock.
	core.DriveAgents(clock, agents, start.Add(10*time.Minute))

	st := d.Stats()
	fmt.Printf("depot received %d reports (%d bytes); cache holds %d entries in %d bytes\n\n",
		st.Received, st.Bytes, st.CacheCount, st.CacheSize)

	// 5. A data consumer: verify the cache against a service agreement.
	ag := &agreement.Agreement{
		Name: "samplegrid service agreement",
		VO:   "samplegrid",
		Packages: []agreement.PackageReq{
			{Name: "globus", Category: agreement.Grid, Version: agreement.Constraint{Op: ">=", Version: "2.4.0"}, UnitTest: true},
			{Name: "mpich", Category: agreement.Development, Version: agreement.Constraint{Op: "any"}, UnitTest: true},
			{Name: "pbs", Category: agreement.Cluster, Version: agreement.Constraint{Op: "any"}},
		},
		Services: []agreement.ServiceReq{
			{Name: "gram-gatekeeper", Category: agreement.Grid, CrossSite: true},
			{Name: "ssh", Category: agreement.Grid},
		},
		Env: []agreement.EnvReq{{Name: "GLOBUS_LOCATION", Category: agreement.Cluster}},
	}
	status, err := agreement.Evaluate(ag, d.Cache(), clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(consumer.SummaryText(status))

	// 6. Inject a failure and watch it surface on the next cycle.
	siteB, _ := grid.Resource("login.siteb.example.org")
	siteB.AddOutage(gridsim.Outage{
		Service: "gram-gatekeeper",
		From:    clock.Now(), To: clock.Now().Add(time.Hour),
		Reason: "gatekeeper crashed",
	})
	core.DriveAgents(clock, agents, clock.Now().Add(time.Minute))
	status, err = agreement.Evaluate(ag, d.Cache(), clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter injecting a gatekeeper outage at siteB:")
	for _, rs := range status.Resources {
		for _, f := range rs.Failures() {
			fmt.Printf("  %s: %s failed: %s\n", rs.Resource, f.Test, f.Detail)
		}
	}
}
