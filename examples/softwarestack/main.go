// Softwarestack: the software stack validation use case (paper Section
// 2.1) — "Inca can be used to verify that the installation of new software
// and updates does not interfere with the existing environment."
//
// A site administrator upgrades hdf5 on one resource. The upgrade installs
// a version that satisfies the agreement but silently breaks the library's
// unit test; the next verification cycle catches it before users do. The
// administrator rolls forward with a fixed build and the resource goes
// green again.
//
//	go run ./examples/softwarestack
package main

import (
	"fmt"
	"log"
	"time"

	"inca/internal/consumer"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/gridsim"
)

func main() {
	gridOpt := gridsim.TeraGridOptions{
		InstallTime: time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC),
		// Quiet grid: the only failures are the ones this scenario injects.
	}
	d, err := core.NewTeraGridDeployment(core.Options{
		Seed:  7,
		Grid:  &gridOpt,
		Cache: depot.NewDOMCache(),
	})
	if err != nil {
		log.Fatal(err)
	}
	start := d.Clock.Now()
	const victim = "tg-login1.sdsc.teragrid.org"
	res, _ := d.Grid.Resource(victim)

	show := func(label string) {
		status, err := d.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (virtual time %s)\n", label, d.Clock.Now().Format("Jan 2 15:04"))
		for _, rs := range status.Resources {
			if rs.Resource != victim {
				continue
			}
			total := rs.Total()
			fmt.Printf("%s: %d pass, %d fail (%.0f%%)\n", rs.Resource, total.Pass, total.Fail, total.Percent())
			for _, f := range rs.Failures() {
				fmt.Printf("  FAIL %-28s %s\n", f.Test, f.Detail)
			}
		}
		fmt.Println()
	}

	// Baseline: an hour of data collection, everything green.
	d.RunUntil(start.Add(time.Hour+time.Minute), 0, nil)
	show("baseline after install")

	// The upgrade: hdf5 1.6.2 → 1.6.3, but the new build is broken.
	upgradeAt := d.Clock.Now()
	res.InstallPackage("hdf5", "1.6.3", upgradeAt)
	if err := res.BreakPackage("hdf5", upgradeAt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf(">>> admin upgrades hdf5 to 1.6.3 on %s — build is silently broken\n\n", victim)

	// The next hourly cycle detects it.
	d.RunUntil(upgradeAt.Add(time.Hour+time.Minute), 0, nil)
	show("after upgrade — regression caught by the unit test reporter")

	// The fix: a working 1.6.3 build.
	fixAt := d.Clock.Now()
	res.InstallPackage("hdf5", "1.6.3", fixAt)
	fmt.Printf(">>> admin reinstalls a fixed hdf5 1.6.3 build\n\n")
	d.RunUntil(fixAt.Add(time.Hour+time.Minute), 0, nil)
	show("after fix")

	// The stack view shows the whole VO's hdf5 column.
	status, err := d.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("software stack status across the VO:")
	fmt.Print(consumer.StackViewText(status))
}
