module inca

go 1.22
