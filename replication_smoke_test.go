package inca_test

// Multi-process replication smoke test (DESIGN.md §5i): a -federate
// router with a -replicate follower behind one shard, all real processes
// over real TCP. The test streams reports through the router, captures
// the federated /reports body, SIGKILLs the replicated shard's primary,
// promotes the follower via /federation/leave, and asserts the federated
// /reports body comes back byte-identical — zero stored-report loss
// across the failover — with a clean custody ledger on /debug/vars.
//
// Gated behind INCA_REPLICATION_SMOKE=1 and run by `make
// replication-smoke` (part of `make check`).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/federation"
	"inca/internal/loadgen"
	"inca/internal/query"
	"inca/internal/wire"
)

var (
	replicationRE = regexp.MustCompile(`replication: (\d+) of \d+ shards have followers`)
	promotedRE    = regexp.MustCompile(`^promoted follower `)
)

func TestReplicationSmoke(t *testing.T) {
	if os.Getenv("INCA_REPLICATION_SMOKE") == "" {
		t.Skip("set INCA_REPLICATION_SMOKE=1 (make replication-smoke) to run the multi-process smoke test")
	}
	bin := filepath.Join(t.TempDir(), "inca-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/inca-server")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build inca-server: %v", err)
	}

	// Two primaries plus a follower for shard B — the shard we will kill.
	shardA := startSmokeProc(t, bin, "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	wireA := shardA.expectLine(t, wireAddrRE)
	httpA := shardA.expectLine(t, httpAddrRE)
	shardB := startSmokeProc(t, bin, "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	wireB := shardB.expectLine(t, wireAddrRE)
	httpB := shardB.expectLine(t, httpAddrRE)
	follower := startSmokeProc(t, bin, "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	wireF := follower.expectLine(t, wireAddrRE)
	httpF := follower.expectLine(t, httpAddrRE)

	router := startSmokeProc(t, bin,
		"-federate", fmt.Sprintf("%s/%s,%s/%s", wireA, httpA, wireB, httpB),
		"-replicate", fmt.Sprintf("-,%s/%s", wireF, httpF),
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	routerWire := router.expectLine(t, routerWireRE)
	if n := router.expectLine(t, replicationRE); n != "1" {
		t.Fatalf("router reports %s replicated shards, want 1", n)
	}
	routerHTTP := router.expectLine(t, routerHTTPRE)

	// Mirror the router's placement to know shard B's slice.
	ring := federation.NewRing([]string{wireA, wireB}, federation.RingOptions{})
	var all, ownedB []branch.ID
	for site := 0; site < 30; site++ {
		for probe := 0; probe < 3; probe++ {
			id := branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site))
			all = append(all, id)
			if ring.Owner(id) == wireB {
				ownedB = append(ownedB, id)
			}
		}
	}
	if len(ownedB) == 0 || len(ownedB) == len(all) {
		t.Fatalf("degenerate placement: shard B owns %d of %d branches", len(ownedB), len(all))
	}

	client := wire.NewBatchClient(routerWire, wire.BatchOptions{FlushInterval: 10 * time.Millisecond})
	defer client.Close()
	data := loadgen.MustPremadeReport(smokeReportLen)
	for _, id := range all {
		client.Enqueue(&wire.Message{Branch: id.String(), Hostname: "smoke", Report: data})
	}
	if err := client.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Wait for every report to be queryable, then pin the pre-kill body.
	// With follower reads on, shard B's slice is served by the follower,
	// so a complete body also proves the tee replicated every report.
	reportsURL := "http://" + routerHTTP + "/reports"
	want := len(all)
	deadline := time.Now().Add(20 * time.Second)
	var preKill []byte
	for {
		body, got, err := fetchReports(reportsURL)
		if err == nil && got == want {
			preKill = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pre-kill: federated /reports has %d of %d reports (err=%v)", got, want, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// SIGKILL shard B's primary — no drain, no goodbye — then keep
	// streaming its slice so messages pile up toward the dead process.
	if err := shardB.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill shard B: %v", err)
	}
	shardB.cmd.Wait()
	for _, id := range ownedB {
		client.Enqueue(&wire.Message{Branch: id.String(), Hostname: "smoke", Report: data})
	}
	if err := client.Drain(); err != nil {
		t.Fatalf("drain after kill: %v", err)
	}

	// /federation/leave sees the dead shard has a follower and promotes it
	// instead of shrinking the ring: no ranges move, the follower takes
	// over the slice, and the harvested queue is re-enqueued toward it.
	resp, err := http.Post("http://"+routerHTTP+"/federation/leave?shard="+wireB, "", nil)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d %s", resp.StatusCode, body)
	}
	if !promotedRE.Match(body) {
		t.Fatalf("leave of a replicated shard did not promote: %s", body)
	}
	t.Logf("leave: %s", body)

	// The federated /reports must converge back to the exact pre-kill
	// body: same reports, same bytes, nothing lost with the primary.
	deadline = time.Now().Add(20 * time.Second)
	for {
		got, _, err := fetchReports(reportsURL)
		if err == nil && bytes.Equal(got, preKill) {
			break
		}
		if time.Now().After(deadline) {
			n := -1
			if err == nil {
				if stored, perr := federation.ParseReports(got); perr == nil {
					n = len(stored)
				}
			}
			t.Fatalf("post-promotion /reports never matched the pre-kill body (%d reports, err=%v)", n, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The custody ledger must reconcile with zero silent drops.
	var vars query.FederatedVars
	vresp, err := http.Get("http://" + routerHTTP + "/debug/vars")
	if err != nil {
		t.Fatalf("debug vars: %v", err)
	}
	vbody, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	if err := json.Unmarshal(vbody, &vars); err != nil {
		t.Fatalf("debug vars: %v\n%s", err, vbody)
	}
	sent := uint64(len(all) + len(ownedB))
	if vars.Routed != sent {
		t.Errorf("routed = %d, want %d (every send was acked)", vars.Routed, sent)
	}
	if vars.Unroutable != 0 || vars.RerouteDropped != 0 {
		t.Errorf("silent loss: unroutable=%d reroute_dropped=%d", vars.Unroutable, vars.RerouteDropped)
	}
	if vars.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", vars.Promotions)
	}
	for _, s := range vars.PerShard {
		if s.Dropped != 0 || s.ReplicaDropped != 0 {
			t.Errorf("shard %s shed messages: dropped=%d replica_dropped=%d", s.Name, s.Dropped, s.ReplicaDropped)
		}
	}
}

func fetchReports(url string) ([]byte, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	stored, err := federation.ParseReports(body)
	if err != nil {
		return nil, 0, err
	}
	return body, len(stored), nil
}
