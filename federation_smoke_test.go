package inca_test

// Multi-process federation smoke test (DESIGN.md §5f): a real -federate
// router in front of two real shard processes over real TCP. One shard is
// killed mid-stream, the topology drops it via /federation/leave, and the
// test asserts every report the router accepted is queryable through the
// scatter-gather tier afterwards — the custody chain (router ack →
// per-shard batch client → harvest on leave → re-route) loses nothing.
//
// The test builds and spawns the inca-server binary, so it is gated
// behind INCA_FEDERATION_SMOKE=1 and run by `make federation-smoke`
// (part of `make check`) rather than on every plain `go test ./...`.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/federation"
	"inca/internal/loadgen"
	"inca/internal/wire"
)

// smokeProc is one spawned inca-server with a line-scanned stdout.
type smokeProc struct {
	cmd   *exec.Cmd
	lines chan string
}

func startSmokeProc(t *testing.T, bin string, args ...string) *smokeProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s %v: %v", bin, args, err)
	}
	p := &smokeProc{cmd: cmd, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // never block the child on a full buffer
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return p
}

// expectLine scans the process stdout until a line matches re, returning
// the first capture group.
func (p *smokeProc) expectLine(t *testing.T, re *regexp.Regexp) string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("process exited before printing %s", re)
			}
			if m := re.FindStringSubmatch(line); m != nil {
				return m[1]
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", re)
		}
	}
}

var (
	wireAddrRE     = regexp.MustCompile(`controller listening on ([^ ]+) `)
	httpAddrRE     = regexp.MustCompile(`querying interface on http://([^ ]+) `)
	routerWireRE   = regexp.MustCompile(`federation router listening on ([^ ]+) `)
	routerHTTPRE   = regexp.MustCompile(`federated querying interface on http://([^ ]+) `)
	smokeReportLen = 851
)

func TestFederationSmoke(t *testing.T) {
	if os.Getenv("INCA_FEDERATION_SMOKE") == "" {
		t.Skip("set INCA_FEDERATION_SMOKE=1 (make federation-smoke) to run the multi-process smoke test")
	}
	bin := filepath.Join(t.TempDir(), "inca-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/inca-server")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build inca-server: %v", err)
	}

	// Two shard depots, each a full inca-server on ephemeral ports.
	shardA := startSmokeProc(t, bin, "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	wireA := shardA.expectLine(t, wireAddrRE)
	httpA := shardA.expectLine(t, httpAddrRE)
	shardB := startSmokeProc(t, bin, "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	wireB := shardB.expectLine(t, wireAddrRE)
	httpB := shardB.expectLine(t, httpAddrRE)

	// The federation router in front of them, a third process.
	router := startSmokeProc(t, bin,
		"-federate", fmt.Sprintf("%s/%s,%s/%s", wireA, httpA, wireB, httpB),
		"-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	routerWire := router.expectLine(t, routerWireRE)
	routerHTTP := router.expectLine(t, routerHTTPRE)

	// Mirror the router's placement locally to know which shard owns what.
	ring := federation.NewRing([]string{wireA, wireB}, federation.RingOptions{})
	var ownedA, ownedB []branch.ID
	for site := 0; site < 30; site++ {
		for probe := 0; probe < 3; probe++ {
			id := branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site))
			if ring.Owner(id) == wireA {
				ownedA = append(ownedA, id)
			} else {
				ownedB = append(ownedB, id)
			}
		}
	}
	if len(ownedA) == 0 || len(ownedB) == 0 {
		t.Fatalf("degenerate placement: %d/%d branches on shard A/B", len(ownedA), len(ownedB))
	}

	client := wire.NewBatchClient(routerWire, wire.BatchOptions{FlushInterval: 10 * time.Millisecond})
	defer client.Close()
	data := loadgen.MustPremadeReport(smokeReportLen)
	send := func(ids []branch.ID) {
		for _, id := range ids {
			client.Enqueue(&wire.Message{Branch: id.String(), Hostname: "smoke", Report: data})
		}
	}

	// Phase 1: stream shard A's share and let it settle end to end.
	send(ownedA)
	if err := client.Drain(); err != nil {
		t.Fatalf("drain phase 1: %v", err)
	}

	// Kill shard B mid-stream, then keep streaming its share. The router
	// still owns those ranges, so the messages pile up in B's batch client
	// — written but never acknowledged, or queued behind the dead
	// connection.
	if err := shardB.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill shard B: %v", err)
	}
	shardB.cmd.Wait()
	send(ownedB)
	if err := client.Drain(); err != nil {
		t.Fatalf("drain phase 2: %v", err)
	}

	// Drop B from the topology. Leave harvests every message queued toward
	// the dead shard and re-enqueues it through the shrunken ring.
	resp, err := http.Post("http://"+routerHTTP+"/federation/leave?shard="+wireB, "", nil)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d %s", resp.StatusCode, body)
	}
	t.Logf("leave: %s", body)

	// Every accepted report must be visible through the scatter-gather
	// tier. Delivery of the re-routed messages is asynchronous, so poll.
	want := len(ownedA) + len(ownedB)
	deadline := time.Now().Add(20 * time.Second)
	for {
		got, err := fetchStoredCount("http://" + routerHTTP + "/reports")
		if err == nil && got == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after shard kill + leave: federated /reports has %d of %d reports (err=%v)", got, want, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetchStoredCount(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	stored, err := federation.ParseReports(body)
	if err != nil {
		return 0, err
	}
	return len(stored), nil
}
