package inca_test

// Every committed BENCH_<id>.json must stay readable by the shared
// results tooling: strict schema, finite numbers, ordered percentiles.
// This runs ungated on every `go test ./...` — it only reads files.

import (
	"path/filepath"
	"testing"

	"inca/internal/experiments"
)

func TestCommittedBenchArtifactsMatchSchema(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed BENCH_*.json artifacts")
	}
	for _, path := range paths {
		rf, err := experiments.ValidateResultFile(path)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		want := "BENCH_" + rf.ID + ".json"
		if filepath.Base(path) != want {
			t.Errorf("%s: file name does not match result id %q (want %s)", path, rf.ID, want)
		}
	}
}

// The committed capacity artifact carries a stronger contract: at least
// five strictly increasing ramp stages and a detected saturation knee,
// for the single-depot and the federated topology both.
func TestCommittedLoadArtifactContract(t *testing.T) {
	rf, err := experiments.ValidateResultFile("BENCH_load.json")
	if err != nil {
		t.Fatalf("BENCH_load.json must be committed and schema-clean: %v", err)
	}
	if err := experiments.ValidateLoadResult(rf, 5, "single", "federated"); err != nil {
		t.Fatal(err)
	}
}
