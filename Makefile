GO ?= go

.PHONY: check fmt vet build test chaos metrics-smoke bench-smoke bench-query bench-archive

# The full gate: formatting, static checks, build, race-enabled tests,
# the fault-injection suite, the telemetry smoke, and a one-iteration
# smoke of the parallel ingest benchmark tier.
check: fmt vet build test chaos metrics-smoke bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Fault-injection suite (DESIGN.md §5d): chaos-proxy tests proving zero
# report loss across resets, stalled acks, and controller restarts, plus
# the spool's reliable-sink tests, all under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestSpool|TestReliableSink' -count=1 ./internal/wire/ ./internal/agent/

# Telemetry gate (DESIGN.md §5e): drive the full pipeline with one shared
# registry and lint the /metrics exposition for every stage's instruments.
metrics-smoke:
	$(GO) test -race -run TestMetricsSmoke -count=1 .

bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkIngestParallel4|BenchmarkArchiveParallel4' -benchtime=1x .

# Read-path tier: parallel Query throughput, stream vs indexed cache.
bench-query:
	$(GO) test -run=NONE -bench=BenchmarkQueryParallel -benchtime=1s .

# Archive tier: parallel Store throughput over the archival pipeline —
# global-mutex DOM baseline vs sharded streaming extraction vs async workers.
bench-archive:
	$(GO) test -run=NONE -bench=BenchmarkArchiveParallel -benchtime=1s .
