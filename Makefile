GO ?= go

.PHONY: check fmt vet build test chaos metrics-smoke federation-smoke replication-smoke storage-smoke feed-smoke load-smoke bench-smoke bench-query bench-archive bench-federation bench-storage bench-feed bench-replication bench-load

# The full gate: formatting, static checks, build, race-enabled tests,
# the fault-injection suite, the telemetry smoke, the multi-process
# federation, storage, feed and load smokes, and a one-iteration smoke
# of the parallel ingest benchmark tier.
check: fmt vet build test chaos metrics-smoke federation-smoke replication-smoke storage-smoke feed-smoke load-smoke bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Fault-injection suite (DESIGN.md §5d): chaos-proxy tests proving zero
# report loss across resets, stalled acks, and controller restarts, plus
# the spool's reliable-sink tests, all under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestSpool|TestReliableSink' -count=1 ./internal/wire/ ./internal/agent/

# Telemetry gate (DESIGN.md §5e): drive the full pipeline with one shared
# registry and lint the /metrics exposition for every stage's instruments.
metrics-smoke:
	$(GO) test -race -run TestMetricsSmoke -count=1 .

# Federation gate (DESIGN.md §5f): a real -federate router in front of two
# real shard processes over TCP; one shard is killed mid-stream and the
# test proves every accepted report survives the re-route.
federation-smoke:
	INCA_FEDERATION_SMOKE=1 $(GO) test -race -run TestFederationSmoke -count=1 .

# Replication gate (DESIGN.md §5i): a -federate router with a -replicate
# follower behind one shard; the primary is SIGKILLed and the follower
# promoted via /federation/leave — the federated /reports must come back
# byte-identical with a zero-loss custody ledger.
replication-smoke:
	INCA_REPLICATION_SMOKE=1 $(GO) test -race -run TestReplicationSmoke -count=1 .

# Storage gate (DESIGN.md §5g): a real -storage disk server SIGKILLed
# twice (after a clean drain and mid-stream) with its WAL tail torn,
# restarted, and checkpointed — no acknowledged report or archive may be
# lost, and the torn tail must be truncated.
storage-smoke:
	INCA_STORAGE_SMOKE=1 $(GO) test -race -run TestStorageSmoke -count=1 .

# Feed gate (DESIGN.md §5h): a real inca-server and real inca-consumer
# -subscribe processes over TCP; the subscriber is killed mid-stream and
# a successor resumes from its cursor — every generation must be observed
# exactly once (changes or one catch-up snapshot, no gaps, no replays)
# and the pushed state must hash identically to the polled /cache.
feed-smoke:
	INCA_FEED_SMOKE=1 $(GO) test -race -run TestFeedSmoke -count=1 .

# Capacity gate (DESIGN.md §5j): the closed-loop load harness against a
# real spawned inca-server — a short single-mode ramp over real TCP that
# must complete all stages and detect the saturation knee, with the
# result round-tripped through the shared BENCH_*.json schema.
load-smoke:
	INCA_LOAD_SMOKE=1 $(GO) test -race -run TestLoadSmoke -count=1 .

bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkIngestParallel4|BenchmarkArchiveParallel4' -benchtime=1x .

# Read-path tier: parallel Query throughput, stream vs indexed cache.
bench-query:
	$(GO) test -run=NONE -bench=BenchmarkQueryParallel -benchtime=1s .

# Archive tier: parallel Store throughput over the archival pipeline —
# global-mutex DOM baseline vs sharded streaming extraction vs async workers.
bench-archive:
	$(GO) test -run=NONE -bench=BenchmarkArchiveParallel -benchtime=1s .

# Federation tier (DESIGN.md §5f): ingest and owner-routed query scaling
# at 1/2/4/8 shards against the single-depot baseline, with the
# machine-readable result written to BENCH_federation.json.
bench-federation:
	$(GO) run ./cmd/inca-bench -experiment federation -json .

# Storage tier (DESIGN.md §5g): memory vs disk engine across report
# ingest, archive updates at 10k/100k series (with the heap staying flat
# on disk), and restart recovery (WAL replay vs checkpoint vs snapshot);
# machine-readable result written to BENCH_storage.json.
bench-storage:
	$(GO) run ./cmd/inca-bench -experiment storage -json .

# Consumer tier (DESIGN.md §5h): N conditional pollers vs N /feed
# subscribers at 1..1024 consumers over real TCP — query-tier request
# rate and store-to-observe propagation percentiles, written to
# BENCH_feed.json.
bench-feed:
	$(GO) run ./cmd/inca-bench -experiment feed -json .

# Replication tier (DESIGN.md §5i): ingest overhead of the follower tee
# against the unreplicated router, and failover drain latency
# (promote + re-enqueue + redeliver); written to BENCH_replication.json.
bench-replication:
	$(GO) run ./cmd/inca-bench -experiment replication -json .

# Capacity tier (DESIGN.md §5j): the full DiPerF-style ramp — six stages
# of closed-loop clients against a spawned single-depot server and a
# 4-shard federated router, knee detection included; machine-readable
# curve written to BENCH_load.json.
bench-load:
	$(GO) run ./cmd/inca-bench -experiment load -json .
