// Package inca_test holds the benchmark harness: one testing.B benchmark
// per paper table/figure (regenerating the measured quantity), plus the
// design-choice ablations DESIGN.md §5 calls out. cmd/inca-bench prints the
// full formatted artifacts; these benchmarks time their hot paths.
package inca_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"inca/internal/agent"
	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/catalog"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/experiments"
	"inca/internal/federation"
	"inca/internal/gridsim"
	"inca/internal/loadgen"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/rrd"
	"inca/internal/schedule"
	"inca/internal/simtime"
)

var benchStart = time.Date(2004, 6, 29, 0, 0, 0, 0, time.UTC)

// --- Table 1: reporter script rendering ---

func BenchmarkTable1ReporterRender(b *testing.B) {
	g := gridsim.NewTeraGrid(1, gridsim.TeraGridOptions{InstallTime: benchStart})
	reporters := experiments.DistinctReporters(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, r := range reporters {
			total += catalog.ScriptLines(r)
		}
		if total == 0 {
			b.Fatal("no lines rendered")
		}
	}
}

// --- Table 2: specification-file construction ---

func BenchmarkTable2DeploymentBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := core.NewTeraGridDeployment(core.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if d.TotalSeries() != 1060 {
			b.Fatalf("series = %d", d.TotalSeries())
		}
	}
}

// --- Table 4 / Figure 8: one hour of full-deployment operation ---

func BenchmarkTable4DeploymentHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := core.NewTeraGridDeployment(core.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d.RunUntil(d.Clock.Now().Add(time.Hour), 0, nil)
		if got, _, _ := d.Controller.Counters(); got != 1060 {
			b.Fatalf("accepted = %d", got)
		}
	}
}

// --- Figure 5: evaluation + availability snapshot over a populated cache ---

func BenchmarkFig5SnapshotCycle(b *testing.B) {
	d, err := core.NewTeraGridDeployment(core.Options{Seed: 1, Availability: true})
	if err != nil {
		b.Fatal(err)
	}
	d.RunUntil(d.Clock.Now().Add(time.Hour+time.Minute), 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Clock.Advance(10 * time.Minute)
		if _, err := d.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: bandwidth measurement + archive update ---

func BenchmarkFig6BandwidthMeasurement(b *testing.B) {
	g := gridsim.NewTeraGrid(1, gridsim.TeraGridOptions{InstallTime: benchStart.Add(-24 * time.Hour)})
	src, _ := g.Resource("tg-login1.sdsc.teragrid.org")
	probe := &catalog.BandwidthReporter{Grid: g, Source: src,
		DestHost: "tg-login1.caltech.teragrid.org", Tool: catalog.Pathload}
	d := depot.New(depot.NewStreamCache())
	if err := d.AddPolicy(depot.Policy{
		Name: "bw", Path: "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 30 * 24 * time.Hour},
	}); err != nil {
		b.Fatal(err)
	}
	id := core.BranchFor(probe.Name(), src.Host, "SDSC")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := benchStart.Add(time.Duration(i+1) * time.Hour)
		rep := probe.Run(&reporter.Context{Hostname: src.Host, Now: at})
		data, err := report.Marshal(rep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Store(id, data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: agent execution + usage sampling ---

func BenchmarkFig7AgentHour(b *testing.B) {
	grid := gridsim.NewTeraGrid(1, gridsim.DefaultTeraGridOptions(benchStart.Add(-30*24*time.Hour)))
	res, _ := grid.Resource("tg-login1.caltech.teragrid.org")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clock := simtime.NewSim(benchStart)
		spec, err := core.BuildSpec(grid, res, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		a, err := agent.New(spec, clock, agent.SinkFunc(func(branch.ID, string, []byte) error { return nil }), agent.Simulated)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		target := benchStart.Add(time.Hour)
		for {
			next, ok := a.Scheduler().NextFire()
			if !ok || next.After(target) {
				break
			}
			clock.AdvanceTo(next)
			a.Scheduler().RunPending()
			a.UsageAt(clock.Now())
		}
	}
}

// --- Figure 9: steady-state depot updates per cache size × report size ---

func benchmarkFig9Cell(b *testing.B, cacheBytes, reportSize int) {
	cache := depot.NewStreamCache()
	if _, err := loadgen.FillToSize(loadgen.CacheStore{Cache: cache}, cacheBytes, 9257); err != nil {
		b.Fatal(err)
	}
	d := depot.New(cache)
	ctl := controller.New(d, controller.Options{Mode: envelope.Body})
	data := loadgen.MustPremadeReport(reportSize)
	id := branch.MustParse(fmt.Sprintf("slot=bench,size=s%d,vo=synthetic", reportSize))
	if _, err := ctl.Submit(id, "bench", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(reportSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Submit(id, "bench", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Insert(b *testing.B) {
	for _, cacheBytes := range []int{928 * 1024, 5400 * 1024} {
		for _, reportSize := range loadgen.PaperReportSizes {
			b.Run(fmt.Sprintf("cache=%dKB/report=%dB", cacheBytes/1024, reportSize), func(b *testing.B) {
				benchmarkFig9Cell(b, cacheBytes, reportSize)
			})
		}
	}
}

// --- Ablation: SOAP body vs attachment envelope (paper §5.2.2 fix) ---

func benchmarkEnvelopeDecode(b *testing.B, mode envelope.Mode) {
	id := branch.MustParse("slot=bench,vo=synthetic")
	data, err := envelope.Encode(mode, id, loadgen.MustPremadeReport(45527))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := envelope.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if len(env.Report) != 45527 {
			b.Fatal("payload lost")
		}
	}
}

func BenchmarkEnvelopeBodyDecode(b *testing.B)       { benchmarkEnvelopeDecode(b, envelope.Body) }
func BenchmarkEnvelopeAttachmentDecode(b *testing.B) { benchmarkEnvelopeDecode(b, envelope.Attachment) }

// --- Ablation: cache designs (single stream vs split vs DOM vs generic SAX) ---

func benchmarkCacheUpdate(b *testing.B, mk func() depot.Cache) {
	cache := mk()
	if _, err := loadgen.FillToSize(loadgen.CacheStore{Cache: cache}, 1500*1024, 9257); err != nil {
		b.Fatal(err)
	}
	data := loadgen.MustPremadeReport(9257)
	id := branch.MustParse("slot=bench,size=s9257,vo=synthetic")
	if _, err := cache.Update(id, data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Update(id, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheUpdateStream(b *testing.B) {
	benchmarkCacheUpdate(b, func() depot.Cache { return depot.NewStreamCache() })
}

func BenchmarkCacheUpdateStreamGenericSAX(b *testing.B) {
	benchmarkCacheUpdate(b, func() depot.Cache { return depot.NewStreamCacheGeneric() })
}

func BenchmarkCacheUpdateSplit(b *testing.B) {
	benchmarkCacheUpdate(b, func() depot.Cache { return depot.NewSplitCacheDepth(2) })
}

func BenchmarkCacheUpdateDOM(b *testing.B) {
	benchmarkCacheUpdate(b, func() depot.Cache { return depot.NewDOMCache() })
}

// --- Ablation: randomized vs aligned reporter placement (§3.1.3) ---

func benchmarkSchedulePlacement(b *testing.B, randomized bool) {
	// Metric of interest: the worst per-minute burst the controller sees.
	// Reported via b.ReportMetric; the timed work is schedule computation.
	rng := rand.New(rand.NewSource(5))
	specs := make([]*schedule.Spec, 128)
	for i := range specs {
		if randomized {
			specs[i] = schedule.MustEvery(time.Hour, rng)
		} else {
			specs[i] = schedule.MustParseCron("0 * * * *")
		}
	}
	worst := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perMinute := make(map[int]int)
		t := benchStart
		for _, s := range specs {
			next := s.Next(t)
			perMinute[next.Minute()]++
		}
		for _, n := range perMinute {
			if n > worst {
				worst = n
			}
		}
	}
	b.ReportMetric(float64(worst), "worst-burst/min")
}

func BenchmarkPlacementRandomized(b *testing.B) { benchmarkSchedulePlacement(b, true) }
func BenchmarkPlacementAligned(b *testing.B)    { benchmarkSchedulePlacement(b, false) }

// --- Ablation: dependency-aware vs independent scheduling (§6 future work) ---

func BenchmarkSchedulerDependencyBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simtime.NewSim(benchStart)
		s := schedule.NewScheduler(sim)
		spec := schedule.MustParseCron("0 * * * *")
		prev := ""
		for j := 0; j < 50; j++ {
			name := fmt.Sprintf("e%02d", j)
			var deps []string
			if prev != "" {
				deps = []string{prev}
			}
			if err := s.Add(&schedule.Entry{Name: name, Spec: spec, DependsOn: deps,
				Action: func(time.Time) error { return nil }}); err != nil {
				b.Fatal(err)
			}
			prev = name
		}
		next, _ := s.NextFire()
		sim.AdvanceTo(next)
		if ran := s.RunPending(); ran != 50 {
			b.Fatalf("ran = %d", ran)
		}
	}
}

// --- Component benchmarks ---

func BenchmarkReportMarshal(b *testing.B) {
	r := report.New("grid.network.pathload", "1.0", "h", benchStart)
	r.Body = report.Branch("metric", "bandwidth",
		report.Branch("statistic", "lowerBound", report.Leaf("value", "984.99"), report.Leaf("units", "Mbps")),
		report.Branch("statistic", "upperBound", report.Leaf("value", "998.67"), report.Leaf("units", "Mbps")),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReportParse(b *testing.B) {
	data := loadgen.MustPremadeReport(9257)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := report.Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRRDUpdate(b *testing.B) {
	db, err := rrd.NewFromPolicy(benchStart, "v", rrd.ArchivalPolicy{
		Step: time.Minute, Granularity: 5, History: 7 * 24 * time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Update(benchStart.Add(time.Duration(i+1)*time.Minute), float64(i%100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCronNext(b *testing.B) {
	s := schedule.MustParseCron("5-59/10 8-18 * * mon-fri")
	t := benchStart
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = s.Next(t)
		if t.IsZero() {
			b.Fatal("spec exhausted")
		}
	}
}

func BenchmarkAgreementEvaluate(b *testing.B) {
	d, err := core.NewTeraGridDeployment(core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d.RunUntil(d.Clock.Now().Add(time.Hour+time.Minute), 0, nil)
	ag := agreement.TeraGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, err := agreement.Evaluate(ag, d.Depot.Cache(), d.Clock.Now())
		if err != nil {
			b.Fatal(err)
		}
		if status.PiecesVerified() < 900 {
			b.Fatalf("pieces = %d", status.PiecesVerified())
		}
	}
}

// --- Ablation: single vs distributed depot (§6 "distributing the depot") ---

func benchmarkDepotTopology(b *testing.B, shards int) {
	var backends []controller.DepotClient
	for i := 0; i < shards; i++ {
		backends = append(backends, depot.New(depot.NewStreamCache()))
	}
	var client controller.DepotClient
	if shards == 1 {
		client = backends[0]
	} else {
		s, err := controller.NewShardedDepot(backends, 2)
		if err != nil {
			b.Fatal(err)
		}
		client = s
	}
	ctl := controller.New(client, controller.Options{Mode: envelope.Attachment})
	data := loadgen.MustPremadeReport(9257)
	// Pre-fill: 40 sites' worth of data (~1060 entries spread by site).
	for site := 0; site < 40; site++ {
		for probe := 0; probe < 26; probe++ {
			id := branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site))
			if _, err := ctl.Submit(id, "h", data); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", i%26, i%40))
		if _, err := ctl.Submit(id, "h", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepotSingle(b *testing.B)       { benchmarkDepotTopology(b, 1) }
func BenchmarkDepotDistributed4(b *testing.B) { benchmarkDepotTopology(b, 4) }

// --- Parallel ingest tier: concurrent submitters against a sharded cache ---
//
// The serial Fig 9 benches above measure one submitter against one
// document; these measure the concurrent ingest path the sharded cache
// exists for. The win has two sources: per-shard locks remove contention
// between submitters, and each shard's document is ~1/N the size, so the
// splice each insert pays (linear in document size, §5.2.1) shrinks by
// the shard count even on a single core.

func benchmarkIngestParallel(b *testing.B, shards int) {
	var cache depot.Cache
	if shards == 1 {
		cache = depot.NewStreamCache()
	} else {
		cache = depot.NewShardedCacheDepth(shards, 2)
	}
	d := depot.New(cache)
	// MaxResponses keeps the response log from growing with b.N.
	ctl := controller.New(d, controller.Options{Mode: envelope.Attachment, MaxResponses: 1024})
	data := loadgen.MustPremadeReport(9257)
	// Same population as the depot topology benches: 40 sites × 26 probes.
	ids := make([]branch.ID, 0, 40*26)
	for site := 0; site < 40; site++ {
		for probe := 0; probe < 26; probe++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site)))
		}
	}
	for _, id := range ids {
		if _, err := ctl.Submit(id, "h", data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			if _, err := ctl.Submit(ids[i%len(ids)], "h", data); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "reports/sec")
		b.ReportMetric(float64(b.N)*float64(len(data))/sec, "bytes/sec")
	}
}

func BenchmarkIngestParallel1(b *testing.B)  { benchmarkIngestParallel(b, 1) }
func BenchmarkIngestParallel4(b *testing.B)  { benchmarkIngestParallel(b, 4) }
func BenchmarkIngestParallel16(b *testing.B) { benchmarkIngestParallel(b, 16) }

func BenchmarkCacheUpdateFileWriteThrough(b *testing.B) {
	dir := b.TempDir()
	benchmarkCacheUpdate(b, func() depot.Cache {
		fc, err := depot.OpenFileCache(dir + "/cache.xml")
		if err != nil {
			b.Fatal(err)
		}
		return fc
	})
}

func BenchmarkAgreementEvaluateMemoized(b *testing.B) {
	// The §3.2.3 "optimized for common queries" path: repeated verification
	// cycles over a mostly-unchanged cache reuse parsed reports.
	d, err := core.NewTeraGridDeployment(core.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d.RunUntil(d.Clock.Now().Add(time.Hour+time.Minute), 0, nil)
	ev := agreement.NewEvaluator(agreement.TeraGrid())
	if _, err := ev.Evaluate(d.Depot.Cache(), d.Clock.Now()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, err := ev.Evaluate(d.Depot.Cache(), d.Clock.Now())
		if err != nil {
			b.Fatal(err)
		}
		if status.PiecesVerified() < 900 {
			b.Fatalf("pieces = %d", status.PiecesVerified())
		}
	}
}

// --- Read-path tier: concurrent consumers against the indexed cache ---
//
// The ingest benches above measure writers; these measure the read side
// the IndexedCache exists for. StreamCache answers an exact-branch Query
// by SAX-scanning the whole document (O(document) per query, readers
// serialized behind the document lock for the scan's duration);
// IndexedCache resolves the branch through its index and serializes only
// the requested subtree (O(report)), so readers scale with cores and
// stay flat as the cache grows.

func queryBenchIDs() []branch.ID {
	ids := make([]branch.ID, 0, 40*26)
	for site := 0; site < 40; site++ {
		for probe := 0; probe < 26; probe++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site)))
		}
	}
	return ids
}

func benchmarkQueryParallel(b *testing.B, mk func() depot.Cache, parallelism int) {
	cache := mk()
	data := loadgen.MustPremadeReport(9257)
	ids := queryBenchIDs() // ~1k reports, the paper's deployed-cache scale
	for _, id := range ids {
		if _, err := cache.Update(id, data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetParallelism(parallelism)
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			sub, ok, err := cache.Query(ids[i%len(ids)])
			if err != nil || !ok || len(sub) == 0 {
				b.Errorf("query: ok=%v err=%v", ok, err)
				return
			}
		}
	})
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "queries/sec")
	}
}

func BenchmarkQueryParallel1(b *testing.B) {
	b.Run("stream", func(b *testing.B) {
		benchmarkQueryParallel(b, func() depot.Cache { return depot.NewStreamCache() }, 1)
	})
	b.Run("indexed", func(b *testing.B) {
		benchmarkQueryParallel(b, func() depot.Cache { return depot.NewIndexedCache() }, 1)
	})
}

func BenchmarkQueryParallel4(b *testing.B) {
	b.Run("stream", func(b *testing.B) {
		benchmarkQueryParallel(b, func() depot.Cache { return depot.NewStreamCache() }, 4)
	})
	b.Run("indexed", func(b *testing.B) {
		benchmarkQueryParallel(b, func() depot.Cache { return depot.NewIndexedCache() }, 4)
	})
}

func BenchmarkQueryParallel16(b *testing.B) {
	b.Run("stream", func(b *testing.B) {
		benchmarkQueryParallel(b, func() depot.Cache { return depot.NewStreamCache() }, 16)
	})
	b.Run("indexed", func(b *testing.B) {
		benchmarkQueryParallel(b, func() depot.Cache { return depot.NewIndexedCache() }, 16)
	})
}

// --- Archive tier: concurrent stores against the archive pipeline ---
//
// The ingest benches above bypass archival (no policies uploaded); these
// measure the store path with five matching policies — the paper's
// Section 3.2.2 archive phase. Three configurations: the pre-pipeline
// depot (one archive mutex, full DOM parse per matching store), the
// sharded depot with streaming extraction, and the async worker pool.
// Async cells drain before the timer stops, so deferred consolidation is
// charged to the measurement. The depot runs on NullCache so these
// benchmarks isolate the archival phase of Store — the cache phase has
// its own tier (BenchmarkIngestParallel*, BenchmarkCacheUpdate).

func benchmarkArchiveParallel(b *testing.B, opts depot.Options, parallelism int) {
	d := depot.NewWithOptions(depot.NullCache{}, opts)
	defer d.Close()
	for _, p := range experiments.ArchiveBenchPolicies() {
		if err := d.AddPolicy(p); err != nil {
			b.Fatal(err)
		}
	}
	ids := experiments.ArchiveBenchIDs(64)
	template, gmtOff := experiments.ArchiveBenchReport()
	b.SetBytes(int64(len(template)))
	b.SetParallelism(parallelism)
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			at := benchStart.Add(time.Duration(i/len(ids)+1) * time.Minute)
			data := experiments.ArchiveBenchStamp(template, gmtOff, at)
			if _, err := d.Store(ids[i%len(ids)], data); err != nil {
				b.Error(err)
				return
			}
		}
	})
	d.Drain()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "reports/sec")
	}
}

func benchmarkArchiveConfigs(b *testing.B, parallelism int) {
	b.Run("global-sync-dom", func(b *testing.B) {
		benchmarkArchiveParallel(b, depot.Options{ArchiveShards: 1, ParseArchive: true}, parallelism)
	})
	b.Run("sharded-sync", func(b *testing.B) {
		benchmarkArchiveParallel(b, depot.Options{}, parallelism)
	})
	b.Run("sharded-async", func(b *testing.B) {
		benchmarkArchiveParallel(b, depot.Options{AsyncArchive: true}, parallelism)
	})
}

func BenchmarkArchiveParallel1(b *testing.B)  { benchmarkArchiveConfigs(b, 1) }
func BenchmarkArchiveParallel4(b *testing.B)  { benchmarkArchiveConfigs(b, 4) }
func BenchmarkArchiveParallel16(b *testing.B) { benchmarkArchiveConfigs(b, 16) }

// --- disk storage engine: the same archive tier over paged files + WAL ---
//
// Identical workload to benchmarkArchiveParallel's sharded-sync cell, but
// the depot runs on the disk engine (DESIGN.md §5g): every store appends a
// WAL frame and consolidation lands in paged archive files. OpenFiles is
// sized so the working set (64 branches x 5 policies = 320 archives) stays
// inside the handle LRU — the steady-state configuration, not the
// eviction-thrash one.

func benchmarkDiskArchiveParallel(b *testing.B, parallelism int) {
	d, err := depot.OpenDisk(depot.DiskOptions{
		Cache: depot.NullCache{}, Dir: b.TempDir(), OpenFiles: 512,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	for _, p := range experiments.ArchiveBenchPolicies() {
		if err := d.AddPolicy(p); err != nil {
			b.Fatal(err)
		}
	}
	ids := experiments.ArchiveBenchIDs(64)
	template, gmtOff := experiments.ArchiveBenchReport()
	b.SetBytes(int64(len(template)))
	b.SetParallelism(parallelism)
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			at := benchStart.Add(time.Duration(i/len(ids)+1) * time.Minute)
			data := experiments.ArchiveBenchStamp(template, gmtOff, at)
			if _, err := d.Store(ids[i%len(ids)], data); err != nil {
				b.Error(err)
				return
			}
		}
	})
	d.Drain()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "reports/sec")
	}
}

func BenchmarkDiskArchiveParallel1(b *testing.B)  { benchmarkDiskArchiveParallel(b, 1) }
func BenchmarkDiskArchiveParallel4(b *testing.B)  { benchmarkDiskArchiveParallel(b, 4) }
func BenchmarkDiskArchiveParallel16(b *testing.B) { benchmarkDiskArchiveParallel(b, 16) }

// --- federated multi-depot scaling (DESIGN.md §5f) ---

// benchmarkFederatedIngest drives the full controller → envelope → depot
// path against N shard depots partitioned by the production
// consistent-hash ring (the same placement a -federate router computes).
// Near-linear reports/sec scaling with the shard count is the federation
// tentpole's perf target: each shard's canonical document is ~1/N the
// size, so the splice every insert pays shrinks with N.
func benchmarkFederatedIngest(b *testing.B, shards int) {
	depots, ring := experiments.NewFederatedDepots(shards)
	backends := make([]controller.DepotClient, len(depots))
	for i, d := range depots {
		backends[i] = d
	}
	var dc controller.DepotClient
	if shards == 1 {
		dc = backends[0]
	} else {
		sd, err := controller.NewShardedDepotFunc(backends, ring.OwnerIndex)
		if err != nil {
			b.Fatal(err)
		}
		dc = sd
	}
	ctl := controller.New(dc, controller.Options{Mode: envelope.Attachment, MaxResponses: 1024})
	data := loadgen.MustPremadeReport(9257)
	ids := experiments.FederationIDs()
	for _, id := range ids {
		if _, err := ctl.Submit(id, "h", data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			if _, err := ctl.Submit(ids[i%len(ids)], "h", data); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "reports/sec")
	}
}

func BenchmarkFederatedIngest1(b *testing.B) { benchmarkFederatedIngest(b, 1) }
func BenchmarkFederatedIngest2(b *testing.B) { benchmarkFederatedIngest(b, 2) }
func BenchmarkFederatedIngest4(b *testing.B) { benchmarkFederatedIngest(b, 4) }
func BenchmarkFederatedIngest8(b *testing.B) { benchmarkFederatedIngest(b, 8) }

// benchmarkFederatedQuery measures site-prefix Reports routed to the
// owning shard — the owner-forward path a deep federated request takes
// (the site prefix is exactly the ring's affinity key, so no fan-out and
// no merge). The scan each query pays is over a ~1/N document.
func benchmarkFederatedQuery(b *testing.B, shards int) {
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
	}
	ring := federation.NewRing(names, federation.RingOptions{})
	data := loadgen.MustPremadeReport(851)
	ids := make([]branch.ID, 0, 4000)
	for site := 0; site < 40; site++ {
		for probe := 0; probe < 100; probe++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%03d,site=s%02d,vo=tg", probe, site)))
		}
	}
	seeds := make([]*depot.IndexedCache, shards)
	for i := range seeds {
		seeds[i] = depot.NewIndexedCache()
	}
	for _, id := range ids {
		if _, err := seeds[ring.OwnerIndex(id)].Update(id, data); err != nil {
			b.Fatal(err)
		}
	}
	caches := make([]depot.Cache, shards)
	for i, seed := range seeds {
		c, err := depot.LoadDump(seed.Dump())
		if err != nil {
			b.Fatal(err)
		}
		caches[i] = c
	}
	prefixes := make([]branch.ID, 40)
	for site := 0; site < 40; site++ {
		prefixes[site] = branch.ID{}.Child("vo", "tg").Child("site", fmt.Sprintf("s%02d", site))
	}
	b.ResetTimer()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			prefix := prefixes[i%len(prefixes)]
			stored, err := caches[ring.OwnerIndex(prefix)].Reports(prefix)
			if err != nil {
				b.Error(err)
				return
			}
			if len(stored) == 0 {
				b.Errorf("reports %s: no data", prefix)
				return
			}
		}
	})
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "queries/sec")
	}
}

func BenchmarkFederatedQuery1(b *testing.B) { benchmarkFederatedQuery(b, 1) }
func BenchmarkFederatedQuery2(b *testing.B) { benchmarkFederatedQuery(b, 2) }
func BenchmarkFederatedQuery4(b *testing.B) { benchmarkFederatedQuery(b, 4) }
func BenchmarkFederatedQuery8(b *testing.B) { benchmarkFederatedQuery(b, 8) }
