package inca_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inca/internal/agent"
	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/query"
	"inca/internal/simtime"
	"inca/internal/wire"
)

// TestFullTopologyOverSockets exercises the complete Figure 3 deployment
// over real transports: two agents with authenticated wire connections to
// the centralized controller, which routes envelopes across two depot
// back ends served over HTTP; a data consumer then fetches the caches and
// evaluates the service agreement; finally, each depot snapshot survives a
// save/restore cycle.
func TestFullTopologyOverSockets(t *testing.T) {
	start := time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewSim(start)
	grid := core.DemoGrid(9, start.Add(-24*time.Hour))
	hosts := []string{"login.sitea.example.org", "login.siteb.example.org"}

	// Two depot back ends, each behind the HTTP web-service layer.
	var depots []*depot.Depot
	var backends []controller.DepotClient
	for i := 0; i < 2; i++ {
		d := depot.New(depot.NewStreamCache())
		srv := httptest.NewServer(query.NewServer(d).Handler())
		defer srv.Close()
		depots = append(depots, d)
		backends = append(backends, query.NewClient(srv.URL))
	}
	sharded, err := controller.NewShardedDepot(backends, 2) // vo + site
	if err != nil {
		t.Fatal(err)
	}

	// Centralized controller with allowlist + per-host keys, on TCP.
	keys := map[string][]byte{
		hosts[0]: []byte("key-sitea"),
		hosts[1]: []byte("key-siteb"),
	}
	ctl := controller.New(sharded, controller.Options{
		Allowlist: hosts,
		Keys:      keys,
		Mode:      envelope.Attachment,
		Now:       clock.Now,
	})
	tcpSrv, err := wire.Serve("127.0.0.1:0", ctl.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()

	// Agents: demo spec per host, signed wire sinks, every-minute cron.
	var agents []*agent.Agent
	for _, host := range hosts {
		spec, err := core.DemoSpec(grid, host, nil)
		if err != nil {
			t.Fatal(err)
		}
		sink := agent.NewWireSink(tcpSrv.Addr())
		sink.Key = keys[host]
		defer sink.Close()
		a, err := agent.New(spec, clock, sink, agent.Simulated)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}

	// Replay five virtual minutes.
	core.DriveAgents(clock, agents, start.Add(5*time.Minute))

	// Reports are distributed across both back ends (one per site with
	// depth-2 sharding on distinct hash buckets, or possibly both sites on
	// one — require all data present and shard-consistency).
	total := 0
	for _, d := range depots {
		total += d.Cache().Count()
	}
	wantSeries := agents[0].SeriesCount() + agents[1].SeriesCount()
	if total != wantSeries {
		t.Fatalf("cached %d entries, want %d", total, wantSeries)
	}
	accepted, rejected, errs := ctl.Counters()
	if rejected != 0 || errs != 0 {
		t.Fatalf("controller rejected=%d errs=%d", rejected, errs)
	}
	if accepted != wantSeries*5 {
		t.Fatalf("accepted %d, want %d (5 minutes of every-minute series)", accepted, wantSeries*5)
	}

	// An unsigned submission for a keyed host is refused at the wire.
	rogue := wire.NewClient(tcpSrv.Addr())
	defer rogue.Close()
	ack, err := rogue.Send(&wire.Message{Branch: "x=1", Hostname: hosts[0], Report: []byte("<r/>")})
	if err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("unsigned rogue submission accepted")
	}

	// Data consumer: merge both shards' caches and verify the agreement.
	merged := depot.NewStreamCache()
	for _, b := range backends {
		dump, err := b.(*query.Client).Cache("")
		if err != nil {
			t.Fatal(err)
		}
		partial, err := depot.LoadDump(dump)
		if err != nil {
			t.Fatal(err)
		}
		stored, err := partial.Reports(branch.ID{})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stored {
			if _, err := merged.Update(s.ID, s.XML); err != nil {
				t.Fatal(err)
			}
		}
	}
	ag := &agreement.Agreement{
		Name: "samplegrid agreement",
		VO:   "samplegrid",
		Packages: []agreement.PackageReq{
			{Name: "globus", Category: agreement.Grid, Version: agreement.Constraint{Op: ">=", Version: "2.4.0"}, UnitTest: true},
			{Name: "mpich", Category: agreement.Development, Version: agreement.Constraint{Op: "any"}},
		},
		Services: []agreement.ServiceReq{{Name: "gram-gatekeeper", Category: agreement.Grid, CrossSite: true}},
	}
	status, err := agreement.Evaluate(ag, merged, clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Resources) != 2 {
		t.Fatalf("evaluated %d resources", len(status.Resources))
	}
	for _, rs := range status.Resources {
		if fails := rs.Failures(); len(fails) != 0 {
			t.Fatalf("%s failures: %+v", rs.Resource, fails)
		}
	}
	summary := consumer.SummaryText(status)
	if !strings.Contains(summary, "100%") {
		t.Fatalf("summary:\n%s", summary)
	}

	// Snapshot round trip on each back end.
	for i, d := range depots {
		var buf bytes.Buffer
		if err := d.WriteSnapshot(&buf); err != nil {
			t.Fatalf("shard %d snapshot: %v", i, err)
		}
		back, err := depot.ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("shard %d restore: %v", i, err)
		}
		if back.Cache().Count() != d.Cache().Count() {
			t.Fatalf("shard %d: restored %d entries, want %d", i, back.Cache().Count(), d.Cache().Count())
		}
	}
}
