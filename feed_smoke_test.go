package inca_test

// Multi-process feed smoke test (DESIGN.md §5h): a real inca-server with
// its change feed enabled, and real inca-consumer -subscribe processes
// over real TCP. Consumer A catches up from an empty snapshot, observes
// ten stored generations as pushed change events, and is killed at its
// last cursor. Ten more reports land while nobody is subscribed; consumer
// B then resumes from A's cursor and must catch up through one snapshot
// (no replayed or missing generation), after which five live stores
// arrive as change events. The test asserts every generation was observed
// exactly once — A's changes, B's catch-up snapshot, B's changes — and
// that B's final materialized hash matches the server's polled /cache.
//
// The test builds and spawns both binaries, so it is gated behind
// INCA_FEED_SMOKE=1 and run by `make feed-smoke` (part of `make check`)
// rather than on every plain `go test ./...`.

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"inca/internal/depot"
	"inca/internal/loadgen"
	"inca/internal/wire"
)

// feedProc is a spawned consumer whose stdout lines ARE the assertions:
// unlike smokeProc's lossy capture, sends block so no line is dropped.
type feedProc struct {
	cmd   *exec.Cmd
	lines chan string
}

func startFeedConsumer(t *testing.T, bin string, args ...string) *feedProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s %v: %v", bin, args, err)
	}
	p := &feedProc{cmd: cmd, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			p.lines <- sc.Text()
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
			for range p.lines { // unblock the scanner goroutine
			}
		}
	})
	return p
}

// next returns the consumer's next stdout line matching re (capture
// groups), failing the test on exit or timeout.
func (p *feedProc) next(t *testing.T, re *regexp.Regexp) []string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("consumer exited before printing %s", re)
			}
			if m := re.FindStringSubmatch(line); m != nil {
				return m
			}
			t.Logf("consumer (skipped): %s", line)
		case <-deadline:
			t.Fatalf("timed out waiting for %s", re)
		}
	}
}

var (
	feedSnapshotRE = regexp.MustCompile(`^snapshot cursor=(\S+) entries=(\d+) hash=(\S+)$`)
	feedChangeRE   = regexp.MustCompile(`^change cursor=(\S+) branch=(\S+) kind=report hash=(\S+)$`)
)

// cacheHash polls the server's /cache and hashes it exactly the way the
// consumer hashes its materialized state (FNV-64a over a re-serialized
// StreamCache dump), so push and pull views are comparable by string.
func cacheHash(t *testing.T, httpAddr string) (string, int) {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/cache?branch=")
	if err != nil {
		t.Fatalf("GET /cache: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cache: %d %v", resp.StatusCode, err)
	}
	state, err := depot.LoadDump(body)
	if err != nil {
		t.Fatalf("parse /cache: %v", err)
	}
	h := fnv.New64a()
	h.Write(state.Dump())
	return fmt.Sprintf("%016x", h.Sum64()), state.Count()
}

func TestFeedSmoke(t *testing.T) {
	if os.Getenv("INCA_FEED_SMOKE") == "" {
		t.Skip("set INCA_FEED_SMOKE=1 (make feed-smoke) to run the multi-process smoke test")
	}
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "inca-server")
	consumerBin := filepath.Join(dir, "inca-consumer")
	for bin, pkg := range map[string]string{serverBin: "./cmd/inca-server", consumerBin: "./cmd/inca-consumer"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("build %s: %v", pkg, err)
		}
	}

	server := startSmokeProc(t, serverBin, "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
	wireAddr := server.expectLine(t, wireAddrRE)
	httpAddr := server.expectLine(t, httpAddrRE)

	client := wire.NewBatchClient(wireAddr, wire.BatchOptions{FlushInterval: 10 * time.Millisecond})
	defer client.Close()
	data := loadgen.MustPremadeReport(smokeReportLen)
	branchFor := func(i int) string { return fmt.Sprintf("probe=p00,site=s%02d,vo=tg", i) }
	storeRange := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			client.Enqueue(&wire.Message{Branch: branchFor(i), Hostname: "smoke", Report: data})
		}
		if err := client.Drain(); err != nil {
			t.Fatalf("drain stores [%d,%d): %v", from, to, err)
		}
	}

	// Consumer A subscribes to the empty depot: its catch-up snapshot has
	// nothing in it.
	consumerA := startFeedConsumer(t, consumerBin, "-server", "http://"+httpAddr, "-subscribe")
	snapA := consumerA.next(t, feedSnapshotRE)
	if snapA[2] != "0" {
		t.Fatalf("consumer A first snapshot has %s entries, want 0", snapA[2])
	}

	// Ten generations stream in; A must observe each exactly once, with a
	// distinct cursor per event.
	storeRange(0, 10)
	seenA := make(map[string]int)
	cursors := make(map[string]int)
	var lastCursor, lastHashA string
	for i := 0; i < 10; i++ {
		m := consumerA.next(t, feedChangeRE)
		cursors[m[1]]++
		seenA[m[2]]++
		lastCursor, lastHashA = m[1], m[3]
	}
	for i := 0; i < 10; i++ {
		if seenA[branchFor(i)] != 1 {
			t.Fatalf("consumer A observed %q %d times, want exactly once (saw %v)", branchFor(i), seenA[branchFor(i)], seenA)
		}
	}
	if len(cursors) != 10 {
		t.Fatalf("consumer A saw %d distinct cursors across 10 changes", len(cursors))
	}
	if wantHash, _ := cacheHash(t, httpAddr); lastHashA != wantHash {
		t.Fatalf("consumer A materialized hash %s != polled /cache hash %s", lastHashA, wantHash)
	}

	// Kill A at its last cursor; ten more generations land unobserved.
	if err := consumerA.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill consumer A: %v", err)
	}
	consumerA.cmd.Wait()
	storeRange(10, 20)

	// Consumer B resumes from A's cursor. The cursor is ten generations
	// stale, so the feed must hand it one catch-up snapshot carrying all
	// twenty branches — the missed generations arrive as state, never as
	// a gap.
	wantHash20, wantCount20 := cacheHash(t, httpAddr)
	if wantCount20 != 20 {
		t.Fatalf("server cache has %d entries before resume, want 20", wantCount20)
	}
	consumerB := startFeedConsumer(t, consumerBin, "-server", "http://"+httpAddr, "-subscribe", "-cursor", lastCursor)
	snapB := consumerB.next(t, feedSnapshotRE)
	if snapB[2] != "20" {
		t.Fatalf("consumer B catch-up snapshot has %s entries, want 20", snapB[2])
	}
	if snapB[3] != wantHash20 {
		t.Fatalf("consumer B snapshot hash %s != polled /cache hash %s", snapB[3], wantHash20)
	}
	if snapB[1] == lastCursor {
		t.Fatal("consumer B's snapshot cursor did not advance past the stale resume cursor")
	}

	// Five live generations; B observes each exactly once, and none of
	// its cursors replays one A already consumed.
	storeRange(20, 25)
	seenB := make(map[string]int)
	var lastHashB string
	for i := 0; i < 5; i++ {
		m := consumerB.next(t, feedChangeRE)
		if cursors[m[1]] != 0 {
			t.Fatalf("consumer B replayed cursor %s that A already observed", m[1])
		}
		seenB[m[2]]++
		lastHashB = m[3]
	}
	for i := 20; i < 25; i++ {
		if seenB[branchFor(i)] != 1 {
			t.Fatalf("consumer B observed %q %d times, want exactly once (saw %v)", branchFor(i), seenB[branchFor(i)], seenB)
		}
	}

	// The pushed view converged on the polled one: B's materialized state
	// hashes identically to the server's /cache with all 25 generations.
	wantHash25, wantCount25 := cacheHash(t, httpAddr)
	if wantCount25 != 25 {
		t.Fatalf("server cache has %d entries at the end, want 25", wantCount25)
	}
	if lastHashB != wantHash25 {
		t.Fatalf("consumer B final hash %s != polled /cache hash %s", lastHashB, wantHash25)
	}
}
