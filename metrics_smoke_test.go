package inca_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"inca/internal/agent"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/metrics"
	"inca/internal/query"
	"inca/internal/simtime"
	"inca/internal/wire"
)

// TestMetricsSmoke drives the full pipeline — agent over a real TCP wire
// into the controller, depot with the async archive pipeline, query
// interface on HTTP — with one shared registry, then scrapes /metrics and
// checks the exposition is valid Prometheus text covering every stage.
// This is the `make metrics-smoke` gate.
func TestMetricsSmoke(t *testing.T) {
	start := time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)
	clock := simtime.NewSim(start)
	grid := core.DemoGrid(3, start.Add(-24*time.Hour))
	host := "login.sitea.example.org"

	reg := metrics.NewRegistry()
	d := depot.NewWithOptions(depot.NewStreamCache(), depot.Options{AsyncArchive: true, Metrics: reg})
	defer d.Close()
	if err := d.AddPolicy(consumer.AvailabilityPolicy()); err != nil {
		t.Fatal(err)
	}
	ctl := controller.New(d, controller.Options{Now: clock.Now, Metrics: reg})
	tcpSrv, err := wire.ServeOptions("127.0.0.1:0", ctl.Handle, wire.ServerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()

	spec, err := core.DemoSpec(grid, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := agent.NewWireSinkOptions(tcpSrv.Addr(), wire.ClientOptions{Metrics: reg})
	defer sink.Close()
	a, err := agent.NewMetrics(spec, clock, sink, agent.Simulated, reg)
	if err != nil {
		t.Fatal(err)
	}

	core.DriveAgents(clock, []*agent.Agent{a}, start.Add(3*time.Minute))
	d.Drain()

	qsrv := query.NewServerMetrics(d, reg)
	hs := httptest.NewServer(qsrv.Handler())
	defer hs.Close()

	// A read request first, so the query histogram has an observation.
	if resp, err := http.Get(hs.URL + "/stats"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	families, err := metrics.Lint(text)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}

	// Every pipeline stage must be represented.
	want := []string{
		// agent
		"inca_agent_runs_total",
		"inca_agent_execute_seconds",
		"inca_agent_submit_seconds",
		// scheduler (inside the agent)
		"inca_scheduler_runs_total",
		"inca_scheduler_entries",
		// wire, both sides
		"inca_wire_client_sent_total",
		"inca_wire_send_seconds",
		"inca_wire_server_messages_total",
		// controller
		"inca_controller_accepted_total",
		"inca_controller_handle_seconds",
		// depot, including the async archive pipeline
		"inca_depot_received_total",
		"inca_depot_insert_seconds",
		"inca_depot_archive_seconds",
		"inca_depot_archive_lag_seconds",
		"inca_depot_archive_applied_total",
		// query read side
		"inca_query_request_seconds",
	}
	for _, name := range want {
		if _, ok := families[name]; !ok {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}

	// The counters must show the traffic actually flowed: three virtual
	// minutes of every-minute series through the whole pipeline.
	wantRuns := a.SeriesCount() * 3
	for _, line := range []string{
		"inca_agent_runs_total", "inca_wire_client_sent_total",
		"inca_wire_server_messages_total", "inca_controller_accepted_total",
		"inca_depot_received_total",
	} {
		if !strings.Contains(text, line+" "+strconv.Itoa(wantRuns)) {
			t.Errorf("%s != %d in exposition", line, wantRuns)
		}
	}
}
