package reporter

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"time"

	"inca/internal/report"
)

// Exec runs an external reporter program — the deployed system's normal
// case ("a reporter can be written in any language", Section 3.1.2): the
// process is executed with the series' arguments on its command line and
// must print a specification-compliant XML report on standard output.
//
// The rendered scripts from catalog.Script are themselves runnable Exec
// reporters.
type Exec struct {
	ReporterName        string
	ReporterVersion     string
	ReporterDescription string
	// Path is the program to execute.
	Path string
	// Interpreter, when set, runs Path through it (e.g. "/bin/sh").
	Interpreter string
	// Timeout bounds the subprocess (also enforced by the agent's series
	// limit; this is the reporter-local backstop). Zero means no local
	// timeout.
	Timeout time.Duration
}

// Name implements Reporter.
func (e *Exec) Name() string { return e.ReporterName }

// Version implements Reporter.
func (e *Exec) Version() string {
	if e.ReporterVersion == "" {
		return "1.0"
	}
	return e.ReporterVersion
}

// Description implements Reporter.
func (e *Exec) Description() string { return e.ReporterDescription }

// Run implements Reporter: it executes the program and parses its stdout
// as a report. Execution errors and malformed output become error reports,
// never panics — a broken external reporter must not take down the agent.
func (e *Exec) Run(ctx *Context) *report.Report {
	cctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if e.Timeout > 0 {
		cctx, cancel = context.WithTimeout(cctx, e.Timeout)
	}
	defer cancel()

	var cmd *exec.Cmd
	if e.Interpreter != "" {
		cmd = exec.CommandContext(cctx, e.Interpreter, e.Path)
	} else {
		cmd = exec.CommandContext(cctx, e.Path)
	}
	for _, a := range ctx.Args {
		cmd.Args = append(cmd.Args, fmt.Sprintf("--%s=%s", a.Name, a.Value))
	}
	if ctx.WorkingDir != "" {
		// Only honour the working directory when it exists; a misconfigured
		// spec should surface as a probe failure, not prevent every run.
		if st, err := os.Stat(ctx.WorkingDir); err == nil && st.IsDir() {
			cmd.Dir = ctx.WorkingDir
		}
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	// Don't hang on grandchildren that inherit the output pipes after the
	// reporter itself is killed.
	cmd.WaitDelay = time.Second

	runErr := cmd.Run()
	rep, parseErr := report.Parse(stdout.Bytes())
	switch {
	case parseErr == nil:
		// The program spoke the specification; trust its own header and
		// footer (a failing probe exits non-zero AND reports the failure).
		return rep
	case runErr != nil:
		return New(e, ctx).Fail("reporter process failed: %v (stderr: %.200s)", runErr, stderr.String())
	default:
		return New(e, ctx).Fail("reporter printed malformed output: %v (first bytes: %.120q)", parseErr, stdout.String())
	}
}
