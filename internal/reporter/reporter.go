// Package reporter defines the reporter execution API — this
// reproduction's analogue of Inca's Perl and Python reporter APIs (paper
// Section 3.1.2), which "help developers comply with the Inca reporter
// specifications, cut development time, and reduce duplicate code".
//
// A Reporter performs one test, benchmark, or query and returns a
// specification-compliant report. Reporters never control their own
// schedule; the distributed controller (package agent) decides when they
// run and enforces their execution-time limit.
package reporter

import (
	"fmt"
	"time"

	"inca/internal/report"
)

// Context carries everything a reporter may consult during a run. Reporters
// must derive all time-dependent behaviour from Now, never the wall clock,
// so simulated deployments stay deterministic.
type Context struct {
	// Hostname of the resource the reporter runs on.
	Hostname string
	// Now is the (possibly virtual) time of the run.
	Now time.Time
	// WorkingDir and ReporterPath describe the installation, echoed into
	// the report header.
	WorkingDir   string
	ReporterPath string
	// Args are the run-time input arguments from the controller spec.
	Args []report.Arg
}

// Arg returns the named argument's value or def when absent.
func (c *Context) Arg(name, def string) string {
	for _, a := range c.Args {
		if a.Name == name {
			return a.Value
		}
	}
	return def
}

// Reporter is one probe. Run must return a non-nil report whose body
// follows the specification; use Validate in tests to enforce it.
type Reporter interface {
	// Name is the reporter's dotted identifier, e.g.
	// "grid.middleware.globus.unit.gatekeeper".
	Name() string
	// Version is the reporter's own version string.
	Version() string
	// Description is a one-line summary for catalog listings.
	Description() string
	// Run executes the probe.
	Run(ctx *Context) *report.Report
}

// Timed is implemented by reporters that know how long a run occupies the
// resource. The distributed controller uses it both to model system impact
// in simulation and to enforce expected-run-time limits; reporters without
// it are treated as instantaneous.
type Timed interface {
	// RunDuration returns the execution time of a run at ctx.Now.
	RunDuration(ctx *Context) time.Duration
}

// New stamps a fresh report for the given reporter and context: the shared
// boilerplate the paper's APIs exist to remove.
func New(r Reporter, ctx *Context) *report.Report {
	rep := report.New(r.Name(), r.Version(), ctx.Hostname, ctx.Now)
	rep.Header.WorkingDir = ctx.WorkingDir
	rep.Header.ReporterPath = ctx.ReporterPath
	rep.Header.Args = append([]report.Arg(nil), ctx.Args...)
	return rep
}

// Func adapts a plain function into a Reporter, for quick custom probes.
type Func struct {
	ReporterName        string
	ReporterVersion     string
	ReporterDescription string
	Duration            time.Duration
	Fn                  func(ctx *Context, rep *report.Report)
}

// Name implements Reporter.
func (f *Func) Name() string { return f.ReporterName }

// Version implements Reporter.
func (f *Func) Version() string {
	if f.ReporterVersion == "" {
		return "1.0"
	}
	return f.ReporterVersion
}

// Description implements Reporter.
func (f *Func) Description() string { return f.ReporterDescription }

// RunDuration implements Timed.
func (f *Func) RunDuration(*Context) time.Duration { return f.Duration }

// Run implements Reporter.
func (f *Func) Run(ctx *Context) *report.Report {
	rep := New(f, ctx)
	f.Fn(ctx, rep)
	return rep
}

// Validate runs r once against ctx and checks the result against the
// reporter specification — the compliance check reporter developers run
// before deploying.
func Validate(r Reporter, ctx *Context) error {
	rep := r.Run(ctx)
	if rep == nil {
		return fmt.Errorf("reporter %s returned nil report", r.Name())
	}
	if rep.Header.Name != r.Name() {
		return fmt.Errorf("reporter %s stamped wrong header name %q", r.Name(), rep.Header.Name)
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("reporter %s: %w", r.Name(), err)
	}
	// The wire form must round-trip.
	data, err := report.Marshal(rep)
	if err != nil {
		return fmt.Errorf("reporter %s: marshal: %w", r.Name(), err)
	}
	if _, err := report.Parse(data); err != nil {
		return fmt.Errorf("reporter %s: reparse: %w", r.Name(), err)
	}
	return nil
}
