package reporter

import (
	"os"
	"strings"
	"testing"
	"time"

	"inca/internal/report"
)

var testTime = time.Date(2004, 7, 7, 12, 0, 0, 0, time.UTC)

func testCtx() *Context {
	return &Context{
		Hostname:     "login1.example.org",
		Now:          testTime,
		WorkingDir:   "/home/inca",
		ReporterPath: "/home/inca/reporters",
		Args: []report.Arg{
			{Name: "dest", Value: "siteB"},
			{Name: "timeout", Value: "300"},
		},
	}
}

func TestContextArg(t *testing.T) {
	ctx := testCtx()
	if v := ctx.Arg("dest", "x"); v != "siteB" {
		t.Fatalf("Arg(dest) = %q", v)
	}
	if v := ctx.Arg("missing", "fallback"); v != "fallback" {
		t.Fatalf("Arg(missing) = %q", v)
	}
}

func TestNewStampsEverything(t *testing.T) {
	f := &Func{ReporterName: "probe.x", ReporterVersion: "2.1"}
	rep := New(f, testCtx())
	h := rep.Header
	if h.Name != "probe.x" || h.Version != "2.1" || h.Hostname != "login1.example.org" {
		t.Fatalf("header = %+v", h)
	}
	if h.WorkingDir != "/home/inca" || h.ReporterPath != "/home/inca/reporters" {
		t.Fatalf("paths = %+v", h)
	}
	if len(h.Args) != 2 || h.Args[0].Name != "dest" {
		t.Fatalf("args = %+v", h.Args)
	}
	if !h.GMT.Equal(testTime) {
		t.Fatalf("GMT = %v", h.GMT)
	}
	// Args must be copied, not aliased.
	ctx := testCtx()
	rep = New(f, ctx)
	ctx.Args[0].Value = "tampered"
	if rep.Header.Args[0].Value == "tampered" {
		t.Fatal("args aliased")
	}
}

func TestFuncReporter(t *testing.T) {
	f := &Func{
		ReporterName:        "probe.y",
		ReporterDescription: "desc",
		Duration:            3 * time.Second,
		Fn: func(ctx *Context, rep *report.Report) {
			rep.Body = report.Branch("probe", "y", report.Leaf("arg", ctx.Arg("dest", "")))
		},
	}
	if f.Name() != "probe.y" || f.Description() != "desc" || f.Version() != "1.0" {
		t.Fatal("metadata wrong")
	}
	if f.RunDuration(nil) != 3*time.Second {
		t.Fatal("duration wrong")
	}
	rep := f.Run(testCtx())
	if v, _ := rep.Body.Value("arg,probe=y"); v != "siteB" {
		t.Fatalf("body arg = %q", v)
	}
}

func TestValidateCatchesBadReporters(t *testing.T) {
	cases := []struct {
		name string
		r    Reporter
	}{
		{"nil report", &badReporter{mode: "nil"}},
		{"wrong header name", &badReporter{mode: "wrongname"}},
		{"invalid body", &badReporter{mode: "dupids"}},
		{"failure without message", &badReporter{mode: "silentfail"}},
	}
	for _, c := range cases {
		if err := Validate(c.r, testCtx()); err == nil {
			t.Errorf("%s: Validate accepted", c.name)
		}
	}
	good := &Func{ReporterName: "ok", Fn: func(ctx *Context, rep *report.Report) {
		rep.Body = report.Branch("m", "1", report.Leaf("v", "x"))
	}}
	if err := Validate(good, testCtx()); err != nil {
		t.Fatalf("good reporter rejected: %v", err)
	}
}

type badReporter struct{ mode string }

func (b *badReporter) Name() string        { return "bad.reporter" }
func (b *badReporter) Version() string     { return "1" }
func (b *badReporter) Description() string { return "bad" }
func (b *badReporter) Run(ctx *Context) *report.Report {
	switch b.mode {
	case "nil":
		return nil
	case "wrongname":
		return report.New("different.name", "1", ctx.Hostname, ctx.Now)
	case "dupids":
		r := New(b, ctx)
		r.Body = report.Branch("m", "1",
			report.Branch("s", "x", report.Leaf("v", "1")),
			report.Branch("s", "x", report.Leaf("v", "2")))
		return r
	case "silentfail":
		r := New(b, ctx)
		r.Footer.Completed = false
		return r
	}
	return New(b, ctx)
}

func TestExecReporterRunsScript(t *testing.T) {
	dir := t.TempDir()
	script := dir + "/probe.sh"
	content := `#!/bin/sh
cat <<'EOF'
<incaReport>
<header><reporter><name>exec.probe</name><version>1.0</version></reporter>
<hostname>exechost</hostname><gmt>2004-07-07T12:00:00Z</gmt></header>
<body><probe><ID>x</ID><got>$1</got></probe></body>
<footer><completed>true</completed></footer>
</incaReport>
EOF
`
	if err := writeFile(script, content); err != nil {
		t.Fatal(err)
	}
	e := &Exec{ReporterName: "exec.probe", Path: script, Interpreter: "/bin/sh", Timeout: 10 * time.Second}
	rep := e.Run(testCtx())
	if !rep.Succeeded() {
		t.Fatalf("exec reporter failed: %s", rep.Footer.ErrorMessage)
	}
	if rep.Header.Name != "exec.probe" || rep.Header.Hostname != "exechost" {
		t.Fatalf("header = %+v", rep.Header)
	}
	if _, ok := rep.Body.Value("got,probe=x"); !ok {
		t.Fatalf("body = %+v", rep.Body)
	}
}

func TestExecReporterFailures(t *testing.T) {
	dir := t.TempDir()
	// Exits non-zero with garbage output.
	bad := dir + "/bad.sh"
	if err := writeFile(bad, "#!/bin/sh\necho not xml\nexit 3\n"); err != nil {
		t.Fatal(err)
	}
	e := &Exec{ReporterName: "exec.bad", Path: bad, Interpreter: "/bin/sh"}
	rep := e.Run(testCtx())
	if rep.Succeeded() {
		t.Fatal("failing process reported success")
	}
	if !strings.Contains(rep.Footer.ErrorMessage, "reporter process failed") {
		t.Fatalf("error = %q", rep.Footer.ErrorMessage)
	}

	// Exits zero but prints garbage.
	garbage := dir + "/garbage.sh"
	if err := writeFile(garbage, "#!/bin/sh\necho '<not><valid>'\n"); err != nil {
		t.Fatal(err)
	}
	e = &Exec{ReporterName: "exec.garbage", Path: garbage, Interpreter: "/bin/sh"}
	rep = e.Run(testCtx())
	if rep.Succeeded() || !strings.Contains(rep.Footer.ErrorMessage, "malformed output") {
		t.Fatalf("garbage output: %+v", rep.Footer)
	}

	// Missing binary.
	e = &Exec{ReporterName: "exec.missing", Path: dir + "/nonexistent"}
	rep = e.Run(testCtx())
	if rep.Succeeded() {
		t.Fatal("missing binary reported success")
	}
}

func TestExecReporterTimeout(t *testing.T) {
	dir := t.TempDir()
	slow := dir + "/slow.sh"
	if err := writeFile(slow, "#!/bin/sh\nsleep 30\n"); err != nil {
		t.Fatal(err)
	}
	e := &Exec{ReporterName: "exec.slow", Path: slow, Interpreter: "/bin/sh", Timeout: 100 * time.Millisecond}
	start := time.Now()
	rep := e.Run(testCtx())
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not enforced")
	}
	if rep.Succeeded() {
		t.Fatal("timed-out process reported success")
	}
}

// TestExecFailureReportStillSpecCompliant: even reports fabricated from a
// broken subprocess must marshal and validate.
func TestExecFailureReportSpecCompliant(t *testing.T) {
	e := &Exec{ReporterName: "exec.none", Path: "/definitely/not/here"}
	rep := e.Run(testCtx())
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := report.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := report.Parse(data); err != nil {
		t.Fatal(err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o755)
}
