// Package report implements the Inca reporter specification (paper Section
// 3.1.2): the XML document every reporter emits, split into a uniform header,
// an open-schema body, and a uniform footer.
//
// The header carries metadata about the run (reporter name/version, host,
// GMT timestamp, working directory, input arguments). The footer carries an
// exit status; a failed run must include a brief error message. The body is
// an arbitrary element tree with one structural restriction that enables
// generic handling: every branch element (an element containing other
// elements) carries a unique identifier, so any piece of data can be located
// with a path such as
//
//	value,statistic=lowerBound,metric=bandwidth
//
// (leaf first, root last — see Figure 2 of the paper and the Find method).
package report

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Arg is one input argument supplied to a reporter at run time, echoed in
// the report header so consumers can see exactly how the data was produced.
type Arg struct {
	Name  string
	Value string
}

// Header is the uniform metadata section present in every report.
type Header struct {
	// Name identifies the reporter, conventionally a reversed-DNS-style
	// dotted name such as "grid.middleware.globus.unit.gatekeeper".
	Name string
	// Version is the reporter's own version string.
	Version string
	// Hostname is the machine the reporter ran on.
	Hostname string
	// GMT is the UTC timestamp of the run.
	GMT time.Time
	// WorkingDir is the directory the reporter executed in.
	WorkingDir string
	// ReporterPath is where the reporter binary/script was installed.
	ReporterPath string
	// Args echoes the run-time input arguments.
	Args []Arg
}

// Footer is the uniform trailer: an exit status, plus a brief error message
// when the run failed.
type Footer struct {
	Completed    bool
	ErrorMessage string
}

// Report is one complete Inca report.
type Report struct {
	Header Header
	Body   *Node
	Footer Footer
}

// Node is one element of the open-schema body. A branch node (len(Children)
// > 0) is identified among its siblings by (Tag, ID); the ID is serialized
// as a leading <ID> child element exactly as in Figure 2 of the paper. A
// leaf node carries character data in Text.
type Node struct {
	Tag      string
	ID       string
	Text     string
	Children []*Node
}

// Branch constructs a branch node with the given tag, unique identifier and
// children.
func Branch(tag, id string, children ...*Node) *Node {
	return &Node{Tag: tag, ID: id, Children: children}
}

// Leaf constructs a leaf node holding character data.
func Leaf(tag, text string) *Node { return &Node{Tag: tag, Text: text} }

// Leaff constructs a leaf node from a format string.
func Leaff(tag, format string, args ...interface{}) *Node {
	return &Node{Tag: tag, Text: fmt.Sprintf(format, args...)}
}

// Add appends children to n and returns n for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// IsBranch reports whether n contains child elements.
func (n *Node) IsBranch() bool { return len(n.Children) > 0 }

// key is the sibling-uniqueness key required by the reporter specification.
func (n *Node) key() string { return n.Tag + "\x00" + n.ID }

// Child returns the first child matching tag and, if id is non-empty, the
// matching ID.
func (n *Node) Child(tag, id string) (*Node, bool) {
	for _, c := range n.Children {
		if c.Tag == tag && (id == "" || c.ID == id) {
			return c, true
		}
	}
	return nil, false
}

// Find locates a node by an Inca path expression: comma-separated components
// ordered leaf-first, root-last, each either "tag" or "tag=id". The search
// starts at n, whose own tag/ID must match the final (root) component — or,
// when called on a synthetic container, n may be the parent of the root
// component. Find returns the leaf node addressed by the full path.
//
// Example (Figure 2): body.Find("value,statistic=lowerBound,metric=bandwidth")
// returns the <value> leaf under the lowerBound statistic.
func (n *Node) Find(path string) (*Node, bool) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, false
	}
	if len(comps) == 0 {
		return n, true
	}
	// Components root-first for descent.
	root := comps[len(comps)-1]
	if n.matches(root) {
		return n.descend(comps[:len(comps)-1])
	}
	// Allow n to be a container whose child is the root component.
	if c, ok := n.Child(root.tag, root.id); ok {
		return c.descend(comps[:len(comps)-1])
	}
	return nil, false
}

// Value is Find followed by extraction of the node's character data.
func (n *Node) Value(path string) (string, bool) {
	target, ok := n.Find(path)
	if !ok {
		return "", false
	}
	return target.Text, true
}

// Float is Find followed by parsing the node's character data as a float64.
func (n *Node) Float(path string) (float64, bool) {
	s, ok := n.Value(path)
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

type pathComp struct {
	tag string
	id  string
}

func splitPath(path string) ([]pathComp, error) {
	path = strings.TrimSpace(path)
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, ",")
	comps := make([]pathComp, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("report: empty path component in %q", path)
		}
		if eq := strings.IndexByte(p, '='); eq >= 0 {
			comps = append(comps, pathComp{tag: strings.TrimSpace(p[:eq]), id: strings.TrimSpace(p[eq+1:])})
		} else {
			comps = append(comps, pathComp{tag: p})
		}
	}
	return comps, nil
}

func (n *Node) matches(c pathComp) bool {
	return n.Tag == c.tag && (c.id == "" || n.ID == c.id)
}

// descend follows the remaining components (still leaf-first order) from n.
func (n *Node) descend(comps []pathComp) (*Node, bool) {
	cur := n
	for i := len(comps) - 1; i >= 0; i-- {
		next, ok := cur.Child(comps[i].tag, comps[i].id)
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// Walk invokes fn on n and every descendant, pre-order. Returning false from
// fn prunes that subtree.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Tag: n.Tag, ID: n.ID, Text: n.Text}
	if n.Children != nil {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Validate checks r against the reporter specification:
//   - header: reporter name, hostname and timestamp are mandatory;
//   - footer: a failed run must carry a brief error message;
//   - body: sibling elements must be uniquely identified by (tag, ID), and
//     branch nodes must not also carry character data.
func (r *Report) Validate() error {
	if r.Header.Name == "" {
		return fmt.Errorf("report: header missing reporter name")
	}
	if r.Header.Hostname == "" {
		return fmt.Errorf("report: header missing hostname")
	}
	if r.Header.GMT.IsZero() {
		return fmt.Errorf("report: header missing GMT timestamp")
	}
	if !r.Footer.Completed && strings.TrimSpace(r.Footer.ErrorMessage) == "" {
		return fmt.Errorf("report: failed run must include an error message")
	}
	if r.Body != nil {
		if err := r.Body.validate("body"); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) validate(at string) error {
	if n.Tag == "" {
		return fmt.Errorf("report: node with empty tag under %s", at)
	}
	if n.Tag == "ID" {
		return fmt.Errorf("report: element name ID is reserved (under %s)", at)
	}
	if !n.IsBranch() {
		return nil
	}
	if strings.TrimSpace(n.Text) != "" {
		return fmt.Errorf("report: branch %s/%s mixes character data with child elements", at, n.Tag)
	}
	seen := make(map[string]bool, len(n.Children))
	for _, c := range n.Children {
		k := c.key()
		if seen[k] {
			return fmt.Errorf("report: duplicate sibling %s id=%q under %s/%s", c.Tag, c.ID, at, n.Tag)
		}
		seen[k] = true
		if err := c.validate(at + "/" + n.Tag); err != nil {
			return err
		}
	}
	return nil
}

// Succeeded reports whether the footer marks a successful run.
func (r *Report) Succeeded() bool { return r.Footer.Completed }

// New returns a report with the header stamped from the given reporter
// identity, host and clock time, ready for a body to be attached.
func New(name, version, hostname string, now time.Time) *Report {
	return &Report{
		Header: Header{
			Name:     name,
			Version:  version,
			Hostname: hostname,
			GMT:      now.UTC(),
		},
		Footer: Footer{Completed: true},
	}
}

// Fail marks the report as failed with the given message and returns it.
func (r *Report) Fail(format string, args ...interface{}) *Report {
	r.Footer.Completed = false
	r.Footer.ErrorMessage = fmt.Sprintf(format, args...)
	return r
}
