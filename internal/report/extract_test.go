package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

var xt0 = time.Date(2004, 7, 7, 12, 0, 0, 0, time.UTC)

func marshalT(t *testing.T, r *Report) []byte {
	t.Helper()
	data, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func bandwidthReport(t *testing.T, completed bool) []byte {
	t.Helper()
	r := New("grid.network.pathload", "1.8", "h1.sdsc.edu", xt0)
	r.Header.Args = []Arg{{Name: "dest", Value: "h2"}}
	r.Body = Branch("metric", "bandwidth",
		Branch("statistic", "lowerBound",
			Leaf("value", "984.99"), Leaf("units", "Mbps")),
		Branch("statistic", "upperBound",
			Leaf("value", "998.67"), Leaf("units", "Mbps")),
	)
	if !completed {
		r.Fail("probe failed")
	}
	return marshalT(t, r)
}

// checkAgainstDOM asserts that ExtractValues agrees with Parse+Float for
// every path, on the same document.
func checkAgainstDOM(t *testing.T, data []byte, paths []string) {
	t.Helper()
	rep, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	compiled := make([]Path, len(paths))
	for i, p := range paths {
		compiled[i] = MustCompilePath(p)
	}
	ex, err := ExtractValues(data, compiled)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.GMT.Equal(rep.Header.GMT) {
		t.Fatalf("GMT = %v, want %v", ex.GMT, rep.Header.GMT)
	}
	for i, p := range paths {
		var want float64
		var wantOK bool
		if p == "" {
			wantOK = true
			if rep.Succeeded() {
				want = 1
			}
		} else if rep.Body != nil {
			want, wantOK = rep.Body.Float(p)
		}
		if ex.Found[i] != wantOK {
			t.Errorf("path %q: Found = %v, DOM ok = %v", p, ex.Found[i], wantOK)
			continue
		}
		if wantOK && ex.Values[i] != want {
			t.Errorf("path %q: value = %g, DOM = %g", p, ex.Values[i], want)
		}
	}
}

func TestExtractMatchesDOM(t *testing.T) {
	data := bandwidthReport(t, true)
	checkAgainstDOM(t, data, []string{
		"value,statistic=lowerBound,metric=bandwidth",
		"value,statistic=upperBound,metric=bandwidth",
		"value,statistic=lowerBound,metric=bandwidth", // duplicate path
		"units,statistic=lowerBound,metric=bandwidth", // non-numeric leaf
		"value,statistic=missing,metric=bandwidth",    // absent component
		"value,statistic=lowerBound",                  // container-anchored
		"statistic=lowerBound,metric=bandwidth",       // branch target (no text)
		"metric=bandwidth",                            // root target, branch
		"value,statistic=lowerBound,metric=other",     // wrong root id
		"", // success path
	})
}

func TestExtractFailedRun(t *testing.T) {
	data := bandwidthReport(t, false)
	checkAgainstDOM(t, data, []string{"", "value,statistic=lowerBound,metric=bandwidth"})
	ex, err := ExtractValues(data, []Path{MustCompilePath("")})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Completed || ex.Values[0] != 0 {
		t.Fatalf("failed run extracted as success: %+v", ex)
	}
}

func TestExtractNoBacktracking(t *testing.T) {
	// Two <statistic> siblings with no ID: Find commits to the first and
	// never retries the second, even though the second holds the leaf.
	r := New("n", "1", "h", xt0)
	r.Body = Branch("metric", "bw",
		Branch("statistic", "", Leaf("other", "1")),
		Branch("statistic", "", Leaf("value", "42")),
	)
	// Sibling-unique IDs are a Validate concern, not a Marshal one; the
	// document is still well-formed XML.
	data := marshalT(t, r)
	checkAgainstDOM(t, data, []string{"value,statistic,metric=bw"})
}

func TestExtractFirstMatchingIDWins(t *testing.T) {
	// First sibling has the right tag but wrong ID: Find (and the
	// extractor) skip it and commit to the ID match.
	r := New("n", "1", "h", xt0)
	r.Body = Branch("metric", "bw",
		Branch("statistic", "upper", Leaf("value", "7")),
		Branch("statistic", "lower", Leaf("value", "9")),
	)
	data := marshalT(t, r)
	checkAgainstDOM(t, data, []string{
		"value,statistic=lower,metric=bw",
		"value,statistic=upper,metric=bw",
		"value,statistic,metric=bw", // no id: first sibling wins
	})
}

func TestExtractDeepAndPadded(t *testing.T) {
	// A large filler leaf after the target: early exit means the pad is
	// never scanned when the footer is not required.
	r := New("n", "1", "h", xt0)
	r.Body = Branch("a", "1",
		Branch("b", "2", Branch("c", "3", Leaf("value", "3.5"))),
		Leaf("pad", strings.Repeat("x", 1<<16)),
	)
	data := marshalT(t, r)
	checkAgainstDOM(t, data, []string{"value,c=3,b=2,a=1", "value,c=3,b=2"})
}

func TestExtractEmptyBody(t *testing.T) {
	r := New("n", "1", "h", xt0)
	data := marshalT(t, r)
	checkAgainstDOM(t, data, []string{"value,a=1", ""})
}

func TestExtractRejectsNonReports(t *testing.T) {
	if _, err := ExtractValues([]byte("<foreign><data>1</data></foreign>"), []Path{MustCompilePath("")}); err == nil {
		t.Fatal("foreign XML accepted")
	}
	if _, err := ExtractValues([]byte("not xml"), []Path{MustCompilePath("")}); err == nil {
		t.Fatal("junk accepted")
	}
	// Header is mandatory, as in Parse.
	if _, err := ExtractValues([]byte("<incaReport><body></body></incaReport>"),
		[]Path{MustCompilePath("value,a=1")}); err == nil {
		t.Fatal("headerless report accepted")
	}
	// The footer is required whenever a success path is requested.
	headerOnly := "<incaReport><header><reporter><name>n</name></reporter>" +
		"<hostname>h</hostname><gmt>2004-07-07T12:00:00Z</gmt></header><body></body></incaReport>"
	if _, err := ExtractValues([]byte(headerOnly), []Path{MustCompilePath("")}); err == nil {
		t.Fatal("footerless report accepted for a success path")
	}
}

func TestCompilePath(t *testing.T) {
	p := MustCompilePath("")
	if !p.Success() || p.String() != "" {
		t.Fatalf("empty path: %+v", p)
	}
	if _, err := CompilePath("a,,b"); err == nil {
		t.Fatal("empty component accepted")
	}
	p = MustCompilePath("value,statistic=lowerBound,metric=bandwidth")
	if p.Success() || p.String() != "value,statistic=lowerBound,metric=bandwidth" {
		t.Fatalf("path: %+v", p)
	}
}

func TestExtractValueWithIDChildLeaf(t *testing.T) {
	// A leaf that carries an ID child: parseNode treats the remaining
	// character data as the node text; the extractor must agree.
	doc := `<incaReport><header><reporter><name>n</name></reporter>` +
		`<hostname>h</hostname><gmt>2004-07-07T12:00:00Z</gmt></header>` +
		`<body><m><ID>bw</ID><v><ID>x</ID>12.5</v></m></body>` +
		`<footer><completed>true</completed></footer></incaReport>`
	checkAgainstDOM(t, []byte(doc), []string{"v=x,m=bw", "v,m=bw", "v=y,m=bw"})
}

func TestExtractIgnoresUnknownGMT(t *testing.T) {
	r := New("n", "1", "h", xt0)
	r.Body = Branch("a", "1", Leaf("value", "2"))
	data := marshalT(t, r)
	ex, err := ExtractValues(data, []Path{MustCompilePath("value,a=1")})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Found[0] || ex.Values[0] != 2 || math.IsNaN(ex.Values[0]) {
		t.Fatalf("extraction: %+v", ex)
	}
	if !ex.GMT.Equal(xt0) {
		t.Fatalf("GMT = %v", ex.GMT)
	}
}

func paddedSuccessReport(t *testing.T, completed bool) []byte {
	t.Helper()
	r := New("grid.network.pathload", "1.8", "h1.sdsc.edu", xt0)
	r.Body = Branch("metric", "bandwidth",
		Branch("statistic", "lowerBound",
			Leaf("value", "984.99"), Leaf("units", "Mbps")),
		Branch("statistic", "upperBound",
			Leaf("value", "998.67"), Leaf("units", "Mbps")),
		Branch("detail", "trace",
			Leaf("log", strings.Repeat("hop=3 rtt=0.8ms loss=0 ", 400))),
	)
	if !completed {
		r.Fail("probe failed")
	}
	return marshalT(t, r)
}

func TestExtractFooterJump(t *testing.T) {
	// Success path + leaf paths that settle at the top of the body: the
	// scan must jump over the trailing detail subtree straight to the
	// footer and still agree with the DOM on every value.
	for _, completed := range []bool{true, false} {
		data := paddedSuccessReport(t, completed)
		checkAgainstDOM(t, data, []string{
			"",
			"value,statistic=lowerBound,metric=bandwidth",
			"value,statistic=upperBound,metric=bandwidth",
			"value,statistic=median,metric=bandwidth", // never matches: no jump
		})
	}
}

func TestExtractFooterJumpDisabledByComment(t *testing.T) {
	// A comment anywhere in the document disables the byte-search jump
	// (its text could contain a literal "</body>"); the token-level
	// fallback must still produce identical results.
	data := paddedSuccessReport(t, true)
	idx := bytes.Index(data, []byte("<detail>"))
	if idx < 0 {
		t.Fatal("no detail element in template")
	}
	var doc []byte
	doc = append(doc, data[:idx]...)
	doc = append(doc, []byte("<!-- trailing </body> decoy -->")...)
	doc = append(doc, data[idx:]...)
	checkAgainstDOM(t, doc, []string{
		"",
		"value,statistic=lowerBound,metric=bandwidth",
		"value,statistic=upperBound,metric=bandwidth",
	})
}
