package report

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Streaming value extraction: the depot's archive path needs a handful of
// numeric leaves (and the pass/fail footer flag) out of each matching
// report, not the whole document. Parse materializes every element of the
// open-schema body as a Node; for archival that work is thrown away
// immediately after a few Float lookups. ExtractValues walks the token
// stream once, descends only into elements that can still lie on a
// requested path (everything else is skipped without allocation), and
// stops as soon as every requested value is resolved — so archive-side
// cost is proportional to the extracted paths, not to the report size.

// Path is a compiled Inca path expression (see Node.Find for the
// semantics). The zero-value path — compiled from the empty string — is
// the "success" path: it extracts 1/0 from the footer's completed flag,
// which is how availability series are built.
type Path struct {
	raw string
	// comps is the expression in root-first order (Find takes leaf-first).
	comps   []pathComp
	success bool
}

// CompilePath parses an Inca path expression once, for repeated use with
// ExtractValues. The empty expression compiles to the success path.
func CompilePath(path string) (Path, error) {
	comps, err := splitPath(path)
	if err != nil {
		return Path{}, err
	}
	if len(comps) == 0 {
		return Path{raw: path, success: true}, nil
	}
	rev := make([]pathComp, len(comps))
	for i, c := range comps {
		rev[len(comps)-1-i] = c
	}
	return Path{raw: path, comps: rev}, nil
}

// MustCompilePath is CompilePath that panics on error, for literals.
func MustCompilePath(path string) Path {
	p, err := CompilePath(path)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the original expression.
func (p Path) String() string { return p.raw }

// Success reports whether p is the success (empty) path.
func (p Path) Success() bool { return p.success }

// Extraction is the result of one ExtractValues scan.
type Extraction struct {
	// GMT is the report header timestamp (zero when the header carries
	// none, exactly as Parse would return).
	GMT time.Time
	// Completed is the footer flag; it is only populated when at least one
	// requested path was the success path (otherwise the scan stops before
	// the footer).
	Completed bool
	// Values and Found are indexed like the paths argument: Found[i]
	// reports whether path i resolved to a parseable numeric leaf (success
	// paths always resolve once the footer is seen).
	Values []float64
	Found  []bool
}

// pathState tracks one path's progress through the body scan. Matching
// reproduces Node.Find exactly, including its refusal to backtrack: each
// component commits to the first matching element in document order, and
// if that element closes without completing the path, the path fails.
type pathState struct {
	comps []pathComp
	// anchor is 0 when comps[0] matched the body root itself, 1 when the
	// root acts as a container and comps[0] matches among its children.
	anchor int
	// next is the index of the next component to match; component k of an
	// alive state is committed to the open element at depth anchor+k.
	next  int
	dead  bool
	found bool
	value float64
	ok    bool
}

func (s *pathState) resolved() bool { return s.dead || s.found }

// errScanDone aborts the document scan early once every requested value
// is settled.
var errScanDone = errors.New("report: extraction complete")

var (
	bodyCloseTag = []byte("</body>")
	cdataOpen    = []byte("<![CDATA[")
	commentOpen  = []byte("<!--")
)

// ExtractValues scans a serialized report for the given compiled paths.
// Header and footer handling mirrors Parse: a document without a header
// is rejected; the footer is required (and read) only when a success path
// is requested — otherwise the scan ends as soon as the body is resolved.
// When the footer is needed, a scan whose values all settled early jumps
// to the body's end tag by byte search instead of tokenizing the rest of
// the body, so the success flag costs O(footer), not O(report).
func ExtractValues(data []byte, paths []Path) (Extraction, error) {
	ex := Extraction{
		Values: make([]float64, len(paths)),
		Found:  make([]bool, len(paths)),
	}
	needFooter := false
	states := make([]*pathState, 0, len(paths))
	for _, p := range paths {
		if p.success {
			needFooter = true
			continue
		}
		states = append(states, &pathState{comps: p.comps})
	}

	// In a document free of CDATA sections and comments — every report this
	// package writes, and anything a conforming producer emits — a "<" in
	// character data must be escaped, so the last literal "</body>" can only
	// be the body's end tag. That lets the scan, once every value is
	// settled, jump straight to the footer instead of tokenizing the rest
	// of the body. footerJump < 0 disables the jump (and with it the
	// mid-tree abort when the footer is still needed).
	footerJump := -1
	if needFooter && !bytes.Contains(data, cdataOpen) && !bytes.Contains(data, commentOpen) {
		footerJump = bytes.LastIndex(data, bodyCloseTag)
	}
	abortEarly := !needFooter || footerJump >= 0

	dec := xml.NewDecoder(bytes.NewReader(data))
	start, err := nextStart(dec)
	if err != nil {
		return ex, fmt.Errorf("report: no root element: %w", err)
	}
	if start.Name.Local != "incaReport" {
		return ex, fmt.Errorf("report: root element %q, want incaReport", start.Name.Local)
	}
	sawHeader, sawFooter := false, false
	finish := func() (Extraction, error) {
		if !sawHeader {
			return ex, fmt.Errorf("report: missing header")
		}
		for i, p := range paths {
			if p.success {
				ex.Values[i] = 0
				if ex.Completed {
					ex.Values[i] = 1
				}
				ex.Found[i] = true
				continue
			}
		}
		j := 0
		for i, p := range paths {
			if p.success {
				continue
			}
			st := states[j]
			j++
			if st.found && st.ok {
				ex.Values[i] = st.value
				ex.Found[i] = true
			}
		}
		return ex, nil
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return ex, fmt.Errorf("report: truncated document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "header":
				if err := extractHeaderGMT(dec, &ex.GMT); err != nil {
					return ex, err
				}
				sawHeader = true
			case "body":
				err := scanExtractBody(dec, states, abortEarly)
				if err == errScanDone && !needFooter {
					return finish()
				}
				if err != nil && err != errScanDone {
					return ex, err
				}
				if err == errScanDone {
					// Settled mid-body but the footer is still needed.
					if footerJump >= 0 {
						// Jump past the body's end tag and resume
						// tokenizing at the footer.
						dec = xml.NewDecoder(bytes.NewReader(data[footerJump+len(bodyCloseTag):]))
					} else if err := dec.Skip(); err != nil {
						// errScanDone without a jump target only arises at
						// the body's top level, so Skip unwinds to </body>.
						return ex, fmt.Errorf("report: truncated document: %w", err)
					}
				}
				if !needFooter {
					return finish()
				}
			case "footer":
				var f Footer
				if err := parseFooter(dec, &f); err != nil {
					return ex, err
				}
				ex.Completed = f.Completed
				sawFooter = true
				if sawHeader {
					return finish()
				}
			default:
				if err := dec.Skip(); err != nil {
					return ex, err
				}
			}
		case xml.EndElement:
			if t.Name.Local == "incaReport" {
				if needFooter && !sawFooter {
					return ex, fmt.Errorf("report: missing footer")
				}
				return finish()
			}
		}
	}
}

// extractHeaderGMT reads only the <gmt> child of the header, skipping
// everything else.
func extractHeaderGMT(dec *xml.Decoder, gmt *time.Time) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "gmt" {
				s, err := collectText(dec)
				if err != nil {
					return err
				}
				ts, err := time.Parse(gmtLayout, strings.TrimSpace(s))
				if err != nil {
					return fmt.Errorf("report: bad gmt %q: %w", s, err)
				}
				*gmt = ts
				continue
			}
			if err := dec.Skip(); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

// scanExtractBody walks the body's root element (the body may be empty).
// Returns errScanDone when every state resolved before the body ended.
// With abort set, the walk additionally bails out mid-tree the moment
// every state is settled — which means a multi-rooted body (that Parse
// would reject) can still yield values when everything settles inside the
// first root; the caller opts in only when it can recover the stream.
func scanExtractBody(dec *xml.Decoder, states []*pathState, abort bool) error {
	if allResolved(states) {
		return errScanDone
	}
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("report: truncated document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if sawRoot {
				// Parse rejects multi-rooted bodies; so do we, so the
				// archive path skips exactly the documents Parse skips.
				return fmt.Errorf("report: body has multiple roots")
			}
			sawRoot = true
			if err := scanExtractElement(dec, t, 0, states, abort); err != nil {
				return err
			}
			if allResolved(states) {
				return errScanDone
			}
		case xml.EndElement:
			return nil // </body>
		}
	}
}

func allResolved(states []*pathState) bool {
	for _, s := range states {
		if !s.resolved() {
			return false
		}
	}
	return true
}

// settled reports whether every state is finished with the token stream:
// dead, or found with its value already parsed. Unlike allResolved —
// which is only safe once the body root has closed — settled can be
// consulted mid-tree: a found state whose target element is still open
// has not parsed its value yet and keeps the scan alive.
func settled(states []*pathState) bool {
	for _, s := range states {
		if !s.dead && !(s.found && s.ok) {
			return false
		}
	}
	return true
}

// scanExtractElement processes one body element whose StartElement has
// already been consumed, advancing every path state and recursing only
// where a state can still match.
func scanExtractElement(dec *xml.Decoder, start xml.StartElement, depth int, states []*pathState, abort bool) error {
	tag := start.Name.Local
	id := ""
	var text strings.Builder
	// Phase A: the element's identifier arrives as a leading <ID> child
	// (Figure 2), so matching is deferred until the first element child
	// (or the end tag) reveals whether the element carries one.
	var pending *xml.StartElement
	for pending == nil {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("report: truncated document: %w", err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			if t.Name.Local == "ID" {
				s, err := collectText(dec)
				if err != nil {
					return err
				}
				id = strings.TrimSpace(s)
				continue
			}
			el := t
			pending = &el
		case xml.EndElement:
			decideMatches(tag, id, depth, states)
			finalizeElement(depth, states, text.String(), false)
			return nil
		}
	}

	decideMatches(tag, id, depth, states)
	isBranch := true // pending != nil: at least one real element child

	// Phase B: process children. Recurse only while some state can match
	// at depth+1 (its committed chain runs through this element); anything
	// else is skipped token-by-token with no materialization.
	first := true
	for {
		var tok xml.Token
		var err error
		if first {
			tok, first = *pending, false
		} else {
			tok, err = dec.Token()
			if err != nil {
				return fmt.Errorf("report: truncated document: %w", err)
			}
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			if descendantInterest(depth, states) {
				if err := scanExtractElement(dec, t, depth+1, states, abort); err != nil {
					return err
				}
				// Once every value is settled, nothing later in the
				// document can change it (Find commits to first matches):
				// abandon the walk with open elements on the stack and let
				// the caller jump to the footer.
				if abort && settled(states) {
					return errScanDone
				}
			} else if err := dec.Skip(); err != nil {
				return fmt.Errorf("report: truncated document: %w", err)
			}
		case xml.EndElement:
			finalizeElement(depth, states, text.String(), isBranch)
			return nil
		}
	}
}

// decideMatches advances every alive state whose next component is
// eligible at this element.
func decideMatches(tag, id string, depth int, states []*pathState) {
	for _, s := range states {
		if s.resolved() {
			continue
		}
		if depth == 0 {
			// Find tries the body root itself first, then treats it as a
			// container whose children may match the root component.
			if compMatches(s.comps[0], tag, id) {
				s.anchor, s.next = 0, 1
			} else {
				s.anchor, s.next = 1, 0
				continue
			}
		} else {
			if s.anchor+s.next != depth || !compMatches(s.comps[s.next], tag, id) {
				continue
			}
			s.next++
		}
		if s.next == len(s.comps) {
			s.found = true // target element: value parsed at finalize
		}
	}
}

// descendantInterest reports whether any state can still match a child at
// depth+1 of the current element.
func descendantInterest(depth int, states []*pathState) bool {
	for _, s := range states {
		if s.resolved() {
			// A found state whose target element is this one still needs
			// the element's own character data, which phase B collects —
			// children carry nothing for it.
			continue
		}
		if s.anchor+s.next == depth+1 {
			return true
		}
	}
	return false
}

// finalizeElement closes the element at depth: targets committed here
// parse their value; states whose chain tip is this element die (Find
// never backtracks to a later sibling).
func finalizeElement(depth int, states []*pathState, text string, isBranch bool) {
	for _, s := range states {
		if s.dead {
			continue
		}
		if s.found {
			if s.anchor+s.next-1 == depth && !s.ok {
				// This element is the target. Branch targets have no
				// character data, exactly as Node.Text is empty for
				// branches, so Float fails on them the same way.
				if !isBranch {
					if v, err := strconv.ParseFloat(strings.TrimSpace(text), 64); err == nil {
						s.value, s.ok = v, true
						continue
					}
				}
				s.dead = true // unparseable target: resolved, not found
			}
			continue
		}
		if s.next > 0 && s.anchor+s.next-1 == depth {
			s.dead = true
		} else if s.next == 0 && s.anchor == 1 && depth == 0 {
			s.dead = true
		}
	}
}

func compMatches(c pathComp, tag, id string) bool {
	return tag == c.tag && (c.id == "" || id == c.id)
}
