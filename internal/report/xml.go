package report

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"
)

// The wire format mirrors the structure described in Section 3.1.2: a
// uniform <header> and <footer> around an open-schema <body>. Branch
// identifiers inside the body are carried as a leading <ID> child element,
// exactly as in Figure 2 of the paper.
//
//	<incaReport>
//	  <header>
//	    <reporter><name>…</name><version>…</version></reporter>
//	    <hostname>…</hostname>
//	    <gmt>2004-07-07T12:00:00Z</gmt>
//	    <workingDir>…</workingDir>
//	    <reporterPath>…</reporterPath>
//	    <args><arg><name>…</name><value>…</value></arg>…</args>
//	  </header>
//	  <body>…</body>
//	  <footer>
//	    <completed>true|false</completed>
//	    <errorMessage>…</errorMessage>
//	  </footer>
//	</incaReport>

const gmtLayout = time.RFC3339

// Marshal serializes r to its XML wire form. It does not validate; call
// Validate first when the report comes from untrusted reporter code.
func Marshal(r *Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Write streams the XML wire form of r to w.
func Write(w io.Writer, r *Report) error {
	enc := xml.NewEncoder(w)
	if err := writeReport(enc, r); err != nil {
		return err
	}
	return enc.Flush()
}

func writeReport(enc *xml.Encoder, r *Report) error {
	root := xml.StartElement{Name: xml.Name{Local: "incaReport"}}
	if err := enc.EncodeToken(root); err != nil {
		return err
	}
	if err := writeHeader(enc, &r.Header); err != nil {
		return err
	}
	body := xml.StartElement{Name: xml.Name{Local: "body"}}
	if err := enc.EncodeToken(body); err != nil {
		return err
	}
	if r.Body != nil {
		if err := writeNode(enc, r.Body); err != nil {
			return err
		}
	}
	if err := enc.EncodeToken(body.End()); err != nil {
		return err
	}
	if err := writeFooter(enc, &r.Footer); err != nil {
		return err
	}
	return enc.EncodeToken(root.End())
}

func writeSimple(enc *xml.Encoder, tag, text string) error {
	el := xml.StartElement{Name: xml.Name{Local: tag}}
	if err := enc.EncodeToken(el); err != nil {
		return err
	}
	if text != "" {
		if err := enc.EncodeToken(xml.CharData(text)); err != nil {
			return err
		}
	}
	return enc.EncodeToken(el.End())
}

func writeHeader(enc *xml.Encoder, h *Header) error {
	hdr := xml.StartElement{Name: xml.Name{Local: "header"}}
	if err := enc.EncodeToken(hdr); err != nil {
		return err
	}
	rep := xml.StartElement{Name: xml.Name{Local: "reporter"}}
	if err := enc.EncodeToken(rep); err != nil {
		return err
	}
	if err := writeSimple(enc, "name", h.Name); err != nil {
		return err
	}
	if err := writeSimple(enc, "version", h.Version); err != nil {
		return err
	}
	if err := enc.EncodeToken(rep.End()); err != nil {
		return err
	}
	if err := writeSimple(enc, "hostname", h.Hostname); err != nil {
		return err
	}
	if err := writeSimple(enc, "gmt", h.GMT.UTC().Format(gmtLayout)); err != nil {
		return err
	}
	if h.WorkingDir != "" {
		if err := writeSimple(enc, "workingDir", h.WorkingDir); err != nil {
			return err
		}
	}
	if h.ReporterPath != "" {
		if err := writeSimple(enc, "reporterPath", h.ReporterPath); err != nil {
			return err
		}
	}
	if len(h.Args) > 0 {
		args := xml.StartElement{Name: xml.Name{Local: "args"}}
		if err := enc.EncodeToken(args); err != nil {
			return err
		}
		for _, a := range h.Args {
			arg := xml.StartElement{Name: xml.Name{Local: "arg"}}
			if err := enc.EncodeToken(arg); err != nil {
				return err
			}
			if err := writeSimple(enc, "name", a.Name); err != nil {
				return err
			}
			if err := writeSimple(enc, "value", a.Value); err != nil {
				return err
			}
			if err := enc.EncodeToken(arg.End()); err != nil {
				return err
			}
		}
		if err := enc.EncodeToken(args.End()); err != nil {
			return err
		}
	}
	return enc.EncodeToken(hdr.End())
}

func writeFooter(enc *xml.Encoder, f *Footer) error {
	ftr := xml.StartElement{Name: xml.Name{Local: "footer"}}
	if err := enc.EncodeToken(ftr); err != nil {
		return err
	}
	completed := "false"
	if f.Completed {
		completed = "true"
	}
	if err := writeSimple(enc, "completed", completed); err != nil {
		return err
	}
	if f.ErrorMessage != "" {
		if err := writeSimple(enc, "errorMessage", f.ErrorMessage); err != nil {
			return err
		}
	}
	return enc.EncodeToken(ftr.End())
}

func writeNode(enc *xml.Encoder, n *Node) error {
	el := xml.StartElement{Name: xml.Name{Local: n.Tag}}
	if err := enc.EncodeToken(el); err != nil {
		return err
	}
	if n.ID != "" {
		if err := writeSimple(enc, "ID", n.ID); err != nil {
			return err
		}
	}
	if n.IsBranch() {
		for _, c := range n.Children {
			if err := writeNode(enc, c); err != nil {
				return err
			}
		}
	} else if n.Text != "" {
		if err := enc.EncodeToken(xml.CharData(n.Text)); err != nil {
			return err
		}
	}
	return enc.EncodeToken(el.End())
}

// Parse decodes the XML wire form of a report using a streaming token
// scan (the depot's cache design requires SAX-style processing; see Section
// 3.2.2).
func Parse(data []byte) (*Report, error) {
	return Read(bytes.NewReader(data))
}

// Read decodes a report from r.
func Read(r io.Reader) (*Report, error) {
	dec := xml.NewDecoder(r)
	start, err := nextStart(dec)
	if err != nil {
		return nil, fmt.Errorf("report: no root element: %w", err)
	}
	if start.Name.Local != "incaReport" {
		return nil, fmt.Errorf("report: root element %q, want incaReport", start.Name.Local)
	}
	var rep Report
	sawHeader, sawFooter := false, false
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("report: truncated document: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "header":
				if err := parseHeader(dec, &rep.Header); err != nil {
					return nil, err
				}
				sawHeader = true
			case "body":
				body, err := parseBody(dec)
				if err != nil {
					return nil, err
				}
				rep.Body = body
			case "footer":
				if err := parseFooter(dec, &rep.Footer); err != nil {
					return nil, err
				}
				sawFooter = true
			default:
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if t.Name.Local == "incaReport" {
				if !sawHeader {
					return nil, fmt.Errorf("report: missing header")
				}
				if !sawFooter {
					return nil, fmt.Errorf("report: missing footer")
				}
				return &rep, nil
			}
		}
	}
}

func nextStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if s, ok := tok.(xml.StartElement); ok {
			return s, nil
		}
	}
}

// collectText reads character data until the current element's end tag.
func collectText(dec *xml.Decoder) (string, error) {
	var sb strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			return sb.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("report: unexpected element <%s> in text content", t.Name.Local)
		}
	}
}

func parseHeader(dec *xml.Decoder, h *Header) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "reporter":
				if err := parseReporterIdent(dec, h); err != nil {
					return err
				}
			case "hostname":
				if h.Hostname, err = collectText(dec); err != nil {
					return err
				}
			case "gmt":
				s, err := collectText(dec)
				if err != nil {
					return err
				}
				ts, err := time.Parse(gmtLayout, strings.TrimSpace(s))
				if err != nil {
					return fmt.Errorf("report: bad gmt %q: %w", s, err)
				}
				h.GMT = ts
			case "workingDir":
				if h.WorkingDir, err = collectText(dec); err != nil {
					return err
				}
			case "reporterPath":
				if h.ReporterPath, err = collectText(dec); err != nil {
					return err
				}
			case "args":
				if err := parseArgs(dec, h); err != nil {
					return err
				}
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func parseReporterIdent(dec *xml.Decoder, h *Header) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "name":
				if h.Name, err = collectText(dec); err != nil {
					return err
				}
			case "version":
				if h.Version, err = collectText(dec); err != nil {
					return err
				}
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func parseArgs(dec *xml.Decoder, h *Header) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "arg" {
				if err := dec.Skip(); err != nil {
					return err
				}
				continue
			}
			var a Arg
			for {
				tok, err := dec.Token()
				if err != nil {
					return err
				}
				if s, ok := tok.(xml.StartElement); ok {
					switch s.Name.Local {
					case "name":
						if a.Name, err = collectText(dec); err != nil {
							return err
						}
					case "value":
						if a.Value, err = collectText(dec); err != nil {
							return err
						}
					default:
						if err := dec.Skip(); err != nil {
							return err
						}
					}
					continue
				}
				if _, ok := tok.(xml.EndElement); ok {
					break
				}
			}
			h.Args = append(h.Args, a)
		case xml.EndElement:
			return nil
		}
	}
}

func parseFooter(dec *xml.Decoder, f *Footer) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "completed":
				s, err := collectText(dec)
				if err != nil {
					return err
				}
				f.Completed = strings.TrimSpace(s) == "true"
			case "errorMessage":
				if f.ErrorMessage, err = collectText(dec); err != nil {
					return err
				}
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

// parseBody reads the open-schema body: at most one root node is expected
// (nil for an empty body).
func parseBody(dec *xml.Decoder) (*Node, error) {
	var root *Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n, err := parseNode(dec, t)
			if err != nil {
				return nil, err
			}
			if root != nil {
				return nil, fmt.Errorf("report: body has multiple roots (%s then %s)", root.Tag, n.Tag)
			}
			root = n
		case xml.EndElement:
			return root, nil
		}
	}
}

// ParseNodeXML decodes a standalone body fragment (a single element tree).
// The depot uses it when reconstructing subtrees from the cache.
func ParseNodeXML(data []byte) (*Node, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	start, err := nextStart(dec)
	if err != nil {
		return nil, fmt.Errorf("report: no element in fragment: %w", err)
	}
	return parseNode(dec, start)
}

// MarshalNodeXML serializes a standalone body fragment.
func MarshalNodeXML(n *Node) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := writeNode(enc, n); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func parseNode(dec *xml.Decoder, start xml.StartElement) (*Node, error) {
	n := &Node{Tag: start.Name.Local}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local == "ID" && n.ID == "" && len(n.Children) == 0 {
				id, err := collectText(dec)
				if err != nil {
					return nil, err
				}
				n.ID = strings.TrimSpace(id)
				continue
			}
			child, err := parseNode(dec, t)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			if !n.IsBranch() {
				n.Text = strings.TrimSpace(text.String())
			}
			return n, nil
		}
	}
}
