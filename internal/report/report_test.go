package report

import (
	"strings"
	"testing"
	"time"
)

var testTime = time.Date(2004, 7, 7, 12, 0, 0, 0, time.UTC)

// figure2Body builds the bandwidth metric tree from Figure 2 of the paper.
func figure2Body() *Node {
	return Branch("metric", "bandwidth",
		Branch("statistic", "upperBound",
			Leaf("value", "998.67"),
			Leaf("units", "Mbps"),
		),
		Branch("statistic", "lowerBound",
			Leaf("value", "984.99"),
			Leaf("units", "Mbps"),
		),
	)
}

func sampleReport() *Report {
	r := New("grid.network.pathload", "1.2", "tg-login1.sdsc.teragrid.org", testTime)
	r.Header.WorkingDir = "/home/inca"
	r.Header.ReporterPath = "/home/inca/reporters/pathload"
	r.Header.Args = []Arg{{Name: "dest", Value: "caltech"}, {Name: "timeout", Value: "300"}}
	r.Body = figure2Body()
	return r
}

func TestNewStampsHeader(t *testing.T) {
	r := New("a.b", "1.0", "host1", testTime)
	if r.Header.Name != "a.b" || r.Header.Hostname != "host1" {
		t.Fatalf("header = %+v", r.Header)
	}
	if !r.Header.GMT.Equal(testTime) {
		t.Fatalf("GMT = %v", r.Header.GMT)
	}
	if !r.Succeeded() {
		t.Fatal("new report not marked successful")
	}
}

func TestFail(t *testing.T) {
	r := New("a.b", "1.0", "h", testTime).Fail("cannot contact %s", "gatekeeper")
	if r.Succeeded() {
		t.Fatal("failed report marked successful")
	}
	if r.Footer.ErrorMessage != "cannot contact gatekeeper" {
		t.Fatalf("error = %q", r.Footer.ErrorMessage)
	}
}

func TestFindPaperPath(t *testing.T) {
	body := figure2Body()
	// The exact path expression quoted in Section 3.1.2.
	n, ok := body.Find("value,statistic=lowerBound,metric=bandwidth")
	if !ok {
		t.Fatal("paper path not found")
	}
	if n.Text != "984.99" {
		t.Fatalf("value = %q, want 984.99", n.Text)
	}
	n, ok = body.Find("units,statistic=upperBound,metric=bandwidth")
	if !ok || n.Text != "Mbps" {
		t.Fatalf("units lookup = %v, %v", n, ok)
	}
}

func TestFindUnqualifiedComponent(t *testing.T) {
	body := Branch("pkg", "globus", Leaf("version", "2.4.3"))
	n, ok := body.Find("version,pkg")
	if !ok || n.Text != "2.4.3" {
		t.Fatalf("Find = %v,%v", n, ok)
	}
}

func TestFindMisses(t *testing.T) {
	body := figure2Body()
	cases := []string{
		"value,statistic=median,metric=bandwidth", // no such ID
		"value,statistic=lowerBound,metric=rtt",   // wrong root ID
		"nope,metric=bandwidth",                   // no such leaf
		"value,,metric=bandwidth",                 // malformed
	}
	for _, c := range cases {
		if _, ok := body.Find(c); ok {
			t.Errorf("Find(%q) succeeded, want miss", c)
		}
	}
}

func TestFindEmptyPathReturnsSelf(t *testing.T) {
	body := figure2Body()
	n, ok := body.Find("")
	if !ok || n != body {
		t.Fatal("empty path should return the node itself")
	}
}

func TestFloat(t *testing.T) {
	body := figure2Body()
	f, ok := body.Float("value,statistic=upperBound,metric=bandwidth")
	if !ok || f != 998.67 {
		t.Fatalf("Float = %g,%v", f, ok)
	}
	if _, ok := body.Float("units,statistic=upperBound,metric=bandwidth"); ok {
		t.Fatal("Float parsed a non-numeric leaf")
	}
}

func TestWalkAndClone(t *testing.T) {
	body := figure2Body()
	count := 0
	body.Walk(func(n *Node) bool { count++; return true })
	if count != 7 {
		t.Fatalf("Walk visited %d nodes, want 7", count)
	}
	// Pruning stops descent.
	count = 0
	body.Walk(func(n *Node) bool { count++; return n.Tag != "statistic" })
	if count != 3 {
		t.Fatalf("pruned Walk visited %d nodes, want 3", count)
	}
	clone := body.Clone()
	clone.Children[0].Children[0].Text = "mutated"
	if v, _ := body.Value("value,statistic=upperBound,metric=bandwidth"); v != "998.67" {
		t.Fatal("Clone aliases original nodes")
	}
}

func TestCloneNil(t *testing.T) {
	var n *Node
	if n.Clone() != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleReport().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateHeaderRequirements(t *testing.T) {
	r := sampleReport()
	r.Header.Name = ""
	if err := r.Validate(); err == nil {
		t.Fatal("missing name accepted")
	}
	r = sampleReport()
	r.Header.Hostname = ""
	if err := r.Validate(); err == nil {
		t.Fatal("missing hostname accepted")
	}
	r = sampleReport()
	r.Header.GMT = time.Time{}
	if err := r.Validate(); err == nil {
		t.Fatal("missing timestamp accepted")
	}
}

func TestValidateFailureNeedsMessage(t *testing.T) {
	r := sampleReport()
	r.Footer = Footer{Completed: false}
	if err := r.Validate(); err == nil {
		t.Fatal("failure without message accepted")
	}
	r.Footer.ErrorMessage = "   "
	if err := r.Validate(); err == nil {
		t.Fatal("blank message accepted")
	}
	r.Footer.ErrorMessage = "gatekeeper down"
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDuplicateSiblings(t *testing.T) {
	r := sampleReport()
	r.Body = Branch("metric", "bw",
		Branch("statistic", "x", Leaf("value", "1")),
		Branch("statistic", "x", Leaf("value", "2")),
	)
	if err := r.Validate(); err == nil {
		t.Fatal("duplicate (tag,ID) siblings accepted")
	}
	// Same tag with distinct IDs is the whole point of IDs.
	r.Body = figure2Body()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Distinct tags need no IDs.
	r.Body = Branch("pkg", "p", Leaf("version", "1"), Leaf("location", "/usr"))
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate leaf tags without IDs are ambiguous.
	r.Body = Branch("pkg", "p", Leaf("version", "1"), Leaf("version", "2"))
	if err := r.Validate(); err == nil {
		t.Fatal("ambiguous duplicate leaves accepted")
	}
}

func TestValidateReservedIDTag(t *testing.T) {
	r := sampleReport()
	r.Body = Branch("m", "x", Leaf("ID", "oops"))
	if err := r.Validate(); err == nil {
		t.Fatal("element named ID accepted")
	}
}

func TestValidateBranchWithText(t *testing.T) {
	r := sampleReport()
	r.Body = &Node{Tag: "m", ID: "x", Text: "stray", Children: []*Node{Leaf("v", "1")}}
	if err := r.Validate(); err == nil {
		t.Fatal("mixed content accepted")
	}
}

func TestChildLookup(t *testing.T) {
	body := figure2Body()
	c, ok := body.Child("statistic", "lowerBound")
	if !ok || c.ID != "lowerBound" {
		t.Fatalf("Child = %v,%v", c, ok)
	}
	if _, ok := body.Child("statistic", "median"); ok {
		t.Fatal("found nonexistent child")
	}
	// Empty id matches first tag occurrence.
	c, ok = body.Child("statistic", "")
	if !ok || c.ID != "upperBound" {
		t.Fatalf("Child(tag only) = %v,%v", c, ok)
	}
}

func TestLeaff(t *testing.T) {
	n := Leaff("value", "%.2f", 3.14159)
	if n.Text != "3.14" {
		t.Fatalf("Leaff = %q", n.Text)
	}
}

func TestAddChaining(t *testing.T) {
	n := Branch("a", "1").Add(Leaf("b", "x")).Add(Leaf("c", "y"), Leaf("d", "z"))
	if len(n.Children) != 3 {
		t.Fatalf("children = %d", len(n.Children))
	}
}

func TestValidateDeepNesting(t *testing.T) {
	// Build a 50-deep chain; validation should recurse cleanly.
	leaf := Leaf("v", "1")
	cur := leaf
	for i := 0; i < 50; i++ {
		cur = Branch("level", "only", cur)
	}
	r := sampleReport()
	r.Body = cur
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValueMiss(t *testing.T) {
	body := figure2Body()
	if _, ok := body.Value("missing,metric=bandwidth"); ok {
		t.Fatal("Value hit on missing path")
	}
	if v, ok := body.Value("value,statistic=lowerBound,metric=bandwidth"); !ok || !strings.Contains(v, "984") {
		t.Fatalf("Value = %q,%v", v, ok)
	}
}
