package report

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	orig := sampleReport()
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(orig.Header, back.Header) {
		t.Fatalf("header round trip:\n got %+v\nwant %+v", back.Header, orig.Header)
	}
	if !reflect.DeepEqual(orig.Footer, back.Footer) {
		t.Fatalf("footer round trip: got %+v want %+v", back.Footer, orig.Footer)
	}
	if !reflect.DeepEqual(orig.Body, back.Body) {
		t.Fatalf("body round trip:\n got %#v\nwant %#v", back.Body, orig.Body)
	}
}

func TestMarshalFailedReport(t *testing.T) {
	orig := New("unit.globus", "1.0", "h", testTime).Fail("gatekeeper timed out")
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Succeeded() {
		t.Fatal("failure flag lost")
	}
	if back.Footer.ErrorMessage != "gatekeeper timed out" {
		t.Fatalf("error = %q", back.Footer.ErrorMessage)
	}
	if back.Body != nil {
		t.Fatalf("empty body round-tripped as %+v", back.Body)
	}
}

func TestMarshalEscapesSpecials(t *testing.T) {
	orig := New("r", "1", "h", testTime)
	orig.Body = Branch("msg", "m1", Leaf("text", `a <b> & "c" 'd'`))
	orig.Footer.ErrorMessage = "x < y & z"
	orig.Footer.Completed = false
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("a <b>")) {
		t.Fatalf("unescaped markup in output: %s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Body.Value("text,msg=m1"); v != `a <b> & "c" 'd'` {
		t.Fatalf("escaped text round trip = %q", v)
	}
	if back.Footer.ErrorMessage != "x < y & z" {
		t.Fatalf("footer round trip = %q", back.Footer.ErrorMessage)
	}
}

func TestParseFigure2Snippet(t *testing.T) {
	// The literal element structure from Figure 2 of the paper, embedded in
	// a report body.
	doc := `<incaReport>
	<header>
	  <reporter><name>bw</name><version>1</version></reporter>
	  <hostname>h</hostname>
	  <gmt>2004-07-07T12:00:00Z</gmt>
	</header>
	<body>
	  <metric>
	    <ID>bandwidth</ID>
	    <statistic>
	      <ID>upperBound</ID>
	      <value>998.67</value>
	      <units>Mbps</units>
	    </statistic>
	    <statistic>
	      <ID>lowerBound</ID>
	      <value>984.99</value>
	      <units>Mbps</units>
	    </statistic>
	  </metric>
	</body>
	<footer><completed>true</completed></footer>
	</incaReport>`
	r, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	f, ok := r.Body.Float("value,statistic=lowerBound,metric=bandwidth")
	if !ok || f != 984.99 {
		t.Fatalf("lowerBound = %g,%v", f, ok)
	}
	if r.Header.Name != "bw" || r.Header.Hostname != "h" {
		t.Fatalf("header = %+v", r.Header)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not xml",
		"<wrongRoot></wrongRoot>",
		"<incaReport><header>", // truncated
		"<incaReport><footer><completed>true</completed></footer></incaReport>",                                                              // no header
		"<incaReport><header><reporter><name>x</name></reporter><hostname>h</hostname><gmt>2004-07-07T12:00:00Z</gmt></header></incaReport>", // no footer
		"<incaReport><header><gmt>yesterday</gmt></header><footer><completed>true</completed></footer></incaReport>",                         // bad time
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("Parse accepted %q", c)
		}
	}
}

func TestParseMultipleBodyRootsRejected(t *testing.T) {
	doc := `<incaReport><header><reporter><name>x</name></reporter><hostname>h</hostname><gmt>2004-07-07T12:00:00Z</gmt></header>` +
		`<body><a><ID>1</ID></a><b><ID>2</ID></b></body>` +
		`<footer><completed>true</completed></footer></incaReport>`
	if _, err := Parse([]byte(doc)); err == nil {
		t.Fatal("multi-root body accepted")
	}
}

func TestParseSkipsUnknownHeaderFields(t *testing.T) {
	doc := `<incaReport><header><futureField>x</futureField><reporter><name>x</name><extra>1</extra></reporter><hostname>h</hostname><gmt>2004-07-07T12:00:00Z</gmt></header>` +
		`<body/><footer><completed>true</completed><note>n</note></footer></incaReport>`
	r, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.Name != "x" {
		t.Fatalf("name = %q", r.Header.Name)
	}
}

func TestNodeFragmentRoundTrip(t *testing.T) {
	n := figure2Body()
	data, err := MarshalNodeXML(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseNodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n, back) {
		t.Fatalf("fragment round trip:\n got %#v\nwant %#v", back, n)
	}
}

func TestParseNodeXMLErrors(t *testing.T) {
	if _, err := ParseNodeXML(nil); err == nil {
		t.Fatal("empty fragment accepted")
	}
	if _, err := ParseNodeXML([]byte("<open>")); err == nil {
		t.Fatal("truncated fragment accepted")
	}
}

// randomNode builds a random valid body tree with unique sibling keys.
func randomNode(r *rand.Rand, depth int) *Node {
	tags := []string{"metric", "statistic", "pkg", "env", "test", "result"}
	tag := tags[r.Intn(len(tags))]
	if depth <= 0 || r.Intn(3) == 0 {
		return Leaf(tag, randText(r))
	}
	n := Branch(tag, "id"+randText(r))
	kids := 1 + r.Intn(3)
	for i := 0; i < kids; i++ {
		c := randomNode(r, depth-1)
		c.ID = c.ID + "-" + string(rune('a'+i)) // force sibling uniqueness
		if !c.IsBranch() {
			c.ID = ""
			c.Tag = c.Tag + string(rune('a'+i))
		}
		n.Add(c)
	}
	return n
}

func randText(r *rand.Rand) string {
	const alpha = "abcdefghij0123456789 .<>&"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return strings.TrimSpace(string(b))
}

func TestRandomBodyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := New("prop.test", "1", "h", testTime)
		orig.Body = randomNode(r, 3)
		data, err := Marshal(orig)
		if err != nil {
			return false
		}
		back, err := Parse(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(orig.Body), normalize(back.Body))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// normalize trims leaf text the way the parser does, so random trees whose
// text has leading/trailing whitespace still compare equal after a round
// trip.
func normalize(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := n.Clone()
	c.Walk(func(x *Node) bool {
		if !x.IsBranch() {
			x.Text = strings.TrimSpace(x.Text)
		}
		return true
	})
	return c
}

func TestMarshalDeterministic(t *testing.T) {
	r := sampleReport()
	a, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Marshal is not deterministic")
	}
}

func TestGMTAlwaysUTC(t *testing.T) {
	loc := time.FixedZone("PDT", -7*3600)
	r := New("r", "1", "h", time.Date(2004, 7, 7, 5, 0, 0, 0, loc))
	data, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("2004-07-07T12:00:00Z")) {
		t.Fatalf("timestamp not normalized to UTC: %s", data)
	}
}

func TestMinimalHeaderRoundTrip(t *testing.T) {
	// No working dir, no reporter path, no args: optional header fields
	// must be omitted and still round-trip.
	orig := New("bare.probe", "0.1", "h", testTime)
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("workingDir")) || bytes.Contains(data, []byte("args")) {
		t.Fatalf("optional fields serialized when empty: %s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Header, back.Header) {
		t.Fatalf("minimal header round trip: %+v vs %+v", back.Header, orig.Header)
	}
}

func TestArgsWithSpecialCharacters(t *testing.T) {
	orig := New("argtest", "1", "h", testTime)
	orig.Header.Args = []Arg{
		{Name: "expr", Value: `a < b && c > "d"`},
		{Name: "empty", Value: ""},
	}
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Header.Args, back.Header.Args) {
		t.Fatalf("args round trip: %+v vs %+v", back.Header.Args, orig.Header.Args)
	}
}

func TestParseArgsSkipsForeignElements(t *testing.T) {
	doc := `<incaReport><header><reporter><name>x</name></reporter><hostname>h</hostname><gmt>2004-07-07T12:00:00Z</gmt>` +
		`<args><future>1</future><arg><name>a</name><value>1</value><note>n</note></arg></args></header>` +
		`<body/><footer><completed>true</completed></footer></incaReport>`
	r, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Header.Args) != 1 || r.Header.Args[0].Name != "a" {
		t.Fatalf("args = %+v", r.Header.Args)
	}
}
