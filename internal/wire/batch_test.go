package wire

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBatchFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Branch: "r=1,vo=tg", Hostname: "h1", Report: []byte("<r>1</r>")},
		{Branch: "r=2,vo=tg", Hostname: "h2", Report: []byte("<r>2</r>"), Signature: []byte{9}},
		{},
	}
	if err := WriteBatch(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("count = %d, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if got[i].Branch != msgs[i].Branch || got[i].Hostname != msgs[i].Hostname ||
			!bytes.Equal(got[i].Report, msgs[i].Report) || !bytes.Equal(got[i].Signature, msgs[i].Signature) {
			t.Fatalf("message %d: %+v", i, got[i])
		}
	}
}

func TestBatchFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := WriteBatch(&buf, make([]*Message, MaxBatch+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestAckVectorRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	acks := []*Ack{{OK: true}, {OK: false, Message: "nope"}, {OK: true, Message: "stored"}}
	if err := WriteAckVector(&buf, acks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAckVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acks) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range acks {
		if got[i].OK != acks[i].OK || got[i].Message != acks[i].Message {
			t.Fatalf("ack %d: %+v", i, got[i])
		}
	}
}

func TestAckVectorRejectsSingleAck(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAck(&buf, &Ack{OK: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAckVector(&buf); err == nil {
		t.Fatal("single ack parsed as vector")
	}
}

func TestServerHandlesBatchFrames(t *testing.T) {
	var got atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		got.Add(1)
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewBatchClient(srv.Addr(), BatchOptions{MaxBatch: 8, Window: 3})
	const total = 100
	for i := 0; i < total; i++ {
		if err := c.Enqueue(&Message{Branch: fmt.Sprintf("r=%d", i), Hostname: "h", Report: []byte("<r/>")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != total {
		t.Fatalf("server received %d, want %d", got.Load(), total)
	}
	st := c.Stats()
	if st.Acked != total || st.Rejected != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleAndBatchedClientsShareServer(t *testing.T) {
	// Backward compatibility: single-message frames and batch frames are
	// served by the same accept loop.
	var got atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		got.Add(1)
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	old := NewClient(srv.Addr())
	defer old.Close()
	bc := NewBatchClient(srv.Addr(), BatchOptions{MaxBatch: 4, Window: 2})
	for i := 0; i < 10; i++ {
		if _, err := old.Send(&Message{Branch: "old=1", Report: []byte("<r/>")}); err != nil {
			t.Fatal(err)
		}
		if err := bc.Enqueue(&Message{Branch: "new=1", Report: []byte("<r/>")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 20 {
		t.Fatalf("server received %d, want 20", got.Load())
	}
}

func TestBatchClientSurfacesRejection(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		if m.Hostname == "evil" {
			return &Ack{OK: false, Message: "host evil not in allowlist"}
		}
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewBatchClient(srv.Addr(), BatchOptions{MaxBatch: 2, Window: 2})
	c.Enqueue(&Message{Hostname: "good", Report: []byte("<r/>")})
	c.Enqueue(&Message{Hostname: "evil", Report: []byte("<r/>")})
	err = c.Close()
	if err == nil {
		t.Fatal("rejection not surfaced")
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestBatchClientFlushInterval(t *testing.T) {
	var got atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		got.Add(1)
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A partial batch must flush on the interval timer without an explicit
	// Flush or a full batch.
	c := NewBatchClient(srv.Addr(), BatchOptions{MaxBatch: 1000, Window: 2, FlushInterval: 10 * time.Millisecond})
	defer c.Close()
	if err := c.Enqueue(&Message{Branch: "r=1", Report: []byte("<r/>")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatal("interval flush never happened")
	}
}

func TestBatchClientTransportError(t *testing.T) {
	c := NewBatchClient("127.0.0.1:1", BatchOptions{MaxBatch: 1, Window: 1}) // nothing listens
	err := c.Enqueue(&Message{Report: []byte("<r/>")})                       // full batch → immediate flush
	if err == nil {
		err = c.Close()
	}
	if err == nil {
		t.Fatal("dead server produced no error")
	}
}

func TestBatchClientReconnectsAfterServerRestart(t *testing.T) {
	handler := func(m *Message, remote string) *Ack { return &Ack{OK: true} }
	srv, err := Serve("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := NewBatchClient(addr, BatchOptions{MaxBatch: 1, Window: 1})
	defer c.Close()
	if err := c.Enqueue(&Message{Report: []byte("<r/>")}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	failed := false
	for i := 0; i < 50; i++ {
		c.Enqueue(&Message{Report: []byte("<r/>")})
		if err := c.Drain(); err != nil {
			failed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding against a closed server")
	}
	srv2, err := Serve(addr, handler)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	var lastErr error
	for i := 0; i < 50; i++ {
		c.Enqueue(&Message{Report: []byte("<r/>")})
		if lastErr = c.Drain(); lastErr == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never reconnected: %v", lastErr)
}

func TestBatchClientConcurrentEnqueue(t *testing.T) {
	var got atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		got.Add(1)
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewBatchClient(srv.Addr(), BatchOptions{MaxBatch: 16, Window: 4})
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := c.Enqueue(&Message{Branch: fmt.Sprintf("g=%d,i=%d", g, i), Report: []byte("<r/>")}); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != goroutines*per {
		t.Fatalf("server received %d, want %d", got.Load(), goroutines*per)
	}
}

// --- benchmarks ---

func benchMessage(reportBytes int) *Message {
	return &Message{
		Branch:   "probe=gcc,site=sdsc,vo=tg",
		Hostname: "tg-login1.sdsc.teragrid.org",
		Report:   bytes.Repeat([]byte("x"), reportBytes),
	}
}

// BenchmarkWireRoundTrip locks in the scratch-buffer ReadMessage win: one
// message written and read back through an in-memory buffer.
func BenchmarkWireRoundTrip(b *testing.B) {
	m := benchMessage(9257)
	var buf bytes.Buffer
	var scratch []byte
	b.SetBytes(int64(len(m.Report)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		var got *Message
		var err error
		got, scratch, err = readMessage(&buf, scratch)
		if err != nil {
			b.Fatal(err)
		}
		if len(got.Report) != len(m.Report) {
			b.Fatal("payload lost")
		}
	}
}

// BenchmarkWireBatchRoundTrip measures the batched framing: 32 messages
// per frame, one ack vector.
func BenchmarkWireBatchRoundTrip(b *testing.B) {
	msgs := make([]*Message, 32)
	for i := range msgs {
		msgs[i] = benchMessage(9257)
	}
	var buf bytes.Buffer
	var scratch []byte
	b.SetBytes(int64(len(msgs) * 9257))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBatch(&buf, msgs); err != nil {
			b.Fatal(err)
		}
		var got []*Message
		var err error
		got, scratch, err = readBatch(&buf, scratch)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(msgs) {
			b.Fatal("batch lost")
		}
	}
}
func TestCloseHarvestReturnsUndelivered(t *testing.T) {
	// Nothing flushes (large batch, no timer): every message is still
	// pending, and the harvest must return all of them in order without
	// ever dialing.
	c := NewBatchClient("127.0.0.1:1", BatchOptions{MaxBatch: 64, FlushInterval: -1})
	const total = 17
	for i := 0; i < total; i++ {
		c.Enqueue(&Message{Branch: fmt.Sprintf("r=%d", i), Hostname: "h", Report: []byte("<r/>")})
	}
	got := c.CloseHarvest()
	if len(got) != total {
		t.Fatalf("harvested %d, want %d", len(got), total)
	}
	for i, m := range got {
		if m.Branch != fmt.Sprintf("r=%d", i) {
			t.Fatalf("message %d out of order: %s", i, m.Branch)
		}
	}
	if st := c.Stats(); st.Dropped != 0 {
		t.Fatalf("harvested messages counted as dropped: %+v", st)
	}
	if c.CloseHarvest() != nil {
		t.Fatal("second harvest returned messages")
	}
	if err := c.Enqueue(&Message{Branch: "r=late"}); err == nil {
		t.Fatal("enqueue after close accepted")
	}
}

func TestCloseHarvestAfterPartialDelivery(t *testing.T) {
	// The server acknowledges the first batch then hangs: the harvest
	// must return the written-but-unacknowledged batches (the
	// kill-mid-stream case) so nothing is lost or double-counted.
	var seen atomic.Int64
	block := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		if seen.Add(1) > 5 {
			<-block
		}
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	// Window 4 holds all 4 batches without blocking a flush.
	c := NewBatchClient(srv.Addr(), BatchOptions{MaxBatch: 5, Window: 4, FlushInterval: -1, IOTimeout: -1})
	const total = 20
	for i := 0; i < total; i++ {
		c.Enqueue(&Message{Branch: fmt.Sprintf("r=%d", i), Hostname: "h", Report: []byte("<r/>")})
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Acked < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	got := c.CloseHarvest()
	st := c.Stats()
	if int(st.Acked)+len(got) != total {
		t.Fatalf("acked %d + harvested %d != %d", st.Acked, len(got), total)
	}
	if len(got) == 0 {
		t.Fatal("nothing harvested while the server hung")
	}
	if st.Dropped != 0 {
		t.Fatalf("harvest counted as loss: %+v", st)
	}
}

// mustDeadAddr returns an address nothing listens on: bind, read the
// port, close. Dials fail fast with connection refused.
func mustDeadAddr(t *testing.T) string {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack { return &Ack{OK: true} })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()
	return addr
}

func TestEnqueueCustodyRefusesAtBacklog(t *testing.T) {
	c := NewBatchClient(mustDeadAddr(t), BatchOptions{
		MaxPending: 3, MaxBatch: 4096, FlushInterval: -1,
		DialTimeout: 200 * time.Millisecond, IOTimeout: time.Second,
	})
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.EnqueueCustody(&Message{Branch: fmt.Sprintf("r=%d,vo=tg", i)}); err != nil {
			t.Fatalf("enqueue %d under the limit: %v", i, err)
		}
	}
	if err := c.EnqueueCustody(&Message{Branch: "r=over,vo=tg"}); err != ErrBacklogFull {
		t.Fatalf("over the limit: err = %v, want ErrBacklogFull", err)
	}
	// The contract: refusal, never shedding. Every accepted message is
	// still queued.
	if st := c.Stats(); st.Dropped != 0 {
		t.Fatalf("EnqueueCustody shed %d accepted messages", st.Dropped)
	}
	if got := c.CloseHarvest(); len(got) != 3 {
		t.Fatalf("harvested %d messages, want the 3 accepted", len(got))
	}
}

func TestEnqueueCustodyAfterClose(t *testing.T) {
	c := NewBatchClient(mustDeadAddr(t), BatchOptions{DialTimeout: 200 * time.Millisecond})
	c.Close()
	if err := c.EnqueueCustody(&Message{Branch: "r=1,vo=tg"}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
