package wire

// Fault-injection harness for the reliable-delivery acceptance criteria:
// a TCP proxy that can refuse, stall, reset mid-frame, and black-hole
// acks, sitting between the wire clients and a real Server. Every test
// here asserts the delivery ledger balances — acked + rejected + dropped
// + still-queued = submitted — because the bug class this PR fixes is
// precisely messages leaving that ledger silently.

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosProxy forwards TCP between a fixed front address and a (swappable)
// target, injecting faults on demand.
type chaosProxy struct {
	ln net.Listener

	mu     sync.Mutex
	target string
	conns  map[net.Conn]struct{}

	refuse   atomic.Bool  // close incoming connections immediately
	stall    atomic.Bool  // accept but forward nothing in either direction
	dropAcks atomic.Bool  // forward client→server, black-hole server→client
	cutAfter atomic.Int64 // reset each connection after this many client→server bytes (0 = off)
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close(); p.ResetConns() })
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

// SetTarget points the proxy at a new backend (a restarted controller on
// a fresh port, from the client's point of view the same address).
func (p *chaosProxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// ResetConns hard-closes every live connection pair — the mid-frame
// connection reset.
func (p *chaosProxy) ResetConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *chaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *chaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *chaosProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.refuse.Load() {
			client.Close()
			continue
		}
		go p.serve(client)
	}
}

func (p *chaosProxy) serve(client net.Conn) {
	p.track(client)
	defer p.untrack(client)
	if p.stall.Load() {
		// Hold the connection open, swallow whatever arrives, answer
		// nothing: the hung-server scenario. Torn down by ResetConns or
		// test cleanup.
		io.Copy(io.Discard, client)
		return
	}
	p.mu.Lock()
	target := p.target
	p.mu.Unlock()
	server, err := net.Dial("tcp", target)
	if err != nil {
		return
	}
	p.track(server)
	defer p.untrack(server)
	done := make(chan struct{}, 2)
	go func() { // client → server, with optional mid-frame cut
		defer func() { done <- struct{}{} }()
		if n := p.cutAfter.Load(); n > 0 {
			io.CopyN(server, client, n)
			client.Close()
			server.Close()
			return
		}
		io.Copy(server, client)
		server.(*net.TCPConn).CloseWrite()
	}()
	go func() { // server → client, with optional ack black hole
		defer func() { done <- struct{}{} }()
		if p.dropAcks.Load() {
			io.Copy(io.Discard, server)
			return
		}
		io.Copy(client, server)
		client.(*net.TCPConn).CloseWrite()
	}()
	<-done
	<-done
}

func countingServer(t *testing.T) (*Server, *sync.Mutex, *[]string) {
	t.Helper()
	var mu sync.Mutex
	var got []string
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		mu.Lock()
		got = append(got, m.Branch)
		mu.Unlock()
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &mu, &got
}

// uniqueInOrder returns the first occurrence of each branch, in arrival
// order — the at-least-once view of the stream.
func uniqueInOrder(got []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, b := range got {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

func TestChaosClientTimesOutOnStalledServer(t *testing.T) {
	srv, _, _ := countingServer(t)
	proxy := newChaosProxy(t, srv.Addr())
	proxy.stall.Store(true)

	c := NewClientOptions(proxy.Addr(), ClientOptions{
		DialTimeout: time.Second,
		IOTimeout:   100 * time.Millisecond,
	})
	defer c.Close()
	start := time.Now()
	_, err := c.Send(&Message{Branch: "a=1", Report: []byte("<r/>")})
	if err == nil {
		t.Fatal("send to a stalled server succeeded")
	}
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline took %v — the send wedged", d)
	}
}

func TestChaosClientRetriesThroughMidFrameReset(t *testing.T) {
	srv, mu, got := countingServer(t)
	proxy := newChaosProxy(t, srv.Addr())
	// First connections are reset 10 bytes into the frame — mid-frame, the
	// length prefix already on the wire.
	proxy.cutAfter.Store(10)
	go func() {
		time.Sleep(50 * time.Millisecond)
		proxy.cutAfter.Store(0)
	}()

	c := NewClientOptions(proxy.Addr(), ClientOptions{
		DialTimeout: time.Second,
		IOTimeout:   2 * time.Second,
		Retry:       RetryPolicy{Max: 20, Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	defer c.Close()
	ack, err := c.Send(&Message{Branch: "a=1", Report: []byte("<r/>")})
	if err != nil || !ack.OK {
		t.Fatalf("send never recovered: ack=%v err=%v", ack, err)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Fatalf("recovery took no retries? stats=%+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) == 0 {
		t.Fatal("server never received the report")
	}
}

func TestChaosClientRecoversAfterRefusedDials(t *testing.T) {
	srv, mu, got := countingServer(t)
	proxy := newChaosProxy(t, srv.Addr())
	proxy.refuse.Store(true)
	go func() {
		time.Sleep(50 * time.Millisecond)
		proxy.refuse.Store(false)
	}()
	c := NewClientOptions(proxy.Addr(), ClientOptions{
		DialTimeout: time.Second,
		IOTimeout:   2 * time.Second,
		Retry:       RetryPolicy{Max: 50, Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	defer c.Close()
	if _, err := c.Send(&Message{Branch: "a=1", Report: []byte("<r/>")}); err != nil {
		t.Fatalf("send never recovered: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 {
		t.Fatalf("server received %d", len(*got))
	}
}

// TestChaosBatchClientNoLossAcrossResets is the flushLocked/Drain loss
// regression test: connections are reset mid-run, and every enqueued
// message must still be delivered (requeued, not discarded) with the
// ledger balanced.
func TestChaosBatchClientNoLossAcrossResets(t *testing.T) {
	srv, mu, got := countingServer(t)
	proxy := newChaosProxy(t, srv.Addr())

	c := NewBatchClient(proxy.Addr(), BatchOptions{
		MaxBatch: 4, Window: 2, FlushInterval: time.Millisecond,
		MaxPending: -1, IOTimeout: 2 * time.Second,
	})
	const total = 200
	for i := 0; i < total; i++ {
		c.Enqueue(&Message{Branch: fmt.Sprintf("b=%d", i), Hostname: "h", Report: []byte("<r/>")})
		if i%25 == 24 {
			proxy.ResetConns() // reset mid-stream, frames in flight
		}
	}
	// Redeliver until the ledger shows every message acknowledged.
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := c.Drain()
		st := c.Stats()
		if err == nil && st.Acked+st.Rejected+st.Dropped >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: stats=%+v err=%v", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	if st.Dropped != 0 {
		t.Fatalf("unbounded client dropped %d", st.Dropped)
	}
	if st.Requeued == 0 {
		t.Fatal("resets happened but nothing was requeued — fault injection missed")
	}
	if err := c.Close(); err != nil {
		t.Logf("close: %v (stale async error from a reset is acceptable)", err)
	}

	mu.Lock()
	defer mu.Unlock()
	unique := uniqueInOrder(*got)
	if len(unique) != total {
		t.Fatalf("server saw %d unique reports, want %d (silent loss)", len(unique), total)
	}
	for i, b := range unique {
		if b != fmt.Sprintf("b=%d", i) {
			t.Fatalf("per-branch order broken at %d: %s", i, b)
		}
	}
}

// TestChaosBatchClientStalledAcks covers the hung-ack path: frames reach
// the server but ack vectors vanish. The armed ack deadline must fail the
// connection and requeue, and once acks flow again nothing is lost.
func TestChaosBatchClientStalledAcks(t *testing.T) {
	srv, mu, got := countingServer(t)
	proxy := newChaosProxy(t, srv.Addr())
	proxy.dropAcks.Store(true)

	c := NewBatchClient(proxy.Addr(), BatchOptions{
		MaxBatch: 4, Window: 2, FlushInterval: time.Millisecond,
		MaxPending: -1, IOTimeout: 150 * time.Millisecond,
	})
	const total = 8
	for i := 0; i < total; i++ {
		c.Enqueue(&Message{Branch: fmt.Sprintf("b=%d", i), Hostname: "h", Report: []byte("<r/>")})
	}
	err := c.Drain() // acks black-holed: must deadline out, not wedge
	if err == nil {
		t.Fatal("drain with black-holed acks reported success")
	}
	proxy.dropAcks.Store(false)
	proxy.ResetConns() // kill the ackless pair; next flush redials clean

	deadline := time.Now().Add(15 * time.Second)
	for {
		err := c.Drain()
		st := c.Stats()
		if err == nil && st.Acked >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: stats=%+v err=%v", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	if unique := uniqueInOrder(*got); len(unique) != total {
		t.Fatalf("server saw %d unique reports, want %d", len(unique), total)
	}
}

// TestChaosBatchClientControllerRestart kills the controller entirely and
// brings a fresh one up behind the same proxy address — the acceptance
// scenario: zero report loss across a controller restart.
func TestChaosBatchClientControllerRestart(t *testing.T) {
	srv1, mu, got := countingServer(t)
	proxy := newChaosProxy(t, srv1.Addr())

	c := NewBatchClient(proxy.Addr(), BatchOptions{
		MaxBatch: 4, Window: 2, FlushInterval: time.Millisecond,
		MaxPending: -1, IOTimeout: 2 * time.Second, DialTimeout: time.Second,
	})
	const total = 100
	for i := 0; i < total; i++ {
		c.Enqueue(&Message{Branch: fmt.Sprintf("b=%d", i), Hostname: "h", Report: []byte("<r/>")})
		if i == total/2 {
			srv1.Close() // controller dies mid-run
			proxy.ResetConns()
		}
	}
	// Controller comes back (new port; the proxy hides the move, as a
	// redeployed controller behind one service address would).
	var mu2 sync.Mutex
	var got2 []string
	srv2, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		mu2.Lock()
		got2 = append(got2, m.Branch)
		mu2.Unlock()
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	proxy.SetTarget(srv2.Addr())

	deadline := time.Now().Add(15 * time.Second)
	for {
		err := c.Drain()
		st := c.Stats()
		if err == nil && st.Acked+st.Rejected >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: stats=%+v err=%v", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	c.Close()
	if st.Dropped != 0 {
		t.Fatalf("dropped %d across restart", st.Dropped)
	}

	mu.Lock()
	mu2.Lock()
	defer mu.Unlock()
	defer mu2.Unlock()
	unique := uniqueInOrder(append(append([]string{}, *got...), got2...))
	if len(unique) != total {
		t.Fatalf("controllers saw %d unique reports, want %d (loss across restart)", len(unique), total)
	}
	for i, b := range unique {
		if b != fmt.Sprintf("b=%d", i) {
			t.Fatalf("per-branch order broken at %d: %s", i, b)
		}
	}
}

// TestChaosServerIdleTimeout proves a dead peer cannot pin a server
// goroutine: a connection that goes quiet mid-frame is dropped and
// counted.
func TestChaosServerIdleTimeout(t *testing.T) {
	srv, err := ServeOptions("127.0.0.1:0", func(m *Message, remote string) *Ack {
		return &Ack{OK: true}
	}, ServerOptions{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a frame: a 4-byte length prefix promising more than we send.
	conn.Write([]byte{0, 0, 0, 9, 'x'})
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("server kept the stalled connection alive")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().ConnsIdleClosed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.Stats(); st.ConnsIdleClosed != 1 {
		t.Fatalf("idle-closed = %d, want 1 (stats %+v)", st.ConnsIdleClosed, st)
	}
}
