package wire

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// Report authentication — the "improved security" item from the paper's
// future work (Section 6). Each resource shares a secret with the
// centralized controller; messages carry an HMAC-SHA256 signature over
// (branch, hostname, report), so a host on the allowlist cannot be
// spoofed by an off-list machine that knows its name.
//
// Signatures ride in the Message.Signature frame; hosts without a
// configured key keep the paper's hostname-allowlist-only behaviour.

// Sign computes the message signature under key.
func Sign(m *Message, key []byte) []byte {
	mac := hmac.New(sha256.New, key)
	var lenBuf [4]byte
	for _, part := range [][]byte{[]byte(m.Branch), []byte(m.Hostname), m.Report} {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(part)))
		mac.Write(lenBuf[:])
		mac.Write(part)
	}
	return mac.Sum(nil)
}

// SignMessage attaches a signature to m.
func SignMessage(m *Message, key []byte) { m.Signature = Sign(m, key) }

// Verify reports whether m's signature is valid under key.
func Verify(m *Message, key []byte) bool {
	return hmac.Equal(m.Signature, Sign(m, key))
}
