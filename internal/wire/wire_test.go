package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{Branch: "r=1,vo=tg", Hostname: "login1", Report: []byte("<r>x</r>")}
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branch != m.Branch || got.Hostname != m.Hostname || !bytes.Equal(got.Report, m.Report) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEmptyFieldsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{}
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branch != "" || len(got.Report) != 0 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{Branch: "a=1", Report: []byte("payload")}
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{0, 3, 5, len(data) - 1} {
		if _, err := ReadMessage(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("accepted %d-byte truncation", n)
		}
	}
}

func TestReadMessageOversizedFrameRejected(t *testing.T) {
	// Length prefix larger than MaxFrame must be rejected without
	// allocating.
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessage(bytes.NewReader(data)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, a := range []*Ack{{OK: true}, {OK: false, Message: "host not allowed"}} {
		var buf bytes.Buffer
		if err := WriteAck(&buf, a); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAck(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != a.OK || got.Message != a.Message {
			t.Fatalf("round trip: %+v", got)
		}
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var received []*Message
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		mu.Lock()
		received = append(received, m)
		mu.Unlock()
		return &Ack{OK: true, Message: "stored"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(srv.Addr())
	defer c.Close()
	for i := 0; i < 5; i++ {
		ack, err := c.Send(&Message{Branch: fmt.Sprintf("r=%d", i), Hostname: "h", Report: []byte("<r/>")})
		if err != nil {
			t.Fatal(err)
		}
		if !ack.OK || ack.Message != "stored" {
			t.Fatalf("ack = %+v", ack)
		}
	}
	mu.Lock()
	n := len(received)
	mu.Unlock()
	if n != 5 {
		t.Fatalf("server received %d messages, want 5", n)
	}
}

func TestServerRejectionAck(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		return &Ack{OK: false, Message: "host " + m.Hostname + " not in allowlist"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	ack, err := c.Send(&Message{Hostname: "evil", Report: []byte("<r/>")})
	if err != nil {
		t.Fatal(err)
	}
	if ack.OK || ack.Message == "" {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	handler := func(m *Message, remote string) *Ack { return &Ack{OK: true} }
	srv, err := Serve("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := NewClient(addr)
	defer c.Close()
	if _, err := c.Send(&Message{Report: []byte("<r/>")}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Sends fail while the server is down...
	failed := false
	for i := 0; i < 10; i++ {
		if _, err := c.Send(&Message{Report: []byte("<r/>")}); err != nil {
			failed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding against a closed server")
	}
	// ...and succeed again once it returns on the same port.
	srv2, err := Serve(addr, handler)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	var lastErr error
	for i := 0; i < 50; i++ {
		if _, lastErr = c.Send(&Message{Report: []byte("<r/>")}); lastErr == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never reconnected: %v", lastErr)
}

func TestConcurrentClients(t *testing.T) {
	var mu sync.Mutex
	count := 0
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		mu.Lock()
		count++
		mu.Unlock()
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clients, per = 8, 20
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(srv.Addr())
			defer c.Close()
			for j := 0; j < per; j++ {
				if _, err := c.Send(&Message{Branch: fmt.Sprintf("c=%d,m=%d", i, j), Report: []byte("<r/>")}); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != clients*per {
		t.Fatalf("received %d, want %d", count, clients*per)
	}
}

func TestWriteMessageOversized(t *testing.T) {
	var buf bytes.Buffer
	m := &Message{Report: make([]byte, MaxFrame+1)}
	if err := WriteMessage(&buf, m); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilAckFromHandlerDefaultsToOK(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()
	ack, err := c.Send(&Message{Report: []byte("<r/>")})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.OK {
		t.Fatal("nil handler ack not treated as OK")
	}
}
