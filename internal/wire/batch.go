package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Batch frames amortize the per-report round trip that serializes the
// single-message protocol: many messages travel under one flush, and the
// server answers with one ack vector per batch. Layout:
//
//	uint32 0xFFFFFFFF | uint32 count | count × message frame
//
// and the matching ack vector:
//
//	uint8 2 | uint32 count | count × (uint8 status | uint32 msgLen | msg)
//
// where the leading 2 can never open a single-message ack (those start
// with status 0 or 1).

// batchMagic opens a batch frame. It cannot collide with a legal
// single-message frame because the first word there is a part length,
// capped at MaxFrame.
const batchMagic = 0xFFFFFFFF

// ackVectorMarker opens an ack vector (single-message acks start 0 or 1).
const ackVectorMarker = 2

// MaxBatch bounds the messages in one batch frame.
const MaxBatch = 4096

// WriteBatch writes msgs as one batch frame.
func WriteBatch(w io.Writer, msgs []*Message) error {
	if len(msgs) == 0 {
		return fmt.Errorf("wire: empty batch")
	}
	if len(msgs) > MaxBatch {
		return fmt.Errorf("wire: batch of %d messages exceeds limit %d", len(msgs), MaxBatch)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], batchMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(msgs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, m := range msgs {
		if err := WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch reads one batch frame, magic word included.
func ReadBatch(r io.Reader) ([]*Message, error) {
	msgs, _, err := readBatch(r, nil)
	return msgs, err
}

func readBatch(r io.Reader, scratch []byte) ([]*Message, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, scratch, err
	}
	if binary.BigEndian.Uint32(hdr[:4]) != batchMagic {
		return nil, scratch, fmt.Errorf("wire: not a batch frame")
	}
	count := binary.BigEndian.Uint32(hdr[4:])
	if count == 0 || count > MaxBatch {
		return nil, scratch, fmt.Errorf("wire: batch count %d out of range", count)
	}
	msgs := make([]*Message, count)
	for i := range msgs {
		var err error
		if msgs[i], scratch, err = readMessage(r, scratch); err != nil {
			return nil, scratch, err
		}
	}
	return msgs, scratch, nil
}

// peekBatch reports whether the next frame on br is a batch frame, without
// consuming it.
func peekBatch(br *bufio.Reader) (bool, error) {
	b, err := br.Peek(4)
	if err != nil {
		return false, err
	}
	return binary.BigEndian.Uint32(b) == batchMagic, nil
}

// WriteAckVector writes one ack per batched message.
func WriteAckVector(w io.Writer, acks []*Ack) error {
	var hdr [5]byte
	hdr[0] = ackVectorMarker
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(acks)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, a := range acks {
		if err := WriteAck(w, a); err != nil {
			return err
		}
	}
	return nil
}

// ReadAckVector reads one ack vector.
func ReadAckVector(r io.Reader) ([]*Ack, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != ackVectorMarker {
		return nil, fmt.Errorf("wire: not an ack vector (marker %d)", hdr[0])
	}
	count := binary.BigEndian.Uint32(hdr[1:])
	if count > MaxBatch {
		return nil, fmt.Errorf("wire: ack vector count %d out of range", count)
	}
	acks := make([]*Ack, count)
	for i := range acks {
		var err error
		if acks[i], err = ReadAck(r); err != nil {
			return nil, err
		}
	}
	return acks, nil
}

// BatchOptions configures a BatchClient.
type BatchOptions struct {
	// MaxBatch is how many messages accumulate before a flush (default 32).
	MaxBatch int
	// Window is how many unacknowledged batches may be in flight before
	// the next flush blocks (default 4) — the pipelining depth.
	Window int
	// FlushInterval bounds how long a buffered message waits before the
	// partial batch is sent anyway (default 50ms; <0 disables the timer,
	// leaving flushing to full batches and explicit Flush/Drain calls).
	FlushInterval time.Duration
}

func (o *BatchOptions) fill() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxBatch > MaxBatch {
		o.MaxBatch = MaxBatch
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
}

// BatchClient is the pipelined counterpart of Client: messages accumulate
// into batch frames, and up to Window batches ride the connection before
// the first ack vector is awaited, so the paper's one-report-per-round-trip
// serialization disappears from the ingest path. Because acknowledgements
// arrive after Enqueue returns, a rejection or transport failure surfaces
// on a later Enqueue, Flush, or Drain call — the trade the protocol makes
// for keeping the pipe full. It is safe for concurrent use.
type BatchClient struct {
	addr string
	opt  BatchOptions

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	pending []*Message
	timer   *time.Timer
	sem     chan struct{} // holds one token per in-flight batch
	gone    chan struct{} // closed when this connection's ack reader exits

	errMu    sync.Mutex
	err      error
	closed   bool
	acked    uint64
	rejected uint64
}

// NewBatchClient returns a client that dials addr on first flush.
func NewBatchClient(addr string, opt BatchOptions) *BatchClient {
	opt.fill()
	return &BatchClient{addr: addr, opt: opt}
}

// Enqueue buffers one message, flushing if the batch is full. The returned
// error reports previously collected asynchronous failures (server
// rejections or transport errors from earlier batches), not the fate of m.
func (c *BatchClient) Enqueue(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, m)
	if len(c.pending) >= c.opt.MaxBatch {
		return c.flushLocked()
	}
	if c.opt.FlushInterval > 0 && c.timer == nil {
		c.timer = time.AfterFunc(c.opt.FlushInterval, func() { c.Flush() })
	}
	return c.takeErr()
}

// Flush sends the pending partial batch without waiting for its ack.
func (c *BatchClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *BatchClient) flushLocked() error {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if len(c.pending) == 0 {
		return c.takeErr()
	}
	if err := c.ensureConnLocked(); err != nil {
		c.pending = c.pending[:0]
		return err
	}
	// Claim an in-flight slot; blocks when Window batches await acks,
	// which is the backpressure that keeps a slow server from unbounded
	// buffering. The reader releases a slot per ack vector and never takes
	// c.mu, so holding it here cannot deadlock.
	select {
	case c.sem <- struct{}{}:
	case <-c.gone:
		c.resetConnLocked()
		c.pending = c.pending[:0]
		if err := c.takeErr(); err != nil {
			return err
		}
		return fmt.Errorf("wire: connection lost")
	}
	err := WriteBatch(c.bw, c.pending)
	if err == nil {
		err = c.bw.Flush()
	}
	c.pending = c.pending[:0]
	if err != nil {
		c.resetConnLocked()
		c.recordErr(err)
		return c.takeErr()
	}
	return c.takeErr()
}

func (c *BatchClient) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.bw = bufio.NewWriter(conn)
	c.sem = make(chan struct{}, c.opt.Window)
	c.gone = make(chan struct{})
	c.errMu.Lock()
	c.closed = false // a redial after Close resumes error collection
	c.errMu.Unlock()
	go c.readAcks(bufio.NewReader(conn), c.sem, c.gone)
	return nil
}

// resetConnLocked abandons the current connection; its reader exits on the
// closed socket and the next flush redials with fresh channels.
func (c *BatchClient) resetConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.bw = nil
	c.sem = nil
	c.gone = nil
}

// readAcks consumes ack vectors, releasing one in-flight slot per vector.
// It deliberately never touches c.mu (see flushLocked).
func (c *BatchClient) readAcks(br *bufio.Reader, sem chan struct{}, gone chan struct{}) {
	defer close(gone)
	for {
		acks, err := ReadAckVector(br)
		if err != nil {
			c.recordErr(err)
			return
		}
		c.errMu.Lock()
		for _, a := range acks {
			if a.OK {
				c.acked++
			} else {
				c.rejected++
				if c.err == nil && !c.closed {
					c.err = fmt.Errorf("wire: server rejected report: %s", a.Message)
				}
			}
		}
		c.errMu.Unlock()
		<-sem
	}
}

func (c *BatchClient) recordErr(err error) {
	c.errMu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.errMu.Unlock()
}

// takeErr returns and clears the first collected asynchronous error.
func (c *BatchClient) takeErr() error {
	c.errMu.Lock()
	err := c.err
	c.err = nil
	c.errMu.Unlock()
	return err
}

// Drain flushes the pending batch and waits until every in-flight batch
// has been acknowledged, returning the first collected failure.
func (c *BatchClient) Drain() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	if c.conn == nil {
		return c.takeErr()
	}
	// Filling the window proves no batch still awaits its ack vector.
	for i := 0; i < c.opt.Window; i++ {
		select {
		case c.sem <- struct{}{}:
		case <-c.gone:
			c.resetConnLocked()
			if err := c.takeErr(); err != nil {
				return err
			}
			return fmt.Errorf("wire: connection lost")
		}
	}
	for i := 0; i < c.opt.Window; i++ {
		<-c.sem
	}
	return c.takeErr()
}

// Stats returns how many batched messages were acknowledged OK and how
// many the server rejected.
func (c *BatchClient) Stats() (acked, rejected uint64) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.acked, c.rejected
}

// Close drains outstanding batches and closes the connection.
func (c *BatchClient) Close() error {
	err := c.Drain()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errMu.Lock()
	c.closed = true
	c.errMu.Unlock()
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.resetConnLocked()
	return err
}
