package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"inca/internal/metrics"
)

// ErrClosed is returned when a message is offered to a closed client.
var ErrClosed = errors.New("wire: client closed")

// ErrBacklogFull is returned by EnqueueCustody when accepting the message
// would exceed MaxPending. Unlike Enqueue's shedding, nothing is dropped:
// the caller keeps custody and may retry, block, or refuse its own ack.
var ErrBacklogFull = errors.New("wire: client backlog full")

// Batch frames amortize the per-report round trip that serializes the
// single-message protocol: many messages travel under one flush, and the
// server answers with one ack vector per batch. Layout:
//
//	uint32 0xFFFFFFFF | uint32 count | count × message frame
//
// and the matching ack vector:
//
//	uint8 2 | uint32 count | count × (uint8 status | uint32 msgLen | msg)
//
// where the leading 2 can never open a single-message ack (those start
// with status 0 or 1).

// batchMagic opens a batch frame. It cannot collide with a legal
// single-message frame because the first word there is a part length,
// capped at MaxFrame.
const batchMagic = 0xFFFFFFFF

// ackVectorMarker opens an ack vector (single-message acks start 0 or 1).
const ackVectorMarker = 2

// MaxBatch bounds the messages in one batch frame.
const MaxBatch = 4096

// WriteBatch writes msgs as one batch frame.
func WriteBatch(w io.Writer, msgs []*Message) error {
	if len(msgs) == 0 {
		return fmt.Errorf("wire: empty batch")
	}
	if len(msgs) > MaxBatch {
		return fmt.Errorf("wire: batch of %d messages exceeds limit %d", len(msgs), MaxBatch)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], batchMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(msgs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, m := range msgs {
		if err := WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}

// ReadBatch reads one batch frame, magic word included.
func ReadBatch(r io.Reader) ([]*Message, error) {
	msgs, _, err := readBatch(r, nil)
	return msgs, err
}

func readBatch(r io.Reader, scratch []byte) ([]*Message, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, scratch, err
	}
	if binary.BigEndian.Uint32(hdr[:4]) != batchMagic {
		return nil, scratch, fmt.Errorf("wire: not a batch frame")
	}
	count := binary.BigEndian.Uint32(hdr[4:])
	if count == 0 || count > MaxBatch {
		return nil, scratch, fmt.Errorf("wire: batch count %d out of range", count)
	}
	msgs := make([]*Message, count)
	for i := range msgs {
		var err error
		if msgs[i], scratch, err = readMessage(r, scratch); err != nil {
			return nil, scratch, err
		}
	}
	return msgs, scratch, nil
}

// peekBatch reports whether the next frame on br is a batch frame, without
// consuming it.
func peekBatch(br *bufio.Reader) (bool, error) {
	b, err := br.Peek(4)
	if err != nil {
		return false, err
	}
	return binary.BigEndian.Uint32(b) == batchMagic, nil
}

// WriteAckVector writes one ack per batched message.
func WriteAckVector(w io.Writer, acks []*Ack) error {
	var hdr [5]byte
	hdr[0] = ackVectorMarker
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(acks)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, a := range acks {
		if err := WriteAck(w, a); err != nil {
			return err
		}
	}
	return nil
}

// ReadAckVector reads one ack vector.
func ReadAckVector(r io.Reader) ([]*Ack, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != ackVectorMarker {
		return nil, fmt.Errorf("wire: not an ack vector (marker %d)", hdr[0])
	}
	count := binary.BigEndian.Uint32(hdr[1:])
	if count > MaxBatch {
		return nil, fmt.Errorf("wire: ack vector count %d out of range", count)
	}
	acks := make([]*Ack, count)
	for i := range acks {
		var err error
		if acks[i], err = ReadAck(r); err != nil {
			return nil, err
		}
	}
	return acks, nil
}

// BatchOptions configures a BatchClient.
type BatchOptions struct {
	// MaxBatch is how many messages accumulate before a flush (default 32).
	MaxBatch int
	// Window is how many unacknowledged batches may be in flight before
	// the next flush blocks (default 4) — the pipelining depth.
	Window int
	// FlushInterval bounds how long a buffered message waits before the
	// partial batch is sent anyway (default 50ms; <0 disables the timer,
	// leaving flushing to full batches and explicit Flush/Drain calls).
	FlushInterval time.Duration
	// MaxPending bounds how many messages may sit unflushed while the
	// server is unreachable — requeued messages included (default 4096;
	// <0 removes the bound). Beyond it the oldest message is shed and
	// counted in Stats().Dropped, the only way this client loses data.
	MaxPending int
	// DialTimeout bounds each connection attempt (default 10s).
	DialTimeout time.Duration
	// IOTimeout bounds each batch write and, while batches are awaiting
	// acknowledgement, the wait for the next ack vector (default 30s;
	// <0 disables deadlines). A hung server then fails the connection —
	// requeuing its unacked batches — instead of wedging the flusher.
	IOTimeout time.Duration
	// Metrics, when set, registers the client's delivery counters and
	// batch-flush latency histogram there; Stats() reads the same
	// instruments.
	Metrics *metrics.Registry
}

func (o *BatchOptions) fill() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxBatch > MaxBatch {
		o.MaxBatch = MaxBatch
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.MaxPending == 0 {
		o.MaxPending = MaxBatch
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 30 * time.Second
	}
}

// BatchClient is the pipelined counterpart of Client: messages accumulate
// into batch frames, and up to Window batches ride the connection before
// the first ack vector is awaited, so the paper's one-report-per-round-trip
// serialization disappears from the ingest path. Because acknowledgements
// arrive after Enqueue returns, a rejection or transport failure surfaces
// on a later Enqueue, Flush, or Drain call — the trade the protocol makes
// for keeping the pipe full. It is safe for concurrent use.
//
// Delivery is at-least-once up to MaxPending: a batch stays on the
// in-flight list until its ack vector arrives, and when a connection dies
// every unacknowledged batch is requeued ahead of the pending buffer (so
// per-branch submission order is preserved) for the next flush to resend.
// Only MaxPending overflow sheds messages, and every shed message is
// counted in Stats().Dropped. A batch whose ack vector was lost in the
// failure may be processed twice by the server — the standard
// at-least-once trade.
type BatchClient struct {
	addr string
	opt  BatchOptions

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	pending []*Message
	timer   *time.Timer
	sem     chan struct{} // holds one token per in-flight batch
	gone    chan struct{} // closed when this connection's ack reader exits

	// inflight holds batches written but not yet acknowledged, oldest
	// first; guarded by inMu, which both flushLocked and the ack reader
	// take (the reader still never takes c.mu).
	inMu     sync.Mutex
	inflight [][]*Message

	errMu  sync.Mutex
	err    error
	closed bool
	dialed bool

	acked    *metrics.Counter
	rejected *metrics.Counter
	requeued *metrics.Counter
	dropped  *metrics.Counter
	redials  *metrics.Counter
	flushH   *metrics.Histogram
}

// NewBatchClient returns a client that dials addr on first flush.
func NewBatchClient(addr string, opt BatchOptions) *BatchClient {
	opt.fill()
	reg := opt.Metrics
	return &BatchClient{
		addr:     addr,
		opt:      opt,
		acked:    reg.Counter("inca_wire_batch_acked_total", "Batched messages the server acknowledged OK."),
		rejected: reg.Counter("inca_wire_batch_rejected_total", "Batched messages the server refused."),
		requeued: reg.Counter("inca_wire_batch_requeued_total", "Messages requeued after their connection died unacknowledged."),
		dropped:  reg.Counter("inca_wire_batch_dropped_total", "Messages shed by the MaxPending backstop or abandoned by Close."),
		redials:  reg.Counter("inca_wire_batch_redials_total", "Reconnections after a connection failure."),
		flushH:   reg.Histogram("inca_wire_batch_flush_seconds", "Batch frame write latency per chunk.", nil),
	}
}

// Options returns the client's options with defaults applied.
func (c *BatchClient) Options() BatchOptions { return c.opt }

// Enqueue buffers one message, flushing if the batch is full. The returned
// error reports previously collected asynchronous failures (server
// rejections or transport errors from earlier batches), not the fate of m.
func (c *BatchClient) Enqueue(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errMu.Lock()
	closed := c.closed
	c.errMu.Unlock()
	if closed {
		// After Close (or CloseHarvest) a buffered message could never be
		// delivered — refuse it so the caller keeps custody.
		return ErrClosed
	}
	if c.opt.MaxPending > 0 && len(c.pending) >= c.opt.MaxPending {
		// The unreachable-server backstop: shed the oldest message so an
		// outage costs bounded memory, and account for the loss.
		shed := len(c.pending) - c.opt.MaxPending + 1
		c.pending = append(c.pending[:0], c.pending[shed:]...)
		c.dropped.Add(uint64(shed))
	}
	c.pending = append(c.pending, m)
	if len(c.pending) >= c.opt.MaxBatch {
		return c.flushLocked()
	}
	if c.opt.FlushInterval > 0 && c.timer == nil {
		c.timer = time.AfterFunc(c.opt.FlushInterval, func() { c.Flush() })
	}
	return c.takeErr()
}

// EnqueueCustody buffers one message without ever shedding: where Enqueue
// drops the oldest pending message past MaxPending (acceptable when the
// caller's own spool keeps custody, as the agent's does), EnqueueCustody
// refuses the new message with ErrBacklogFull instead — nothing already
// accepted is lost, and the caller knows this message was not taken. A
// nil return means the client holds the message under its at-least-once
// contract; ErrClosed and ErrBacklogFull mean custody stays with the
// caller. The federation router acks on this distinction: an OK ack must
// mean custody, never a droppable queue slot. Asynchronous delivery
// errors are left for Flush/Drain to surface, so a refusal here is never
// conflated with an earlier batch's fate.
func (c *BatchClient) EnqueueCustody(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errMu.Lock()
	closed := c.closed
	c.errMu.Unlock()
	if closed {
		return ErrClosed
	}
	// A connection-loss requeue may legitimately carry pending past
	// MaxPending (those messages hold custody already); refusing at the
	// boundary keeps the bound without ever shedding an accepted message.
	if c.opt.MaxPending > 0 && len(c.pending) >= c.opt.MaxPending {
		return ErrBacklogFull
	}
	c.pending = append(c.pending, m)
	if len(c.pending) >= c.opt.MaxBatch {
		c.flushLocked()
		return nil
	}
	if c.opt.FlushInterval > 0 && c.timer == nil {
		c.timer = time.AfterFunc(c.opt.FlushInterval, func() { c.Flush() })
	}
	return nil
}

// Flush sends the pending partial batch without waiting for its ack.
func (c *BatchClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// flushLocked writes the pending buffer as MaxBatch-sized chunks. On any
// failure the unwritten remainder stays in pending and unacknowledged
// in-flight batches are requeued ahead of it — nothing is discarded (the
// pre-fix code dropped the whole buffer on a dial or write error, the
// silent-loss bug this PR exists to kill).
func (c *BatchClient) flushLocked() error {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	for len(c.pending) > 0 {
		if err := c.ensureConnLocked(); err != nil {
			// pending is kept: the next Enqueue/Flush/Drain retries.
			c.recordErr(err)
			return c.takeErr()
		}
		// Claim an in-flight slot; blocks when Window batches await acks,
		// which is the backpressure that keeps a slow server from unbounded
		// buffering. The reader releases a slot per ack vector and never
		// takes c.mu, so holding it here cannot deadlock.
		select {
		case c.sem <- struct{}{}:
		case <-c.gone:
			c.resetConnLocked()
			c.recordErr(fmt.Errorf("wire: connection lost"))
			return c.takeErr()
		}
		n := len(c.pending)
		if n > c.opt.MaxBatch {
			n = c.opt.MaxBatch
		}
		chunk := make([]*Message, n)
		copy(chunk, c.pending[:n])
		// On the in-flight list before the write: if the write fails
		// partway, resetConnLocked harvests the chunk back into pending.
		c.inMu.Lock()
		c.inflight = append(c.inflight, chunk)
		c.inMu.Unlock()
		c.pending = c.pending[n:]
		if len(c.pending) == 0 {
			c.pending = nil // release the drained backing array
		}
		start := time.Now()
		err := c.setWriteDeadlineLocked()
		if err == nil {
			err = WriteBatch(c.bw, chunk)
		}
		if err == nil {
			err = c.bw.Flush()
		}
		c.flushH.ObserveSince(start)
		if err != nil {
			c.resetConnLocked()
			c.recordErr(err)
			return c.takeErr()
		}
		c.armAckDeadlineLocked()
	}
	return c.takeErr()
}

func (c *BatchClient) setWriteDeadlineLocked() error {
	if c.opt.IOTimeout < 0 {
		return nil
	}
	return c.conn.SetWriteDeadline(time.Now().Add(c.opt.IOTimeout))
}

// armAckDeadlineLocked requires the ack vector for the batch just written
// within IOTimeout. It runs under inMu to serialize against the reader's
// clear (see readAcks): whichever of arm/clear observes the in-flight
// list last wins, so the deadline is armed exactly when batches await
// acknowledgement. SetReadDeadline interrupts a read already blocked, so
// arming from here reaches a reader parked on an idle connection.
func (c *BatchClient) armAckDeadlineLocked() {
	if c.opt.IOTimeout < 0 {
		return
	}
	c.inMu.Lock()
	c.conn.SetReadDeadline(time.Now().Add(c.opt.IOTimeout))
	c.inMu.Unlock()
}

// ensureConnLocked dials if no connection is live. It refuses to dial once
// the client is closed — otherwise a FlushInterval timer callback racing
// Close could redial and leak a connection past Close.
func (c *BatchClient) ensureConnLocked() error {
	c.errMu.Lock()
	closed := c.closed
	redial := c.dialed
	c.errMu.Unlock()
	if closed {
		return fmt.Errorf("wire: client closed")
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.bw = bufio.NewWriter(conn)
	c.sem = make(chan struct{}, c.opt.Window)
	c.gone = make(chan struct{})
	c.errMu.Lock()
	c.dialed = true
	c.errMu.Unlock()
	if redial {
		c.redials.Inc()
	}
	go c.readAcks(conn, bufio.NewReader(conn), c.sem, c.gone)
	return nil
}

// resetConnLocked abandons the current connection, waits for its ack
// reader to exit, and requeues every batch the reader did not acknowledge
// ahead of the pending buffer, preserving submission order. Waiting for
// the reader is what makes the harvest race-free: after gone closes no ack
// can settle an in-flight batch, so requeue-vs-ack double accounting is
// impossible. The reader never takes c.mu, so holding it here cannot
// deadlock.
func (c *BatchClient) resetConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if c.gone != nil {
		<-c.gone
	}
	c.bw = nil
	c.sem = nil
	c.gone = nil
	c.inMu.Lock()
	unacked := c.inflight
	c.inflight = nil
	c.inMu.Unlock()
	if len(unacked) == 0 {
		return
	}
	total := 0
	for _, batch := range unacked {
		total += len(batch)
	}
	requeue := make([]*Message, 0, total+len(c.pending))
	for _, batch := range unacked {
		requeue = append(requeue, batch...)
	}
	n := uint64(len(requeue))
	c.pending = append(requeue, c.pending...)
	c.requeued.Add(n)
}

// readAcks consumes ack vectors, settling the oldest in-flight batch and
// releasing one window slot per vector. It deliberately never touches
// c.mu (see flushLocked).
func (c *BatchClient) readAcks(conn net.Conn, br *bufio.Reader, sem chan struct{}, gone chan struct{}) {
	defer close(gone)
	for {
		acks, err := ReadAckVector(br)
		if err != nil {
			c.recordErr(err)
			return
		}
		// The server acks batches in order, so this vector settles the
		// oldest in-flight batch: it is delivered, not requeue material.
		// Once nothing is in flight the ack deadline is disarmed — an idle
		// connection awaits no acks and must not time out. Under inMu to
		// serialize against armAckDeadlineLocked.
		c.inMu.Lock()
		if len(c.inflight) > 0 {
			c.inflight = c.inflight[1:]
		}
		if len(c.inflight) == 0 && c.opt.IOTimeout >= 0 {
			conn.SetReadDeadline(time.Time{})
		}
		c.inMu.Unlock()
		c.errMu.Lock()
		for _, a := range acks {
			if a.OK {
				c.acked.Inc()
			} else {
				c.rejected.Inc()
				if c.err == nil && !c.closed {
					c.err = fmt.Errorf("wire: server rejected report: %s", a.Message)
				}
			}
		}
		c.errMu.Unlock()
		<-sem
	}
}

func (c *BatchClient) recordErr(err error) {
	c.errMu.Lock()
	if c.err == nil && !c.closed {
		c.err = err
	}
	c.errMu.Unlock()
}

// takeErr returns and clears the first collected asynchronous error.
func (c *BatchClient) takeErr() error {
	c.errMu.Lock()
	err := c.err
	c.err = nil
	c.errMu.Unlock()
	return err
}

// Drain flushes the pending batch and waits until every in-flight batch
// has been acknowledged, returning the first collected failure. After a
// failed Drain the undelivered messages remain queued; a later flush or
// Drain retries them.
func (c *BatchClient) Drain() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	if c.conn == nil {
		return c.takeErr()
	}
	// Filling the window proves no batch still awaits its ack vector.
	claimed := 0
	for i := 0; i < c.opt.Window; i++ {
		select {
		case c.sem <- struct{}{}:
			claimed++
		case <-c.gone:
			// Release the slots this fill already claimed before the sem
			// is abandoned — they are fill tokens, not written batches,
			// and must not read as in-flight data to anyone holding a
			// reference to this connection's channels.
			for j := 0; j < claimed; j++ {
				<-c.sem
			}
			c.resetConnLocked()
			if err := c.takeErr(); err != nil {
				return err
			}
			return fmt.Errorf("wire: connection lost")
		}
	}
	for i := 0; i < c.opt.Window; i++ {
		<-c.sem
	}
	return c.takeErr()
}

// BatchStats counts every message fate a BatchClient can assign. At any
// quiescent point acked+rejected+dropped plus the still-queued messages
// equals the messages enqueued; Dropped is the only loss, and only
// MaxPending overflow (or Close with undeliverable messages) causes it.
type BatchStats struct {
	// Acked is messages the server acknowledged OK.
	Acked uint64
	// Rejected is messages the server refused (allowlist, signature).
	Rejected uint64
	// Requeued is messages returned to the queue after their connection
	// died before acknowledgement — each one a survived transport fault.
	Requeued uint64
	// Dropped is messages shed by the MaxPending backstop or abandoned
	// by Close after a failed final drain.
	Dropped uint64
	// Redials is reconnections after a connection failure.
	Redials uint64
}

// Stats returns a snapshot of the client's delivery accounting — a view
// over the same instruments the metrics registry exposes.
func (c *BatchClient) Stats() BatchStats {
	return BatchStats{
		Acked:    c.acked.Value(),
		Rejected: c.rejected.Value(),
		Requeued: c.requeued.Value(),
		Dropped:  c.dropped.Value(),
		Redials:  c.redials.Value(),
	}
}

// CloseHarvest closes the client immediately and returns every
// undelivered message — the pending buffer plus any batches written but
// not yet acknowledged, in submission order — instead of draining or
// dropping them. It exists for re-routing: when a federation shard
// leaves (or dies), the router harvests the shard's queue and re-enqueues
// it toward the new owners, preserving at-least-once delivery across the
// membership change. Harvested messages are not counted in
// Stats().Dropped; custody transfers to the caller.
func (c *BatchClient) CloseHarvest() []*Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errMu.Lock()
	c.closed = true
	c.errMu.Unlock()
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	// resetConnLocked waits out the ack reader and requeues unacknowledged
	// in-flight batches ahead of pending, so the harvest is race-free and
	// ordered. (A batch whose ack vector was in flight may be harvested
	// anyway and redelivered — the usual at-least-once trade.)
	c.resetConnLocked()
	out := c.pending
	c.pending = nil
	return out
}

// Close drains outstanding batches and closes the connection. Messages
// that still cannot be delivered by the final drain are abandoned and
// counted in Stats().Dropped.
func (c *BatchClient) Close() error {
	err := c.Drain()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errMu.Lock()
	c.closed = true
	c.errMu.Unlock()
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.resetConnLocked()
	if n := len(c.pending); n > 0 {
		c.dropped.Add(uint64(n))
		c.pending = nil
	}
	return err
}
