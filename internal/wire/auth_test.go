package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	key := []byte("shared-secret")
	m := &Message{Branch: "r=1,vo=tg", Hostname: "login1", Report: []byte("<r>x</r>")}
	SignMessage(m, key)
	if len(m.Signature) == 0 {
		t.Fatal("no signature attached")
	}
	if !Verify(m, key) {
		t.Fatal("valid signature rejected")
	}
	if Verify(m, []byte("wrong-key")) {
		t.Fatal("wrong key accepted")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key := []byte("k")
	base := &Message{Branch: "r=1", Hostname: "h", Report: []byte("<r>ok</r>")}
	SignMessage(base, key)
	tampered := []*Message{
		{Branch: "r=2", Hostname: base.Hostname, Report: base.Report, Signature: base.Signature},
		{Branch: base.Branch, Hostname: "evil", Report: base.Report, Signature: base.Signature},
		{Branch: base.Branch, Hostname: base.Hostname, Report: []byte("<r>bad</r>"), Signature: base.Signature},
		{Branch: base.Branch, Hostname: base.Hostname, Report: base.Report}, // missing sig
	}
	for i, m := range tampered {
		if Verify(m, key) {
			t.Errorf("tampered message %d verified", i)
		}
	}
}

func TestSignatureFieldBoundaries(t *testing.T) {
	// Moving a byte between adjacent fields must change the signature
	// (length-prefixed MAC input prevents field-boundary confusion).
	key := []byte("k")
	a := &Message{Branch: "ab", Hostname: "c", Report: []byte("d")}
	b := &Message{Branch: "a", Hostname: "bc", Report: []byte("d")}
	if bytes.Equal(Sign(a, key), Sign(b, key)) {
		t.Fatal("field-boundary collision")
	}
}

func TestSignedMessageRoundTrip(t *testing.T) {
	key := []byte("secret")
	m := &Message{Branch: "r=1", Hostname: "h", Report: []byte("<r/>")}
	SignMessage(m, key)
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(got, key) {
		t.Fatal("signature lost in transit")
	}
}

func TestUnsignedMessageRoundTripKeepsNilSignature(t *testing.T) {
	m := &Message{Branch: "r=1", Hostname: "h", Report: []byte("<r/>")}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signature != nil {
		t.Fatalf("phantom signature %x", got.Signature)
	}
}

func TestSignDeterministicProperty(t *testing.T) {
	f := func(branch, host string, body []byte, key []byte) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		m := &Message{Branch: branch, Hostname: host, Report: body}
		return bytes.Equal(Sign(m, key), Sign(m, key)) && Verify(&Message{
			Branch: branch, Hostname: host, Report: body, Signature: Sign(m, key),
		}, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndAuthenticatedServer(t *testing.T) {
	key := []byte("deployment-secret")
	srv, err := Serve("127.0.0.1:0", func(m *Message, remote string) *Ack {
		if !Verify(m, key) {
			return &Ack{OK: false, Message: "bad signature"}
		}
		return &Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()

	m := &Message{Branch: "r=1", Hostname: "h", Report: []byte("<r/>")}
	SignMessage(m, key)
	ack, err := c.Send(m)
	if err != nil || !ack.OK {
		t.Fatalf("signed send: %v %+v", err, ack)
	}
	unsigned := &Message{Branch: "r=1", Hostname: "h", Report: []byte("<r/>")}
	ack, err = c.Send(unsigned)
	if err != nil {
		t.Fatal(err)
	}
	if ack.OK {
		t.Fatal("unsigned message accepted by authenticating server")
	}
}
