// Package wire implements the TCP protocol between distributed controllers
// and the centralized controller (paper Section 3.1.3: "The distributed
// controller communicates a report to the Inca server along with its branch
// identifier using a TCP connection").
//
// Frames are length-prefixed:
//
//	uint32 branchLen | branch bytes | uint32 reportLen | report bytes
//
// The server answers each frame with an ack frame:
//
//	uint8 status (0 ok, 1 error) | uint32 msgLen | message bytes
//
// A batch frame carries many messages under one flush (see batch.go); the
// sentinel first word 0xFFFFFFFF — never a legal branch length, since
// parts are capped at MaxFrame — distinguishes it from a single-message
// frame, so both coexist on one connection and old clients keep working.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame bounds a single report message (16 MiB), protecting the server
// from malformed length prefixes.
const MaxFrame = 16 << 20

// Message is one report submission.
type Message struct {
	// Branch is the textual branch identifier.
	Branch string
	// Hostname is the sending resource, checked against the server's
	// allowlist (the paper verifies the connecting host before accepting).
	Hostname string
	// Report is the serialized report XML.
	Report []byte
	// Signature optionally authenticates the message under the host's
	// shared secret (see auth.go); empty when authentication is not
	// configured.
	Signature []byte
}

// WriteMessage writes one framed message.
func WriteMessage(w io.Writer, m *Message) error {
	for _, part := range [][]byte{[]byte(m.Branch), []byte(m.Hostname), m.Report, m.Signature} {
		if len(part) > MaxFrame {
			return fmt.Errorf("wire: frame part of %d bytes exceeds limit", len(part))
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(part)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(part); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	m, _, err := readMessage(r, nil)
	return m, err
}

// readMessage reads one framed message. The transient parts (branch and
// hostname, which become strings anyway) pass through scratch — grown as
// needed and returned for reuse across the messages of one connection — so
// only the retained parts (report, signature) get fresh allocations.
func readMessage(r io.Reader, scratch []byte) (*Message, []byte, error) {
	var lenBuf [4]byte
	readPart := func(retain bool) ([]byte, error) {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, err
		}
		n := int(binary.BigEndian.Uint32(lenBuf[:]))
		if n > MaxFrame {
			return nil, fmt.Errorf("wire: frame part of %d bytes exceeds limit", n)
		}
		buf := scratch
		if retain {
			buf = make([]byte, n)
		} else if cap(buf) < n {
			buf = make([]byte, n)
			scratch = buf
		} else {
			buf = buf[:n]
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	var m Message
	part, err := readPart(false)
	if err != nil {
		return nil, scratch, err
	}
	m.Branch = string(part)
	if part, err = readPart(false); err != nil {
		return nil, scratch, err
	}
	m.Hostname = string(part)
	if m.Report, err = readPart(true); err != nil {
		return nil, scratch, err
	}
	if part, err = readPart(true); err != nil {
		return nil, scratch, err
	}
	if len(part) > 0 {
		m.Signature = part
	}
	return &m, scratch, nil
}

// Ack is the server's response to one message.
type Ack struct {
	OK      bool
	Message string
}

// WriteAck writes an ack frame.
func WriteAck(w io.Writer, a *Ack) error {
	status := byte(1)
	if a.OK {
		status = 0
	}
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	msg := []byte(a.Message)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadAck reads an ack frame.
func ReadAck(r io.Reader) (*Ack, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: ack message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return &Ack{OK: status[0] == 0, Message: string(msg)}, nil
}

// Client is a connection from a distributed controller to the centralized
// controller. It reconnects lazily after errors and is safe for concurrent
// use (sends are serialized, as all traffic from one resource flows over
// one connection in the deployed system).
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

// NewClient returns a client that will dial addr on first use.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Send submits one message and waits for the server's ack. A transport
// error closes the connection so the next Send redials.
func (c *Client) Send(m *Message) (*Ack, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
		}
		c.conn = conn
		c.bw = bufio.NewWriter(conn)
		c.br = bufio.NewReader(conn)
	}
	fail := func(err error) (*Ack, error) {
		c.conn.Close()
		c.conn = nil
		return nil, err
	}
	if err := WriteMessage(c.bw, m); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	ack, err := ReadAck(c.br)
	if err != nil {
		return fail(err)
	}
	return ack, nil
}

// Close closes the underlying connection if open.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Handler processes one received message and returns the ack to send.
type Handler func(m *Message, remoteAddr string) *Ack

// Server accepts distributed-controller connections.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a server on addr (e.g. "127.0.0.1:0"). It returns once the
// listener is ready; handling proceeds in background goroutines.
func Serve(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	remote := conn.RemoteAddr().String()
	var scratch []byte // reused across this connection's frames
	for {
		batch, err := peekBatch(br)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		if batch {
			var msgs []*Message
			msgs, scratch, err = readBatch(br, scratch)
			if err != nil {
				return
			}
			acks := make([]*Ack, len(msgs))
			for i, msg := range msgs {
				ack := s.handler(msg, remote)
				if ack == nil {
					ack = &Ack{OK: true}
				}
				acks[i] = ack
			}
			if err := WriteAckVector(bw, acks); err != nil {
				return
			}
		} else {
			var msg *Message
			msg, scratch, err = readMessage(br, scratch)
			if err != nil {
				return
			}
			ack := s.handler(msg, remote)
			if ack == nil {
				ack = &Ack{OK: true}
			}
			if err := WriteAck(bw, ack); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting, closes every live connection, and returns once
// the listener is down and every in-flight handler has finished — after
// Close no handler call is running or will run, so callers may tear down
// whatever the handler writes to.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
