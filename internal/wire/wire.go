// Package wire implements the TCP protocol between distributed controllers
// and the centralized controller (paper Section 3.1.3: "The distributed
// controller communicates a report to the Inca server along with its branch
// identifier using a TCP connection").
//
// Frames are length-prefixed:
//
//	uint32 branchLen | branch bytes | uint32 reportLen | report bytes
//
// The server answers each frame with an ack frame:
//
//	uint8 status (0 ok, 1 error) | uint32 msgLen | message bytes
//
// A batch frame carries many messages under one flush (see batch.go); the
// sentinel first word 0xFFFFFFFF — never a legal branch length, since
// parts are capped at MaxFrame — distinguishes it from a single-message
// frame, so both coexist on one connection and old clients keep working.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"inca/internal/metrics"
)

// MaxFrame bounds a single report message (16 MiB), protecting the server
// from malformed length prefixes.
const MaxFrame = 16 << 20

// Message is one report submission.
type Message struct {
	// Branch is the textual branch identifier.
	Branch string
	// Hostname is the sending resource, checked against the server's
	// allowlist (the paper verifies the connecting host before accepting).
	Hostname string
	// Report is the serialized report XML.
	Report []byte
	// Signature optionally authenticates the message under the host's
	// shared secret (see auth.go); empty when authentication is not
	// configured.
	Signature []byte
}

// WriteMessage writes one framed message.
func WriteMessage(w io.Writer, m *Message) error {
	for _, part := range [][]byte{[]byte(m.Branch), []byte(m.Hostname), m.Report, m.Signature} {
		if len(part) > MaxFrame {
			return fmt.Errorf("wire: frame part of %d bytes exceeds limit", len(part))
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(part)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(part); err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	m, _, err := readMessage(r, nil)
	return m, err
}

// readMessage reads one framed message. The transient parts (branch and
// hostname, which become strings anyway) pass through scratch — grown as
// needed and returned for reuse across the messages of one connection — so
// only the retained parts (report, signature) get fresh allocations.
func readMessage(r io.Reader, scratch []byte) (*Message, []byte, error) {
	var lenBuf [4]byte
	readPart := func(retain bool) ([]byte, error) {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, err
		}
		n := int(binary.BigEndian.Uint32(lenBuf[:]))
		if n > MaxFrame {
			return nil, fmt.Errorf("wire: frame part of %d bytes exceeds limit", n)
		}
		buf := scratch
		if retain {
			buf = make([]byte, n)
		} else if cap(buf) < n {
			buf = make([]byte, n)
			scratch = buf
		} else {
			buf = buf[:n]
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	var m Message
	part, err := readPart(false)
	if err != nil {
		return nil, scratch, err
	}
	m.Branch = string(part)
	if part, err = readPart(false); err != nil {
		return nil, scratch, err
	}
	m.Hostname = string(part)
	if m.Report, err = readPart(true); err != nil {
		return nil, scratch, err
	}
	if part, err = readPart(true); err != nil {
		return nil, scratch, err
	}
	if len(part) > 0 {
		m.Signature = part
	}
	return &m, scratch, nil
}

// Ack is the server's response to one message.
type Ack struct {
	OK      bool
	Message string
}

// WriteAck writes an ack frame.
func WriteAck(w io.Writer, a *Ack) error {
	status := byte(1)
	if a.OK {
		status = 0
	}
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	msg := []byte(a.Message)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// ReadAck reads an ack frame.
func ReadAck(r io.Reader) (*Ack, error) {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: ack message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return &Ack{OK: status[0] == 0, Message: string(msg)}, nil
}

// RetryPolicy bounds how a client retries a failed send. Backoff between
// attempts is exponential with full jitter: attempt n sleeps a uniform
// random duration in [0, min(Cap, Base·2ⁿ)], so a fleet of agents cut off
// by one controller restart does not reconnect in lockstep.
type RetryPolicy struct {
	// Max is the total number of attempts per Send (default 1 = no retry).
	Max int
	// Base is the backoff before the first retry (default 100ms).
	Base time.Duration
	// Cap bounds the backoff growth (default 5s).
	Cap time.Duration
}

func (p *RetryPolicy) fill() {
	if p.Max <= 0 {
		p.Max = 1
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
}

// Backoff returns the jittered sleep before retry number n (1-based):
// uniform random in [0, min(Cap, Base·2ⁿ⁻¹)].
func (p RetryPolicy) Backoff(n int) time.Duration {
	d := p.Base
	for i := 1; i < n && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

// ClientOptions configures the delivery robustness of a Client.
type ClientOptions struct {
	// DialTimeout bounds each connection attempt (default 10s).
	DialTimeout time.Duration
	// IOTimeout bounds each write-message/read-ack step (default 30s;
	// <0 disables deadlines). A hung server then surfaces as a timeout
	// error instead of wedging the caller forever.
	IOTimeout time.Duration
	// Retry bounds in-Send retries. The zero value means a single
	// attempt; spooling callers (agent.WireSink) keep it small and let
	// the spool's own backoff loop own long-horizon redelivery.
	Retry RetryPolicy
	// Metrics, when set, registers the client's counters and per-attempt
	// send-latency histogram there; Stats() reads the same instruments, so
	// JSON and Prometheus views always agree. Clients sharing a registry
	// merge their series.
	Metrics *metrics.Registry
}

func (o *ClientOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = 30 * time.Second
	}
	o.Retry.fill()
}

// ClientStats counts a client's delivery work.
type ClientStats struct {
	// Dials is every connection attempt, successful or not.
	Dials uint64
	// Reconnects is dials after the first successful connection — each
	// one is a recovered transport failure.
	Reconnects uint64
	// Retries is in-Send attempts beyond each message's first.
	Retries uint64
	// Sent is messages acknowledged by the server (OK or not).
	Sent uint64
}

// Client is a connection from a distributed controller to the centralized
// controller. It reconnects lazily after errors and is safe for concurrent
// use (sends are serialized, as all traffic from one resource flows over
// one connection in the deployed system).
type Client struct {
	addr string
	opt  ClientOptions

	mu        sync.Mutex
	conn      net.Conn
	bw        *bufio.Writer
	br        *bufio.Reader
	connected bool // a dial has succeeded at least once

	dials      *metrics.Counter
	reconnects *metrics.Counter
	retries    *metrics.Counter
	sent       *metrics.Counter
	sendH      *metrics.Histogram
}

// NewClient returns a client that will dial addr on first use, with
// default deadlines and no retry.
func NewClient(addr string) *Client { return NewClientOptions(addr, ClientOptions{}) }

// NewClientOptions returns a client with explicit timeout/retry behavior.
func NewClientOptions(addr string, opt ClientOptions) *Client {
	opt.fill()
	reg := opt.Metrics
	return &Client{
		addr:       addr,
		opt:        opt,
		dials:      reg.Counter("inca_wire_client_dials_total", "Connection attempts, successful or not."),
		reconnects: reg.Counter("inca_wire_client_reconnects_total", "Dials after the first successful connection."),
		retries:    reg.Counter("inca_wire_client_retries_total", "In-Send attempts beyond each message's first."),
		sent:       reg.Counter("inca_wire_client_sent_total", "Messages acknowledged by the server (OK or not)."),
		sendH:      reg.Histogram("inca_wire_send_seconds", "Per-attempt send latency: dial if needed, write, await ack.", nil),
	}
}

// Send submits one message and waits for the server's ack, retrying
// transport failures up to the client's RetryPolicy with jittered
// exponential backoff. Every attempt runs under the configured dial and
// I/O deadlines. A transport error closes the connection so the next
// attempt redials. Note the at-least-once consequence: an error after the
// frame hit the wire (lost ack) retries a message the server may already
// have processed.
func (c *Client) Send(m *Message) (*Ack, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= c.opt.Retry.Max; attempt++ {
		if attempt > 1 {
			c.retries.Inc()
			time.Sleep(c.opt.Retry.Backoff(attempt - 1))
		}
		start := time.Now()
		ack, err := c.sendOnceLocked(m)
		c.sendH.ObserveSince(start)
		if err == nil {
			c.sent.Inc()
			return ack, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (c *Client) sendOnceLocked(m *Message) (*Ack, error) {
	if c.conn == nil {
		c.dials.Inc()
		if c.connected {
			c.reconnects.Inc()
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
		}
		c.conn = conn
		c.connected = true
		c.bw = bufio.NewWriter(conn)
		c.br = bufio.NewReader(conn)
	}
	fail := func(err error) (*Ack, error) {
		c.conn.Close()
		c.conn = nil
		return nil, err
	}
	if err := c.setDeadlineLocked(); err != nil {
		return fail(err)
	}
	if err := WriteMessage(c.bw, m); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	ack, err := ReadAck(c.br)
	if err != nil {
		return fail(err)
	}
	return ack, nil
}

// setDeadlineLocked arms the per-attempt I/O deadline covering the
// write-and-await-ack round trip.
func (c *Client) setDeadlineLocked() error {
	if c.opt.IOTimeout < 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.opt.IOTimeout))
}

// Stats returns a snapshot of the client's delivery counters — a view
// over the same instruments the metrics registry exposes.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Dials:      c.dials.Value(),
		Reconnects: c.reconnects.Value(),
		Retries:    c.retries.Value(),
		Sent:       c.sent.Value(),
	}
}

// Close closes the underlying connection if open.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Handler processes one received message and returns the ack to send.
type Handler func(m *Message, remoteAddr string) *Ack

// ServerOptions configures connection hygiene on the server side.
type ServerOptions struct {
	// IdleTimeout is the per-connection read deadline: how long the
	// server waits for the next frame (or the rest of a partial frame)
	// before dropping the connection. Zero means wait forever — the
	// pre-robustness behavior, where a dead peer pins its goroutine
	// until process exit.
	IdleTimeout time.Duration
	// Metrics, when set, registers the server's connection and frame
	// counters there; Stats() reads the same instruments.
	Metrics *metrics.Registry
}

// ServerStats counts server-side connection and frame activity; surfaced
// on the querying interface's /debug/vars as the delivery_* group.
type ServerStats struct {
	// ConnsAccepted is every distributed-controller connection accepted.
	ConnsAccepted uint64
	// ConnsIdleClosed is connections dropped by the idle read deadline.
	ConnsIdleClosed uint64
	// Messages is report messages received (batched or not).
	Messages uint64
	// Batches is batch frames received.
	Batches uint64
}

// Server accepts distributed-controller connections.
type Server struct {
	ln      net.Listener
	handler Handler
	opt     ServerOptions
	wg      sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	connsAccepted   *metrics.Counter
	connsIdleClosed *metrics.Counter
	messages        *metrics.Counter
	batches         *metrics.Counter
}

// Serve starts a server on addr (e.g. "127.0.0.1:0"). It returns once the
// listener is ready; handling proceeds in background goroutines.
func Serve(addr string, h Handler) (*Server, error) {
	return ServeOptions(addr, h, ServerOptions{})
}

// ServeOptions starts a server with explicit connection options.
func ServeOptions(addr string, h Handler, opt ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := opt.Metrics
	s := &Server{
		ln: ln, handler: h, opt: opt, conns: make(map[net.Conn]struct{}),
		connsAccepted:   reg.Counter("inca_wire_server_connections_total", "Distributed-controller connections accepted."),
		connsIdleClosed: reg.Counter("inca_wire_server_idle_closed_total", "Connections dropped by the idle read deadline."),
		messages:        reg.Counter("inca_wire_server_messages_total", "Report messages received, batched or not."),
		batches:         reg.Counter("inca_wire_server_batches_total", "Batch frames received."),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connsAccepted.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	remote := conn.RemoteAddr().String()
	var scratch []byte // reused across this connection's frames
	idleClose := func(err error) {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			s.connsIdleClosed.Inc()
		}
	}
	for {
		// Arm the idle deadline per frame: it covers both waiting for the
		// next frame and draining a frame a dead peer abandoned halfway,
		// so a stalled connection cannot pin this goroutine forever.
		if s.opt.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.opt.IdleTimeout)); err != nil {
				return
			}
		}
		batch, err := peekBatch(br)
		if err != nil {
			idleClose(err)
			return // EOF, deadline, or protocol error: drop the connection
		}
		if batch {
			var msgs []*Message
			msgs, scratch, err = readBatch(br, scratch)
			if err != nil {
				idleClose(err)
				return
			}
			s.batches.Inc()
			s.messages.Add(uint64(len(msgs)))
			acks := make([]*Ack, len(msgs))
			for i, msg := range msgs {
				ack := s.handler(msg, remote)
				if ack == nil {
					ack = &Ack{OK: true}
				}
				acks[i] = ack
			}
			if err := WriteAckVector(bw, acks); err != nil {
				return
			}
		} else {
			var msg *Message
			msg, scratch, err = readMessage(br, scratch)
			if err != nil {
				idleClose(err)
				return
			}
			s.messages.Inc()
			ack := s.handler(msg, remote)
			if ack == nil {
				ack = &Ack{OK: true}
			}
			if err := WriteAck(bw, ack); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Stats returns a snapshot of the server's connection and frame counters —
// a view over the same instruments the metrics registry exposes.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		ConnsAccepted:   s.connsAccepted.Value(),
		ConnsIdleClosed: s.connsIdleClosed.Value(),
		Messages:        s.messages.Value(),
		Batches:         s.batches.Value(),
	}
}

// Close stops accepting, closes every live connection, and returns once
// the listener is down and every in-flight handler has finished — after
// Close no handler call is running or will run, so callers may tear down
// whatever the handler writes to.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
