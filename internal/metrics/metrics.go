// Package metrics is a process-local, stdlib-only instrument set for the
// white-box monitoring the paper's operational story leans on (Section 5:
// availability series and controller resource usage are *measured*, so the
// harness itself must be measurable). It follows the Borgmon/Prometheus
// discipline — counters, gauges, and fixed-bucket latency histograms — with
// Prometheus text-format exposition (expose.go) on GET /metrics.
//
// There is deliberately no global registry: tests and embedded servers
// construct several pipelines in one process, and a process-global map would
// make their series collide — the same constraint that forced the
// self-rendered /debug/vars in internal/query. Instead every subsystem takes
// an optional *Registry; the embedding daemon shares one across the whole
// pipeline so a single scrape covers agent → wire → controller → depot →
// query.
//
// All registration methods are safe on a nil *Registry: they return working
// (but unexposed) instruments, so instrumented code never nil-checks and the
// same instrument feeds both the legacy Stats()/DebugVars views and the
// Prometheus output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is an instrument family's type, mirroring the Prometheus TYPE line.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefBuckets are the default latency-histogram upper bounds (seconds),
// spanning in-process work (cache inserts settle in microseconds) through
// network round trips and backoff waits. Fixed buckets keep Observe O(log n)
// with no allocation — the always-on-profiling constraint.
var DefBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 (depths, sizes, entry counts). Float-valued
// gauges are registered as GaugeFunc instead.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets hold per-interval
// counts internally and render cumulatively (Prometheus `le` semantics);
// Observe is lock-free: one binary search, one bucket increment, one CAS
// loop folding the value into the sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf above
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram buckets not ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the common
// latency-timing call: defer-free, one time.Since.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), h.Sum()
}

// instrument is anything a family can hold.
type instrument interface{}

// series is one (labels, instrument) pair within a family.
type series struct {
	labels string // rendered {k="v",...} suffix, "" when unlabeled
	inst   instrument
}

// family groups the series sharing one metric name (one TYPE/HELP block in
// the exposition).
type family struct {
	name   string
	help   string
	kind   Kind
	series []series // registration order
}

func (f *family) find(labels string) instrument {
	for i := range f.series {
		if f.series[i].labels == labels {
			return f.series[i].inst
		}
	}
	return nil
}

// Registry holds instrument families for one pipeline. The zero value is
// not useful; construct with NewRegistry. A nil *Registry is a valid
// receiver for every registration method (instruments work, nothing is
// exposed), so subsystems instrument unconditionally.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// get returns the named family, creating it with the given kind and help on
// first registration. Re-registering an existing name with a different kind
// is a programming error and panics (the exposition could not type the
// family consistently).
func (r *Registry) get(name, help string, kind Kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, re-registered as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter registered under name with the given label
// pairs, creating it on first use. labels alternate key, value. Safe on a
// nil registry (returns a working, unexposed counter).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindCounter)
	if inst := f.find(sig); inst != nil {
		return inst.(*Counter)
	}
	c := &Counter{}
	f.series = append(f.series, series{labels: sig, inst: c})
	return c
}

// Gauge returns the gauge registered under name with the given label pairs,
// creating it on first use. Safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindGauge)
	if inst := f.find(sig); inst != nil {
		return inst.(*Gauge)
	}
	g := &Gauge{}
	f.series = append(f.series, series{labels: sig, inst: g})
	return g
}

// gaugeFunc wraps a callback sampled at exposition time — for values some
// other structure already maintains (spool depth, cache size, next-fire
// lag), where pushing updates would duplicate state.
type gaugeFunc struct{ fn func() float64 }

// GaugeFunc registers a callback-backed gauge. The callback runs on every
// scrape, so it must be cheap and safe for concurrent use. A duplicate
// (name, labels) registration keeps the first callback. No-op on a nil
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindGauge)
	if f.find(sig) != nil {
		return
	}
	f.series = append(f.series, series{labels: sig, inst: gaugeFunc{fn}})
}

// Histogram returns the histogram registered under name with the given
// label pairs, creating it with the bucket bounds on first use (nil buckets
// = DefBuckets). Later registrations reuse the first instrument, bounds
// included. Safe on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.get(name, help, KindHistogram)
	if inst := f.find(sig); inst != nil {
		return inst.(*Histogram)
	}
	h := newHistogram(buckets)
	f.series = append(f.series, series{labels: sig, inst: h})
	return h
}

// labelSig renders alternating key, value pairs as the canonical
// {k="v",...} sample suffix. Pairs are sorted by key so the same label set
// always maps to the same series regardless of argument order.
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list (want alternating key, value)")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) {
			panic(fmt.Sprintf("metrics: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
