package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text format,
// families in registration order, series within a family in registration
// order. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	// Series slices are append-only under mu; copy the headers so rendering
	// (which reads atomics only) happens outside the lock.
	snaps := make([][]series, len(fams))
	for i, f := range fams {
		snaps[i] = append([]series(nil), f.series...)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for i, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range snaps[i] {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, f *family, s series) {
	switch inst := s.inst.(type) {
	case *Counter:
		fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, inst.Value())
	case *Gauge:
		fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, inst.Value())
	case gaugeFunc:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(inst.fn()))
	case *Histogram:
		cum, count, sum := inst.snapshot()
		for bi, bound := range inst.bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLabel(s.labels, "le", formatFloat(bound)), cum[bi])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, withLabel(s.labels, "le", "+Inf"), cum[len(cum)-1])
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, count)
	}
}

// withLabel splices one more label pair into an already-rendered label
// suffix ("" or "{a=\"b\"}").
func withLabel(sig, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if sig == "" {
		return "{" + pair + "}"
	}
	return sig[:len(sig)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline only (quotes are legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns the GET /metrics handler serving the text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", TextContentType)
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}

// Lint validates a text exposition: sample-line syntax, TYPE consistency,
// histogram bucket monotonicity and +Inf presence, and _count matching the
// +Inf bucket. It returns the set of metric family names seen. Shared by
// the package tests and the end-to-end metrics smoke test, so "the
// exposition parses" means the same thing in both.
func Lint(text string) (names map[string]string, err error) {
	names = make(map[string]string) // family -> type
	type histState struct {
		last    float64
		lastVal uint64
		sawInf  bool
		infVal  uint64
		count   uint64
		sawCnt  bool
	}
	hists := make(map[string]*histState) // per-series histogram checks
	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !validName(parts[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			if prev, dup := names[parts[0]]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, parts[0], prev)
			}
			names[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		fam, le := name, ""
		if i := strings.Index(labels, `le="`); i >= 0 {
			rest := labels[i+4:]
			if j := strings.Index(rest, `"`); j >= 0 {
				le = rest[:j]
			}
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && names[base] == "histogram" {
				fam = base
			}
		}
		if _, ok := names[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %s before its TYPE line", lineNo, name)
		}
		if names[fam] == "histogram" {
			key := fam + "|" + stripLe(labels)
			hs := hists[key]
			if hs == nil {
				hs = &histState{last: math.Inf(-1)}
				hists[key] = hs
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				n := uint64(value)
				if le == "+Inf" {
					hs.sawInf, hs.infVal = true, n
					if n < hs.lastVal {
						return nil, fmt.Errorf("line %d: %s +Inf bucket %d below previous %d", lineNo, fam, n, hs.lastVal)
					}
					break
				}
				bound, berr := strconv.ParseFloat(le, 64)
				if berr != nil {
					return nil, fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
				if bound <= hs.last {
					return nil, fmt.Errorf("line %d: %s buckets not ascending (%g after %g)", lineNo, fam, bound, hs.last)
				}
				if n < hs.lastVal {
					return nil, fmt.Errorf("line %d: %s bucket counts not cumulative", lineNo, fam)
				}
				hs.last, hs.lastVal = bound, n
			case strings.HasSuffix(name, "_count"):
				hs.count, hs.sawCnt = uint64(value), true
			}
		}
	}
	for key, hs := range hists {
		fam := key[:strings.Index(key, "|")]
		if !hs.sawInf {
			return nil, fmt.Errorf("histogram %s missing +Inf bucket", fam)
		}
		if hs.sawCnt && hs.count != hs.infVal {
			return nil, fmt.Errorf("histogram %s _count %d != +Inf bucket %d", fam, hs.count, hs.infVal)
		}
	}
	return names, nil
}

// parseSample splits `name{labels} value` (labels optional) and validates
// each part.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if labels != "" {
		fields := strings.Fields(rest)
		if len(fields) != 1 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		rest = fields[0]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q in %q", rest, line)
	}
	return name, labels, value, nil
}

// stripLe removes the le pair (and its separating comma) from a label
// suffix so every sample of one histogram series — buckets, _sum, _count —
// shares a state key.
func stripLe(labels string) string {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return labels
	}
	rest := labels[i+4:]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return labels
	}
	out := labels[:i] + rest[j+1:]
	out = strings.ReplaceAll(out, `",,`, `",`) // pair was mid-list
	out = strings.ReplaceAll(out, `{,`, `{`)   // pair was first
	out = strings.ReplaceAll(out, `,}`, `}`)   // pair was last
	if out == "{}" {
		return ""
	}
	return out
}

// Names returns the registered family names, sorted — used by the smoke
// test's presence assertions.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
