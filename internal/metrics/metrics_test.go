package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("inca_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("inca_test_depth", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Get-or-create: same name+labels returns the same instrument.
	if r.Counter("inca_test_total", "help") != c {
		t.Fatal("second Counter registration returned a new instrument")
	}
	if r.Gauge("inca_test_depth", "help") != g {
		t.Fatal("second Gauge registration returned a new instrument")
	}
	// Different labels → different series.
	if r.Counter("inca_test_total", "help", "k", "v") == c {
		t.Fatal("labeled Counter aliased the unlabeled one")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("inca_test_total", "", "a", "1", "b", "2")
	b := r.Counter("inca_test_total", "", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter does not count")
	}
	g := r.Gauge("x", "")
	g.Set(3)
	if g.Value() != 3 {
		t.Fatal("nil-registry gauge does not hold")
	}
	h := r.Histogram("x_seconds", "", nil)
	h.Observe(0.1)
	if h.Count() != 1 {
		t.Fatal("nil-registry histogram does not observe")
	}
	r.GaugeFunc("x_fn", "", func() float64 { return 1 })
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteText = (%q, %v), want empty, nil", buf.String(), err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inca_test_seconds", "help", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	cum, count, _ := h.snapshot()
	// le=0.01 catches 0.005 and 0.01 (le is inclusive); le=0.1 adds 0.05;
	// le=1 adds 0.5; +Inf adds 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 5 {
		t.Fatalf("snapshot count = %d, want 5", count)
	}
}

func TestObserveSince(t *testing.T) {
	var r *Registry
	h := r.Histogram("x_seconds", "", nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("ObserveSince recorded count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("inca_reqs_total", "Requests handled.").Add(3)
	r.Counter("inca_reqs_total", "Requests handled.", "handler", "cache").Add(2)
	r.Gauge("inca_depth", "Spool depth.").Set(9)
	r.GaugeFunc("inca_lag_seconds", "Next-fire lag.", func() float64 { return 1.5 })
	h := r.Histogram("inca_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)

	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP inca_reqs_total Requests handled.\n",
		"# TYPE inca_reqs_total counter\n",
		"inca_reqs_total 3\n",
		`inca_reqs_total{handler="cache"} 2` + "\n",
		"# TYPE inca_depth gauge\n",
		"inca_depth 9\n",
		"inca_lag_seconds 1.5\n",
		`inca_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`inca_lat_seconds_bucket{le="1"} 1` + "\n",
		`inca_lat_seconds_bucket{le="+Inf"} 2` + "\n",
		"inca_lat_seconds_sum 2.05\n",
		"inca_lat_seconds_count 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := Lint(text); err != nil {
		t.Fatalf("Lint rejected own exposition: %v\n%s", err, text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("inca_x_total", "", "path", `a"b\c`+"\n").Inc()
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `inca_x_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong:\n%s\nwant substring %q", buf.String(), want)
	}
	if _, err := Lint(buf.String()); err != nil {
		t.Fatalf("Lint rejected escaped labels: %v", err)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("inca_x_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "inca_x_total 1") {
		t.Fatalf("handler body missing sample:\n%s", body)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestLintCatchesBadExpositions(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"garbage value", "# TYPE x counter\nx pony\n"},
		{"sample before TYPE", "x 1\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x gauge\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="1"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n"},
		{"missing +Inf", "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n"},
	}
	for _, tc := range cases {
		if _, err := Lint(tc.text); err == nil {
			t.Errorf("%s: Lint accepted bad exposition", tc.name)
		}
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("inca_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("inca_x_total", "")
}

// TestConcurrent hammers one registry from many goroutines — registration,
// observation, and exposition all racing. Run under -race.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := r.Counter("inca_conc_total", "")
			h := r.Histogram("inca_conc_seconds", "", nil)
			g := r.Gauge("inca_conc_depth", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				g.Set(int64(j))
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var buf strings.Builder
			if err := r.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := Lint(buf.String()); err != nil {
				t.Errorf("mid-race exposition invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("inca_conc_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("inca_conc_seconds", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
