package agent

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"inca/internal/wire"
)

// Spool is the bounded store-and-forward queue between the agent's
// reporter executions and the wire delivery loop: every Submit lands here
// immediately (the scheduler never waits on the network), and the
// delivery loop replays entries to the centralized controller in
// submission order, removing each only after it is acknowledged — the
// at-least-once half of the reliable-delivery guarantee.
//
// Memory is bounded by MemLimitBytes. When the in-memory queue is full,
// entries overflow to an append-only file of ordinary wire frames under
// Dir; with no Dir configured the oldest entry is shed instead and
// counted — the spool never blocks a Put and never sheds silently. Disk
// entries survive a crash: NewSpool rescans the overflow file, so reports
// spooled by a previous agent process are replayed after restart.
type Spool struct {
	opt SpoolOptions

	mu       sync.Mutex
	mem      []*wire.Message
	memBytes int
	notify   chan struct{} // closed and replaced on every Put (broadcast)
	closed   bool

	f         *os.File
	diskCount int
	readOff   int64
	writeOff  int64

	spooled    uint64
	dropped    uint64
	overflowed uint64
}

// SpoolOptions configures a Spool.
type SpoolOptions struct {
	// MemLimitBytes bounds the in-memory queue by summed report bytes
	// (default 8 MiB).
	MemLimitBytes int
	// Dir, when set, enables disk overflow into Dir/spool.dat.
	Dir string
	// DiskLimitBytes bounds the overflow file (default 256 MiB). Beyond
	// it — or when Dir is empty — the oldest queued entry is shed.
	DiskLimitBytes int64
}

func (o *SpoolOptions) fill() {
	if o.MemLimitBytes <= 0 {
		o.MemLimitBytes = 8 << 20
	}
	if o.DiskLimitBytes <= 0 {
		o.DiskLimitBytes = 256 << 20
	}
}

// SpoolStats is a snapshot of spool accounting. Spooled − Dropped −
// delivered = Depth at any quiescent point.
type SpoolStats struct {
	// Spooled is entries accepted by Put.
	Spooled uint64
	// Dropped is entries shed to respect the memory/disk bounds.
	Dropped uint64
	// Overflowed is entries that went through the disk file.
	Overflowed uint64
	// Depth is entries currently queued (memory + disk).
	Depth int
}

// spoolFile is the overflow file name under SpoolOptions.Dir.
const spoolFile = "spool.dat"

// NewSpool opens a spool. With a Dir configured, entries left over by a
// previous process are recovered and will be replayed first.
func NewSpool(opt SpoolOptions) (*Spool, error) {
	opt.fill()
	s := &Spool{opt: opt, notify: make(chan struct{})}
	if opt.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("agent: spool dir: %w", err)
	}
	path := filepath.Join(opt.Dir, spoolFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("agent: spool file: %w", err)
	}
	s.f = f
	// Crash recovery: count the intact frames already on disk; anything
	// after the first torn frame (a crash mid-append) is truncated away.
	br := bufio.NewReader(io.NewSectionReader(f, 0, 1<<62))
	var off int64
	for {
		m, err := wire.ReadMessage(br)
		if err != nil {
			break
		}
		off += frameSize(m)
		s.diskCount++
	}
	s.writeOff = off
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("agent: spool truncate: %w", err)
	}
	return s, nil
}

// frameSize is the on-disk size of one wire frame: four length-prefixed
// parts (branch, hostname, report, signature).
func frameSize(m *wire.Message) int64 {
	return int64(16 + len(m.Branch) + len(m.Hostname) + len(m.Report) + len(m.Signature))
}

// memCost approximates an entry's memory footprint for the MemLimitBytes
// bound.
func memCost(m *wire.Message) int {
	return int(frameSize(m)) + 48
}

// Put accepts one entry. It never blocks: when both the memory bound and
// the disk bound are exhausted, the oldest queued entry is shed (newest
// data is the monitoring signal worth keeping) and counted in Dropped.
func (s *Spool) Put(m *wire.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("agent: spool closed")
	}
	s.spooled++
	// Disk entries queued behind the memory segment force new entries to
	// disk too, or FIFO order would break.
	if s.f != nil && (s.diskCount > 0 || s.memBytes+memCost(m) > s.opt.MemLimitBytes) {
		if err := s.appendDiskLocked(m); err == nil {
			s.overflowed++
			s.signalLocked()
			return nil
		}
		if s.diskCount > 0 {
			// Disk full with older entries still on disk: inserting m into
			// memory would jump it ahead of them. Shed m instead — FIFO
			// order is an acceptance guarantee, newest-at-any-cost is not.
			s.dropped++
			return nil
		}
		// Disk unwritable but empty: fall through to the memory shed path.
	}
	for s.memBytes+memCost(m) > s.opt.MemLimitBytes && len(s.mem) > 0 {
		s.memBytes -= memCost(s.mem[0])
		s.mem = s.mem[1:]
		s.dropped++
	}
	if s.memBytes+memCost(m) > s.opt.MemLimitBytes && s.f == nil {
		// An entry larger than the whole bound, with no disk to take it.
		s.dropped++
		return nil
	}
	s.mem = append(s.mem, m)
	s.memBytes += memCost(m)
	s.signalLocked()
	return nil
}

func (s *Spool) appendDiskLocked(m *wire.Message) error {
	if s.writeOff-s.readOff+frameSize(m) > s.opt.DiskLimitBytes {
		return fmt.Errorf("agent: spool disk bound reached")
	}
	var buf bytes.Buffer
	if err := wire.WriteMessage(&buf, m); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(buf.Bytes(), s.writeOff); err != nil {
		return err
	}
	s.writeOff += int64(buf.Len())
	s.diskCount++
	return nil
}

// signalLocked wakes every waiting Peek.
func (s *Spool) signalLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// refillLocked moves entries from the disk tail into the memory segment,
// keeping the memory bound.
func (s *Spool) refillLocked() {
	if s.diskCount == 0 || s.f == nil {
		return
	}
	br := bufio.NewReader(io.NewSectionReader(s.f, s.readOff, s.writeOff-s.readOff))
	for s.diskCount > 0 {
		m, err := wire.ReadMessage(br)
		if err != nil {
			// Unreadable tail: abandon it rather than stall the queue.
			s.dropped += uint64(s.diskCount)
			s.diskCount = 0
			break
		}
		s.readOff += frameSize(m)
		s.diskCount--
		s.mem = append(s.mem, m)
		s.memBytes += memCost(m)
		if s.memBytes > s.opt.MemLimitBytes/2 {
			break
		}
	}
	if s.diskCount == 0 {
		// Fully consumed: reclaim the file.
		s.readOff, s.writeOff = 0, 0
		s.f.Truncate(0)
	}
}

// Peek blocks until the head entry is available and returns it without
// removing it; the entry leaves the spool only on Pop, after the delivery
// loop has its acknowledgement. Returns false when the spool closes or
// stop fires.
func (s *Spool) Peek(stop <-chan struct{}) (*wire.Message, bool) {
	for {
		s.mu.Lock()
		if len(s.mem) == 0 {
			s.refillLocked()
		}
		if len(s.mem) > 0 {
			m := s.mem[0]
			s.mu.Unlock()
			return m, true
		}
		if s.closed {
			s.mu.Unlock()
			return nil, false
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return nil, false
		}
	}
}

// PeekBatch returns up to n queued entries from the head without removing
// them (non-blocking; call after a successful Peek).
func (s *Spool) PeekBatch(n int) []*wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.mem) < n {
		s.refillLocked()
	}
	if n > len(s.mem) {
		n = len(s.mem)
	}
	out := make([]*wire.Message, n)
	copy(out, s.mem[:n])
	return out
}

// PopN removes the n oldest entries — the delivery loop's acknowledgement
// that they reached the controller (or were handed to a client that now
// owns their fate).
func (s *Spool) PopN(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.mem) {
		n = len(s.mem)
	}
	for i := 0; i < n; i++ {
		s.memBytes -= memCost(s.mem[i])
	}
	s.mem = append(s.mem[:0:0], s.mem[n:]...)
	if len(s.mem) == 0 && s.diskCount == 0 && s.f != nil && s.writeOff > 0 {
		s.readOff, s.writeOff = 0, 0
		s.f.Truncate(0)
	}
	s.signalLocked()
}

// Depth returns how many entries are queued (memory + disk).
func (s *Spool) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem) + s.diskCount
}

// Stats returns a snapshot of the spool counters.
func (s *Spool) Stats() SpoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpoolStats{
		Spooled:    s.spooled,
		Dropped:    s.dropped,
		Overflowed: s.overflowed,
		Depth:      len(s.mem) + s.diskCount,
	}
}

// Close stops accepting entries and releases the overflow file. With a
// Dir configured, everything still queued — the in-memory head included —
// is persisted for the next process to recover, so a clean shutdown with
// an unreachable controller loses nothing. Memory-only spools lose their
// queue at exit, which is why shutdown paths drain the delivery loop
// before closing.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.signalLocked()
	if s.f == nil {
		return nil
	}
	err := s.persistLocked()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// persistLocked rewrites the overflow file so the in-memory head (older
// than every disk entry) survives the process: memory frames first, then
// the live disk segment, built in a temp file and renamed into place so a
// crash mid-persist leaves the old file intact.
func (s *Spool) persistLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	path := filepath.Join(s.opt.Dir, spoolFile)
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	err = func() error {
		for _, m := range s.mem {
			if err := wire.WriteMessage(bw, m); err != nil {
				return err
			}
		}
		if s.writeOff > s.readOff {
			if _, err := io.Copy(bw, io.NewSectionReader(s.f, s.readOff, s.writeOff-s.readOff)); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return tmp.Close()
	}()
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
