package agent

import (
	"fmt"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/wire"
)

// WireSink forwards reports to the centralized controller over the TCP
// protocol — the deployed configuration. The default sink sends one
// message per round trip; a batched sink (NewWireSinkBatched) pipelines
// reports through wire.BatchClient instead, trading immediate per-report
// acknowledgement for ingest throughput; a reliable sink
// (NewWireSinkReliable) puts a Spool and a retrying delivery loop between
// Submit and the wire, so reporter scheduling never blocks on the network
// and a controller outage costs buffering, not data.
type WireSink struct {
	Client *wire.Client
	// Batch, when set, routes submissions through the pipelined batch
	// protocol instead of Client. Rejections then surface on a later
	// Submit or on Close, not on the Submit that carried the report.
	Batch *wire.BatchClient
	// Key, when set, signs every message with the resource's shared
	// secret (the controller must have the same key registered).
	Key []byte

	// Reliable-delivery state (nil without a spool).
	spool *Spool
	opt   DeliveryOptions
	stop  chan struct{}
	done  chan struct{}

	statMu    sync.Mutex
	replayed  uint64
	rejected  uint64
	dropped   uint64 // dropped after MaxAttempts delivery failures
	lastAcked uint64 // batch-mode bookkeeping: previous bc.Stats() snapshot
	lastRej   uint64
	lastDrop  uint64
}

// DeliveryOptions configures the reliable agent→controller path.
type DeliveryOptions struct {
	// Spool bounds the store-and-forward queue.
	Spool SpoolOptions
	// Client sets the per-attempt dial/read/write deadlines and in-Send
	// retry of the underlying wire client.
	Client wire.ClientOptions
	// Backoff paces redelivery rounds after a failed attempt (defaults:
	// 100ms base, 5s cap; Max is ignored here — the horizon is
	// MaxAttempts). Jittered so a controller restart is not greeted by
	// every agent at once.
	Backoff wire.RetryPolicy
	// MaxAttempts is how many delivery rounds a report gets before it is
	// shed and counted in Dropped (0 = retry until shutdown, the zero-loss
	// deployment setting).
	MaxAttempts int
	// Batch, when set, replays spooled reports through a wire.BatchClient
	// with these options instead of one-message round trips.
	Batch *wire.BatchOptions
}

// DeliveryStats counts the reliable path's work, agent side. At any
// quiescent point Spooled = Replayed + Rejected + Dropped + Depth: every
// submitted report is accounted for, none silently lost.
type DeliveryStats struct {
	// Spooled is reports accepted into the spool.
	Spooled uint64
	// Replayed is reports delivered to and acknowledged OK by the
	// controller, including every redelivery after a fault.
	Replayed uint64
	// Rejected is reports the controller refused (allowlist, signature) —
	// permanent failures, not retried.
	Rejected uint64
	// Dropped is reports shed: spool overflow plus give-ups after
	// MaxAttempts delivery rounds.
	Dropped uint64
	// Reconnects is transport-level redials after a failure.
	Reconnects uint64
	// Retries is in-Send attempts beyond each message's first.
	Retries uint64
	// Depth is reports still queued for delivery.
	Depth int
}

// NewWireSink dials addr lazily on first submit.
func NewWireSink(addr string) *WireSink {
	return &WireSink{Client: wire.NewClient(addr)}
}

// NewWireSinkOptions is NewWireSink with explicit wire client deadlines
// and in-Send retry.
func NewWireSinkOptions(addr string, opt wire.ClientOptions) *WireSink {
	return &WireSink{Client: wire.NewClientOptions(addr, opt)}
}

// NewWireSinkBatched returns a sink that accumulates reports into batch
// frames and keeps several batches in flight. opt controls the flush
// size, pipeline window, and flush interval (zero values take the
// wire.BatchOptions defaults).
func NewWireSinkBatched(addr string, opt wire.BatchOptions) *WireSink {
	return &WireSink{Batch: wire.NewBatchClient(addr, opt)}
}

// NewWireSinkReliable returns a sink whose Submit always succeeds
// immediately into a bounded spool, while a background loop delivers
// spooled reports in order with per-attempt deadlines, reconnection, and
// jittered exponential backoff. Reports leave the spool only once
// acknowledged (or permanently rejected), giving at-least-once delivery
// across controller restarts.
func NewWireSinkReliable(addr string, opt DeliveryOptions) (*WireSink, error) {
	spool, err := NewSpool(opt.Spool)
	if err != nil {
		return nil, err
	}
	fillBackoff(&opt.Backoff)
	w := &WireSink{
		spool: spool,
		opt:   opt,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if opt.Batch != nil {
		w.Batch = wire.NewBatchClient(addr, *opt.Batch)
	} else {
		w.Client = wire.NewClientOptions(addr, opt.Client)
	}
	go w.deliver()
	return w, nil
}

// fillBackoff is RetryPolicy defaulting without the Max floor (the
// delivery loop's horizon is DeliveryOptions.MaxAttempts, not Retry.Max).
func fillBackoff(p *wire.RetryPolicy) {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
}

// Submit implements Sink.
func (w *WireSink) Submit(id branch.ID, hostname string, reportXML []byte) error {
	m := &wire.Message{
		Branch:   id.String(),
		Hostname: hostname,
		Report:   reportXML,
	}
	if len(w.Key) > 0 {
		wire.SignMessage(m, w.Key)
	}
	if w.spool != nil {
		return w.spool.Put(m)
	}
	if w.Batch != nil {
		return w.Batch.Enqueue(m)
	}
	ack, err := w.Client.Send(m)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("agent: server rejected report: %s", ack.Message)
	}
	return nil
}

// deliver is the spool replay loop: take the head, send it, pop it only
// on acknowledgement; back off (with jitter) between failed rounds so an
// unreachable controller costs idle waiting, not a connect storm.
func (w *WireSink) deliver() {
	defer close(w.done)
	if w.Batch != nil {
		w.deliverBatched()
		return
	}
	attempts := 0 // failed delivery rounds for the current head entry
	for {
		m, ok := w.spool.Peek(w.stop)
		if !ok {
			return
		}
		ack, err := w.Client.Send(m)
		if err == nil {
			w.spool.PopN(1)
			attempts = 0
			w.statMu.Lock()
			if ack.OK {
				w.replayed++
			} else {
				w.rejected++ // permanent: redelivering would re-refuse
			}
			w.statMu.Unlock()
			continue
		}
		attempts++
		if w.opt.MaxAttempts > 0 && attempts >= w.opt.MaxAttempts {
			w.spool.PopN(1)
			attempts = 0
			w.statMu.Lock()
			w.dropped++
			w.statMu.Unlock()
			continue
		}
		select {
		case <-time.After(w.opt.Backoff.Backoff(attempts)):
		case <-w.stop:
			return
		}
	}
}

// deliverBatched replays through the batch client: custody of a chunk
// transfers to the BatchClient (which itself requeues unacknowledged
// batches on connection loss), and the loop drains it before taking more,
// so a chunk is never double-submitted.
func (w *WireSink) deliverBatched() {
	maxChunk := w.Batch.Options().MaxBatch
	attempts := 0
	for {
		if _, ok := w.spool.Peek(w.stop); !ok {
			// Final best-effort drain of messages already in custody.
			w.Batch.Drain()
			w.syncBatchStats()
			return
		}
		chunk := w.spool.PeekBatch(maxChunk)
		for _, m := range chunk {
			w.Batch.Enqueue(m)
		}
		// Custody transferred: the batch client now owns these messages
		// and never discards them uncounted (see wire.BatchStats).
		w.spool.PopN(len(chunk))
		for {
			err := w.Batch.Drain()
			w.syncBatchStats()
			if err == nil {
				attempts = 0
				break
			}
			attempts++
			select {
			case <-time.After(w.opt.Backoff.Backoff(attempts)):
			case <-w.stop:
				return
			}
		}
	}
}

// syncBatchStats folds the batch client's delivery accounting deltas into
// the sink counters.
func (w *WireSink) syncBatchStats() {
	st := w.Batch.Stats()
	w.statMu.Lock()
	w.replayed += st.Acked - w.lastAcked
	w.rejected += st.Rejected - w.lastRej
	w.dropped += st.Dropped - w.lastDrop
	w.lastAcked, w.lastRej, w.lastDrop = st.Acked, st.Rejected, st.Dropped
	w.statMu.Unlock()
}

// DeliveryStats returns a snapshot of the reliable path's accounting.
// Without a spool (plain or batched sink) it reports what the underlying
// client counts.
func (w *WireSink) DeliveryStats() DeliveryStats {
	var s DeliveryStats
	w.statMu.Lock()
	s.Replayed = w.replayed
	s.Rejected = w.rejected
	s.Dropped = w.dropped
	w.statMu.Unlock()
	if w.spool != nil {
		ss := w.spool.Stats()
		s.Spooled = ss.Spooled
		s.Dropped += ss.Dropped
		s.Depth = ss.Depth
	}
	if w.Client != nil {
		cs := w.Client.Stats()
		s.Reconnects = cs.Reconnects
		s.Retries = cs.Retries
		if w.spool == nil {
			s.Replayed = cs.Sent
		}
	}
	if w.Batch != nil {
		bs := w.Batch.Stats()
		s.Reconnects = bs.Redials
		if w.spool == nil {
			s.Replayed = bs.Acked
			s.Rejected = bs.Rejected
			s.Dropped = bs.Dropped
		}
	}
	return s
}

// SpoolDepth returns the number of reports queued for delivery in the
// reliable spool, or 0 without one. Implements SpoolDepther.
func (w *WireSink) SpoolDepth() int {
	if w.spool == nil {
		return 0
	}
	return w.spool.Depth()
}

// Drain blocks until every spooled report has been delivered (or shed and
// counted), or the timeout expires. Only meaningful on a reliable sink;
// on others it is a no-op.
func (w *WireSink) Drain(timeout time.Duration) error {
	if w.spool == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		if w.spool.Depth() == 0 {
			if w.Batch == nil {
				return nil
			}
			// Batch mode: depth 0 only means custody transferred; the
			// batch client must also confirm everything acknowledged.
			if err := w.Batch.Drain(); err == nil {
				w.syncBatchStats()
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("agent: drain timeout with %d reports still spooled", w.spool.Depth())
		}
		select {
		case <-w.done:
			return fmt.Errorf("agent: delivery loop stopped with %d reports still spooled", w.spool.Depth())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close stops the delivery loop (if any), drains any pending batches, and
// closes the underlying connection. With a spool directory, reports still
// queued (in memory or on disk) persist for the next process; callers
// wanting an empty spool first should Drain with a deadline before
// closing.
func (w *WireSink) Close() error {
	if w.spool != nil {
		close(w.stop)
		<-w.done
		w.spool.Close()
	}
	if w.Batch != nil {
		return w.Batch.Close()
	}
	return w.Client.Close()
}
