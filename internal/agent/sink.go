package agent

import (
	"fmt"

	"inca/internal/branch"
	"inca/internal/wire"
)

// WireSink forwards reports to the centralized controller over the TCP
// protocol — the deployed configuration.
type WireSink struct {
	Client *wire.Client
	// Key, when set, signs every message with the resource's shared
	// secret (the controller must have the same key registered).
	Key []byte
}

// NewWireSink dials addr lazily on first submit.
func NewWireSink(addr string) *WireSink {
	return &WireSink{Client: wire.NewClient(addr)}
}

// Submit implements Sink.
func (w *WireSink) Submit(id branch.ID, hostname string, reportXML []byte) error {
	m := &wire.Message{
		Branch:   id.String(),
		Hostname: hostname,
		Report:   reportXML,
	}
	if len(w.Key) > 0 {
		wire.SignMessage(m, w.Key)
	}
	ack, err := w.Client.Send(m)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("agent: server rejected report: %s", ack.Message)
	}
	return nil
}

// Close closes the underlying connection.
func (w *WireSink) Close() error { return w.Client.Close() }
