package agent

import (
	"fmt"

	"inca/internal/branch"
	"inca/internal/wire"
)

// WireSink forwards reports to the centralized controller over the TCP
// protocol — the deployed configuration. The default sink sends one
// message per round trip; a batched sink (NewWireSinkBatched) pipelines
// reports through wire.BatchClient instead, trading immediate per-report
// acknowledgement for ingest throughput.
type WireSink struct {
	Client *wire.Client
	// Batch, when set, routes submissions through the pipelined batch
	// protocol instead of Client. Rejections then surface on a later
	// Submit or on Close, not on the Submit that carried the report.
	Batch *wire.BatchClient
	// Key, when set, signs every message with the resource's shared
	// secret (the controller must have the same key registered).
	Key []byte
}

// NewWireSink dials addr lazily on first submit.
func NewWireSink(addr string) *WireSink {
	return &WireSink{Client: wire.NewClient(addr)}
}

// NewWireSinkBatched returns a sink that accumulates reports into batch
// frames and keeps several batches in flight. opt controls the flush
// size, pipeline window, and flush interval (zero values take the
// wire.BatchOptions defaults).
func NewWireSinkBatched(addr string, opt wire.BatchOptions) *WireSink {
	return &WireSink{Batch: wire.NewBatchClient(addr, opt)}
}

// Submit implements Sink.
func (w *WireSink) Submit(id branch.ID, hostname string, reportXML []byte) error {
	m := &wire.Message{
		Branch:   id.String(),
		Hostname: hostname,
		Report:   reportXML,
	}
	if len(w.Key) > 0 {
		wire.SignMessage(m, w.Key)
	}
	if w.Batch != nil {
		return w.Batch.Enqueue(m)
	}
	ack, err := w.Client.Send(m)
	if err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("agent: server rejected report: %s", ack.Message)
	}
	return nil
}

// Close drains any pending batches and closes the underlying connection.
func (w *WireSink) Close() error {
	if w.Batch != nil {
		return w.Batch.Close()
	}
	return w.Client.Close()
}
