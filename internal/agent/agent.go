// Package agent implements Inca's distributed controller (paper Section
// 3.1.3): the per-resource daemon that manages reporter execution from a
// specification file, runs each reporter on its cron schedule (randomized
// within its period), terminates reporters that exceed their expected run
// time, and forwards every report — or a special error report — to the
// centralized controller over TCP.
package agent

import (
	"context"
	"fmt"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/metrics"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
	"inca/internal/simtime"
)

// Series is one reporter execution series from the specification file:
// which reporter, with what arguments, how often, under what run-time
// limit, and where the data lands in the depot.
type Series struct {
	Reporter reporter.Reporter
	Args     []report.Arg
	// Branch is where the server stores this series' reports.
	Branch branch.ID
	// Cron is the execution schedule (use schedule.Every for the paper's
	// randomized-offset placement).
	Cron *schedule.Spec
	// Limit is the expected run time; executions exceeding it are killed
	// and reported as errors. Zero means unlimited.
	Limit time.Duration
	// DependsOn names other series on this agent that must have succeeded
	// at the same fire instant (the paper's future-work dependency
	// scheduling).
	DependsOn []string
}

// Name returns the scheduler entry name for the series.
func (s *Series) Name() string { return s.Reporter.Name() + "@" + s.Branch.String() }

// Spec is a resource's complete specification file.
type Spec struct {
	// Resource is the hostname the agent runs on.
	Resource string
	// WorkingDir and ReporterPath describe the inca user account layout.
	WorkingDir   string
	ReporterPath string
	Series       []Series
}

// Sink receives completed reports — in deployment, a wire.Client pointed at
// the centralized controller; in tests, any collector.
type Sink interface {
	Submit(id branch.ID, hostname string, reportXML []byte) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(id branch.ID, hostname string, reportXML []byte) error

// Submit implements Sink.
func (f SinkFunc) Submit(id branch.ID, hostname string, reportXML []byte) error {
	return f(id, hostname, reportXML)
}

// Mode selects how execution time limits are enforced.
type Mode int

// Execution modes.
const (
	// Simulated mode derives run durations from the reporters' RunDuration
	// and enforces limits against them; used with a virtual clock.
	Simulated Mode = iota
	// Live mode runs reporters under a wall-clock deadline.
	Live
)

// Stats counts agent activity.
type Stats struct {
	Runs       int
	Failures   int // reporter-reported failures (footer completed=false)
	Killed     int // executions terminated for exceeding their limit
	SubmitErrs int // reports the sink refused or could not deliver
	BytesSent  int64
	DepSkips   int
	// Delivery is the sink's reliable-delivery accounting when the sink
	// maintains one (see WireSink.DeliveryStats); nil otherwise.
	Delivery *DeliveryStats
}

// DeliveryStatser is implemented by sinks that account for every report's
// delivery fate (spooled/replayed/rejected/dropped).
type DeliveryStatser interface {
	DeliveryStats() DeliveryStats
}

// execInterval records one execution for the resource-usage model behind
// the Figure 7 reproduction.
type execInterval struct {
	start, end time.Time
	cpuFrac    float64
	memMB      float64
}

// Agent is one distributed controller instance.
type Agent struct {
	spec  Spec
	clock simtime.Clock
	sink  Sink
	mode  Mode
	sched *schedule.Scheduler

	// Counters are the single source of truth for Stats(): the same
	// instruments feed the JSON views and the Prometheus exposition.
	runs       *metrics.Counter
	failures   *metrics.Counter
	killed     *metrics.Counter
	submitErrs *metrics.Counter
	bytesSent  *metrics.Counter
	execH      *metrics.Histogram
	submitH    *metrics.Histogram

	mu        sync.Mutex
	intervals []execInterval

	// Usage model constants (see Section 5.1: the main daemon held ~18 MB
	// and each forked reporter process roughly as much again).
	BaseMemMB float64
	ForkMemMB float64
	// BaseCPUFrac is the daemon's own bookkeeping load per CPU.
	BaseCPUFrac float64
}

// New builds an agent from a specification. Reporters are registered with
// the internal scheduler immediately; call Run (live) or drive the
// scheduler via Scheduler() (simulation).
func New(spec Spec, clock simtime.Clock, sink Sink, mode Mode) (*Agent, error) {
	return NewMetrics(spec, clock, sink, mode, nil)
}

// SpoolDepther is implemented by sinks with a store-and-forward spool; the
// depth feeds the inca_agent_spool_depth gauge.
type SpoolDepther interface {
	SpoolDepth() int
}

// NewMetrics is New with agent, scheduler, and (when the sink spools)
// spool-depth instruments registered in reg. A nil reg keeps the
// instruments private — Stats() works either way.
func NewMetrics(spec Spec, clock simtime.Clock, sink Sink, mode Mode, reg *metrics.Registry) (*Agent, error) {
	if spec.Resource == "" {
		return nil, fmt.Errorf("agent: spec has no resource hostname")
	}
	if sink == nil {
		return nil, fmt.Errorf("agent: nil sink")
	}
	a := &Agent{
		spec:        spec,
		clock:       clock,
		sink:        sink,
		mode:        mode,
		sched:       schedule.NewSchedulerMetrics(clock, reg),
		runs:        reg.Counter("inca_agent_runs_total", "Reporter executions."),
		failures:    reg.Counter("inca_agent_failures_total", "Reporter runs whose report footer said completed=false."),
		killed:      reg.Counter("inca_agent_killed_total", "Reporter executions terminated for exceeding their run-time limit."),
		submitErrs:  reg.Counter("inca_agent_submit_errors_total", "Reports the sink refused or could not deliver."),
		bytesSent:   reg.Counter("inca_agent_bytes_sent_total", "Report bytes handed to the sink."),
		execH:       reg.Histogram("inca_agent_execute_seconds", "Reporter execution latency (run through report marshal).", nil),
		submitH:     reg.Histogram("inca_agent_submit_seconds", "Sink submit latency per report.", nil),
		BaseMemMB:   18,
		ForkMemMB:   17,
		BaseCPUFrac: 0.0002,
	}
	if sd, ok := sink.(SpoolDepther); ok {
		reg.GaugeFunc("inca_agent_spool_depth", "Reports queued in the reliable-delivery spool.", func() float64 {
			return float64(sd.SpoolDepth())
		})
	}
	for i := range spec.Series {
		s := &spec.Series[i]
		if s.Reporter == nil {
			return nil, fmt.Errorf("agent: series %d has no reporter", i)
		}
		if s.Cron == nil {
			return nil, fmt.Errorf("agent: series %s has no schedule", s.Reporter.Name())
		}
		series := s
		err := a.sched.Add(&schedule.Entry{
			Name:      s.Name(),
			Spec:      s.Cron,
			DependsOn: s.DependsOn,
			Action: func(now time.Time) error {
				return a.execute(series, now)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Scheduler exposes the agent's scheduler so simulation harnesses can
// drive it deterministically (NextFire/RunPending).
func (a *Agent) Scheduler() *schedule.Scheduler { return a.sched }

// Resource returns the agent's hostname.
func (a *Agent) Resource() string { return a.spec.Resource }

// SeriesCount returns the number of configured series.
func (a *Agent) SeriesCount() int { return len(a.spec.Series) }

// Run drives the agent against its clock until ctx is cancelled (live
// deployments).
func (a *Agent) Run(ctx context.Context) { a.sched.Run(ctx) }

// execute performs one reporter run: limit enforcement, error reports,
// forwarding. This is the daemon's "wake up and fork" path.
func (a *Agent) execute(s *Series, now time.Time) error {
	execStart := time.Now()
	ctx := &reporter.Context{
		Hostname:     a.spec.Resource,
		Now:          now,
		WorkingDir:   a.spec.WorkingDir,
		ReporterPath: a.spec.ReporterPath,
		Args:         s.Args,
	}
	var rep *report.Report
	killed := false
	duration := time.Duration(0)
	if timed, ok := s.Reporter.(reporter.Timed); ok {
		duration = timed.RunDuration(ctx)
	}
	switch a.mode {
	case Simulated:
		if s.Limit > 0 && duration > s.Limit {
			killed = true
			duration = s.Limit
		} else {
			rep = a.runProtected(s, ctx)
		}
	case Live:
		rep, killed = a.runWithDeadline(s, ctx)
		if killed {
			duration = s.Limit
		}
	}
	if killed {
		// "The daemon also monitors all forked processes and terminates
		// them if they exceed expected run time" — and sends a special
		// error report.
		rep = reporter.New(s.Reporter, ctx).
			Fail("reporter exceeded expected run time of %v and was terminated", s.Limit)
	}
	if rep == nil {
		rep = reporter.New(s.Reporter, ctx).Fail("reporter produced no output")
	}
	a.recordInterval(s, now, duration)

	data, err := report.Marshal(rep)
	if err != nil {
		return fmt.Errorf("agent: marshal %s: %w", s.Reporter.Name(), err)
	}
	a.execH.ObserveSince(execStart)
	a.runs.Inc()
	if killed {
		a.killed.Inc()
	}
	if !rep.Succeeded() {
		a.failures.Inc()
	}

	submitStart := time.Now()
	err = a.sink.Submit(s.Branch, a.spec.Resource, data)
	a.submitH.ObserveSince(submitStart)
	if err != nil {
		a.submitErrs.Inc()
		return fmt.Errorf("agent: submit %s: %w", s.Reporter.Name(), err)
	}
	a.bytesSent.Add(uint64(len(data)))
	if !rep.Succeeded() {
		// Surface the failure to the scheduler so dependent series skip.
		return fmt.Errorf("agent: %s failed: %s", s.Reporter.Name(), rep.Footer.ErrorMessage)
	}
	return nil
}

// runProtected executes the reporter, converting panics into error reports
// (a crashing reporter must not take down the daemon).
func (a *Agent) runProtected(s *Series, ctx *reporter.Context) (rep *report.Report) {
	defer func() {
		if r := recover(); r != nil {
			rep = reporter.New(s.Reporter, ctx).Fail("reporter crashed: %v", r)
		}
	}()
	return s.Reporter.Run(ctx)
}

// runWithDeadline runs the reporter in a separate goroutine and abandons it
// at the limit (the in-process analogue of killing a forked process).
func (a *Agent) runWithDeadline(s *Series, ctx *reporter.Context) (*report.Report, bool) {
	if s.Limit <= 0 {
		return a.runProtected(s, ctx), false
	}
	done := make(chan *report.Report, 1)
	go func() { done <- a.runProtected(s, ctx) }()
	select {
	case rep := <-done:
		return rep, false
	case <-a.clock.After(s.Limit):
		return nil, true
	}
}

// recordInterval logs an execution for the usage model.
func (a *Agent) recordInterval(s *Series, start time.Time, duration time.Duration) {
	cpuFrac := cpuFractionFor(s.Reporter)
	a.mu.Lock()
	a.intervals = append(a.intervals, execInterval{
		start:   start,
		end:     start.Add(duration),
		cpuFrac: cpuFrac,
		memMB:   a.ForkMemMB,
	})
	a.mu.Unlock()
}

// cpuFractionFor estimates the daemon's own CPU share while a given
// reporter's forked process is alive. The paper's `top` measurements track
// the distributed controller process, not the forks: the daemon only
// bookkeeps (monitors run time, collects output), so per-fork overhead is
// small — larger for chatty probes whose output it must drain.
func cpuFractionFor(r reporter.Reporter) float64 {
	name := r.Name()
	switch {
	case contains(name, ".benchmark."):
		return 0.015
	case contains(name, ".unit."):
		return 0.008
	case contains(name, ".network."):
		return 0.002 // probing tools pace packets; the daemon idles
	default:
		return 0.005
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// UsageAt reports the modeled CPU utilization (% of one CPU) and resident
// memory (MB) of the distributed controller at instant t — what the
// paper's week of `top` sampling measured (Figure 7).
func (a *Agent) UsageAt(t time.Time) (cpuPct, memMB float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	memMB = a.BaseMemMB
	cpu := a.BaseCPUFrac
	for _, iv := range a.intervals {
		if !t.Before(iv.start) && t.Before(iv.end) {
			memMB += iv.memMB
			cpu += iv.cpuFrac
		}
	}
	if cpu > 1 {
		cpu = 1
	}
	return cpu * 100, memMB
}

// TrimIntervalsBefore discards execution history older than t, bounding
// memory during long simulations.
func (a *Agent) TrimIntervalsBefore(t time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.intervals[:0]
	for _, iv := range a.intervals {
		if iv.end.After(t) {
			kept = append(kept, iv)
		}
	}
	a.intervals = kept
}

// Stats returns a snapshot of agent counters — a view over the same
// instruments the metrics registry exposes — folding in the scheduler's
// dependency skips and, when the sink keeps one, its delivery accounting.
func (a *Agent) Stats() Stats {
	s := Stats{
		Runs:       int(a.runs.Value()),
		Failures:   int(a.failures.Value()),
		Killed:     int(a.killed.Value()),
		SubmitErrs: int(a.submitErrs.Value()),
		BytesSent:  int64(a.bytesSent.Value()),
		DepSkips:   a.sched.Stats().Skips,
	}
	if ds, ok := a.sink.(DeliveryStatser); ok {
		d := ds.DeliveryStats()
		s.Delivery = &d
	}
	return s
}
