package agent

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
	"inca/internal/simtime"
	"inca/internal/wire"
)

func TestWireSinkSubmitAndAuth(t *testing.T) {
	key := []byte("secret")
	var got atomic.Int64
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack {
		if !wire.Verify(m, key) {
			return &wire.Ack{OK: false, Message: "bad signature"}
		}
		got.Add(1)
		return &wire.Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Unsigned sink → server refuses, Submit surfaces the rejection.
	s := NewWireSink(srv.Addr())
	defer s.Close()
	err = s.Submit(branch.MustParse("a=1"), "h", []byte("<r/>"))
	if err == nil || !strings.Contains(err.Error(), "bad signature") {
		t.Fatalf("unsigned submit err = %v", err)
	}

	// Signed sink → accepted.
	s.Key = key
	if err := s.Submit(branch.MustParse("a=1"), "h", []byte("<r/>")); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1 {
		t.Fatalf("server got %d", got.Load())
	}
}

func TestWireSinkTransportError(t *testing.T) {
	s := NewWireSink("127.0.0.1:1") // nothing listens there
	defer s.Close()
	if err := s.Submit(branch.MustParse("a=1"), "h", []byte("<r/>")); err == nil {
		t.Fatal("dead server submit succeeded")
	}
}

// TestAgentRunLiveFiresOnSchedule drives the live Run loop against the
// real clock with an every-minute cron. To keep the test fast, the clock
// is a Sim that a helper goroutine advances — Run only interacts with the
// Clock interface, so this exercises the same code path.
func TestAgentRunLoopWithSimClock(t *testing.T) {
	sim := simtime.NewSim(time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC))

	spec := Spec{
		Resource: "h",
		Series: []Series{{
			Reporter: &reporter.Func{ReporterName: "probe.tick", Fn: func(ctx *reporter.Context, rep *report.Report) {
				rep.Body = report.Branch("t", "1", report.Leaf("ok", "1"))
			}},
			Branch: branch.MustParse("probe=tick"),
			Cron:   schedule.MustParseCron("* * * * *"),
		}},
	}
	var delivered atomic.Int64
	sink := SinkFunc(func(branch.ID, string, []byte) error {
		delivered.Add(1)
		return nil
	})
	a, err := New(spec, sim, sink, Live)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		a.Run(ctx)
		close(done)
	}()
	// March the clock minute by minute; give the Run goroutine a moment to
	// register its timer before each advance.
	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < 3 && time.Now().Before(deadline) {
		if sim.Pending() > 0 {
			sim.Step()
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	// Unblock the scheduler if it is waiting on the clock.
	for i := 0; i < 10; i++ {
		sim.Advance(time.Minute)
		select {
		case <-done:
			i = 10
		case <-time.After(20 * time.Millisecond):
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit")
	}
	if delivered.Load() < 3 {
		t.Fatalf("delivered %d reports, want >= 3", delivered.Load())
	}

	if a.Resource() != "h" || a.SeriesCount() != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestWireSinkBatchedDeliversAll(t *testing.T) {
	key := []byte("secret")
	var got atomic.Int64
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack {
		if !wire.Verify(m, key) {
			return &wire.Ack{OK: false, Message: "bad signature"}
		}
		got.Add(1)
		return &wire.Ack{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s := NewWireSinkBatched(srv.Addr(), wire.BatchOptions{MaxBatch: 8, Window: 2})
	s.Key = key
	const total = 30
	for i := 0; i < total; i++ {
		if err := s.Submit(branch.MustParse("a=1"), "h", []byte("<r/>")); err != nil {
			t.Fatal(err)
		}
	}
	// Close drains the partial batch and all in-flight acks.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != total {
		t.Fatalf("server got %d, want %d", got.Load(), total)
	}
}

func TestWireSinkBatchedSurfacesRejectionLater(t *testing.T) {
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack {
		return &wire.Ack{OK: false, Message: "bad signature"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s := NewWireSinkBatched(srv.Addr(), wire.BatchOptions{MaxBatch: 1, Window: 1})
	// The rejection rides the ack vector; it surfaces on a later Submit
	// or at the latest on Close.
	var sawErr error
	for i := 0; i < 5 && sawErr == nil; i++ {
		sawErr = s.Submit(branch.MustParse("a=1"), "h", []byte("<r/>"))
	}
	if closeErr := s.Close(); sawErr == nil {
		sawErr = closeErr
	}
	if sawErr == nil || !strings.Contains(sawErr.Error(), "bad signature") {
		t.Fatalf("rejection never surfaced: %v", sawErr)
	}
}
