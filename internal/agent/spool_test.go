package agent

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/wire"
)

func spoolMsg(i int) *wire.Message {
	return &wire.Message{
		Branch:   fmt.Sprintf("probe=p%d", i),
		Hostname: "h",
		Report:   []byte(fmt.Sprintf("<r>%d</r>", i)),
	}
}

func TestSpoolFIFO(t *testing.T) {
	s, err := NewSpool(SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(spoolMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if d := s.Depth(); d != 10 {
		t.Fatalf("depth = %d", d)
	}
	stop := make(chan struct{})
	for i := 0; i < 10; i++ {
		m, ok := s.Peek(stop)
		if !ok {
			t.Fatal("peek failed")
		}
		if want := fmt.Sprintf("probe=p%d", i); m.Branch != want {
			t.Fatalf("order broken: got %s want %s", m.Branch, want)
		}
		s.PopN(1)
	}
	st := s.Stats()
	if st.Spooled != 10 || st.Dropped != 0 || st.Depth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpoolPeekBlocksUntilPut(t *testing.T) {
	s, err := NewSpool(SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make(chan *wire.Message, 1)
	go func() {
		m, _ := s.Peek(nil)
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	s.Put(spoolMsg(7))
	select {
	case m := <-got:
		if m.Branch != "probe=p7" {
			t.Fatalf("got %s", m.Branch)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Peek never woke")
	}
}

func TestSpoolPeekStops(t *testing.T) {
	s, err := NewSpool(SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Peek(stop)
		done <- ok
	}()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped Peek returned an entry")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Peek ignored stop")
	}
}

func TestSpoolMemoryBoundShedsOldest(t *testing.T) {
	// Each entry costs ~70 bytes; a ~10-entry bound forces shedding.
	s, err := NewSpool(SpoolOptions{MemLimitBytes: 700})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 50
	for i := 0; i < total; i++ {
		if err := s.Put(spoolMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatal("memory bound never shed")
	}
	if st.Spooled != total {
		t.Fatalf("spooled = %d", st.Spooled)
	}
	if uint64(st.Depth)+st.Dropped != total {
		t.Fatalf("accounting broken: depth %d + dropped %d != %d", st.Depth, st.Dropped, total)
	}
	// The survivors are the newest, still in order.
	m, _ := s.Peek(nil)
	first := m.Branch
	var firstIdx int
	fmt.Sscanf(first, "probe=p%d", &firstIdx)
	for i := firstIdx; i < total; i++ {
		m, ok := s.Peek(nil)
		if !ok || m.Branch != fmt.Sprintf("probe=p%d", i) {
			t.Fatalf("survivor order broken at %d: %v", i, m)
		}
		s.PopN(1)
	}
	if s.Depth() != 0 {
		t.Fatalf("depth = %d after draining", s.Depth())
	}
}

func TestSpoolDiskOverflowPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSpool(SpoolOptions{MemLimitBytes: 700, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 200
	for i := 0; i < total; i++ {
		if err := s.Put(spoolMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("disk-backed spool dropped %d", st.Dropped)
	}
	if st.Overflowed == 0 {
		t.Fatal("nothing overflowed to disk")
	}
	if st.Depth != total {
		t.Fatalf("depth = %d, want %d", st.Depth, total)
	}
	for i := 0; i < total; i++ {
		m, ok := s.Peek(nil)
		if !ok || m.Branch != fmt.Sprintf("probe=p%d", i) {
			t.Fatalf("order broken at %d: %+v", i, m)
		}
		s.PopN(1)
	}
	// Fully drained: the overflow file is reclaimed.
	fi, err := os.Stat(filepath.Join(dir, spoolFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("drained spool file still %d bytes", fi.Size())
	}
}

func TestSpoolRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSpool(SpoolOptions{MemLimitBytes: 1, Dir: dir}) // everything to disk
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(spoolMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: a torn frame at the tail.
	path := filepath.Join(dir, spoolFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 9, 'x'}) // length prefix promising 9 bytes, only 1 present
	f.Close()

	s2, err := NewSpool(SpoolOptions{MemLimitBytes: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if d := s2.Depth(); d != 5 {
		t.Fatalf("recovered depth = %d, want 5", d)
	}
	for i := 0; i < 5; i++ {
		m, ok := s2.Peek(nil)
		if !ok || m.Branch != fmt.Sprintf("probe=p%d", i) {
			t.Fatalf("recovered order broken at %d: %+v", i, m)
		}
		s2.PopN(1)
	}
}

// TestSpoolPersistsMemoryAcrossRestart: a clean Close with a spool
// directory must write the in-memory head (older than every disk entry)
// ahead of the disk segment, so a restart replays everything in order —
// not just what happened to overflow.
func TestSpoolPersistsMemoryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	// Bound sized so entries 0–1 stay in memory and 2–4 overflow to disk.
	lim := 2 * memCost(spoolMsg(0))
	s, err := NewSpool(SpoolOptions{MemLimitBytes: lim, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(spoolMsg(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Overflowed == 0 {
		t.Fatalf("bound never overflowed to disk: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewSpool(SpoolOptions{MemLimitBytes: lim, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if d := s2.Depth(); d != 5 {
		t.Fatalf("recovered depth = %d, want 5", d)
	}
	for i := 0; i < 5; i++ {
		m, ok := s2.Peek(nil)
		if !ok || m.Branch != fmt.Sprintf("probe=p%d", i) {
			t.Fatalf("recovered order broken at %d: %+v", i, m)
		}
		s2.PopN(1)
	}
}

func TestSpoolPutConcurrent(t *testing.T) {
	s, err := NewSpool(SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Put(spoolMsg(g*per + i))
			}
		}(g)
	}
	drained := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for drained < goroutines*per {
			if _, ok := s.Peek(nil); !ok {
				return
			}
			s.PopN(1)
			drained++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain stalled")
	}
	if drained != goroutines*per {
		t.Fatalf("drained %d", drained)
	}
}

// --- reliable sink ---

func TestReliableSinkDeliversAfterServerComesUp(t *testing.T) {
	// Reserve an address, then close the listener so the sink's first
	// attempts fail; the server appears later on the same address.
	tmp, err := wire.Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := tmp.Addr()
	tmp.Close()

	sink, err := NewWireSinkReliable(addr, DeliveryOptions{
		Client:  wire.ClientOptions{DialTimeout: 200 * time.Millisecond, IOTimeout: time.Second},
		Backoff: wire.RetryPolicy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if err := sink.Submit(branch.MustParse(fmt.Sprintf("probe=p%d", i)), "h", []byte("<r/>")); err != nil {
			t.Fatal(err)
		}
	}
	if ds := sink.DeliveryStats(); ds.Spooled != total {
		t.Fatalf("spooled = %d", ds.Spooled)
	}

	var mu sync.Mutex
	var got []string
	srv, err := wire.Serve(addr, func(m *wire.Message, remote string) *wire.Ack {
		mu.Lock()
		got = append(got, m.Branch)
		mu.Unlock()
		return &wire.Ack{OK: true}
	})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv.Close()

	if err := sink.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != total {
		t.Fatalf("server got %d, want %d", len(got), total)
	}
	for i, b := range got {
		if b != fmt.Sprintf("probe=p%d", i) {
			t.Fatalf("order broken at %d: %s", i, b)
		}
	}
	ds := sink.DeliveryStats()
	if ds.Replayed != total || ds.Dropped != 0 || ds.Rejected != 0 || ds.Depth != 0 {
		t.Fatalf("delivery stats = %+v", ds)
	}
	if ds.Spooled != ds.Replayed+ds.Rejected+ds.Dropped {
		t.Fatalf("accounting broken: %+v", ds)
	}
}

func TestReliableSinkDropsAfterMaxAttempts(t *testing.T) {
	sink, err := NewWireSinkReliable("127.0.0.1:1", DeliveryOptions{ // nothing listens
		Client:      wire.ClientOptions{DialTimeout: 50 * time.Millisecond},
		Backoff:     wire.RetryPolicy{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := sink.Submit(branch.MustParse("probe=p"), "h", []byte("<r/>")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ds := sink.DeliveryStats(); ds.Dropped == 1 && ds.Depth == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("report never dropped after MaxAttempts: %+v", sink.DeliveryStats())
}

func TestReliableSinkCountsRejections(t *testing.T) {
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack {
		return &wire.Ack{OK: false, Message: "not on allowlist"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sink, err := NewWireSinkReliable(srv.Addr(), DeliveryOptions{
		Backoff: wire.RetryPolicy{Base: time.Millisecond, Cap: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := sink.Submit(branch.MustParse("probe=p"), "h", []byte("<r/>")); err != nil {
		t.Fatal(err)
	}
	if err := sink.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ds := sink.DeliveryStats()
	if ds.Rejected != 1 || ds.Replayed != 0 || ds.Depth != 0 {
		t.Fatalf("delivery stats = %+v", ds)
	}
}

func TestReliableSinkBatchedSurvivesRestart(t *testing.T) {
	handler := func(got *[]string, mu *sync.Mutex) wire.Handler {
		return func(m *wire.Message, remote string) *wire.Ack {
			mu.Lock()
			*got = append(*got, m.Branch)
			mu.Unlock()
			return &wire.Ack{OK: true}
		}
	}
	var mu sync.Mutex
	var got []string
	srv, err := wire.Serve("127.0.0.1:0", handler(&got, &mu))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	sink, err := NewWireSinkReliable(addr, DeliveryOptions{
		Backoff: wire.RetryPolicy{Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond},
		Batch:   &wire.BatchOptions{MaxBatch: 4, Window: 2, DialTimeout: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	submit := func(i int) {
		if err := sink.Submit(branch.MustParse(fmt.Sprintf("probe=p%d", i)), "h", []byte("<r/>")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total/2; i++ {
		submit(i)
	}
	srv.Close() // controller dies mid-run
	for i := total / 2; i < total; i++ {
		submit(i)
	}
	srv2, err := wire.Serve(addr, handler(&got, &mu))
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if err := sink.Drain(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Logf("close: %v (stale async error is acceptable)", err)
	}

	// At-least-once across the restart: every report arrives, and the
	// first occurrence per branch preserves submission order.
	mu.Lock()
	defer mu.Unlock()
	seen := make(map[string]int)
	var firsts []string
	for _, b := range got {
		if seen[b] == 0 {
			firsts = append(firsts, b)
		}
		seen[b]++
	}
	if len(seen) != total {
		t.Fatalf("unique reports = %d, want %d (loss across restart)", len(seen), total)
	}
	for i, b := range firsts {
		if b != fmt.Sprintf("probe=p%d", i) {
			t.Fatalf("order broken at %d: %s", i, b)
		}
	}
	ds := sink.DeliveryStats()
	if ds.Spooled != total || ds.Dropped != 0 {
		t.Fatalf("delivery stats = %+v", ds)
	}
}
