package agent

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
)

func specForDocTest() Spec {
	mk := func(name string) reporter.Reporter {
		return &reporter.Func{ReporterName: name, Fn: func(ctx *reporter.Context, rep *report.Report) {
			rep.Body = report.Branch("p", "1", report.Leaf("ok", "1"))
		}}
	}
	return Spec{
		Resource:     "login1.example.org",
		WorkingDir:   "/home/inca",
		ReporterPath: "/home/inca/reporters",
		Series: []Series{
			{
				Reporter: mk("probe.setup"),
				Branch:   branch.MustParse("probe=setup,vo=tg"),
				Cron:     schedule.MustParseCron("20 * * * *"),
				Limit:    5 * time.Minute,
				Args:     []report.Arg{{Name: "dest", Value: "siteB"}},
			},
			{
				Reporter:  mk("probe.dependent"),
				Branch:    branch.MustParse("probe=dep,vo=tg"),
				Cron:      schedule.MustParseCron("20 * * * *"),
				DependsOn: []string{"probe.setup@probe=setup,vo=tg"},
			},
		},
	}
}

func TestSpecDefDocumentRoundTrip(t *testing.T) {
	orig := specForDocTest()
	def := (&orig).Def()
	data, err := MarshalSpec(def)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`resource="login1.example.org"`,
		`reporter="probe.setup"`,
		`cron="20 * * * *"`,
		`limit="5m0s"`,
		`branch="probe=setup,vo=tg"`,
		"probe.setup@probe=setup,vo=tg",
		`name="dest"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("document missing %q:\n%s", want, data)
		}
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, normalizeDef(back)) {
		t.Fatalf("def round trip:\n got %+v\nwant %+v", normalizeDef(back), def)
	}
	// Rebuild with a name-keyed resolver and verify the runnable spec.
	resolve := func(name string) (reporter.Reporter, error) {
		return &reporter.Func{ReporterName: name, Fn: func(*reporter.Context, *report.Report) {}}, nil
	}
	rebuilt, err := BuildFromDef(back, Resolver(resolve))
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Resource != orig.Resource || rebuilt.WorkingDir != orig.WorkingDir {
		t.Fatalf("rebuilt = %+v", rebuilt)
	}
	if len(rebuilt.Series) != 2 {
		t.Fatalf("series = %d", len(rebuilt.Series))
	}
	s0 := rebuilt.Series[0]
	if s0.Reporter.Name() != "probe.setup" || s0.Limit != 5*time.Minute ||
		!s0.Branch.Equal(branch.MustParse("probe=setup,vo=tg")) ||
		s0.Cron.String() != "20 * * * *" ||
		len(s0.Args) != 1 || s0.Args[0].Value != "siteB" {
		t.Fatalf("series 0 = %+v", s0)
	}
	if len(rebuilt.Series[1].DependsOn) != 1 {
		t.Fatalf("series 1 deps = %v", rebuilt.Series[1].DependsOn)
	}
}

// normalizeDef clears the XMLName field the decoder fills in so structural
// comparison against a hand-built def works.
func normalizeDef(d SpecDef) SpecDef {
	d.XMLName.Local = ""
	d.XMLName.Space = ""
	return d
}

func TestBuildFromDefResolverErrorPropagates(t *testing.T) {
	s := specForDocTest()
	def := s.Def()
	resolve := func(name string) (reporter.Reporter, error) {
		return nil, errSink{}
	}
	if _, err := BuildFromDef(def, resolve); err == nil {
		t.Fatal("resolver error swallowed")
	}
}

type errSink struct{}

func (errSink) Error() string { return "no such reporter" }
