package agent

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
	"inca/internal/simtime"
)

var t0 = time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)

type collector struct {
	mu   sync.Mutex
	msgs []struct {
		id   branch.ID
		host string
		data []byte
	}
	fail bool
}

func (c *collector) Submit(id branch.ID, host string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail {
		return fmt.Errorf("sink down")
	}
	c.msgs = append(c.msgs, struct {
		id   branch.ID
		host string
		data []byte
	}{id, host, data})
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func okReporter(name string, dur time.Duration) reporter.Reporter {
	return &reporter.Func{
		ReporterName: name,
		Duration:     dur,
		Fn: func(ctx *reporter.Context, rep *report.Report) {
			rep.Body = report.Branch("probe", "x", report.Leaf("ok", "1"))
		},
	}
}

func failReporter(name string) reporter.Reporter {
	return &reporter.Func{
		ReporterName: name,
		Fn: func(ctx *reporter.Context, rep *report.Report) {
			rep.Fail("probe says no")
		},
	}
}

func panicReporter(name string) reporter.Reporter {
	return &reporter.Func{
		ReporterName: name,
		Fn: func(ctx *reporter.Context, rep *report.Report) {
			panic("boom")
		},
	}
}

// drive advances the agent's scheduler deterministically to target.
func drive(a *Agent, sim *simtime.Sim, target time.Time) {
	for {
		next, ok := a.Scheduler().NextFire()
		if !ok || next.After(target) {
			sim.AdvanceTo(target)
			return
		}
		sim.AdvanceTo(next)
		a.Scheduler().RunPending()
	}
}

func newSimAgent(t *testing.T, series ...Series) (*Agent, *simtime.Sim, *collector) {
	t.Helper()
	sim := simtime.NewSim(t0)
	sink := &collector{}
	a, err := New(Spec{
		Resource:     "login1.test.org",
		WorkingDir:   "/home/inca",
		ReporterPath: "/home/inca/reporters",
		Series:       series,
	}, sim, sink, Simulated)
	if err != nil {
		t.Fatal(err)
	}
	return a, sim, sink
}

func TestNewValidation(t *testing.T) {
	sim := simtime.NewSim(t0)
	sink := &collector{}
	if _, err := New(Spec{}, sim, sink, Simulated); err == nil {
		t.Fatal("empty resource accepted")
	}
	if _, err := New(Spec{Resource: "h"}, sim, nil, Simulated); err == nil {
		t.Fatal("nil sink accepted")
	}
	if _, err := New(Spec{Resource: "h", Series: []Series{{}}}, sim, sink, Simulated); err == nil {
		t.Fatal("series without reporter accepted")
	}
	if _, err := New(Spec{Resource: "h", Series: []Series{{Reporter: okReporter("r", 0)}}}, sim, sink, Simulated); err == nil {
		t.Fatal("series without schedule accepted")
	}
}

func TestHourlyExecutionAndForwarding(t *testing.T) {
	a, sim, sink := newSimAgent(t, Series{
		Reporter: okReporter("probe.one", time.Second),
		Branch:   branch.MustParse("probe=one,resource=login1"),
		Cron:     schedule.MustParseCron("20 * * * *"),
	})
	drive(a, sim, t0.Add(5*time.Hour))
	if sink.count() != 5 {
		t.Fatalf("forwarded %d reports, want 5", sink.count())
	}
	msg := sink.msgs[0]
	if msg.host != "login1.test.org" {
		t.Fatalf("host = %q", msg.host)
	}
	if !msg.id.Equal(branch.MustParse("probe=one,resource=login1")) {
		t.Fatalf("branch = %s", msg.id)
	}
	rep, err := report.Parse(msg.data)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report failed: %s", rep.Footer.ErrorMessage)
	}
	if rep.Header.Hostname != "login1.test.org" || rep.Header.WorkingDir != "/home/inca" {
		t.Fatalf("header = %+v", rep.Header)
	}
	st := a.Stats()
	if st.Runs != 5 || st.Failures != 0 || st.Killed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLimitKillProducesErrorReport(t *testing.T) {
	a, sim, sink := newSimAgent(t, Series{
		Reporter: okReporter("probe.slow", 10*time.Minute),
		Branch:   branch.MustParse("probe=slow"),
		Cron:     schedule.MustParseCron("0 * * * *"),
		Limit:    5 * time.Minute,
	})
	drive(a, sim, t0.Add(time.Hour+time.Minute))
	if sink.count() != 1 {
		t.Fatalf("forwarded %d, want 1 (the error report)", sink.count())
	}
	rep, err := report.Parse(sink.msgs[0].data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() {
		t.Fatal("killed run reported success")
	}
	if !strings.Contains(rep.Footer.ErrorMessage, "exceeded expected run time") {
		t.Fatalf("error = %q", rep.Footer.ErrorMessage)
	}
	if st := a.Stats(); st.Killed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReporterFailureForwardedAsErrorReport(t *testing.T) {
	a, sim, sink := newSimAgent(t, Series{
		Reporter: failReporter("probe.bad"),
		Branch:   branch.MustParse("probe=bad"),
		Cron:     schedule.MustParseCron("0 * * * *"),
	})
	drive(a, sim, t0.Add(time.Hour+time.Minute))
	if sink.count() != 1 {
		t.Fatalf("forwarded %d", sink.count())
	}
	rep, _ := report.Parse(sink.msgs[0].data)
	if rep.Succeeded() || rep.Footer.ErrorMessage != "probe says no" {
		t.Fatalf("report = %+v", rep.Footer)
	}
	if st := a.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanickingReporterDoesNotKillAgent(t *testing.T) {
	a, sim, sink := newSimAgent(t,
		Series{
			Reporter: panicReporter("probe.crash"),
			Branch:   branch.MustParse("probe=crash"),
			Cron:     schedule.MustParseCron("0 * * * *"),
		},
		Series{
			Reporter: okReporter("probe.fine", time.Second),
			Branch:   branch.MustParse("probe=fine"),
			Cron:     schedule.MustParseCron("30 * * * *"),
		})
	drive(a, sim, t0.Add(time.Hour+time.Minute))
	if sink.count() != 2 {
		t.Fatalf("forwarded %d, want 2", sink.count())
	}
	for _, m := range sink.msgs {
		rep, err := report.Parse(m.data)
		if err != nil {
			t.Fatal(err)
		}
		if m.id.Equal(branch.MustParse("probe=crash")) {
			if rep.Succeeded() || !strings.Contains(rep.Footer.ErrorMessage, "crashed") {
				t.Fatalf("crash report = %+v", rep.Footer)
			}
		}
	}
}

func TestSinkErrorsCounted(t *testing.T) {
	a, sim, sink := newSimAgent(t, Series{
		Reporter: okReporter("probe.one", 0),
		Branch:   branch.MustParse("probe=one"),
		Cron:     schedule.MustParseCron("0 * * * *"),
	})
	sink.fail = true
	drive(a, sim, t0.Add(time.Hour+time.Minute))
	if st := a.Stats(); st.SubmitErrs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDependencySkipAcrossSeries(t *testing.T) {
	setup := Series{
		Reporter: failReporter("probe.setup"),
		Branch:   branch.MustParse("probe=setup"),
		Cron:     schedule.MustParseCron("0 * * * *"),
	}
	dependent := Series{
		Reporter:  okReporter("probe.dep", 0),
		Branch:    branch.MustParse("probe=dep"),
		Cron:      schedule.MustParseCron("0 * * * *"),
		DependsOn: []string{setup.Name()},
	}
	a, sim, sink := newSimAgent(t, setup, dependent)
	drive(a, sim, t0.Add(time.Hour+time.Minute))
	// Only the setup's failure report goes out; the dependent was skipped.
	if sink.count() != 1 {
		t.Fatalf("forwarded %d, want 1", sink.count())
	}
	if st := a.Stats(); st.DepSkips != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUsageModelIdleVsBusy(t *testing.T) {
	a, sim, _ := newSimAgent(t, Series{
		Reporter: okReporter("probe.busy", 10*time.Minute),
		Branch:   branch.MustParse("probe=busy"),
		Cron:     schedule.MustParseCron("0 * * * *"),
	})
	drive(a, sim, t0.Add(2*time.Hour))
	// During the run (first 10 minutes of each hour) one fork is resident.
	cpu, mem := a.UsageAt(t0.Add(time.Hour + 5*time.Minute))
	if mem != a.BaseMemMB+a.ForkMemMB {
		t.Fatalf("busy mem = %g", mem)
	}
	if cpu <= a.BaseCPUFrac*100 {
		t.Fatalf("busy cpu = %g", cpu)
	}
	// Idle: only the daemon.
	cpuIdle, memIdle := a.UsageAt(t0.Add(time.Hour + 30*time.Minute))
	if memIdle != a.BaseMemMB {
		t.Fatalf("idle mem = %g", memIdle)
	}
	if cpuIdle >= cpu {
		t.Fatalf("idle cpu %g >= busy cpu %g", cpuIdle, cpu)
	}
}

func TestTrimIntervals(t *testing.T) {
	a, sim, _ := newSimAgent(t, Series{
		Reporter: okReporter("probe.x", time.Minute),
		Branch:   branch.MustParse("probe=x"),
		Cron:     schedule.MustParseCron("0 * * * *"),
	})
	drive(a, sim, t0.Add(10*time.Hour))
	a.mu.Lock()
	before := len(a.intervals)
	a.mu.Unlock()
	if before != 10 {
		t.Fatalf("intervals = %d", before)
	}
	// Fires happened at hours 1..10; the runs starting at 9:00 and 10:00
	// end after the cutoff and survive.
	a.TrimIntervalsBefore(t0.Add(9 * time.Hour))
	a.mu.Lock()
	after := len(a.intervals)
	a.mu.Unlock()
	if after != 2 {
		t.Fatalf("after trim = %d, want 2", after)
	}
}

func TestRandomizedOffsetsSpreadLoad(t *testing.T) {
	// Build an agent with 50 hourly series using schedule.Every, as the
	// deployed specification files did, and verify fires spread across the
	// hour rather than stampeding at minute 0.
	rng := rand.New(rand.NewSource(3))
	var series []Series
	for i := 0; i < 50; i++ {
		series = append(series, Series{
			Reporter: okReporter(fmt.Sprintf("probe.%02d", i), time.Second),
			Branch:   branch.MustParse(fmt.Sprintf("probe=p%02d", i)),
			Cron:     schedule.MustEvery(time.Hour, rng),
		})
	}
	a, sim, sink := newSimAgent(t, series...)
	drive(a, sim, t0.Add(time.Hour))
	if sink.count() != 50 {
		t.Fatalf("forwarded %d, want 50", sink.count())
	}
	minutes := map[int]int{}
	maxPerMinute := 0
	for _, m := range sink.msgs {
		rep, _ := report.Parse(m.data)
		minute := rep.Header.GMT.Minute()
		minutes[minute]++
		if minutes[minute] > maxPerMinute {
			maxPerMinute = minutes[minute]
		}
	}
	if len(minutes) < 20 {
		t.Fatalf("fires concentrated in %d distinct minutes", len(minutes))
	}
	if maxPerMinute > 10 {
		t.Fatalf("%d fires in one minute — not spread", maxPerMinute)
	}
}

func TestLiveModeDeadline(t *testing.T) {
	// A reporter that genuinely blocks is abandoned at the wall deadline.
	slow := &reporter.Func{
		ReporterName: "probe.block",
		Fn: func(ctx *reporter.Context, rep *report.Report) {
			time.Sleep(5 * time.Second)
		},
	}
	sink := &collector{}
	a, err := New(Spec{
		Resource: "h",
		Series: []Series{{
			Reporter: slow,
			Branch:   branch.MustParse("probe=block"),
			Cron:     schedule.MustParseCron("* * * * *"),
			Limit:    50 * time.Millisecond,
		}},
	}, simtime.Real{}, sink, Live)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	a.Scheduler().RunPending() // nothing due yet; manufacture a direct run
	rep, killed := a.runWithDeadline(&a.spec.Series[0], &reporter.Context{Hostname: "h", Now: time.Now()})
	if !killed || rep != nil {
		t.Fatalf("killed=%v rep=%v", killed, rep)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline not enforced promptly")
	}
}
