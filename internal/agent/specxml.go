package agent

import (
	"encoding/xml"
	"fmt"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/schedule"
)

// Specification files as documents. Section 3.1.3: "distributed
// controllers are designed to receive execution instructions in the form
// of a specification file from the Inca server ... The specification file
// describes execution details for each reporter including frequency,
// expected run time, and input arguments." The paper's deployment shipped
// these by hand; this file provides the machine-readable form that the
// central-configuration requirement (Section 2.3) calls for, so the server
// can disseminate changes automatically (see query.Server's /spec
// endpoints and core.ResolveSpec).

// SeriesDef is the serializable description of one series: the reporter is
// referenced by name and reconstructed on the resource by a resolver.
type SeriesDef struct {
	Reporter  string      `xml:"reporter,attr"`
	Cron      string      `xml:"cron,attr"`
	Limit     string      `xml:"limit,attr,omitempty"`
	Branch    string      `xml:"branch,attr"`
	DependsOn []string    `xml:"dependsOn>series,omitempty"`
	Args      []SeriesArg `xml:"arg,omitempty"`
}

// SeriesArg is one run-time input argument.
type SeriesArg struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// SpecDef is the serializable specification file.
type SpecDef struct {
	XMLName      xml.Name    `xml:"specification"`
	Resource     string      `xml:"resource,attr"`
	WorkingDir   string      `xml:"workingDir,attr,omitempty"`
	ReporterPath string      `xml:"reporterPath,attr,omitempty"`
	Series       []SeriesDef `xml:"series"`
}

// Def extracts the serializable form of a live Spec.
func (s *Spec) Def() SpecDef {
	d := SpecDef{
		Resource:     s.Resource,
		WorkingDir:   s.WorkingDir,
		ReporterPath: s.ReporterPath,
	}
	for _, series := range s.Series {
		sd := SeriesDef{
			Reporter:  series.Reporter.Name(),
			Cron:      series.Cron.String(),
			Branch:    series.Branch.String(),
			DependsOn: append([]string(nil), series.DependsOn...),
		}
		if series.Limit > 0 {
			sd.Limit = series.Limit.String()
		}
		for _, a := range series.Args {
			sd.Args = append(sd.Args, SeriesArg{Name: a.Name, Value: a.Value})
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// MarshalSpec serializes a specification document.
func MarshalSpec(d SpecDef) ([]byte, error) {
	return xml.MarshalIndent(d, "", "  ")
}

// ParseSpec reads a specification document.
func ParseSpec(data []byte) (SpecDef, error) {
	var d SpecDef
	if err := xml.Unmarshal(data, &d); err != nil {
		return SpecDef{}, fmt.Errorf("agent: bad specification: %w", err)
	}
	if d.Resource == "" {
		return SpecDef{}, fmt.Errorf("agent: specification missing resource attribute")
	}
	if len(d.Series) == 0 {
		return SpecDef{}, fmt.Errorf("agent: specification has no series")
	}
	return d, nil
}

// Resolver reconstructs a reporter from its name for a given resource
// (see core.CatalogResolver for the standard catalog-backed one).
type Resolver func(reporterName string) (reporter.Reporter, error)

// BuildFromDef reconstructs a runnable Spec from its document form using
// the given resolver for reporters.
func BuildFromDef(d SpecDef, resolve Resolver) (Spec, error) {
	spec := Spec{
		Resource:     d.Resource,
		WorkingDir:   d.WorkingDir,
		ReporterPath: d.ReporterPath,
	}
	for i, sd := range d.Series {
		r, err := resolve(sd.Reporter)
		if err != nil {
			return Spec{}, fmt.Errorf("agent: series %d (%s): %w", i, sd.Reporter, err)
		}
		cron, err := schedule.ParseCron(sd.Cron)
		if err != nil {
			return Spec{}, fmt.Errorf("agent: series %s: %w", sd.Reporter, err)
		}
		id, err := branch.Parse(sd.Branch)
		if err != nil {
			return Spec{}, fmt.Errorf("agent: series %s: %w", sd.Reporter, err)
		}
		var limit time.Duration
		if sd.Limit != "" {
			if limit, err = time.ParseDuration(sd.Limit); err != nil {
				return Spec{}, fmt.Errorf("agent: series %s limit: %w", sd.Reporter, err)
			}
		}
		series := Series{
			Reporter:  r,
			Cron:      cron,
			Branch:    id,
			Limit:     limit,
			DependsOn: append([]string(nil), sd.DependsOn...),
		}
		for _, a := range sd.Args {
			series.Args = append(series.Args, report.Arg{Name: a.Name, Value: a.Value})
		}
		spec.Series = append(spec.Series, series)
	}
	return spec, nil
}
