package consumer

import (
	"bytes"
	"fmt"
	"html/template"
	"math"
	"time"

	"inca/internal/agreement"
	"inca/internal/depot"
	"inca/internal/rrd"
)

// AvailabilityPage renders a VO-wide availability overview: one row per
// resource and category with a sparkline of the archived summary
// percentages — one of the "other status page formats" Section 4.1
// mentions alongside the summary table, and part of the future-work
// "additional user interfaces".
type AvailabilityPage struct {
	Title string
	Start time.Time
	End   time.Time
	Rows  []AvailabilityRow
}

// AvailabilityRow is one resource/category series.
type AvailabilityRow struct {
	Resource string
	Category agreement.Category
	Spark    string
	Mean     float64
	Min      float64
	Samples  int
}

// BuildAvailabilityPage collects archived availability series for every
// resource in resources over [start, end].
func BuildAvailabilityPage(d *depot.Depot, title string, resources []string, cats []agreement.Category, start, end time.Time) (*AvailabilityPage, error) {
	page := &AvailabilityPage{Title: title, Start: start, End: end}
	for _, res := range resources {
		for _, cat := range cats {
			series, err := AvailabilitySeries(d, res, cat, start, end)
			if err != nil {
				continue // category never archived for this resource
			}
			vals, err := series.Values(AvailabilityPolicyName)
			if err != nil {
				return nil, err
			}
			row := AvailabilityRow{
				Resource: res,
				Category: cat,
				Spark:    rrd.SparkLine(vals),
				Min:      math.Inf(1),
			}
			sum := 0.0
			for _, v := range vals {
				if math.IsNaN(v) {
					continue
				}
				row.Samples++
				sum += v
				if v < row.Min {
					row.Min = v
				}
			}
			if row.Samples > 0 {
				row.Mean = sum / float64(row.Samples)
			} else {
				row.Min = math.NaN()
			}
			page.Rows = append(page.Rows, row)
		}
	}
	return page, nil
}

// Text renders the page for terminals.
func (p *AvailabilityPage) Text() string {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "%s\n%s — %s\n\n", p.Title,
		p.Start.Format("Jan 2 15:04"), p.End.Format("Jan 2 15:04"))
	fmt.Fprintf(&sb, "%-34s %-12s %-8s %-8s %s\n", "Resource", "Category", "mean%", "min%", "history")
	for _, r := range p.Rows {
		fmt.Fprintf(&sb, "%-34s %-12s %-8.1f %-8.1f %s\n", r.Resource, r.Category, r.Mean, r.Min, r.Spark)
	}
	return sb.String()
}

// HTML renders the page as a standalone web page.
func (p *AvailabilityPage) HTML() ([]byte, error) {
	var buf bytes.Buffer
	if err := availabilityTmpl.Execute(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

var availabilityTmpl = template.Must(template.New("availability").Funcs(template.FuncMap{
	"pct": func(f float64) string {
		if math.IsNaN(f) {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", f)
	},
}).Parse(`<!DOCTYPE html>
<html>
<head>
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 4px 8px; }
td.spark { font-family: monospace; letter-spacing: 1px; }
td.bad { background: #fcc; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p>{{.Start.Format "Jan 2 15:04"}} &mdash; {{.End.Format "Jan 2 15:04"}}</p>
<table>
<tr><th>Resource</th><th>Category</th><th>mean</th><th>min</th><th>history</th></tr>
{{range .Rows}}<tr><td>{{.Resource}}</td><td>{{.Category}}</td><td{{if lt .Mean 95.0}} class="bad"{{end}}>{{pct .Mean}}</td><td>{{pct .Min}}</td><td class="spark">{{.Spark}}</td></tr>
{{end}}</table>
</body>
</html>
`))
