package consumer

import (
	"strings"
	"testing"
	"time"

	"inca/internal/agreement"
)

func statusWith(at time.Time, results ...agreement.TestResult) *agreement.VOStatus {
	byRes := map[string]*agreement.ResourceStatus{}
	status := &agreement.VOStatus{At: at, Agreement: &agreement.Agreement{Name: "t"}}
	for _, r := range results {
		rs, ok := byRes[r.Resource]
		if !ok {
			rs = &agreement.ResourceStatus{Resource: r.Resource}
			byRes[r.Resource] = rs
			status.Resources = append(status.Resources, rs)
		}
		rs.Results = append(rs.Results, r)
	}
	return status
}

func TestNotifierTransitions(t *testing.T) {
	n := NewNotifier()
	pass := agreement.TestResult{Resource: "r1", Category: agreement.Grid, Test: "globus: unit test", Pass: true}
	fail := pass
	fail.Pass = false
	fail.Detail = "gatekeeper timed out"

	// Initial snapshot: everything green → no events.
	ev := n.Observe(statusWith(t0, pass))
	if len(ev) != 0 {
		t.Fatalf("events on green snapshot: %+v", ev)
	}
	// Goes red → one Failed event.
	ev = n.Observe(statusWith(t0.Add(10*time.Minute), fail))
	if len(ev) != 1 || ev[0].Kind != Failed || ev[0].Detail != "gatekeeper timed out" {
		t.Fatalf("events = %+v", ev)
	}
	// Still red → silence.
	ev = n.Observe(statusWith(t0.Add(20*time.Minute), fail))
	if len(ev) != 0 {
		t.Fatalf("re-notified: %+v", ev)
	}
	// Outstanding lists it with its original onset.
	out := n.Outstanding(t0.Add(25 * time.Minute))
	if len(out) != 1 || out[0].Kind != StillFailing || !out[0].Since.Equal(t0.Add(10*time.Minute)) {
		t.Fatalf("outstanding = %+v", out)
	}
	// Recovery → one Recovered event carrying the onset time.
	ev = n.Observe(statusWith(t0.Add(30*time.Minute), pass))
	if len(ev) != 1 || ev[0].Kind != Recovered || !ev[0].Since.Equal(t0.Add(10*time.Minute)) {
		t.Fatalf("events = %+v", ev)
	}
	if len(n.Outstanding(t0.Add(31*time.Minute))) != 0 {
		t.Fatal("recovered test still outstanding")
	}
}

func TestNotifierInitialRedSnapshot(t *testing.T) {
	n := NewNotifier()
	fail := agreement.TestResult{Resource: "r1", Category: agreement.Grid, Test: "srb: service", Pass: false, Detail: "down"}
	ev := n.Observe(statusWith(t0, fail))
	if len(ev) != 1 || ev[0].Kind != Failed {
		t.Fatalf("initial triage events = %+v", ev)
	}
}

func TestNotifierOrdering(t *testing.T) {
	n := NewNotifier()
	mk := func(res, test string) agreement.TestResult {
		return agreement.TestResult{Resource: res, Category: agreement.Grid, Test: test, Pass: false, Detail: "x"}
	}
	ev := n.Observe(statusWith(t0, mk("zeta", "a-test"), mk("alpha", "z-test"), mk("alpha", "a-test")))
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Resource != "alpha" || ev[0].Test != "a-test" || ev[2].Resource != "zeta" {
		t.Fatalf("order = %+v", ev)
	}
}

func TestNotifierRemovedTestDropsSilently(t *testing.T) {
	n := NewNotifier()
	fail := agreement.TestResult{Resource: "r1", Category: agreement.Grid, Test: "t", Pass: false, Detail: "d"}
	n.Observe(statusWith(t0, fail))
	// Next snapshot has no such test at all.
	ev := n.Observe(statusWith(t0.Add(time.Minute),
		agreement.TestResult{Resource: "r1", Category: agreement.Grid, Test: "other", Pass: true}))
	for _, e := range ev {
		if e.Test == "t" {
			t.Fatalf("event for removed test: %+v", e)
		}
	}
	if len(n.Outstanding(t0.Add(2*time.Minute))) != 0 {
		t.Fatal("removed test still tracked")
	}
}

func TestEventRendering(t *testing.T) {
	e := Event{
		Kind: Failed, At: t0, Resource: "r1", Category: agreement.Grid,
		Test: "globus: unit test", Detail: "boom", Since: t0,
	}
	s := e.String()
	for _, want := range []string{"FAILED", "r1", "globus: unit test", "boom", "[Grid]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	rec := Event{Kind: Recovered, At: t0.Add(time.Hour), Resource: "r1", Test: "t", Since: t0}
	if !strings.Contains(rec.String(), "was failing since") {
		t.Fatalf("recovered string = %q", rec.String())
	}
	if RenderEvents(nil) != "" {
		t.Fatal("empty render not empty")
	}
	if !strings.Contains(RenderEvents([]Event{e}), "FAILED") {
		t.Fatal("render missing event")
	}
	if EventKind(9).String() == "" || StillFailing.String() != "STILL-FAILING" {
		t.Fatal("kind names wrong")
	}
}
