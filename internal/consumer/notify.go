package consumer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"inca/internal/agreement"
)

// Failure notification (paper Section 2.2): "Frequent verification
// provides quick notification of failures, enabling system administrators
// to respond immediately to problems as they are detected by the
// verification process, rather than reacting after users discover them."
//
// A Notifier diffs successive verification snapshots and emits one event
// per test whose pass/fail state changed, so operators see transitions —
// not a re-broadcast of everything red.

// EventKind classifies a transition.
type EventKind int

// Transition kinds.
const (
	// Failed: a previously passing (or new) test went red.
	Failed EventKind = iota
	// Recovered: a previously failing test went green.
	Recovered
	// StillFailing is reported by Outstanding, not by Diff.
	StillFailing
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case Failed:
		return "FAILED"
	case Recovered:
		return "RECOVERED"
	case StillFailing:
		return "STILL-FAILING"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one state transition.
type Event struct {
	Kind     EventKind
	At       time.Time
	Resource string
	Category agreement.Category
	Test     string
	Detail   string
	// Since is when the test entered its current failing state (zero for
	// Recovered events' new state).
	Since time.Time
}

// String renders the event as an operator log line.
func (e Event) String() string {
	base := fmt.Sprintf("%s %-13s %s: %s [%s]",
		e.At.Format("Jan 02 15:04"), e.Kind, e.Resource, e.Test, e.Category)
	if e.Kind == Failed && e.Detail != "" {
		base += ": " + e.Detail
	}
	if e.Kind == Recovered && !e.Since.IsZero() {
		base += fmt.Sprintf(" (was failing since %s)", e.Since.Format("Jan 02 15:04"))
	}
	return base
}

// testKey identifies one test on one resource.
type testKey struct {
	resource string
	test     string
}

type failState struct {
	category agreement.Category
	detail   string
	since    time.Time
}

// Notifier tracks failing state across snapshots.
type Notifier struct {
	failing map[testKey]failState
}

// NewNotifier returns an empty tracker; the first Observe call emits a
// Failed event for every already-red test (the initial triage list).
func NewNotifier() *Notifier {
	return &Notifier{failing: make(map[testKey]failState)}
}

// Observe ingests a verification snapshot and returns the transitions
// since the previous one, ordered by resource then test name.
func (n *Notifier) Observe(status *agreement.VOStatus) []Event {
	var events []Event
	seen := make(map[testKey]bool)
	for _, rs := range status.Resources {
		for _, res := range rs.Results {
			k := testKey{resource: rs.Resource, test: res.Test}
			seen[k] = true
			prev, wasFailing := n.failing[k]
			switch {
			case !res.Pass && !wasFailing:
				n.failing[k] = failState{category: res.Category, detail: res.Detail, since: status.At}
				events = append(events, Event{
					Kind: Failed, At: status.At, Resource: rs.Resource,
					Category: res.Category, Test: res.Test, Detail: res.Detail,
					Since: status.At,
				})
			case res.Pass && wasFailing:
				delete(n.failing, k)
				events = append(events, Event{
					Kind: Recovered, At: status.At, Resource: rs.Resource,
					Category: res.Category, Test: res.Test, Since: prev.since,
				})
			case !res.Pass && wasFailing:
				// Refresh the detail but do not re-notify.
				prev.detail = res.Detail
				n.failing[k] = prev
			}
		}
	}
	// A test that disappeared from the snapshot (reporter removed) stops
	// being tracked without a recovery event.
	for k := range n.failing {
		if !seen[k] {
			delete(n.failing, k)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Resource != events[j].Resource {
			return events[i].Resource < events[j].Resource
		}
		return events[i].Test < events[j].Test
	})
	return events
}

// Outstanding lists everything currently failing, oldest first — the
// operator's open-incident list.
func (n *Notifier) Outstanding(now time.Time) []Event {
	var out []Event
	for k, st := range n.failing {
		out = append(out, Event{
			Kind: StillFailing, At: now, Resource: k.resource,
			Category: st.category, Test: k.test, Detail: st.detail, Since: st.since,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Since.Equal(out[j].Since) {
			return out[i].Since.Before(out[j].Since)
		}
		return out[i].Resource+out[i].Test < out[j].Resource+out[j].Test
	})
	return out
}

// RenderEvents formats events as an operator log block.
func RenderEvents(events []Event) string {
	if len(events) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
