package depot

import (
	"bytes"

	"inca/internal/branch"
)

// ShardedCache hashes each branch identifier onto one of N independent
// StreamCache shards, each with its own lock — the concurrent-ingest
// counterpart of SplitCache. Where SplitCache opens one document per
// most-general component group (so the shard population follows the data),
// ShardedCache fixes the shard count up front so that writers for
// different identifiers contend on different locks and each update streams
// a document ~1/N the total size. Section 5.2's scaling wall (insert cost
// linear in document size, all writers serialized on one document) falls
// on both axes at once.
//
// Hashing uses the identifier's most-general depth components (like
// controller.ShardedDepot), so an entire vo/site subtree lands on one
// shard and queries at or below the shard depth touch a single document.
// Shallower queries and Dump stitch the shards back into one view.
type ShardedCache struct {
	shards []*StreamCache
	depth  int
}

// NewShardedCache returns a cache with n shards hashed on the single
// most-general branch component.
func NewShardedCache(n int) *ShardedCache { return NewShardedCacheDepth(n, 1) }

// NewShardedCacheDepth returns a cache with n shards hashed on up to depth
// most-general components (depth 2 spreads vo/site pairs across shards).
func NewShardedCacheDepth(n, depth int) *ShardedCache {
	if n < 1 {
		n = 1
	}
	if depth < 1 {
		depth = 1
	}
	c := &ShardedCache{shards: make([]*StreamCache, n), depth: depth}
	for i := range c.shards {
		c.shards[i] = NewStreamCache()
	}
	return c
}

// Shards returns the shard count.
func (c *ShardedCache) Shards() int { return len(c.shards) }

// shardFor maps an identifier to its shard index by hashing the
// most-general depth components (FNV-1a with an avalanche finalizer, as
// small moduli correlate badly with FNV's trailing-byte linearity).
func (c *ShardedCache) shardFor(id branch.ID) int {
	path := id.Path()
	if len(path) > c.depth {
		path = path[:c.depth]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range path {
		for i := 0; i < len(p.Name); i++ {
			h = (h ^ uint64(p.Name[i])) * prime64
		}
		h *= prime64 // NUL separator
		for i := 0; i < len(p.Value); i++ {
			h = (h ^ uint64(p.Value[i])) * prime64
		}
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(len(c.shards)))
}

// Update implements Cache. Writers for identifiers on different shards
// proceed in parallel; only same-shard writers serialize.
func (c *ShardedCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	return c.shards[c.shardFor(id)].Update(id, reportXML)
}

// Query implements Cache. At or below the shard depth the identifier names
// exactly one shard; shallower prefixes merge the matching subtree from
// every shard (each shard holds a disjoint child set under the prefix,
// because deeper components decide the hash).
func (c *ShardedCache) Query(id branch.ID) ([]byte, bool, error) {
	if id.IsRoot() {
		return c.Dump(), true, nil
	}
	if id.Depth() >= c.depth {
		return c.shards[c.shardFor(id)].Query(id)
	}
	return mergeShardQuery(c.shards, id)
}

// Reports implements Cache.
func (c *ShardedCache) Reports(prefix branch.ID) ([]Stored, error) {
	if prefix.Depth() >= c.depth {
		return c.shards[c.shardFor(prefix)].Reports(prefix)
	}
	var out []Stored
	for _, s := range c.shards {
		part, err := s.Reports(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// Dump implements Cache: the shards' documents stitched under one root,
// in shard-index order (the same stitching SplitCache performs; consumers
// reassemble a canonical single document with Merge or LoadDump).
func (c *ShardedCache) Dump() []byte {
	var buf bytes.Buffer
	buf.WriteString("<cache>")
	for _, s := range c.shards {
		d := s.Dump()
		d = bytes.TrimPrefix(d, []byte("<cache>"))
		d = bytes.TrimSuffix(d, []byte("</cache>"))
		buf.Write(d)
	}
	buf.WriteString("</cache>")
	return buf.Bytes()
}

// Size implements Cache: total bytes across shards.
func (c *ShardedCache) Size() int {
	total := 0
	for _, s := range c.shards {
		total += s.Size()
	}
	return total
}

// Count implements Cache.
func (c *ShardedCache) Count() int {
	total := 0
	for _, s := range c.shards {
		total += s.Count()
	}
	return total
}

// Generation implements Versioned: the sum of the shard generations, which
// strictly increases with every successful update.
func (c *ShardedCache) Generation() uint64 {
	var total uint64
	for _, s := range c.shards {
		total += s.Generation()
	}
	return total
}
