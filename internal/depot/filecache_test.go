package depot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"inca/internal/branch"
)

func TestFileCacheCreateAndPersist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.xml")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Count() != 0 {
		t.Fatal("fresh cache not empty")
	}
	if _, err := fc.Update(branch.MustParse("r=1,vo=tg"), []byte("<rep><v>one</v></rep>")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Update(branch.MustParse("r=2,vo=tg"), []byte("<rep><v>two</v></rep>")); err != nil {
		t.Fatal(err)
	}
	// The on-disk file is the live document.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, fc.Dump()) {
		t.Fatal("disk and memory diverge")
	}
	// A new process (fresh open) sees everything.
	fc2, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if fc2.Count() != 2 {
		t.Fatalf("reloaded count = %d", fc2.Count())
	}
	got, _ := fc2.Reports(branch.MustParse("r=1,vo=tg"))
	if len(got) != 1 || !bytes.Contains(got[0].XML, []byte("one")) {
		t.Fatalf("reloaded reports = %+v", got)
	}
	if fc.Path() != path {
		t.Fatal("path accessor wrong")
	}
}

func TestFileCacheRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.xml")
	if err := os.WriteFile(path, []byte("<cache><broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileCache(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestFileCacheBehavesLikeStreamCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.xml")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewStreamCache()
	ids := []string{"r=1,s=a", "r=2,s=a", "r=1,s=b", "r=1,s=a"} // includes replace
	for i, id := range ids {
		payload := []byte("<rep><v>" + string(rune('0'+i)) + "</v></rep>")
		if _, err := fc.Update(branch.MustParse(id), payload); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Update(branch.MustParse(id), payload); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := fc.Reports(branch.ID{})
	b, _ := sc.Reports(branch.ID{})
	if !reportsEqual(a, b) {
		t.Fatal("file cache diverges from stream cache")
	}
	sub, ok, err := fc.Query(branch.MustParse("s=a"))
	if err != nil || !ok || !bytes.Contains(sub, []byte("branch")) {
		t.Fatalf("query: %v %v", ok, err)
	}
	if fc.Size() != sc.Size() {
		t.Fatalf("sizes: %d vs %d", fc.Size(), sc.Size())
	}
}

func TestFileCacheMalformedUpdateLeavesFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.xml")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Update(branch.MustParse("r=1"), []byte("<rep><v>keep</v></rep>")); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)
	if _, err := fc.Update(branch.MustParse("r=2"), []byte("<broken")); err == nil {
		t.Fatal("malformed payload accepted")
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("failed update changed the file")
	}
}

func TestFileCacheWorksAsDepotBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.xml")
	fc, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	d := New(fc)
	if _, err := d.Store(branch.MustParse("probe=x,vo=tg"), reportWithValue(t, dt0, 990, true)); err != nil {
		t.Fatal(err)
	}
	if d.Cache().Count() != 1 {
		t.Fatal("not stored")
	}
	// Reload as if the depot restarted, keeping the cache file.
	fc2, err := OpenFileCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if fc2.Count() != 1 {
		t.Fatal("cache file lost the report")
	}
}
