package depot

import (
	"bytes"
	"encoding/xml"
	"sync"

	"inca/internal/branch"
)

// IndexedCache is the read-path answer to Section 5.2's scaling wall. The
// deployed depot answers every consumer query by scanning one monolithic
// XML document with a SAX parser, so both Query and Reports pay
// O(document) regardless of how little they return, and every update pays
// a full-document splice. IndexedCache inverts the representation: the
// index — a component trie sorted in canonical (name, value) order, exact
// lookups served through a map keyed on the identifier's path — is the
// source of truth, and the canonical <cache> document is a *derived*
// artifact, materialized lazily only when Dump() or a root Query() needs
// it and invalidated by a generation counter.
//
// Costs:
//
//   - Update: O(report) — render the canonical entry fragment, hang it on
//     the trie, bump the generation. No document splice.
//   - Query(exact id): O(subtree) — serialize just that node; O(report)
//     for a leaf.
//   - Reports(prefix): O(results) — walk only the prefix subtree.
//   - Dump() / root Query(): O(document) the first time after a write,
//     O(document copy) on every repeat while the cache is unchanged.
//
// The materialized document is byte-identical to what a StreamCache
// produces for the same insert sequence: node children are kept in the
// same (name, value) order, entry payloads are rendered through the same
// encoding/xml path (writeEntry), and branch open tags are rendered
// through the same encoder, so equivalence tests can compare dumps
// byte-for-byte.
type IndexedCache struct {
	mu    sync.RWMutex
	root  *idxNode
	byKey map[string]*idxNode // exact-path lookup: pathKey(id) → node
	count int
	size  int // exact length of the canonical document
	gen   uint64

	doc    []byte // lazily materialized canonical document
	docGen uint64 // generation doc was built at
}

// idxNode is one branch element in the trie.
type idxNode struct {
	pair     branch.Pair
	open     []byte     // canonical "<branch name=.. value=..>" bytes
	payload  []byte     // canonical entry payload (nil = no entry here)
	children []*idxNode // sorted by (name, value)
	subtree  int        // serialized size of this node's subtree in bytes
}

const (
	cacheOpenClose  = len("<cache></cache>")
	entryWrapLen    = len("<entry></entry>")
	branchCloseLen  = len("</branch>")
	entryOpenLen    = len("<entry>")
	entryCloseLenIx = len("</entry>")
)

// NewIndexedCache returns an empty indexed cache.
func NewIndexedCache() *IndexedCache {
	return &IndexedCache{
		root:   &idxNode{},
		byKey:  make(map[string]*idxNode),
		size:   cacheOpenClose,
		doc:    []byte("<cache></cache>"),
		docGen: 0,
	}
}

// pathKey is the map key for an identifier: its general→specific path with
// NUL separators (names and values cannot contain NUL — they come from
// parsed XML attributes or branch.Parse).
func pathKey(path []branch.Pair) string {
	n := 0
	for _, p := range path {
		n += len(p.Name) + len(p.Value) + 2
	}
	var sb bytes.Buffer
	sb.Grow(n)
	for _, p := range path {
		sb.WriteString(p.Name)
		sb.WriteByte(0)
		sb.WriteString(p.Value)
		sb.WriteByte(0)
	}
	return sb.String()
}

// renderBranchOpen produces the canonical open tag for a component through
// the same encoder StreamCache's splice uses, so attribute escaping (and
// therefore the materialized document) matches byte-for-byte.
func renderBranchOpen(p branch.Pair) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := enc.EncodeToken(branchStart(p)); err != nil {
		return nil, err
	}
	// Flushing only the start token would self-close it; encode a fake
	// child boundary instead: encode start+end and strip the close tag.
	if err := enc.EncodeToken(xml.EndElement{Name: xml.Name{Local: "branch"}}); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	out := buf.Bytes()
	return out[:len(out)-branchCloseLen], nil
}

// child finds (or creates) the child of n for pair p, keeping children in
// canonical (name, value) order. It reports whether the node was created.
func (n *idxNode) child(p branch.Pair, create bool) (*idxNode, bool, error) {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		c := n.children[mid].pair
		if c.Name < p.Name || (c.Name == p.Name && c.Value < p.Value) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].pair == p {
		return n.children[lo], false, nil
	}
	if !create {
		return nil, false, nil
	}
	open, err := renderBranchOpen(p)
	if err != nil {
		return nil, false, err
	}
	c := &idxNode{pair: p, open: open, subtree: len(open) + branchCloseLen}
	n.children = append(n.children, nil)
	copy(n.children[lo+1:], n.children[lo:])
	n.children[lo] = c
	return c, true, nil
}

// Update implements Cache: O(report) — no document splice. The canonical
// entry fragment is rendered up front so a malformed report never mutates
// the index.
func (c *IndexedCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	frag, err := renderFragment(nil, reportXML) // "<entry>payload</entry>"
	if err != nil {
		return false, err
	}
	payload := frag[entryOpenLen : len(frag)-entryCloseLenIx]
	path := id.Path()

	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.root
	touched := make([]*idxNode, 0, len(path)+1)
	created := make([]bool, 0, len(path)+1)
	touched = append(touched, n)
	created = append(created, false)
	for _, p := range path {
		ch, fresh, err := n.child(p, true)
		if err != nil {
			return false, err
		}
		n = ch
		touched = append(touched, n)
		created = append(created, fresh)
	}
	added := n.payload == nil
	inc := len(payload) - len(n.payload)
	if added {
		c.count++
		inc += entryWrapLen
	}
	n.payload = append([]byte(nil), payload...)
	// Propagate size growth leaf→root: each node's subtree grows by the
	// entry delta plus the shells of nodes created strictly below it (a
	// created node's own shell was counted at creation and belongs to its
	// parent's increment).
	for i := len(touched) - 1; i >= 0; i-- {
		touched[i].subtree += inc
		if created[i] {
			inc += len(touched[i].open) + branchCloseLen
		}
	}
	c.size += inc
	c.gen++
	c.byKey[pathKey(path)] = n
	return added, nil
}

// writeTo appends the canonical serialization of n's subtree.
func (n *idxNode) writeTo(buf *bytes.Buffer) {
	buf.Write(n.open)
	if n.payload != nil {
		buf.WriteString("<entry>")
		buf.Write(n.payload)
		buf.WriteString("</entry>")
	}
	for _, ch := range n.children {
		ch.writeTo(buf)
	}
	buf.WriteString("</branch>")
}

// materializeLocked rebuilds the canonical document; callers hold c.mu for
// writing.
func (c *IndexedCache) materializeLocked() {
	var buf bytes.Buffer
	buf.Grow(c.size)
	buf.WriteString("<cache>")
	if c.root.payload != nil {
		buf.WriteString("<entry>")
		buf.Write(c.root.payload)
		buf.WriteString("</entry>")
	}
	for _, ch := range c.root.children {
		ch.writeTo(&buf)
	}
	buf.WriteString("</cache>")
	c.doc = buf.Bytes()
	c.docGen = c.gen
}

// Dump implements Cache: the lazily materialized canonical document.
// While the cache is unchanged, repeat dumps only pay the copy.
func (c *IndexedCache) Dump() []byte {
	c.mu.RLock()
	if c.docGen == c.gen {
		out := append([]byte(nil), c.doc...)
		c.mu.RUnlock()
		return out
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.docGen != c.gen {
		c.materializeLocked()
	}
	return append([]byte(nil), c.doc...)
}

// Query implements Cache. Exact and prefix identifiers serialize only the
// named subtree — O(report) for a leaf; the root identifier returns the
// materialized document.
func (c *IndexedCache) Query(id branch.ID) ([]byte, bool, error) {
	if id.IsRoot() {
		return c.Dump(), true, nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.lookupLocked(id.Path())
	if !ok {
		return nil, false, nil
	}
	var buf bytes.Buffer
	buf.Grow(n.subtree)
	n.writeTo(&buf)
	return buf.Bytes(), true, nil
}

// lookupLocked resolves a general→specific path; callers hold c.mu.
func (c *IndexedCache) lookupLocked(path []branch.Pair) (*idxNode, bool) {
	if n, ok := c.byKey[pathKey(path)]; ok {
		return n, true
	}
	// Interior nodes created as ancestors of stored identifiers are
	// queryable too but have no byKey entry; walk the trie.
	n := c.root
	for _, p := range path {
		ch, _, _ := n.child(p, false)
		if ch == nil {
			return nil, false
		}
		n = ch
	}
	return n, true
}

// Reports implements Cache: O(results) — only the prefix subtree is
// walked, in canonical document order (node entry before children).
func (c *IndexedCache) Reports(prefix branch.ID) ([]Stored, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	start := c.root
	if !prefix.IsRoot() {
		n, ok := c.lookupLocked(prefix.Path())
		if !ok {
			return nil, nil
		}
		start = n
	}
	var out []Stored
	var walk func(n *idxNode, id branch.ID)
	walk = func(n *idxNode, id branch.ID) {
		if n.payload != nil {
			out = append(out, Stored{ID: id, XML: append([]byte(nil), n.payload...)})
		}
		for _, ch := range n.children {
			walk(ch, id.Child(ch.pair.Name, ch.pair.Value))
		}
	}
	walk(start, prefix)
	return out, nil
}

// Size implements Cache: the exact canonical-document length, maintained
// incrementally so it never forces a materialization.
func (c *IndexedCache) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// Count implements Cache.
func (c *IndexedCache) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// Generation implements Versioned: it increases on every successful
// Update. The HTTP layer derives ETags from it; equal generations imply a
// byte-identical canonical document.
func (c *IndexedCache) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}
