package depot

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"inca/internal/branch"
)

var (
	_ Cache     = (*IndexedCache)(nil)
	_ Versioned = (*IndexedCache)(nil)
)

// TestIndexedCacheDumpByteIdentical is the core equivalence property: for
// the same insert sequence the materialized document must match the
// deployed StreamCache byte-for-byte, including attribute escaping and
// canonical (name, value) child ordering.
func TestIndexedCacheDumpByteIdentical(t *testing.T) {
	ids := []string{
		"probe=gcc,resource=r1,site=sdsc,vo=tg",
		"probe=ssl,resource=r1,site=sdsc,vo=tg",
		"probe=gcc,resource=r2,site=sdsc,vo=tg",
		"site=ncsa,vo=tg",
		"vo=tg",
		`probe=a"b,site=x<y,vo=esc&amp`,
		"a=1",
	}
	idx := NewIndexedCache()
	ref := NewStreamCache()
	for i, id := range ids {
		payload := reportXMLFor("rep", fmt.Sprintf("v%d &amp; &lt;q&gt; \"quoted\"", i))
		mustUpdate(t, idx, id, payload)
		mustUpdate(t, ref, id, payload)
		if got, want := idx.Dump(), ref.Dump(); !bytes.Equal(got, want) {
			t.Fatalf("after insert %d (%s):\nindexed: %s\nstream:  %s", i, id, got, want)
		}
	}
	// Replacement keeps equivalence too.
	mustUpdate(t, idx, ids[0], reportXMLFor("rep", "replaced"))
	mustUpdate(t, ref, ids[0], reportXMLFor("rep", "replaced"))
	if got, want := idx.Dump(), ref.Dump(); !bytes.Equal(got, want) {
		t.Fatalf("after replace:\nindexed: %s\nstream:  %s", got, want)
	}
}

// TestIndexedCacheDumpByteIdenticalProperty randomizes insert order and
// payloads across a larger identifier population.
func TestIndexedCacheDumpByteIdenticalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		idx := NewIndexedCache()
		ref := NewStreamCache()
		for op := 0; op < 60; op++ {
			id := fmt.Sprintf("probe=p%d,site=s%d,vo=v%d", r.Intn(8), r.Intn(4), r.Intn(2))
			payload := reportXMLFor("rep", fmt.Sprintf("v%d", r.Intn(10)))
			mustUpdate(t, idx, id, payload)
			mustUpdate(t, ref, id, payload)
		}
		got, want := idx.Dump(), ref.Dump()
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: dumps differ:\nindexed: %s\nstream:  %s", trial, got, want)
		}
		if idx.Size() != ref.Size() {
			t.Fatalf("trial %d: Size = %d, stream says %d", trial, idx.Size(), ref.Size())
		}
	}
}

// TestIndexedCacheSizeExact asserts the incrementally maintained Size is
// the exact materialized-document length at every step — including before
// any Dump call forces a materialization.
func TestIndexedCacheSizeExact(t *testing.T) {
	c := NewIndexedCache()
	if got, want := c.Size(), len("<cache></cache>"); got != want {
		t.Fatalf("empty Size = %d, want %d", got, want)
	}
	ids := []string{
		"resource=r1,site=sdsc,vo=tg",
		"resource=r2,site=sdsc,vo=tg",
		"site=sdsc,vo=tg",             // interior node gains an entry
		"resource=r1,site=sdsc,vo=tg", // replacement, shorter payload below
	}
	for i, id := range ids {
		text := fmt.Sprintf("payload-%d", i)
		if i == len(ids)-1 {
			text = "x" // shrink on replace
		}
		mustUpdate(t, c, id, reportXMLFor("rep", text))
		size := c.Size() // read before Dump materializes
		if dump := c.Dump(); size != len(dump) {
			t.Fatalf("after %s: Size = %d, len(Dump) = %d", id, size, len(dump))
		}
	}
}

// TestIndexedCacheGeneration asserts the generation is strictly increasing
// per successful update, unchanged by reads and by failed updates.
func TestIndexedCacheGeneration(t *testing.T) {
	c := NewIndexedCache()
	if g := c.Generation(); g != 0 {
		t.Fatalf("fresh Generation = %d, want 0", g)
	}
	mustUpdate(t, c, "a=1", reportXMLFor("rep", "x"))
	if g := c.Generation(); g != 1 {
		t.Fatalf("Generation after 1 update = %d, want 1", g)
	}
	// Reads do not advance the generation.
	_ = c.Dump()
	if _, _, err := c.Query(branch.MustParse("a=1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reports(branch.ID{}); err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g != 1 {
		t.Fatalf("Generation after reads = %d, want 1", g)
	}
	// A rejected (malformed) update leaves the generation alone.
	if _, err := c.Update(branch.MustParse("a=2"), []byte("<unclosed")); err == nil {
		t.Fatal("malformed update accepted")
	}
	if g := c.Generation(); g != 1 {
		t.Fatalf("Generation after failed update = %d, want 1", g)
	}
	// Replacement still advances it (an ETag must change when bytes change).
	mustUpdate(t, c, "a=1", reportXMLFor("rep", "y"))
	if g := c.Generation(); g != 2 {
		t.Fatalf("Generation after replace = %d, want 2", g)
	}
}

// TestIndexedCacheInteriorQuery asserts interior nodes (ancestors of
// stored identifiers that never received a report themselves) are
// queryable, matching StreamCache's subtree semantics.
func TestIndexedCacheInteriorQuery(t *testing.T) {
	idx := NewIndexedCache()
	ref := NewStreamCache()
	for _, id := range []string{
		"probe=gcc,resource=r1,site=sdsc,vo=tg",
		"probe=ssl,resource=r1,site=sdsc,vo=tg",
	} {
		payload := reportXMLFor("rep", id)
		mustUpdate(t, idx, id, payload)
		mustUpdate(t, ref, id, payload)
	}
	for _, q := range []string{"vo=tg", "site=sdsc,vo=tg", "resource=r1,site=sdsc,vo=tg"} {
		id := branch.MustParse(q)
		got, ok, err := idx.Query(id)
		if err != nil || !ok {
			t.Fatalf("Query(%s): ok=%v err=%v", q, ok, err)
		}
		want, ok, err := ref.Query(id)
		if err != nil || !ok {
			t.Fatalf("stream Query(%s): ok=%v err=%v", q, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Query(%s):\nindexed: %s\nstream:  %s", q, got, want)
		}
	}
	if _, ok, _ := idx.Query(branch.MustParse("site=nowhere,vo=tg")); ok {
		t.Fatal("Query for absent subtree reported ok")
	}
}

// TestIndexedCacheReportsOrder asserts Reports returns entries in
// canonical document order (entry before children, children in
// (name, value) order), agreeing with StreamCache.
func TestIndexedCacheReportsOrder(t *testing.T) {
	idx := NewIndexedCache()
	ref := NewStreamCache()
	ids := []string{
		"site=b,vo=tg",
		"vo=tg",
		"site=a,vo=tg",
		"probe=z,site=a,vo=tg",
		"probe=a,site=a,vo=tg",
	}
	for _, id := range ids {
		payload := reportXMLFor("rep", id)
		mustUpdate(t, idx, id, payload)
		mustUpdate(t, ref, id, payload)
	}
	for _, prefix := range []string{"", "vo=tg", "site=a,vo=tg"} {
		var p branch.ID
		if prefix != "" {
			p = branch.MustParse(prefix)
		}
		got, err := idx.Reports(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Reports(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reportsEqual(got, want) {
			t.Fatalf("Reports(%q) disagree:\nindexed: %v\nstream:  %v", prefix, got, want)
		}
	}
}

// TestIndexedCacheDumpReturnsCopies asserts callers cannot corrupt the
// memoized document through the returned slice.
func TestIndexedCacheDumpReturnsCopies(t *testing.T) {
	c := NewIndexedCache()
	mustUpdate(t, c, "a=1", reportXMLFor("rep", "x"))
	d1 := c.Dump()
	d1[0] = '!'
	d2 := c.Dump()
	if d2[0] != '<' {
		t.Fatal("Dump shares memory with the memoized document")
	}
	sub, ok, err := c.Query(branch.MustParse("a=1"))
	if err != nil || !ok {
		t.Fatal("Query failed")
	}
	sub[0] = '!'
	if sub2, _, _ := c.Query(branch.MustParse("a=1")); sub2[0] != '<' {
		t.Fatal("Query shares memory with the index")
	}
}

// TestIndexedCacheLoadDumpRoundTrip asserts a materialized document can be
// reloaded by the stream loader — i.e. the derived artifact is a valid
// canonical cache document, not just byte-similar.
func TestIndexedCacheLoadDumpRoundTrip(t *testing.T) {
	c := NewIndexedCache()
	for i := 0; i < 10; i++ {
		mustUpdate(t, c, fmt.Sprintf("r=%d,site=s%d", i, i%3), reportXMLFor("rep", fmt.Sprint(i)))
	}
	loaded, err := LoadDump(c.Dump())
	if err != nil {
		t.Fatalf("LoadDump(indexed Dump): %v", err)
	}
	if !bytes.Equal(loaded.Dump(), c.Dump()) {
		t.Fatal("round-trip through LoadDump changed the document")
	}
}
