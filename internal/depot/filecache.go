package depot

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"inca/internal/branch"
)

// FileCache is the write-through variant of the stream cache: the document
// lives in "a single XML file" exactly as in the deployed system (Section
// 3.2.2), rewritten atomically (temp file + rename) on every update so a
// depot crash never loses acknowledged reports and never leaves a torn
// document. Reads are served from the in-memory copy.
type FileCache struct {
	mu    sync.Mutex
	path  string
	inner *StreamCache
}

// OpenFileCache loads (or creates) the cache file at path.
func OpenFileCache(path string) (*FileCache, error) {
	fc := &FileCache{path: path}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		inner, lerr := LoadDump(data)
		if lerr != nil {
			return nil, fmt.Errorf("depot: cache file %s: %w", path, lerr)
		}
		fc.inner = inner
	case os.IsNotExist(err):
		fc.inner = NewStreamCache()
		if werr := fc.flushLocked(); werr != nil {
			return nil, werr
		}
	default:
		return nil, err
	}
	return fc, nil
}

// flushLocked writes the document atomically; callers hold fc.mu.
func (fc *FileCache) flushLocked() error {
	dir := filepath.Dir(fc.path)
	tmp, err := os.CreateTemp(dir, ".inca-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(fc.inner.Dump()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), fc.path)
}

// Update implements Cache with write-through persistence.
func (fc *FileCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	before := fc.inner.Dump()
	added, err := fc.inner.Update(id, reportXML)
	if err != nil {
		return false, err
	}
	if err := fc.flushLocked(); err != nil {
		// Roll back the in-memory copy so memory and disk stay consistent.
		restored, lerr := LoadDump(before)
		if lerr == nil {
			fc.inner = restored
		}
		return false, fmt.Errorf("depot: cache write-through: %w", err)
	}
	return added, nil
}

// Query implements Cache.
func (fc *FileCache) Query(id branch.ID) ([]byte, bool, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.inner.Query(id)
}

// Reports implements Cache.
func (fc *FileCache) Reports(prefix branch.ID) ([]Stored, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.inner.Reports(prefix)
}

// Dump implements Cache.
func (fc *FileCache) Dump() []byte {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.inner.Dump()
}

// Size implements Cache.
func (fc *FileCache) Size() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.inner.Size()
}

// Count implements Cache.
func (fc *FileCache) Count() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.inner.Count()
}

// Generation implements Versioned.
func (fc *FileCache) Generation() uint64 {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.inner.Generation()
}

// Path returns the backing file.
func (fc *FileCache) Path() string { return fc.path }
