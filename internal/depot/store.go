package depot

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"inca/internal/rrd"
	rrdfile "inca/internal/rrd/file"
)

// The archive storage backends. A depot holds its round-robin archives
// behind archiveStore so the same pipeline serves two engines:
//
//   - memoryStore: every archive resident, striped shards — the classic
//     configuration, fastest, RSS grows with series count.
//   - diskStore: every archive a paged file (rrd/file), a bounded LRU of
//     open handles — RSS stays flat however many series exist, and rows
//     survive restarts in place.
//
// Both speak archiveDB, the narrow slice of rrd.DB the depot uses, which
// *rrd.DB and *rrdfile.DB satisfy identically — including byte-identical
// WriteTo images, so snapshots are interchangeable across backends.

// archiveDB is one round-robin archive as the depot sees it.
type archiveDB interface {
	Update(t time.Time, values ...float64) error
	UpdateBatch(samples []rrd.Sample) (int, error)
	Fetch(cf rrd.CF, start, end time.Time) (*rrd.Series, error)
	LastKnown(cf rrd.CF) (float64, time.Time)
	Last() time.Time
	Updates() uint64
	WriteTo(w io.Writer) (int64, error)
}

// archiveStore owns the branch|policy → archive map. lookup and ensure pin
// the returned archive: the caller must invoke the release function when
// done so a disk store can close evicted handles safely (for the memory
// store release is a no-op).
type archiveStore interface {
	lookup(key string) (archiveDB, func(), bool)
	ensure(key string, cp *compiledPolicy, start time.Time) (archiveDB, func(), error)
	keys() []string // sorted
	count() int
	// each visits every archive in key order, pinning one at a time.
	each(fn func(key string, db archiveDB) error) error
	// sync makes the archives durable (disk: flush state, fsync).
	sync() error
	close() error
}

func releaseNothing() {}

// --- in-memory backend ---

// memoryShard is one stripe of the in-memory archive map.
type memoryShard struct {
	mu  sync.Mutex
	dbs map[string]*rrd.DB
}

type memoryStore struct {
	shards []memoryShard
}

func newMemoryStore(stripes int) *memoryStore {
	s := &memoryStore{shards: make([]memoryShard, stripes)}
	for i := range s.shards {
		s.shards[i].dbs = make(map[string]*rrd.DB)
	}
	return s
}

func (s *memoryStore) shardFor(key string) *memoryShard {
	return &s.shards[shardIndex(key, len(s.shards))]
}

func (s *memoryStore) lookup(key string) (archiveDB, func(), bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	db, ok := sh.dbs[key]
	sh.mu.Unlock()
	if !ok {
		return nil, releaseNothing, false
	}
	return db, releaseNothing, true
}

func (s *memoryStore) ensure(key string, cp *compiledPolicy, start time.Time) (archiveDB, func(), error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if db, ok := sh.dbs[key]; ok {
		return db, releaseNothing, nil
	}
	db, err := rrd.NewFromPolicy(start.Add(-cp.Archive.Step), cp.Name, cp.Archive)
	if err != nil {
		return nil, releaseNothing, err
	}
	sh.dbs[key] = db
	return db, releaseNothing, nil
}

// insert places a restored archive (snapshot load path).
func (s *memoryStore) insert(key string, db *rrd.DB) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.dbs[key] = db
	sh.mu.Unlock()
}

func (s *memoryStore) keys() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.dbs {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

func (s *memoryStore) count() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.dbs)
		sh.mu.Unlock()
	}
	return n
}

func (s *memoryStore) each(fn func(key string, db archiveDB) error) error {
	for _, k := range s.keys() {
		db, release, ok := s.lookup(k)
		if !ok {
			continue
		}
		err := fn(k, db)
		release()
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *memoryStore) sync() error  { return nil }
func (s *memoryStore) close() error { return nil }

// --- disk backend ---

// diskEntry is one open archive handle in the LRU.
type diskEntry struct {
	key  string
	db   *rrdfile.DB
	refs int
	elem *list.Element
	// evicted handles have left the map; the last release closes them.
	evicted bool
}

// diskStore keeps every archive in its own paged file under dir and at
// most maxOpen handles open, recently-used first. An archive not open is
// just a file — lookup reopens it lazily. No per-series state is held in
// memory (existence is the filesystem, the population is a counter, key
// listings scan the directory on demand), so RSS is bounded by the LRU
// cap alone, independent of how many series exist.
type diskStore struct {
	dir     string
	maxOpen int

	mu     sync.Mutex
	open   map[string]*diskEntry
	lru    *list.List // front = most recently used
	series int        // archive files on disk (gauges, Stats)
}

const defaultOpenFiles = 64

func newDiskStore(dir string, maxOpen int) (*diskStore, error) {
	if maxOpen <= 0 {
		maxOpen = defaultOpenFiles
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: archive dir: %w", err)
	}
	s := &diskStore{
		dir:     dir,
		maxOpen: maxOpen,
		open:    make(map[string]*diskEntry),
		lru:     list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("depot: scan archives: %w", err)
	}
	for _, e := range entries {
		if archiveKeyFromName(e) != "" {
			s.series++
		}
	}
	return s, nil
}

// archiveKeyFromName maps a directory entry back to its series key, or ""
// when the entry is not an archive file.
func archiveKeyFromName(e os.DirEntry) string {
	if e.IsDir() || !strings.HasSuffix(e.Name(), ".rrd") {
		return ""
	}
	key, err := url.QueryUnescape(strings.TrimSuffix(e.Name(), ".rrd"))
	if err != nil {
		return "" // not one of ours
	}
	return key
}

// path maps a series key to its file. Keys contain branch separators and
// arbitrary macro-expanded text, so the name is query-escaped (reversible,
// directory-safe).
func (s *diskStore) path(key string) string {
	return filepath.Join(s.dir, url.QueryEscape(key)+".rrd")
}

// pin bumps an entry to the front and takes a reference. Callers hold s.mu.
func (s *diskStore) pin(e *diskEntry) (archiveDB, func()) {
	e.refs++
	s.lru.MoveToFront(e.elem)
	return e.db, func() { s.release(e) }
}

func (s *diskStore) release(e *diskEntry) {
	s.mu.Lock()
	e.refs--
	closeNow := e.evicted && e.refs == 0
	s.mu.Unlock()
	if closeNow {
		e.db.Close()
	}
}

// evictLocked closes least-recently-used unpinned handles until the cap
// holds. Pinned handles are skipped — the cap may be exceeded briefly —
// and caught by the next admission's sweep.
func (s *diskStore) evictLocked() {
	for elem := s.lru.Back(); elem != nil && len(s.open) > s.maxOpen; {
		prev := elem.Prev()
		e := elem.Value.(*diskEntry)
		if e.refs == 0 {
			s.lru.Remove(elem)
			delete(s.open, e.key)
			e.evicted = true
			e.db.Close()
		}
		elem = prev
	}
}

func (s *diskStore) lookup(key string) (archiveDB, func(), bool) {
	s.mu.Lock()
	if e, ok := s.open[key]; ok {
		db, rel := s.pin(e)
		s.mu.Unlock()
		return db, rel, true
	}
	db, rel, err := s.admitLocked(key, nil, time.Time{})
	s.mu.Unlock()
	if err != nil {
		return nil, releaseNothing, false
	}
	return db, rel, true
}

func (s *diskStore) ensure(key string, cp *compiledPolicy, start time.Time) (archiveDB, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.open[key]; ok {
		db, rel := s.pin(e)
		return db, rel, nil
	}
	return s.admitLocked(key, cp, start)
}

// admitLocked opens (or, given a policy, creates) the archive file for key
// and installs it in the LRU. Called with s.mu held; the open/create I/O
// runs with the lock held, which is acceptable because a warm LRU makes
// admission rare.
func (s *diskStore) admitLocked(key string, cp *compiledPolicy, start time.Time) (archiveDB, func(), error) {
	db, err := rrdfile.Open(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		if cp == nil {
			return nil, releaseNothing, fmt.Errorf("depot: no archive for %s", key)
		}
		db, err = rrdfile.CreateFromPolicy(s.path(key), start.Add(-cp.Archive.Step), cp.Name, cp.Archive)
		if err == nil {
			s.series++
		}
	}
	if err != nil {
		return nil, releaseNothing, err
	}
	e := &diskEntry{key: key, db: db}
	e.elem = s.lru.PushFront(e)
	s.open[key] = e
	// Pin before sweeping so the new entry cannot evict itself.
	dbi, rel := s.pin(e)
	s.evictLocked()
	return dbi, rel, nil
}

// keys scans the archive directory — a cold path (snapshots, the series
// listing endpoint), deliberately not cached so the store holds no
// per-series memory.
func (s *diskStore) keys() []string {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if key := archiveKeyFromName(e); key != "" {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

func (s *diskStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series
}

func (s *diskStore) each(fn func(key string, db archiveDB) error) error {
	for _, k := range s.keys() {
		db, release, ok := s.lookup(k)
		if !ok {
			continue
		}
		err := fn(k, db)
		release()
		if err != nil {
			return err
		}
	}
	return nil
}

// sync flushes every open archive to stable storage. Closed archives were
// fsynced when their handle was evicted, so after sync returns the whole
// store is durable.
func (s *diskStore) sync() error {
	s.mu.Lock()
	open := make([]*diskEntry, 0, len(s.open))
	for _, e := range s.open {
		e.refs++
		open = append(open, e)
	}
	s.mu.Unlock()
	var first error
	for _, e := range open {
		if err := e.db.Sync(); err != nil && first == nil {
			first = err
		}
		s.release(e)
	}
	return first
}

func (s *diskStore) close() error {
	s.mu.Lock()
	open := make([]*diskEntry, 0, len(s.open))
	for _, e := range s.open {
		e.evicted = true
		open = append(open, e)
	}
	s.open = make(map[string]*diskEntry)
	s.lru.Init()
	s.mu.Unlock()
	var first error
	for _, e := range open {
		if e.refs == 0 {
			if err := e.db.Close(); err != nil && first == nil {
				first = err
			}
		}
		// Pinned entries close on their last release.
	}
	return first
}

// openHandles reports the number of open file handles (tests, gauges).
func (s *diskStore) openHandles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}
