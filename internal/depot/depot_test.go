package depot

import (
	"fmt"
	"math"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/envelope"
	"inca/internal/report"
	"inca/internal/rrd"
)

var dt0 = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func reportWithValue(t *testing.T, at time.Time, value float64, ok bool) []byte {
	t.Helper()
	r := report.New("grid.network.pathload", "1.0", "h1", at)
	r.Body = report.Branch("metric", "bandwidth",
		report.Branch("statistic", "lowerBound",
			report.Leaff("value", "%.2f", value),
			report.Leaf("units", "Mbps")))
	if !ok {
		r.Fail("probe failed")
	}
	data, err := report.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDepotStoreAndStats(t *testing.T) {
	d := New(NewStreamCache())
	id := branch.MustParse("tool=pathload,site=sdsc")
	rec, err := d.Store(id, reportWithValue(t, dt0, 990, true))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Added {
		t.Log("Added flag false on first insert") // Added set by store? check below
	}
	s := d.Stats()
	if s.Received != 1 || s.CacheCount != 1 || s.Bytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CacheSize <= 0 {
		t.Fatalf("cache size = %d", s.CacheSize)
	}
}

func TestDepotStoreEnvelopeTimings(t *testing.T) {
	d := New(NewStreamCache())
	id := branch.MustParse("tool=pathload,site=sdsc")
	data, err := envelope.Encode(envelope.Body, id, reportWithValue(t, dt0, 990, true))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := d.StoreEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Unpack <= 0 || rec.Insert <= 0 {
		t.Fatalf("timings not recorded: %+v", rec)
	}
	if !rec.Branch.Equal(id) {
		t.Fatalf("branch = %s", rec.Branch)
	}
	if rec.ReportSize == 0 || rec.CacheSize == 0 {
		t.Fatalf("sizes not recorded: %+v", rec)
	}
	if _, err := d.StoreEnvelope([]byte("junk")); err == nil {
		t.Fatal("junk envelope accepted")
	}
}

func TestPolicyValidation(t *testing.T) {
	d := New(NewStreamCache())
	good := Policy{Name: "bw", Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 24 * time.Hour}}
	if err := d.AddPolicy(good); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPolicy(good); err == nil {
		t.Fatal("duplicate policy accepted")
	}
	if err := d.AddPolicy(Policy{Archive: good.Archive}); err == nil {
		t.Fatal("unnamed policy accepted")
	}
	if err := d.AddPolicy(Policy{Name: "x"}); err == nil {
		t.Fatal("zero-step policy accepted")
	}
	if len(d.Policies()) != 1 {
		t.Fatalf("policies = %d", len(d.Policies()))
	}
}

func TestArchivingThroughPolicy(t *testing.T) {
	d := New(NewStreamCache())
	err := d.AddPolicy(Policy{
		Name:    "bandwidth",
		Prefix:  branch.MustParse("site=sdsc"),
		Path:    "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 7 * 24 * time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("tool=pathload,site=sdsc")
	for i := 1; i <= 24; i++ {
		at := dt0.Add(time.Duration(i) * time.Hour)
		if _, err := d.Store(id, reportWithValue(t, at, 900+float64(i), true)); err != nil {
			t.Fatal(err)
		}
	}
	series, err := d.FetchArchive(id, "bandwidth", rrd.Average, dt0, dt0.Add(25*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) < 20 {
		t.Fatalf("archived points = %d", len(series.Points))
	}
	known := 0
	for _, p := range series.Points {
		if !math.IsNaN(p.Values[0]) {
			known++
			if p.Values[0] < 900 || p.Values[0] > 925 {
				t.Fatalf("archived value %g out of range", p.Values[0])
			}
		}
	}
	if known < 20 {
		t.Fatalf("known points = %d", known)
	}
	if v := d.LatestValue(id, "bandwidth", rrd.Average); math.IsNaN(v) || v < 900 {
		t.Fatalf("LatestValue = %g", v)
	}
}

func TestAvailabilityPolicyWithEmptyPath(t *testing.T) {
	d := New(NewStreamCache())
	if err := d.AddPolicy(Policy{
		Name:    "availability",
		Prefix:  branch.ID{},
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 48 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("svc=gram,site=sdsc")
	// Alternate success and failure.
	for i := 1; i <= 10; i++ {
		at := dt0.Add(time.Duration(i) * time.Hour)
		if _, err := d.Store(id, reportWithValue(t, at, 1, i%2 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := d.FetchArchive(id, "availability", rrd.Average, dt0, dt0.Add(11*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	saw0, saw1 := false, false
	for _, p := range s.Points {
		switch {
		case p.Values[0] == 0:
			saw0 = true
		case p.Values[0] == 1:
			saw1 = true
		}
	}
	if !saw0 || !saw1 {
		t.Fatalf("availability series missing 0s or 1s: %v", s.Points)
	}
}

func TestPolicyPrefixFiltering(t *testing.T) {
	d := New(NewStreamCache())
	if err := d.AddPolicy(Policy{
		Name:    "sdsc-only",
		Prefix:  branch.MustParse("site=sdsc"),
		Path:    "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 24 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	other := branch.MustParse("tool=pathload,site=ncsa")
	if _, err := d.Store(other, reportWithValue(t, dt0.Add(time.Hour), 1, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FetchArchive(other, "sdsc-only", rrd.Average, dt0, dt0.Add(2*time.Hour)); err == nil {
		t.Fatal("policy applied outside its prefix")
	}
	if len(d.ArchivedSeries()) != 0 {
		t.Fatalf("archives = %v", d.ArchivedSeries())
	}
}

func TestNonReportXMLIsCachedNotArchived(t *testing.T) {
	d := New(NewStreamCache())
	if err := d.AddPolicy(Policy{
		Name:    "p",
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 24 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("x=1")
	if _, err := d.Store(id, []byte("<foreign><data>1</data></foreign>")); err != nil {
		t.Fatal(err)
	}
	if d.Cache().Count() != 1 {
		t.Fatal("foreign XML not cached")
	}
	if len(d.ArchivedSeries()) != 0 {
		t.Fatal("foreign XML archived")
	}
}

func TestArchiveUpdateDirect(t *testing.T) {
	d := New(NewStreamCache())
	if err := d.AddPolicy(Policy{
		Name:    "summary",
		Archive: rrd.ArchivalPolicy{Step: 10 * time.Minute, History: 7 * 24 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("category=Grid,resource=r1")
	for i := 1; i <= 6; i++ {
		if err := d.ArchiveUpdate(id, "summary", dt0.Add(time.Duration(i)*10*time.Minute), 96.0); err != nil {
			t.Fatal(err)
		}
	}
	s, err := d.FetchArchive(id, "summary", rrd.Average, dt0, dt0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) == 0 {
		t.Fatal("no points")
	}
	if err := d.ArchiveUpdate(id, "ghost", dt0, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestLatestValueMissing(t *testing.T) {
	d := New(NewStreamCache())
	if !math.IsNaN(d.LatestValue(branch.MustParse("a=1"), "none", rrd.Average)) {
		t.Fatal("missing archive returned a value")
	}
}

func TestReceiptTotal(t *testing.T) {
	r := Receipt{Unpack: time.Second, Insert: 2 * time.Second, Archive: time.Second}
	if r.Total() != 4*time.Second {
		t.Fatalf("Total = %v", r.Total())
	}
}

func TestManyBranchesStoreQuery(t *testing.T) {
	d := New(NewStreamCache())
	for site := 0; site < 5; site++ {
		for res := 0; res < 4; res++ {
			for probe := 0; probe < 5; probe++ {
				id := branch.MustParse(fmt.Sprintf("probe=p%d,resource=r%d,site=s%d", probe, res, site))
				if _, err := d.Store(id, reportWithValue(t, dt0.Add(time.Hour), 1, true)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if d.Cache().Count() != 100 {
		t.Fatalf("count = %d", d.Cache().Count())
	}
	rs, err := d.Cache().Reports(branch.MustParse("site=s2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 20 {
		t.Fatalf("site query = %d, want 20", len(rs))
	}
}
