package depot

import (
	"bytes"
	"sort"
	"strings"
	"sync"

	"inca/internal/branch"
)

// SplitCache shards the cache by its most general branch components —
// the paper's planned scalability improvement: "the cache will be split
// into multiple smaller files to minimize XML parsing time". Each shard is
// an independent StreamCache, so an update streams only its shard.
type SplitCache struct {
	mu     sync.RWMutex
	depth  int
	shards map[string]*StreamCache
}

// NewSplitCache returns an empty cache sharded on the single most general
// component (one file per VO, typically).
func NewSplitCache() *SplitCache { return NewSplitCacheDepth(1) }

// NewSplitCacheDepth shards on up to depth most-general components (e.g.
// depth 2 gives one file per vo/site pair).
func NewSplitCacheDepth(depth int) *SplitCache {
	if depth < 1 {
		depth = 1
	}
	return &SplitCache{depth: depth, shards: make(map[string]*StreamCache)}
}

// shardKey derives the shard from the identifier's most general components.
func (c *SplitCache) shardKey(id branch.ID) string {
	path := id.Path()
	if len(path) > c.depth {
		path = path[:c.depth]
	}
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = p.Name + "=" + p.Value
	}
	return strings.Join(parts, "/")
}

func (c *SplitCache) shard(id branch.ID, create bool) *StreamCache {
	key := c.shardKey(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.shards[key]
	if !ok && create {
		s = NewStreamCache()
		c.shards[key] = s
	}
	return s
}

// Update implements Cache.
func (c *SplitCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	return c.shard(id, true).Update(id, reportXML)
}

// shardsForPrefix returns the shards that can hold data under prefix, in
// shard-key order. A prefix shallower than the shard depth spans several
// shards.
func (c *SplitCache) shardsForPrefix(prefix branch.ID) []*StreamCache {
	if prefix.IsRoot() {
		return c.orderedShards()
	}
	key := c.shardKey(prefix)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if prefix.Depth() >= c.depth {
		if s, ok := c.shards[key]; ok {
			return []*StreamCache{s}
		}
		return nil
	}
	var keys []string
	for k := range c.shards {
		if k == key || strings.HasPrefix(k, key+"/") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]*StreamCache, len(keys))
	for i, k := range keys {
		out[i] = c.shards[k]
	}
	return out
}

// Query implements Cache. Root queries concatenate every shard under a
// synthetic <cache> root; prefixes shallower than the shard depth merge
// the matching shards' subtrees.
func (c *SplitCache) Query(id branch.ID) ([]byte, bool, error) {
	if id.IsRoot() {
		return c.Dump(), true, nil
	}
	return mergeShardQuery(c.shardsForPrefix(id), id)
}

// mergeShardQuery answers a non-root query spanning several shards: each
// shard holds a disjoint set of children under the queried node, so the
// merged answer emits the node's branch element once with every shard's
// children inside.
func mergeShardQuery(shards []*StreamCache, id branch.ID) ([]byte, bool, error) {
	if len(shards) == 0 {
		return nil, false, nil
	}
	if len(shards) == 1 {
		return shards[0].Query(id)
	}
	var buf bytes.Buffer
	found := false
	var open, close []byte
	for _, s := range shards {
		sub, ok, err := s.Query(id)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		gt := bytes.IndexByte(sub, '>')
		lastLt := bytes.LastIndexByte(sub, '<')
		if gt < 0 || lastLt <= gt {
			continue
		}
		if !found {
			open = sub[:gt+1]
			close = sub[lastLt:]
			found = true
		}
		buf.Write(sub[gt+1 : lastLt])
	}
	if !found {
		return nil, false, nil
	}
	out := make([]byte, 0, len(open)+buf.Len()+len(close))
	out = append(out, open...)
	out = append(out, buf.Bytes()...)
	out = append(out, close...)
	return out, true, nil
}

// Reports implements Cache.
func (c *SplitCache) Reports(prefix branch.ID) ([]Stored, error) {
	var out []Stored
	for _, s := range c.shardsForPrefix(prefix) {
		part, err := s.Reports(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

func (c *SplitCache) orderedShards() []*StreamCache {
	c.mu.RLock()
	defer c.mu.RUnlock()
	keys := make([]string, 0, len(c.shards))
	for k := range c.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*StreamCache, len(keys))
	for i, k := range keys {
		out[i] = c.shards[k]
	}
	return out
}

// Dump implements Cache.
func (c *SplitCache) Dump() []byte {
	var buf bytes.Buffer
	buf.WriteString("<cache>")
	for _, s := range c.orderedShards() {
		d := s.Dump()
		// Strip each shard's <cache> wrapper.
		d = bytes.TrimPrefix(d, []byte("<cache>"))
		d = bytes.TrimSuffix(d, []byte("</cache>"))
		buf.Write(d)
	}
	buf.WriteString("</cache>")
	return buf.Bytes()
}

// Size implements Cache: total bytes across shards.
func (c *SplitCache) Size() int {
	total := 0
	for _, s := range c.orderedShards() {
		total += s.Size()
	}
	return total
}

// Count implements Cache.
func (c *SplitCache) Count() int {
	total := 0
	for _, s := range c.orderedShards() {
		total += s.Count()
	}
	return total
}

// Shards returns the number of shard documents.
func (c *SplitCache) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.shards)
}

// Generation implements Versioned: the sum of the shard generations, which
// strictly increases with every successful update.
func (c *SplitCache) Generation() uint64 {
	var total uint64
	for _, s := range c.orderedShards() {
		total += s.Generation()
	}
	return total
}
