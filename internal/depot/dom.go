package depot

import (
	"bytes"
	"encoding/xml"
	"sort"
	"sync"

	"inca/internal/branch"
)

// DOMCache keeps the cache as a parsed in-memory tree — the design the
// paper's authors tried first and abandoned because "the memory
// requirements of the DOM parser grew too rapidly with the size of the
// data". Updates are O(depth); Dump serializes on demand. It exists for
// the ablation benchmarks comparing the two designs.
type DOMCache struct {
	mu    sync.RWMutex
	root  *domNode
	count int
	gen   uint64
	bytes int // running estimate of serialized size
}

type domNode struct {
	pair     branch.Pair
	entry    []byte
	children []*domNode // sorted by (name, value)
}

func (n *domNode) child(p branch.Pair, create bool) *domNode {
	i := sort.Search(len(n.children), func(i int) bool {
		c := n.children[i].pair
		if c.Name != p.Name {
			return c.Name >= p.Name
		}
		return c.Value >= p.Value
	})
	if i < len(n.children) && n.children[i].pair == p {
		return n.children[i]
	}
	if !create {
		return nil
	}
	c := &domNode{pair: p}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// NewDOMCache returns an empty tree cache.
func NewDOMCache() *DOMCache { return &DOMCache{root: &domNode{}} }

// Update implements Cache.
func (c *DOMCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	if err := wellFormed(reportXML); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.root
	for _, p := range id.Path() {
		if n.child(p, false) == nil {
			// New branch element: <branch name=".." value=".."></branch>
			c.bytes += len(p.Name) + len(p.Value) + len(`<branch name="" value=""></branch>`)
		}
		n = n.child(p, true)
	}
	added := n.entry == nil
	if added {
		c.count++
		c.bytes += len("<entry></entry>")
	}
	c.bytes += len(reportXML) - len(n.entry)
	n.entry = append([]byte(nil), reportXML...)
	c.gen++
	return added, nil
}

func (c *DOMCache) find(id branch.ID) *domNode {
	n := c.root
	for _, p := range id.Path() {
		n = n.child(p, false)
		if n == nil {
			return nil
		}
	}
	return n
}

// Query implements Cache.
func (c *DOMCache) Query(id branch.ID) ([]byte, bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := c.find(id)
	if n == nil {
		return nil, false, nil
	}
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	var err error
	if n == c.root {
		err = n.encode(enc, "cache")
	} else {
		err = n.encode(enc, "branch")
	}
	if err != nil {
		return nil, false, err
	}
	if err := enc.Flush(); err != nil {
		return nil, false, err
	}
	return buf.Bytes(), true, nil
}

func (n *domNode) encode(enc *xml.Encoder, tag string) error {
	start := xml.StartElement{Name: xml.Name{Local: tag}}
	if tag == "branch" {
		start.Attr = []xml.Attr{
			{Name: xml.Name{Local: "name"}, Value: n.pair.Name},
			{Name: xml.Name{Local: "value"}, Value: n.pair.Value},
		}
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.entry != nil {
		if err := writeEntry(enc, n.entry); err != nil {
			return err
		}
	}
	for _, ch := range n.children {
		if err := ch.encode(enc, "branch"); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// Reports implements Cache.
func (c *DOMCache) Reports(prefix branch.ID) ([]Stored, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Stored
	var walk func(n *domNode, id branch.ID)
	walk = func(n *domNode, id branch.ID) {
		if n.entry != nil && id.HasSuffix(prefix) {
			out = append(out, Stored{ID: id, XML: append([]byte(nil), n.entry...)})
		}
		for _, ch := range n.children {
			walk(ch, id.Child(ch.pair.Name, ch.pair.Value))
		}
	}
	walk(c.root, branch.ID{})
	return out, nil
}

// Dump implements Cache.
func (c *DOMCache) Dump() []byte {
	out, _, err := c.Query(branch.ID{})
	if err != nil {
		return nil
	}
	return out
}

// Size implements Cache: an O(1) running estimate of the serialized size
// (entry payloads plus element wrappers; within a few percent of
// len(Dump()) on canonical documents).
func (c *DOMCache) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes + len("<cache></cache>")
}

// Count implements Cache.
func (c *DOMCache) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// Generation implements Versioned.
func (c *DOMCache) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// MemoryFootprint estimates the resident bytes of the tree: the entry
// payloads plus per-node bookkeeping. The ablation bench reports it against
// the StreamCache's flat document size.
func (c *DOMCache) MemoryFootprint() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	var walk func(n *domNode)
	walk = func(n *domNode) {
		const nodeOverhead = 96 // struct, slice headers, interior pointers
		total += nodeOverhead + len(n.entry) + len(n.pair.Name) + len(n.pair.Value)
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(c.root)
	return total
}
