package depot

import (
	"bufio"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"inca/internal/branch"
)

// The disk-backed depot: paged archive files plus a write-ahead log, with
// a checkpoint protocol tying them together.
//
//	data/
//	  archives/<escaped key>.rrd   paged round-robin files (rrd/file)
//	  wal/wal-<seq>.log            framed mutation log, segment per rotation
//	  checkpoint                   cache + policies + first live WAL segment
//
// Checkpoint protocol (Checkpoint):
//  1. rotate the WAL under the store barrier — every record appended so
//     far now lives in a segment below the new sequence N
//  2. drain the async archive pipeline
//  3. sync the archive files (open handles fsync; evicted ones already did)
//  4. write the checkpoint — cache dump, policies, and N — to a temp file,
//     fsync, rename over the old checkpoint
//  5. delete WAL segments below N
//
// Recovery (OpenDisk) inverts it: load the checkpoint, finish any
// interrupted truncation (delete segments below N), replay the surviving
// segments through the normal store path — idempotent, so records that
// also made the checkpoint apply harmlessly — truncating a torn tail in
// the final segment, then start a fresh segment for new appends. Archive
// files are not opened during recovery; they fault in lazily on first use.

// DiskOptions configure OpenDisk.
type DiskOptions struct {
	// Options are the regular depot options (pipeline, shards, metrics).
	Options
	// Dir is the storage directory, created if absent.
	Dir string
	// Cache overrides the fresh-start cache implementation (default
	// StreamCache). A cache image restored from a checkpoint always wins.
	Cache Cache
	// OpenFiles caps the archive handle LRU (default 64).
	OpenFiles int
	// WALSegmentBytes rotates the log when a segment reaches this size
	// (default 64 MiB).
	WALSegmentBytes int64
}

const checkpointFile = "checkpoint"

// OpenDisk opens (or initializes) a disk-backed depot: archives as paged
// files behind a bounded handle LRU, mutations write-ahead logged, state
// recovered from checkpoint + WAL replay.
func OpenDisk(do DiskOptions) (*Depot, error) {
	if do.Dir == "" {
		return nil, fmt.Errorf("depot: disk depot needs a directory")
	}
	if err := os.MkdirAll(do.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: data dir: %w", err)
	}
	store, err := newDiskStore(filepath.Join(do.Dir, "archives"), do.OpenFiles)
	if err != nil {
		return nil, err
	}
	cache, policies, firstSeq, err := readCheckpoint(filepath.Join(do.Dir, checkpointFile))
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = do.Cache
	}
	if cache == nil {
		cache = NewStreamCache()
	}
	d := newDepot(cache, do.Options, store)
	d.dataDir = do.Dir
	d.walDir = filepath.Join(do.Dir, "wal")
	for _, p := range policies {
		if err := d.AddPolicy(p); err != nil {
			return nil, fmt.Errorf("depot: checkpoint policy: %w", err)
		}
	}
	if err := os.MkdirAll(d.walDir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: wal dir: %w", err)
	}
	// A crash between checkpoint write and truncation leaves stale
	// segments; finishing the delete here keeps replay starting at the
	// checkpoint's horizon.
	if err := deleteSegmentsBelow(d.walDir, firstSeq); err != nil {
		return nil, fmt.Errorf("depot: wal truncation: %w", err)
	}
	if err := d.replayWAL(); err != nil {
		return nil, err
	}
	d.Drain()
	w, err := openWAL(d.walDir, do.WALSegmentBytes)
	if err != nil {
		return nil, err
	}
	d.wal = w
	return d, nil
}

// DiskBacked reports whether the depot runs on the disk engine.
func (d *Depot) DiskBacked() bool { return d.wal != nil }

// replayWAL applies every surviving log record through the normal (non-
// logging) store path. The depot has no WAL attached yet, so nothing is
// re-appended.
func (d *Depot) replayWAL() error {
	seqs, err := walSegments(d.walDir)
	if err != nil {
		return fmt.Errorf("depot: wal scan: %w", err)
	}
	for i, seq := range seqs {
		final := i == len(seqs)-1
		path := filepath.Join(d.walDir, walSegmentName(seq))
		if err := replaySegment(path, final, d.applyWALRecord); err != nil {
			return err
		}
	}
	return nil
}

// applyWALRecord replays one frame. Per-record failures are tolerated: a
// record that fails to apply now also failed (and was not acknowledged)
// when it was first appended, and policy re-uploads collide with the
// checkpoint's copy by design.
func (d *Depot) applyWALRecord(rec walRecord) error {
	switch rec.kind {
	case walFrameReport:
		id, report, err := decodeReportFrame(rec.payload)
		if err != nil {
			return err
		}
		d.storeApply(id, report)
	case walFramePolicy:
		var xp xmlPolicyEntry
		if err := xml.Unmarshal(rec.payload, &xp); err != nil {
			return fmt.Errorf("depot: wal policy frame: %w", err)
		}
		p, err := snapshotPolicy(xp)
		if err != nil {
			return err
		}
		d.addPolicyApply(p)
	case walFrameManual:
		id, name, at, value, err := decodeManualFrame(rec.payload)
		if err != nil {
			return err
		}
		d.archiveUpdateApply(id, name, at, value)
	default:
		// Unknown kinds are skipped for forward compatibility (the CRC
		// already vouched for the bytes).
	}
	return nil
}

// Checkpoint makes everything acknowledged so far durable without the WAL
// and truncates the log. Concurrent stores are paused only for the
// rotation itself.
func (d *Depot) Checkpoint() error {
	if d.wal == nil {
		return fmt.Errorf("depot: Checkpoint on a memory depot (snapshot instead)")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	d.storeBarrier.Lock()
	newSeq, err := d.wal.rotate()
	d.storeBarrier.Unlock()
	if err != nil {
		return err
	}
	// Everything below newSeq is now applied (drain) and durable (sync +
	// checkpoint) before any segment is deleted — the order that makes a
	// crash at any point recoverable.
	d.Drain()
	if err := d.archives.sync(); err != nil {
		return fmt.Errorf("depot: checkpoint archive sync: %w", err)
	}
	if err := d.writeCheckpoint(newSeq); err != nil {
		return err
	}
	return deleteSegmentsBelow(d.walDir, newSeq)
}

// writeCheckpoint writes cache + policies + WAL horizon atomically.
func (d *Depot) writeCheckpoint(firstSeq uint64) error {
	return AtomicWriteFile(filepath.Join(d.dataDir, checkpointFile), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		if _, err := bw.WriteString(snapshotMagic); err != nil {
			return err
		}
		if err := writeSection(bw, "CACH", d.cache.Dump()); err != nil {
			return err
		}
		polsXML, err := marshalPolicies(d.Policies())
		if err != nil {
			return err
		}
		if err := writeSection(bw, "POLS", polsXML); err != nil {
			return err
		}
		var seqBuf [8]byte
		binary.BigEndian.PutUint64(seqBuf[:], firstSeq)
		if err := writeSection(bw, "WSEQ", seqBuf[:]); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// readCheckpoint loads a checkpoint image; a missing file is a fresh
// depot, not an error. The image shares the snapshot section format, so a
// checkpoint without WSEQ (or even a plain snapshot) restores too.
func readCheckpoint(path string) (Cache, []Policy, uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("depot: checkpoint: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return nil, nil, 0, fmt.Errorf("depot: bad checkpoint header")
	}
	var (
		cache    Cache
		policies []Policy
		firstSeq uint64
	)
	for {
		tag, data, err := readSection(br)
		if err == io.EOF {
			return cache, policies, firstSeq, nil
		}
		if err != nil {
			return nil, nil, 0, fmt.Errorf("depot: checkpoint section: %w", err)
		}
		switch tag {
		case "CACH":
			c, err := LoadDump(data)
			if err != nil {
				return nil, nil, 0, err
			}
			cache = c
		case "POLS":
			var pols xmlPolicies
			if err := xml.Unmarshal(data, &pols); err != nil {
				return nil, nil, 0, fmt.Errorf("depot: checkpoint policies: %w", err)
			}
			for _, xp := range pols.Policies {
				p, err := snapshotPolicy(xp)
				if err != nil {
					return nil, nil, 0, err
				}
				policies = append(policies, p)
			}
		case "WSEQ":
			if len(data) != 8 {
				return nil, nil, 0, fmt.Errorf("depot: checkpoint WSEQ of %d bytes", len(data))
			}
			firstSeq = binary.BigEndian.Uint64(data)
		default:
			// Skipped for forward compatibility.
		}
	}
}

// AtomicWriteFile writes a file so readers see either the previous
// content or the complete new content, never a torn mix: the bytes land
// in a same-directory temp file, are fsynced, and rename into place.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	tmp = nil
	// Persist the rename itself.
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return nil
}

// --- WAL frame payloads ---

func encodeReportFrame(id branch.ID, report []byte) []byte {
	b := id.String()
	buf := make([]byte, 0, 2+len(b)+len(report))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b)))
	buf = append(buf, b...)
	return append(buf, report...)
}

func decodeReportFrame(p []byte) (branch.ID, []byte, error) {
	if len(p) < 2 {
		return branch.ID{}, nil, fmt.Errorf("depot: short report frame")
	}
	n := int(binary.BigEndian.Uint16(p))
	if len(p) < 2+n {
		return branch.ID{}, nil, fmt.Errorf("depot: short report frame")
	}
	id, err := branch.Parse(string(p[2 : 2+n]))
	if err != nil {
		return branch.ID{}, nil, fmt.Errorf("depot: report frame branch: %w", err)
	}
	return id, p[2+n:], nil
}

func encodeManualFrame(id branch.ID, policy string, at time.Time, value float64) []byte {
	b := id.String()
	buf := make([]byte, 0, 2+len(b)+2+len(policy)+16)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(b)))
	buf = append(buf, b...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(policy)))
	buf = append(buf, policy...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(at.UnixNano()))
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(value))
}

func decodeManualFrame(p []byte) (branch.ID, string, time.Time, float64, error) {
	fail := func(msg string) (branch.ID, string, time.Time, float64, error) {
		return branch.ID{}, "", time.Time{}, 0, fmt.Errorf("depot: %s", msg)
	}
	if len(p) < 2 {
		return fail("short manual frame")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n+2 {
		return fail("short manual frame")
	}
	id, err := branch.Parse(string(p[:n]))
	if err != nil {
		return fail("manual frame branch: " + err.Error())
	}
	p = p[n:]
	m := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) != m+16 {
		return fail("short manual frame")
	}
	name := string(p[:m])
	p = p[m:]
	at := time.Unix(0, int64(binary.BigEndian.Uint64(p))).UTC()
	value := math.Float64frombits(binary.BigEndian.Uint64(p[8:]))
	return id, name, at, value, nil
}

func marshalPolicyEntry(p Policy) xmlPolicyEntry {
	return xmlPolicyEntry{
		Name: p.Name, Prefix: p.Prefix.String(), Path: p.Path,
		Step: p.Archive.Step.String(), Granularity: p.Archive.Granularity,
		History: p.Archive.History.String(), ManualOnly: p.ManualOnly,
		Heartbeat: heartbeatString(p.Archive.Heartbeat),
	}
}

func marshalPolicies(policies []Policy) ([]byte, error) {
	pols := xmlPolicies{}
	for _, p := range policies {
		pols.Policies = append(pols.Policies, marshalPolicyEntry(p))
	}
	return xml.Marshal(pols)
}
