package depot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/rrd"
)

// diskDepot opens a disk depot over dir with small-test defaults.
func diskDepot(t *testing.T, dir string, opts DiskOptions) *Depot {
	t.Helper()
	opts.Dir = dir
	d, err := OpenDisk(opts)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return d
}

// TestDiskMatchesMemorySeries is the backend-identity acceptance check:
// the same concurrent store workload against the memory engine and the
// disk engine must produce the same archived series point for point, and
// the two depots' snapshot images must be byte-identical.
func TestDiskMatchesMemorySeries(t *testing.T) {
	for _, opts := range []Options{
		{},
		{AsyncArchive: true, ArchiveWorkers: 3, ArchiveQueue: 4},
	} {
		mem := NewWithOptions(NewStreamCache(), opts)
		disk := diskDepot(t, t.TempDir(), DiskOptions{Options: opts})
		for _, d := range []*Depot{mem, disk} {
			addPolicies(t, d, bandwidthPolicies("site=sdsc"))
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
					for i := 0; i < 50; i++ {
						at := dt0.Add(time.Duration(i+1) * 10 * time.Minute)
						if _, err := d.Store(id, twoStatReport(t, at, float64(900+i), i%7 != 0)); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			d.Drain()
		}

		mk, dk := mem.ArchivedSeries(), disk.ArchivedSeries()
		if len(mk) != len(dk) || len(mk) != 4*5 {
			t.Fatalf("series: memory %d, disk %d", len(mk), len(dk))
		}
		start, end := dt0, dt0.Add(10*time.Hour)
		for i, key := range mk {
			if dk[i] != key {
				t.Fatalf("series %d: memory %q, disk %q", i, key, dk[i])
			}
			n := strings.LastIndexByte(key, '|')
			id, pol := branch.MustParse(key[:n]), key[n+1:]
			for _, cf := range []rrd.CF{rrd.Average, rrd.Min, rrd.Max} {
				ms, merr := mem.FetchArchive(id, pol, cf, start, end)
				ds, derr := disk.FetchArchive(id, pol, cf, start, end)
				if (merr == nil) != (derr == nil) {
					t.Fatalf("%s/%v: fetch errors differ: %v vs %v", key, cf, merr, derr)
				}
				if merr != nil {
					continue
				}
				if len(ms.Points) != len(ds.Points) {
					t.Fatalf("%s/%v: %d vs %d points", key, cf, len(ms.Points), len(ds.Points))
				}
				for j := range ms.Points {
					mv, dv := ms.Points[j].Values[0], ds.Points[j].Values[0]
					if !ms.Points[j].Time.Equal(ds.Points[j].Time) ||
						(mv != dv && !(math.IsNaN(mv) && math.IsNaN(dv))) {
						t.Fatalf("%s/%v point %d: memory (%v,%g) disk (%v,%g)",
							key, cf, j, ms.Points[j].Time, mv, ds.Points[j].Time, dv)
					}
				}
			}
		}

		var mi, di bytes.Buffer
		if err := mem.WriteSnapshot(&mi); err != nil {
			t.Fatal(err)
		}
		if err := disk.WriteSnapshot(&di); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mi.Bytes(), di.Bytes()) {
			t.Fatalf("snapshot images differ across backends (%d vs %d bytes)", mi.Len(), di.Len())
		}
		mem.Close()
		disk.Close()
	}
}

// TestDiskRestartWALReplay closes a disk depot without a checkpoint and
// reopens it: every acknowledged store must come back via WAL replay —
// cache, policies, and archived series.
func TestDiskRestartWALReplay(t *testing.T) {
	dir := t.TempDir()
	d := diskDepot(t, dir, DiskOptions{})
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 30)
	if err := d.ArchiveUpdate(id, "bw-lower", dt0.Add(400*time.Minute), 777); err != nil {
		t.Fatal(err)
	}
	wantSeries := d.ArchivedSeries()
	wantLatest := d.LatestValue(id, "bw-lower", rrd.Average)
	wantCount := d.Cache().Count()
	d.Close()

	re := diskDepot(t, dir, DiskOptions{})
	defer re.Close()
	if got := re.ArchivedSeries(); len(got) != len(wantSeries) {
		t.Fatalf("series after restart = %d, want %d", len(got), len(wantSeries))
	}
	if got := len(re.Policies()); got != 5 {
		t.Fatalf("policies after restart = %d, want 5", got)
	}
	if got := re.Cache().Count(); got != wantCount {
		t.Fatalf("cache count after restart = %d, want %d", got, wantCount)
	}
	if got := re.LatestValue(id, "bw-lower", rrd.Average); got != wantLatest {
		t.Fatalf("latest after restart = %g, want %g", got, wantLatest)
	}
	// The depot keeps working: the next report in the sequence archives.
	at := dt0.Add(31 * 10 * time.Minute)
	if _, err := re.Store(id, twoStatReport(t, at, 999, true)); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCheckpointTruncatesWAL checkpoints, verifies the old segments
// are gone, and confirms a restart (which replays almost nothing) still
// serves everything.
func TestDiskCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	d := diskDepot(t, dir, DiskOptions{})
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	seqs, err := walSegments(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("segments after checkpoint = %v, want exactly the fresh one", seqs)
	}
	// Post-checkpoint stores land in the fresh segment.
	storeSequence(t, d, id, 25) // first 20 are duplicates (dropped), 5 new
	wantLatest := d.LatestValue(id, "bw-lower", rrd.Average)
	d.Close()

	re := diskDepot(t, dir, DiskOptions{})
	defer re.Close()
	if got := re.LatestValue(id, "bw-lower", rrd.Average); got != wantLatest {
		t.Fatalf("latest after checkpointed restart = %g, want %g", got, wantLatest)
	}
	if got := re.Cache().Count(); got != 1 {
		t.Fatalf("cache count = %d, want 1", got)
	}
}

// TestDiskWALTornTail truncates the last WAL segment mid-frame and
// appends garbage; recovery must keep every whole frame, drop the tail,
// and leave the segment clean.
func TestDiskWALTornTail(t *testing.T) {
	dir := t.TempDir()
	d := diskDepot(t, dir, DiskOptions{})
	addPolicies(t, d, []Policy{{
		Name: "avail", Prefix: branch.MustParse("site=sdsc"), Path: "",
		Archive: rrd.ArchivalPolicy{Step: 10 * time.Minute, History: 24 * time.Hour},
	}})
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 10)
	d.Close()

	// Find the segment holding the reports (the last one before Close).
	walDir := filepath.Join(dir, "wal")
	seqs, err := walSegments(walDir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("wal segments: %v %v", seqs, err)
	}
	seg := filepath.Join(walDir, walSegmentName(seqs[len(seqs)-1]))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the final frame, then append garbage that must not be
	// mistaken for data.
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(info.Size() - 37); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0x5a}, 200)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := diskDepot(t, dir, DiskOptions{})
	defer re.Close()
	// Reports 1..9 survived whole; report 10's frame was torn off.
	s, err := re.FetchArchive(id, "avail", rrd.Average, dt0, dt0.Add(5*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	known := 0
	for _, p := range s.Points {
		if !math.IsNaN(p.Values[0]) {
			known++
		}
	}
	if known == 0 {
		t.Fatal("no archived data survived the torn tail")
	}
	if got := re.Cache().Count(); got != 1 {
		t.Fatalf("cache count = %d, want 1", got)
	}
	// The torn segment was truncated at the last good frame: a second
	// restart replays it without error.
	re.Close()
	re2 := diskDepot(t, dir, DiskOptions{})
	re2.Close()
}

// TestDiskLRUBoundsHandles stores into far more series than the handle
// cap and checks the store never holds more than the cap open while every
// series stays fetchable.
func TestDiskLRUBoundsHandles(t *testing.T) {
	dir := t.TempDir()
	d := diskDepot(t, dir, DiskOptions{OpenFiles: 4})
	defer d.Close()
	addPolicies(t, d, []Policy{{
		Name: "avail", Prefix: branch.MustParse("site=sdsc"), Path: "",
		Archive: rrd.ArchivalPolicy{Step: 10 * time.Minute, History: 24 * time.Hour},
	}})
	for g := 0; g < 20; g++ {
		id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
		storeSequence(t, d, id, 3)
	}
	ds := d.archives.(*diskStore)
	if got := ds.openHandles(); got > 4 {
		t.Fatalf("open handles = %d, cap 4", got)
	}
	if got := d.Stats().Archives; got != 20 {
		t.Fatalf("archives = %d, want 20", got)
	}
	// Every series — including long-evicted ones — reopens on demand.
	for g := 0; g < 20; g++ {
		id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
		if v := d.LatestValue(id, "avail", rrd.Average); math.IsNaN(v) {
			t.Fatalf("series %d lost after eviction", g)
		}
	}
	if got := ds.openHandles(); got > 4 {
		t.Fatalf("open handles after fetches = %d, cap 4", got)
	}
}

// TestDiskManualOnlyScale drives ArchiveUpdate across many series — the
// series-scale path the storage experiment uses — and spot-checks
// persistence across a restart.
func TestDiskManualOnlyScale(t *testing.T) {
	dir := t.TempDir()
	d := diskDepot(t, dir, DiskOptions{OpenFiles: 8})
	if err := d.AddPolicy(Policy{
		Name: "series", ManualOnly: true,
		Archive: rrd.ArchivalPolicy{Step: time.Minute, History: time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		id := branch.MustParse(fmt.Sprintf("series=s%d,site=scale", i))
		for j := 0; j < 5; j++ {
			at := dt0.Add(time.Duration(j+1) * time.Minute)
			if err := d.ArchiveUpdate(id, "series", at, float64(i*100+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.Close()
	re := diskDepot(t, dir, DiskOptions{OpenFiles: 8})
	defer re.Close()
	if got := re.Stats().Archives; got != 50 {
		t.Fatalf("archives after restart = %d, want 50", got)
	}
	id := branch.MustParse("series=s37,site=scale")
	if v := re.LatestValue(id, "series", rrd.Average); math.IsNaN(v) {
		t.Fatal("manual series lost across restart")
	}
}

// TestReadSectionRejectsCorruptLength feeds a section header that claims
// gigabytes: the reader must fail on the short read, not allocate it.
func TestReadSectionRejectsCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("CACH")
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], 3<<30) // 3 GiB claimed
	buf.Write(lenBuf[:])
	buf.WriteString("tiny")
	if _, _, err := readSection(bufio.NewReader(&buf)); err == nil {
		t.Fatal("readSection accepted a 3 GiB claim over 4 bytes")
	}
}

// TestCheckpointOnMemoryDepotFails keeps the API honest.
func TestCheckpointOnMemoryDepotFails(t *testing.T) {
	d := New(NewStreamCache())
	if err := d.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded on a memory depot")
	}
}
