package depot

import "inca/internal/branch"

// NullCache accepts and discards every report: Update succeeds without
// storing anything and queries answer "not found". It backs archive-only
// depots — configurations where only the consolidated series matter (the
// latest-instance cache lives elsewhere or is not wanted), and the
// archive-pipeline benchmarks, which use it to measure the archival phase
// of Store in isolation from cache splicing (BenchmarkIngestParallel*
// covers the cache phase).
type NullCache struct{}

// Update discards the report. It reports added=false so Depot counters
// still advance (Store counts receipt, not cache growth).
func (NullCache) Update(id branch.ID, reportXML []byte) (bool, error) { return false, nil }

// Query reports no entry for any identifier.
func (NullCache) Query(id branch.ID) ([]byte, bool, error) { return nil, false, nil }

// Reports returns no stored reports.
func (NullCache) Reports(prefix branch.ID) ([]Stored, error) { return nil, nil }

// Dump returns an empty cache document.
func (NullCache) Dump() []byte { return []byte("<cache></cache>") }

// Size returns 0.
func (NullCache) Size() int { return 0 }

// Count returns 0.
func (NullCache) Count() int { return 0 }
