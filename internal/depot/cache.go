// Package depot implements Inca's data management facility (paper Section
// 3.2.2): a cache holding the most recent report for every branch
// identifier, and an archive of numerical data in round-robin databases
// under uploadable archival policies.
//
// The cache's defining property, taken from the paper, is that "new data
// with unknown schemas can be added to the cache with no configuration":
// the branch identifier alone determines a unique location, and a later
// report for the same identifier replaces the previous one.
//
// Several cache implementations are provided:
//
//   - StreamCache — the deployed design: one XML document updated and
//     queried with a streaming (SAX-style) scan. Update cost grows with
//     document size, which is exactly the scaling behaviour Section 5.2
//     measures. (NewStreamCacheGeneric keeps the generic-token variant for
//     parser ablations.)
//   - FileCache — StreamCache with the document write-through persisted to
//     "a single XML file", as the deployed system kept it.
//   - DOMCache — the design the authors tried first and abandoned ("the
//     memory requirements of the DOM parser grew too rapidly"): a parsed
//     in-memory tree, fast to update, serialized on demand.
//   - SplitCache — the planned improvement ("the cache will be split into
//     multiple smaller files to minimize XML parsing time"): one
//     StreamCache per most-general branch component group.
//   - ShardedCache — hash-sharded StreamCaches for concurrent ingest
//     (see sharded.go).
//   - IndexedCache — the read-path counterpart (see indexed.go): a sorted
//     component trie indexed by branch identifier, O(report) updates and
//     exact queries, O(results) prefix collection, and a lazily
//     materialized canonical document gated by a generation counter.
package depot

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sync"

	"inca/internal/branch"
)

// Cache stores the latest report per branch identifier.
type Cache interface {
	// Update stores reportXML at id, replacing any previous report there.
	// It reports whether a new entry was added (false when an existing
	// entry was replaced), so callers never have to infer added-vs-replaced
	// from Count() deltas — which misreports under concurrent stores.
	Update(id branch.ID, reportXML []byte) (added bool, err error)
	// Query returns the serialized subtree rooted at the node id names
	// (the whole cache for the root identifier) and whether it exists.
	Query(id branch.ID) ([]byte, bool, error)
	// Reports returns every stored report under the given prefix.
	Reports(prefix branch.ID) ([]Stored, error)
	// Dump returns the entire cache document.
	Dump() []byte
	// Size returns the cache document size in bytes.
	Size() int
	// Count returns the number of stored reports.
	Count() int
}

// Versioned is implemented by caches that expose a generation counter
// incremented on every successful update. Read layers derive cheap
// freshness checks from it: the HTTP querying interface turns it into
// ETags (so an unchanged cache answers conditional requests in O(1)) and
// IndexedCache uses it to invalidate its lazily materialized document.
type Versioned interface {
	// Generation returns a counter that strictly increases with every
	// successful Update.
	Generation() uint64
}

// Stored is one cached report and its full branch identifier.
type Stored struct {
	ID  branch.ID
	XML []byte
}

// StreamCache is the single-XML-document cache (see package comment).
type StreamCache struct {
	mu      sync.RWMutex
	data    []byte
	count   int
	gen     uint64
	generic bool // use the generic token-based splice (benchmarks only)
}

// NewStreamCache returns an empty cache document.
func NewStreamCache() *StreamCache {
	return &StreamCache{data: []byte("<cache></cache>")}
}

// NewStreamCacheGeneric returns a cache whose updates use the
// general-purpose encoding/xml token scanner instead of the byte-level fast
// path — the cost of a generic SAX stack, kept for the parser ablation
// benchmarks.
func NewStreamCacheGeneric() *StreamCache {
	return &StreamCache{data: []byte("<cache></cache>"), generic: true}
}

// Update implements Cache by streaming the whole document through a
// scanner, splicing the new report in at the location the branch identifier
// names. The document is canonical (this package wrote every byte of it),
// so the byte-level fast path applies; see cache_fast.go and the generic
// token-based reference in spliceUpdate.
func (c *StreamCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	splice := fastSplice
	if c.generic {
		splice = spliceUpdate
	}
	out, added, err := splice(c.data, id.Path(), reportXML)
	if err != nil {
		return false, err
	}
	c.data = out
	c.gen++
	if added {
		c.count++
	}
	return added, nil
}

// Query implements Cache.
func (c *StreamCache) Query(id branch.ID) ([]byte, bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if id.IsRoot() {
		return append([]byte(nil), c.data...), true, nil
	}
	return extractSubtree(c.data, id.Path())
}

// Reports implements Cache. Canonical documents take the byte-level fast
// path, with the generic token walk as fallback.
func (c *StreamCache) Reports(prefix branch.ID) ([]Stored, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.generic {
		if out, err := collectReportsFast(c.data, prefix); err == nil {
			return out, nil
		}
	}
	return collectReports(c.data, prefix)
}

// Dump implements Cache.
func (c *StreamCache) Dump() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]byte(nil), c.data...)
}

// Size implements Cache.
func (c *StreamCache) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.data)
}

// Count implements Cache.
func (c *StreamCache) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// Generation implements Versioned.
func (c *StreamCache) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// LoadDump reconstructs a StreamCache from a previously dumped cache
// document (e.g. one fetched over the querying interface — the paper notes
// that retrieving the whole cache "tasks the data consumer with a large
// amount of XML processing"; this is that processing).
func LoadDump(data []byte) (*StreamCache, error) {
	stored, err := collectReports(data, branch.ID{})
	if err != nil {
		return nil, fmt.Errorf("depot: bad cache dump: %w", err)
	}
	c := NewStreamCache()
	for _, s := range stored {
		if _, err := c.Update(s.ID, s.XML); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// --- streaming machinery ---

func branchStart(p branch.Pair) xml.StartElement {
	return xml.StartElement{
		Name: xml.Name{Local: "branch"},
		Attr: []xml.Attr{
			{Name: xml.Name{Local: "name"}, Value: p.Name},
			{Name: xml.Name{Local: "value"}, Value: p.Value},
		},
	}
}

func branchAttrs(t xml.StartElement) (name, value string) {
	for _, a := range t.Attr {
		switch a.Name.Local {
		case "name":
			name = a.Value
		case "value":
			value = a.Value
		}
	}
	return
}

// pairBefore reports whether the new component comp sorts before an
// existing sibling (name, value) — children are kept in (name, value)
// order so the document is canonical and insertion points deterministic.
func pairBefore(comp branch.Pair, name, value string) bool {
	if comp.Name != name {
		return comp.Name < name
	}
	return comp.Value < value
}

// copySubtree copies start and its entire subtree from dec to enc.
func copySubtree(dec *xml.Decoder, enc *xml.Encoder, start xml.StartElement) error {
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
		}
		if err := enc.EncodeToken(tok); err != nil {
			return err
		}
	}
	return nil
}

// writeEntry writes <entry> wrapping the report's token stream.
func writeEntry(enc *xml.Encoder, reportXML []byte) error {
	entry := xml.StartElement{Name: xml.Name{Local: "entry"}}
	if err := enc.EncodeToken(entry); err != nil {
		return err
	}
	dec := xml.NewDecoder(bytes.NewReader(reportXML))
	wrote := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("depot: report is not well-formed XML: %w", err)
		}
		if _, isCD := tok.(xml.CharData); isCD && !wrote {
			// Skip leading whitespace outside the root element.
			continue
		}
		if err := enc.EncodeToken(tok); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		return fmt.Errorf("depot: empty report payload")
	}
	return enc.EncodeToken(entry.End())
}

// writeNewSubtree writes nested branch elements for the remaining path
// components followed by the report entry.
func writeNewSubtree(enc *xml.Encoder, comps []branch.Pair, reportXML []byte) error {
	for _, p := range comps {
		if err := enc.EncodeToken(branchStart(p)); err != nil {
			return err
		}
	}
	if err := writeEntry(enc, reportXML); err != nil {
		return err
	}
	for i := len(comps) - 1; i >= 0; i-- {
		if err := enc.EncodeToken(xml.EndElement{Name: xml.Name{Local: "branch"}}); err != nil {
			return err
		}
	}
	return nil
}

// spliceUpdate streams old through to a new buffer, placing reportXML at
// path (general→specific components). It reports whether a new entry was
// added (false when an existing entry was replaced).
func spliceUpdate(old []byte, path []branch.Pair, reportXML []byte) ([]byte, bool, error) {
	// Validate the payload up front so a malformed report cannot corrupt
	// the document after some tokens were already emitted.
	if err := wellFormed(reportXML); err != nil {
		return nil, false, err
	}
	dec := xml.NewDecoder(bytes.NewReader(old))
	var buf bytes.Buffer
	buf.Grow(len(old) + len(reportXML) + 256)
	enc := xml.NewEncoder(&buf)
	matched := 0
	inserted := false
	replaced := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, fmt.Errorf("depot: corrupt cache: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "cache":
				if err := enc.EncodeToken(t); err != nil {
					return nil, false, err
				}
			case "branch":
				name, value := branchAttrs(t)
				if !inserted && matched < len(path) {
					comp := path[matched]
					if name == comp.Name && value == comp.Value {
						matched++
						if err := enc.EncodeToken(t); err != nil {
							return nil, false, err
						}
						continue
					}
					if pairBefore(comp, name, value) {
						if err := writeNewSubtree(enc, path[matched:], reportXML); err != nil {
							return nil, false, err
						}
						inserted = true
					}
				} else if !inserted && matched == len(path) {
					// Target node's branch children begin; the entry slot
					// precedes them.
					if err := writeEntry(enc, reportXML); err != nil {
						return nil, false, err
					}
					inserted = true
				}
				if err := copySubtree(dec, enc, t); err != nil {
					return nil, false, err
				}
			case "entry":
				if !inserted && matched == len(path) {
					if err := dec.Skip(); err != nil {
						return nil, false, err
					}
					if err := writeEntry(enc, reportXML); err != nil {
						return nil, false, err
					}
					inserted = true
					replaced = true
				} else if err := copySubtree(dec, enc, t); err != nil {
					return nil, false, err
				}
			default:
				if err := copySubtree(dec, enc, t); err != nil {
					return nil, false, err
				}
			}
		case xml.EndElement:
			if !inserted {
				if matched == len(path) {
					if err := writeEntry(enc, reportXML); err != nil {
						return nil, false, err
					}
					inserted = true
				} else if t.Name.Local == "cache" {
					if err := writeNewSubtree(enc, path[matched:], reportXML); err != nil {
						return nil, false, err
					}
					inserted = true
				} else if t.Name.Local == "branch" && matched > 0 {
					if err := writeNewSubtree(enc, path[matched:], reportXML); err != nil {
						return nil, false, err
					}
					inserted = true
				}
			}
			if t.Name.Local == "branch" && matched > 0 {
				matched--
			}
			if err := enc.EncodeToken(t); err != nil {
				return nil, false, err
			}
		case xml.CharData:
			// Inter-element whitespace is dropped to keep the document
			// canonical; report payloads are copied inside copySubtree.
		}
	}
	if err := enc.Flush(); err != nil {
		return nil, false, err
	}
	if !inserted {
		return nil, false, fmt.Errorf("depot: cache document has no root element")
	}
	return buf.Bytes(), !replaced, nil
}

// wellFormed checks that data is one balanced XML element tree.
func wellFormed(data []byte) error {
	dec := xml.NewDecoder(bytes.NewReader(data))
	elements := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("depot: report is not well-formed XML: %w", err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elements++
		}
	}
	if elements == 0 {
		return fmt.Errorf("depot: empty report payload")
	}
	return nil
}

// extractSubtree returns the serialized branch element at path.
func extractSubtree(data []byte, path []branch.Pair) ([]byte, bool, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	matched := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "branch" {
				if t.Name.Local == "cache" {
					continue
				}
				if err := dec.Skip(); err != nil {
					return nil, false, err
				}
				continue
			}
			name, value := branchAttrs(t)
			comp := path[matched]
			if name == comp.Name && value == comp.Value {
				matched++
				if matched == len(path) {
					var buf bytes.Buffer
					enc := xml.NewEncoder(&buf)
					if err := copySubtree(dec, enc, t); err != nil {
						return nil, false, err
					}
					if err := enc.Flush(); err != nil {
						return nil, false, err
					}
					return buf.Bytes(), true, nil
				}
				continue
			}
			if err := dec.Skip(); err != nil {
				return nil, false, err
			}
		case xml.EndElement:
			if t.Name.Local == "branch" {
				if matched > 0 {
					matched--
				}
				// Left a matched node without finding the next component.
				return nil, false, nil
			}
		}
	}
}

// collectReports walks the document gathering every entry under prefix.
func collectReports(data []byte, prefix branch.ID) ([]Stored, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var stack []branch.Pair
	var out []Stored
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "cache":
			case "branch":
				name, value := branchAttrs(t)
				stack = append(stack, branch.Pair{Name: name, Value: value})
			case "entry":
				// Reconstruct the specific-first identifier from the stack.
				pairs := make([]branch.Pair, len(stack))
				for i, p := range stack {
					pairs[len(stack)-1-i] = p
				}
				id := branch.New(pairs...)
				var buf bytes.Buffer
				enc := xml.NewEncoder(&buf)
				depth := 1
				for depth > 0 {
					inner, err := dec.Token()
					if err != nil {
						return nil, err
					}
					switch inner.(type) {
					case xml.StartElement:
						depth++
					case xml.EndElement:
						depth--
						if depth == 0 {
							continue // drop the </entry>
						}
					}
					if err := enc.EncodeToken(inner); err != nil {
						return nil, err
					}
				}
				if err := enc.Flush(); err != nil {
					return nil, err
				}
				if id.HasSuffix(prefix) {
					out = append(out, Stored{ID: id, XML: buf.Bytes()})
				}
			default:
				if err := dec.Skip(); err != nil {
					return nil, err
				}
			}
		case xml.EndElement:
			if t.Name.Local == "branch" && len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
}

// Merge copies every stored report from the given caches into a fresh
// StreamCache — how a data consumer reassembles a distributed depot's
// shards (see controller.ShardedDepot) into one verifiable view. Later
// caches win on identifier collisions.
func Merge(caches ...Cache) (*StreamCache, error) {
	out := NewStreamCache()
	for _, c := range caches {
		stored, err := c.Reports(branch.ID{})
		if err != nil {
			return nil, err
		}
		for _, s := range stored {
			if _, err := out.Update(s.ID, s.XML); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
