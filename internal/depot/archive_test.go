package depot

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/rrd"
)

// bandwidthPolicies returns a realistic policy mix: two value paths at two
// granularities each, plus an availability (success) policy — five archives
// per matching branch.
func bandwidthPolicies(prefix string) []Policy {
	pol := func(name, path string, step time.Duration) Policy {
		return Policy{
			Name:   name,
			Prefix: branch.MustParse(prefix),
			Path:   path,
			Archive: rrd.ArchivalPolicy{
				Step: step, Granularity: 2, History: 14 * 24 * time.Hour,
			},
		}
	}
	const lower = "value,statistic=lowerBound,metric=bandwidth"
	const upper = "value,statistic=upperBound,metric=bandwidth"
	return []Policy{
		pol("bw-lower", lower, 10*time.Minute),
		pol("bw-lower-hourly", lower, time.Hour),
		pol("bw-upper", upper, 10*time.Minute),
		pol("bw-upper-hourly", upper, time.Hour),
		pol("availability", "", 10*time.Minute),
	}
}

func addPolicies(t *testing.T, d *Depot, pols []Policy) {
	t.Helper()
	for _, p := range pols {
		if err := d.AddPolicy(p); err != nil {
			t.Fatal(err)
		}
	}
}

// twoStatReport builds a report carrying both bandwidth statistics, so all
// five bandwidthPolicies extract a value.
func twoStatReport(t *testing.T, at time.Time, value float64, ok bool) []byte {
	t.Helper()
	r := report.New("grid.network.pathload", "1.0", "h1", at)
	r.Body = report.Branch("metric", "bandwidth",
		report.Branch("statistic", "lowerBound",
			report.Leaff("value", "%.2f", value),
			report.Leaf("units", "Mbps")),
		report.Branch("statistic", "upperBound",
			report.Leaff("value", "%.2f", value+10),
			report.Leaf("units", "Mbps")))
	if !ok {
		r.Fail("probe failed")
	}
	data, err := report.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// storeSequence stores n reports with strictly increasing timestamps under
// one branch.
func storeSequence(t *testing.T, d *Depot, id branch.ID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		at := dt0.Add(time.Duration(i+1) * 10 * time.Minute)
		if _, err := d.Store(id, twoStatReport(t, at, float64(900+i), true)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPolicyIndexMatchesLinearScan(t *testing.T) {
	d := New(NewStreamCache())
	addPolicies(t, d, bandwidthPolicies("tool=pathload,site=sdsc"))
	addPolicies(t, d, []Policy{
		{Name: "other-site", Prefix: branch.MustParse("site=ncsa"), Path: "x",
			Archive: rrd.ArchivalPolicy{Step: time.Minute, History: time.Hour}},
		{Name: "everything", Path: "",
			Archive: rrd.ArchivalPolicy{Step: time.Minute, History: time.Hour}},
		{Name: "manual", Prefix: branch.MustParse("site=sdsc"), ManualOnly: true,
			Archive: rrd.ArchivalPolicy{Step: time.Minute, History: time.Hour}},
	})
	set := d.policies.Load()
	for _, tc := range []struct {
		id   string
		want int
	}{
		{"tool=pathload,site=sdsc", 6}, // 5 bandwidth + rootless
		{"run=1,tool=pathload,site=sdsc", 6},
		{"tool=other,site=sdsc", 1}, // rootless only
		{"tool=pathload,site=ncsa", 2},
		{"site=lbl", 1},
		{"", 1},
	} {
		id := branch.MustParse(tc.id)
		got := set.match(id)
		if len(got) != tc.want {
			t.Errorf("match(%q) returned %d policies, want %d", tc.id, len(got), tc.want)
		}
		// The index must agree with the brute-force definition.
		var linear []string
		for _, p := range d.Policies() {
			if !p.ManualOnly && id.HasSuffix(p.Prefix) {
				linear = append(linear, p.Name)
			}
		}
		if len(linear) != len(got) {
			t.Errorf("match(%q): index %d, linear scan %d", tc.id, len(got), len(linear))
		}
	}
}

func TestConcurrentStoreSameBranch(t *testing.T) {
	// Many goroutines hammer branches that all share one archive set; run
	// under -race this exercises the shard locks and the policy snapshot.
	for _, opts := range []Options{
		{},
		{AsyncArchive: true, ArchiveWorkers: 4, ArchiveQueue: 8},
	} {
		d := NewWithOptions(NewStreamCache(), opts)
		addPolicies(t, d, bandwidthPolicies("site=sdsc"))
		id := branch.MustParse("tool=pathload,site=sdsc")
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					at := dt0.Add(time.Duration(g*25+i+1) * 10 * time.Minute)
					if _, err := d.Store(id, twoStatReport(t, at, float64(i), true)); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		d.Drain()
		if got := d.Stats().Received; got != 200 {
			t.Fatalf("received = %d, want 200", got)
		}
		// All five policies matched every store; timestamps collide across
		// goroutines, so only a subset consolidates — but every archive
		// must exist and hold data.
		if got := len(d.ArchivedSeries()); got != 5 {
			t.Fatalf("archives = %d, want 5 (%v)", got, d.ArchivedSeries())
		}
		if v := d.LatestValue(id, "availability", rrd.Average); math.IsNaN(v) {
			t.Fatal("availability archive is empty")
		}
		d.Close()
	}
}

func TestConcurrentStoreDistinctBranches(t *testing.T) {
	for _, opts := range []Options{
		{},
		{AsyncArchive: true, ArchiveWorkers: 4, ArchiveQueue: 8},
	} {
		d := NewWithOptions(NewStreamCache(), opts)
		addPolicies(t, d, bandwidthPolicies("site=sdsc"))
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
				storeSequence(t, d, id, 20)
			}(g)
		}
		wg.Wait()
		d.Drain()
		if got := len(d.ArchivedSeries()); got != 8*5 {
			t.Fatalf("archives = %d, want 40", got)
		}
		for g := 0; g < 8; g++ {
			id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
			if v := d.LatestValue(id, "bw-lower", rrd.Average); math.IsNaN(v) {
				t.Fatalf("branch %d: empty bw-lower archive", g)
			}
		}
		st := d.Stats()
		if opts.AsyncArchive {
			if st.Archive.Enqueued != 160 || st.Archive.Dropped != 0 {
				t.Fatalf("pipeline stats = %+v", st.Archive)
			}
		}
		if st.Archive.Matched != 160 {
			t.Fatalf("matched = %d, want 160", st.Archive.Matched)
		}
		d.Close()
	}
}

// TestSyncAsyncSeriesIdentical is the acceptance check that async mode is
// an optimization, not a semantics change: after Drain, every archived
// series matches the synchronous depot point for point.
func TestSyncAsyncSeriesIdentical(t *testing.T) {
	build := func(opts Options) *Depot {
		d := NewWithOptions(NewStreamCache(), opts)
		addPolicies(t, d, bandwidthPolicies("site=sdsc"))
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
				for i := 0; i < 50; i++ {
					at := dt0.Add(time.Duration(i+1) * 10 * time.Minute)
					// A failure every 7th run varies the availability series.
					okRun := i%7 != 0
					if _, err := d.Store(id, twoStatReport(t, at, float64(900+i), okRun)); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		d.Drain()
		return d
	}
	sync := build(Options{})
	async := build(Options{AsyncArchive: true, ArchiveWorkers: 3, ArchiveQueue: 4})
	defer async.Close()

	sk, ak := sync.ArchivedSeries(), async.ArchivedSeries()
	if len(sk) != len(ak) || len(sk) != 4*5 {
		t.Fatalf("series: sync %d, async %d", len(sk), len(ak))
	}
	start, end := dt0, dt0.Add(10*time.Hour)
	for i, key := range sk {
		if ak[i] != key {
			t.Fatalf("series %d: sync %q, async %q", i, key, ak[i])
		}
		var id branch.ID
		var pol string
		if n := bytes.LastIndexByte([]byte(key), '|'); n >= 0 {
			id = branch.MustParse(key[:n])
			pol = key[n+1:]
		}
		for _, cf := range []rrd.CF{rrd.Average, rrd.Min, rrd.Max} {
			ss, serr := sync.FetchArchive(id, pol, cf, start, end)
			as, aerr := async.FetchArchive(id, pol, cf, start, end)
			if (serr == nil) != (aerr == nil) {
				t.Fatalf("%s/%v: fetch errors differ: %v vs %v", key, cf, serr, aerr)
			}
			if serr != nil {
				continue
			}
			if len(ss.Points) != len(as.Points) {
				t.Fatalf("%s/%v: %d vs %d points", key, cf, len(ss.Points), len(as.Points))
			}
			for j := range ss.Points {
				sv, av := ss.Points[j].Values[0], as.Points[j].Values[0]
				if !ss.Points[j].Time.Equal(as.Points[j].Time) ||
					(sv != av && !(math.IsNaN(sv) && math.IsNaN(av))) {
					t.Fatalf("%s/%v point %d: sync (%v,%g) async (%v,%g)",
						key, cf, j, ss.Points[j].Time, sv, as.Points[j].Time, av)
				}
			}
		}
	}
}

func TestAsyncDrainBeforeSnapshot(t *testing.T) {
	d := NewWithOptions(NewStreamCache(), Options{AsyncArchive: true, ArchiveWorkers: 2, ArchiveQueue: 4})
	defer d.Close()
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 30)
	// WriteSnapshot drains internally: the image must already contain the
	// archives for every acknowledged store.
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.ArchivedSeries()); got != 5 {
		t.Fatalf("restored archives = %d, want 5", got)
	}
	want := d.LatestValue(id, "bw-lower", rrd.Average)
	if got := re.LatestValue(id, "bw-lower", rrd.Average); got != want {
		t.Fatalf("restored LatestValue = %g, want %g", got, want)
	}
}

func TestAsyncPersistRestoreRoundTrip(t *testing.T) {
	d := NewWithOptions(NewStreamCache(), Options{AsyncArchive: true, ArchiveWorkers: 2, ArchiveQueue: 4})
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
			storeSequence(t, d, id, 25)
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Restore into an async depot and keep storing: the reloaded archives
	// must accept the continuation.
	re, err := ReadSnapshotOptions(bytes.NewReader(buf.Bytes()), Options{AsyncArchive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := re.ArchivedSeries(), d.ArchivedSeries(); len(got) != len(want) {
		t.Fatalf("restored archives = %d, want %d", len(got), len(want))
	}
	id := branch.MustParse("tool=probe0,site=sdsc")
	at := dt0.Add(26 * 10 * time.Minute)
	if _, err := re.Store(id, twoStatReport(t, at, 1234, true)); err != nil {
		t.Fatal(err)
	}
	re.Drain()
	s, err := re.FetchArchive(id, "bw-lower", rrd.Average, dt0, at)
	if err != nil {
		t.Fatal(err)
	}
	var last float64 = math.NaN()
	for i := len(s.Points) - 1; i >= 0; i-- {
		if !math.IsNaN(s.Points[i].Values[0]) {
			last = s.Points[i].Values[0]
			break
		}
	}
	if math.IsNaN(last) {
		t.Fatal("no data after restore + store")
	}
	if v := re.LatestValue(id, "bw-lower", rrd.Average); v != last {
		t.Fatalf("LatestValue = %g, series tail = %g", v, last)
	}
}

func TestAsyncDropOnFull(t *testing.T) {
	// One worker, tiny queue, drop mode: flooding the depot must shed jobs
	// rather than block, and account for every shed job.
	d := NewWithOptions(NewStreamCache(), Options{
		AsyncArchive: true, ArchiveWorkers: 1, ArchiveQueue: 1, DropOnFull: true,
	})
	defer d.Close()
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 200)
	d.Drain()
	st := d.Stats().Archive
	if st.Enqueued+st.Dropped != 200 {
		t.Fatalf("enqueued %d + dropped %d != 200", st.Enqueued, st.Dropped)
	}
}

func TestDrainIsApplyBarrier(t *testing.T) {
	// Drain is the read-your-writes barrier: when it returns, every
	// acknowledged store must already be consolidated, not merely pulled
	// off the queue. Small queues and many workers maximize the window
	// between extraction and UpdateBatch.
	d := NewWithOptions(NewStreamCache(), Options{AsyncArchive: true, ArchiveWorkers: 4, ArchiveQueue: 2})
	defer d.Close()
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 50)
	d.Drain()
	if got := d.Stats().Archive.Applied; got != 50*5 {
		t.Fatalf("applied after Drain = %d, want %d", got, 50*5)
	}
}

func TestCloseConcurrentWithStores(t *testing.T) {
	// Close races in-flight stores: enqueues refused by the closing
	// pipeline must fall back to synchronous archival instead of sending
	// on a closed queue, and nothing acknowledged may be lost.
	d := NewWithOptions(NewStreamCache(), Options{AsyncArchive: true, ArchiveWorkers: 2, ArchiveQueue: 2})
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := branch.MustParse(fmt.Sprintf("tool=probe%d,site=sdsc", g))
			storeSequence(t, d, id, 50)
		}(g)
	}
	d.Close()
	wg.Wait()
	if got := d.Stats().Archive.Applied; got != 4*50*5 {
		t.Fatalf("applied = %d, want %d", got, 4*50*5)
	}
}

func TestLatestValueStaleAfterDay(t *testing.T) {
	d := New(NewStreamCache())
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	storeSequence(t, d, id, 6)
	if v := d.LatestValue(id, "bw-lower", rrd.Average); math.IsNaN(v) {
		t.Fatal("no latest value after stores")
	}
	// A resource that goes quiet: an update 25 hours on advances the
	// archive clock without consolidating any known point, leaving the
	// last known value outside the 24-hour window. LatestValue must read
	// unknown again, as the old fetch-and-scan did.
	at := dt0.Add(6*10*time.Minute + 25*time.Hour)
	if err := d.ArchiveUpdate(id, "bw-lower", at, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if v := d.LatestValue(id, "bw-lower", rrd.Average); !math.IsNaN(v) {
		t.Fatalf("LatestValue for idle resource = %g, want NaN", v)
	}
}

func TestArchiveGenerationAdvances(t *testing.T) {
	d := New(NewStreamCache())
	addPolicies(t, d, bandwidthPolicies("site=sdsc"))
	id := branch.MustParse("tool=pathload,site=sdsc")
	g0 := d.ArchiveGeneration()
	storeSequence(t, d, id, 3)
	g1 := d.ArchiveGeneration()
	if g1 <= g0 {
		t.Fatalf("generation did not advance: %d -> %d", g0, g1)
	}
	// A store that archives nothing (no matching policy) leaves it alone.
	if _, err := d.Store(branch.MustParse("tool=x,site=ncsa"), reportWithValue(t, dt0.Add(time.Hour), 1, true)); err != nil {
		t.Fatal(err)
	}
	if d.ArchiveGeneration() != g1 {
		t.Fatal("generation advanced without an archive write")
	}
	if err := d.ArchiveUpdate(id, "bw-lower", dt0.Add(24*time.Hour), 5); err != nil {
		t.Fatal(err)
	}
	if d.ArchiveGeneration() <= g1 {
		t.Fatal("ArchiveUpdate did not advance the generation")
	}
}
