package depot

import (
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/rrd"
)

// TestPublisherObservesCommits checks the change-feed hook fires exactly
// once per committed mutation, after the commit, with the right kind —
// and that a detached depot publishes nothing.
func TestPublisherObservesCommits(t *testing.T) {
	d := New(NewStreamCache())
	defer d.Close()

	var changes []Change
	d.SetPublisher(func(c Change) {
		// The hook runs synchronously on the store path; copy what we
		// keep, as real subscribers (the feed hub) do.
		c.Report = append([]byte(nil), c.Report...)
		changes = append(changes, c)
	})

	id := branch.MustParse("tool=probe,site=sdsc")
	at := time.Now().Truncate(time.Minute)
	report := reportWithValue(t, at, 42, true)
	if _, err := d.Store(id, report); err != nil {
		t.Fatalf("store: %v", err)
	}
	pol := Policy{
		Name:    "avail",
		Prefix:  branch.MustParse("site=sdsc"),
		Archive: rrd.ArchivalPolicy{Step: time.Minute, History: time.Hour},
	}
	if err := d.AddPolicy(pol); err != nil {
		t.Fatalf("add policy: %v", err)
	}
	if err := d.ArchiveUpdate(id, "avail", at.Add(time.Minute), 1); err != nil {
		t.Fatalf("archive update: %v", err)
	}

	if len(changes) != 3 {
		t.Fatalf("want 3 changes, got %d: %+v", len(changes), changes)
	}
	if changes[0].Kind != ChangeReport || !changes[0].Branch.Equal(id) || string(changes[0].Report) != string(report) {
		t.Fatalf("report change wrong: %+v", changes[0])
	}
	if changes[1].Kind != ChangePolicy || string(changes[1].Report) != "avail" {
		t.Fatalf("policy change wrong: %+v", changes[1])
	}
	if changes[2].Kind != ChangeManual || string(changes[2].Report) != "avail" || !changes[2].Branch.Equal(id) {
		t.Fatalf("manual change wrong: %+v", changes[2])
	}

	// Failed commits publish nothing.
	n := len(changes)
	if err := d.AddPolicy(pol); err == nil {
		t.Fatalf("duplicate policy should fail")
	}
	if err := d.ArchiveUpdate(id, "nope", at, 1); err == nil {
		t.Fatalf("unknown policy should fail")
	}
	if len(changes) != n {
		t.Fatalf("failed commits published: %+v", changes[n:])
	}

	// Detach.
	d.SetPublisher(nil)
	if _, err := d.Store(id, report); err != nil {
		t.Fatalf("store: %v", err)
	}
	if len(changes) != n {
		t.Fatalf("detached publisher still called")
	}
}
