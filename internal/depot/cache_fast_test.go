package depot

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"inca/internal/branch"
)

// applyBoth runs an update through both splice implementations on copies of
// the same document and checks they yield semantically identical caches.
func applyBoth(t *testing.T, fastDoc, slowDoc []byte, id branch.ID, payload []byte) ([]byte, []byte) {
	t.Helper()
	fast, addedF, errF := fastSplice(fastDoc, id.Path(), payload)
	slow, addedS, errS := spliceUpdate(slowDoc, id.Path(), payload)
	if (errF == nil) != (errS == nil) {
		t.Fatalf("error divergence: fast=%v slow=%v", errF, errS)
	}
	if errF != nil {
		return fastDoc, slowDoc
	}
	if addedF != addedS {
		t.Fatalf("added divergence: fast=%v slow=%v", addedF, addedS)
	}
	// Compare semantically: same stored reports, same subtree extraction.
	rf, err := collectReports(fast, branch.ID{})
	if err != nil {
		t.Fatalf("fast doc unparseable: %v\n%s", err, fast)
	}
	rs, err := collectReports(slow, branch.ID{})
	if err != nil {
		t.Fatalf("slow doc unparseable: %v\n%s", err, slow)
	}
	if !reportsEqual(rf, rs) {
		t.Fatalf("divergent contents after update %s:\nfast: %s\nslow: %s", id, fast, slow)
	}
	return fast, slow
}

func TestFastSpliceMatchesReference(t *testing.T) {
	fastDoc := []byte("<cache></cache>")
	slowDoc := []byte("<cache></cache>")
	ops := []struct {
		id      string
		payload string
	}{
		{"resource=r1,site=sdsc,vo=tg", "<rep><v>1</v></rep>"},
		{"resource=r2,site=sdsc,vo=tg", "<rep><v>2</v></rep>"},
		{"resource=r1,site=ncsa,vo=tg", "<rep><v>3</v></rep>"},
		{"resource=r1,site=sdsc,vo=tg", "<rep><v>replaced</v></rep>"}, // replace
		{"site=sdsc,vo=tg", "<rep><v>interior</v></rep>"},             // interior entry
		{"vo=tg", "<rep><v>shallow</v></rep>"},
		{"resource=r0,site=aaa,vo=tg", "<rep><v>sorts-first</v></rep>"},
		{"x=1,resource=r1,site=sdsc,vo=tg", "<rep><v>deeper</v></rep>"},
	}
	for _, op := range ops {
		fastDoc, slowDoc = applyBoth(t, fastDoc, slowDoc, branch.MustParse(op.id), []byte(op.payload))
	}
}

func TestFastSpliceEscapedValuesInIDs(t *testing.T) {
	// Branch values with XML-special characters must survive attribute
	// escaping and still match on replace.
	c := NewStreamCache()
	id := branch.MustParse("path=/usr/bin&lib,site=a<b")
	if _, err := c.Update(id, []byte("<rep><v>one</v></rep>")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(id, []byte("<rep><v>two</v></rep>")); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("escaped-id replace created duplicate: count=%d\n%s", c.Count(), c.Dump())
	}
	got, _ := c.Reports(branch.ID{})
	if len(got) != 1 || !bytes.Contains(got[0].XML, []byte("two")) {
		t.Fatalf("reports = %+v", got)
	}
	if !got[0].ID.Equal(id) {
		t.Fatalf("id round trip: %s != %s", got[0].ID, id)
	}
}

func TestFastSplicePayloadContainingBranchTags(t *testing.T) {
	// A report whose own elements are named like cache structure must not
	// confuse the scanner.
	c := NewStreamCache()
	tricky := []byte(`<rep><branch name="fake" value="x"><entry>inner</entry></branch></rep>`)
	if _, err := c.Update(branch.MustParse("r=1"), tricky); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(branch.MustParse("r=1"), []byte("<rep><v>clean</v></rep>")); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Reports(branch.ID{})
	if len(got) != 1 || bytes.Contains(got[0].XML, []byte("fake")) {
		t.Fatalf("tricky payload mishandled: %+v", got)
	}
	// And storing it again under a sibling works.
	if _, err := c.Update(branch.MustParse("r=2"), tricky); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Reports(branch.MustParse("r=2"))
	if len(got) != 1 || !bytes.Contains(got[0].XML, []byte("fake")) {
		t.Fatalf("tricky payload lost: %+v", got)
	}
}

func TestFastSpliceRandomizedEquivalenceProperty(t *testing.T) {
	names := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fastDoc := []byte("<cache></cache>")
		slowDoc := []byte("<cache></cache>")
		for i := 0; i < 15; i++ {
			depth := 1 + r.Intn(3)
			id := branch.ID{}
			for d := 0; d < depth; d++ {
				id = id.Child(fmt.Sprintf("l%d", depth-d), names[r.Intn(len(names))])
			}
			payload := []byte(fmt.Sprintf("<rep><v>%d &amp; stuff</v></rep>", r.Intn(100)))
			var errF, errS error
			var addF, addS bool
			fastDoc, addF, errF = fastSplice(fastDoc, id.Path(), payload)
			slowDoc, addS, errS = spliceUpdate(slowDoc, id.Path(), payload)
			if errF != nil || errS != nil || addF != addS {
				return false
			}
			rf, ef := collectReports(fastDoc, branch.ID{})
			rs, es := collectReports(slowDoc, branch.ID{})
			if ef != nil || es != nil || !reportsEqual(rf, rs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeXML(t *testing.T) {
	cases := map[string]string{
		"plain":          "plain",
		"&lt;&gt;&amp;":  "<>&",
		"&quot;q&quot;":  `"q"`,
		"&apos;a&apos;":  "'a'",
		"&#34;num&#34;":  `"num"`,
		"&#x9;tab":       "\ttab",
		"broken&ent":     "broken&ent",
		"unknown&zz;ref": "unknown&zz;ref",
		"bad&#xZZ;code":  "bad&#xZZ;code",
	}
	for in, want := range cases {
		if got := unescapeXML([]byte(in)); got != want {
			t.Errorf("unescapeXML(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestScanTagBasics(t *testing.T) {
	doc := []byte(`<cache><branch name="a" value="b"></branch></cache>`)
	t1, ok, err := scanTag(doc, 0)
	if err != nil || !ok || string(t1.name) != "cache" || t1.closing {
		t.Fatalf("t1 = %+v %v %v", t1, ok, err)
	}
	t2, ok, _ := scanTag(doc, t1.end)
	if !ok || string(t2.name) != "branch" {
		t.Fatalf("t2 = %+v", t2)
	}
	if v, found := attrValue(t2.attrs, "value"); !found || v != "b" {
		t.Fatalf("attr = %q %v", v, found)
	}
	if _, found := attrValue(t2.attrs, "missing"); found {
		t.Fatal("phantom attribute")
	}
	t3, ok, _ := scanTag(doc, t2.end)
	if !ok || !t3.closing || string(t3.name) != "branch" {
		t.Fatalf("t3 = %+v", t3)
	}
	if _, ok, _ := scanTag(doc, len(doc)); ok {
		t.Fatal("tag found past end")
	}
	if _, _, err := scanTag([]byte("<unterminated"), 0); err == nil {
		t.Fatal("unterminated tag accepted")
	}
}

func TestFastSplicePerformanceScalesRoughlyLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Not a strict benchmark — just a guard that a ~1.5 MB cache (the
	// TeraGrid operating point) updates in well under 10 ms.
	c := NewStreamCache()
	payload := bytes.Repeat([]byte("<d>datadata</d>"), 60) // ~900 B
	for i := 0; c.Size() < 1500*1024; i++ {
		id := branch.MustParse(fmt.Sprintf("r=p%04d,s=s%d,vo=tg", i, i%10))
		if _, err := c.Update(id, append([]byte("<rep>"), append(payload, []byte("</rep>")...)...)); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	const n = 50
	for i := 0; i < n; i++ {
		id := branch.MustParse(fmt.Sprintf("r=p%04d,s=s%d,vo=tg", i, i%10))
		if _, err := c.Update(id, []byte("<rep><v>updated</v></rep>")); err != nil {
			t.Fatal(err)
		}
	}
	per := time.Since(start) / n
	if per > 10*time.Millisecond {
		t.Fatalf("update on 1.5 MB cache took %v, want < 10ms", per)
	}
	t.Logf("1.5 MB cache update: %v", per)
}

func TestFastSpliceQuotesInBranchValues(t *testing.T) {
	// Attribute values containing quotes are escaped by the encoder as
	// &#34;; the byte scanner must still match them on replacement.
	c := NewStreamCache()
	id := branch.MustParse(`path=/opt/"quoted"/dir,site=x`)
	if _, err := c.Update(id, []byte("<rep><v>one</v></rep>")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(id, []byte("<rep><v>two</v></rep>")); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("quote-valued id duplicated: %d\n%s", c.Count(), c.Dump())
	}
	got, _ := c.Reports(branch.ID{})
	if len(got) != 1 || !got[0].ID.Equal(id) {
		t.Fatalf("reports = %+v", got)
	}
}

func TestCollectReportsFastMatchesGeneric(t *testing.T) {
	c := NewStreamCache()
	ids := []string{
		"resource=r1,site=sdsc,vo=tg",
		"resource=r2,site=sdsc,vo=tg",
		"site=sdsc,vo=tg",
		"vo=tg",
		`path=/opt/"q"/x,site=a<b`,
	}
	for i, id := range ids {
		payload := fmt.Sprintf("<rep><v>p%d &amp; stuff</v><nested><entry>fake</entry></nested></rep>", i)
		mustUpdate(t, c, id, []byte(payload))
	}
	for _, prefix := range []string{"", "vo=tg", "site=sdsc,vo=tg", "resource=r1,site=sdsc,vo=tg", "site=none"} {
		fast, err := collectReportsFast(c.Dump(), branch.MustParse(prefix))
		if err != nil {
			t.Fatalf("fast(%q): %v", prefix, err)
		}
		slow, err := collectReports(c.Dump(), branch.MustParse(prefix))
		if err != nil {
			t.Fatalf("slow(%q): %v", prefix, err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("prefix %q: fast %d vs slow %d", prefix, len(fast), len(slow))
		}
		// IDs must agree; payload bytes may differ in formatting between
		// raw slicing and token re-encoding, but must parse identically.
		for i := range fast {
			if !fast[i].ID.Equal(slow[i].ID) {
				t.Fatalf("prefix %q entry %d: id %s vs %s", prefix, i, fast[i].ID, slow[i].ID)
			}
			fn, err1 := wellFormedCheck(fast[i].XML)
			sn, err2 := wellFormedCheck(slow[i].XML)
			if err1 != nil || err2 != nil || fn != sn {
				t.Fatalf("prefix %q entry %d payload divergence:\nfast %s\nslow %s", prefix, i, fast[i].XML, slow[i].XML)
			}
		}
	}
}

// wellFormedCheck counts elements as a cheap semantic fingerprint.
func wellFormedCheck(data []byte) (int, error) {
	if err := wellFormed(data); err != nil {
		return 0, err
	}
	n := 0
	for i := 0; i+1 < len(data); i++ {
		if data[i] == '<' && data[i+1] != '/' {
			n++
		}
	}
	return n, nil
}

func TestCollectReportsFastRejectsNonCanonical(t *testing.T) {
	for _, doc := range []string{
		"<cache><branch></branch></cache>",       // branch without attrs
		"<cache></branch></cache>",               // unbalanced close
		"<cache><branch name=\"a\" value=\"b\">", // unclosed
		"no tags at all",                         // no root
	} {
		if _, err := collectReportsFast([]byte(doc), branch.ID{}); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}
