package depot

import (
	"bytes"
	"inca/internal/branch"
	"testing"
)

func TestSplitCacheDepth2(t *testing.T) {
	c := NewSplitCacheDepth(2)
	mustUpdate(t, c, "r=1,site=a,vo=tg", reportXMLFor("rep", "A"))
	mustUpdate(t, c, "r=1,site=b,vo=tg", reportXMLFor("rep", "B"))
	mustUpdate(t, c, "vo=tg", reportXMLFor("rep", "I")) // interior, shallow shard
	if c.Shards() != 3 {
		t.Fatalf("shards = %d", c.Shards())
	}
	// Shallow prefix spans shards.
	got, err := c.Reports(branch.MustParse("vo=tg"))
	if err != nil || len(got) != 3 {
		t.Fatalf("reports = %d %v", len(got), err)
	}
	sub, ok, err := c.Query(branch.MustParse("vo=tg"))
	if err != nil || !ok {
		t.Fatalf("query: %v %v", ok, err)
	}
	for _, want := range []string{">A<", ">B<", ">I<"} {
		if !bytes.Contains(sub, []byte(want)) {
			t.Fatalf("merged subtree missing %s:\n%s", want, sub)
		}
	}
	// Merged subtree must still be well-formed.
	if err := wellFormed(sub); err != nil {
		t.Fatalf("merged subtree malformed: %v\n%s", err, sub)
	}
	// Deep query still exact.
	sub, ok, _ = c.Query(branch.MustParse("site=a,vo=tg"))
	if !ok || !bytes.Contains(sub, []byte(">A<")) || bytes.Contains(sub, []byte(">B<")) {
		t.Fatalf("deep query wrong: %s", sub)
	}
}
