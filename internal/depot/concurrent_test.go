package depot

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"inca/internal/branch"
)

// hammerCache drives concurrent writers and readers against a cache and
// then asserts every writer's final payload is stored under its identifier
// exactly once. Run under -race this exercises the per-shard locking of
// ShardedCache and the single RWMutex of StreamCache.
func hammerCache(t *testing.T, c Cache) {
	t.Helper()
	const (
		writers   = 8
		perWriter = 20
		rounds    = 3
	)
	idFor := func(w, i int) branch.ID {
		return branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=race", i, w))
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < perWriter; i++ {
					payload := reportXMLFor("rep", fmt.Sprintf("w%d-r%d-i%d", w, r, i))
					if _, err := c.Update(idFor(w, i), payload); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
		// Interleave readers exercising Query, Reports, Dump and Size
		// while the writers churn.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := branch.MustParse(fmt.Sprintf("site=s%02d,vo=race", w))
			for r := 0; r < rounds*perWriter; r++ {
				if _, _, err := c.Query(prefix); err != nil {
					errs <- err
					return
				}
				if _, err := c.Reports(prefix); err != nil {
					errs <- err
					return
				}
				_ = c.Dump()
				_ = c.Size()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := c.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
	stored, err := c.Reports(branch.ID{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, s := range stored {
		seen[s.ID.String()]++
	}
	lastRound := fmt.Sprintf("-r%d-", rounds-1)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := idFor(w, i)
			if n := seen[id.String()]; n != 1 {
				t.Fatalf("identifier %s stored %d times, want exactly once", id, n)
			}
		}
	}
	// Every surviving payload is from some complete Update (replacement is
	// atomic): the final round's writes must all be visible.
	for _, s := range stored {
		if !bytes.Contains(s.XML, []byte(lastRound)) {
			t.Fatalf("stale payload under %s: %s", s.ID, s.XML)
		}
	}
	if len(stored) != writers*perWriter {
		t.Fatalf("Reports returned %d entries, want %d", len(stored), writers*perWriter)
	}
}

func TestStreamCacheConcurrent(t *testing.T) {
	hammerCache(t, NewStreamCache())
}

func TestShardedCacheConcurrent(t *testing.T) {
	hammerCache(t, NewShardedCacheDepth(8, 2))
}

func TestShardedCacheConcurrentSingleShard(t *testing.T) {
	// The degenerate 1-shard case funnels every writer through one lock —
	// the contention shape the tentpole removes — and must still be safe.
	hammerCache(t, NewShardedCache(1))
}

func TestIndexedCacheConcurrent(t *testing.T) {
	hammerCache(t, NewIndexedCache())
}

// TestIndexedCacheConcurrentEquivalence pins the lazy-materialization path
// under contention: a single writer applies the same insert sequence to an
// IndexedCache and a shadow StreamCache, asserting byte-identical dumps
// after every generation, while reader goroutines concurrently hammer
// Query, Reports, Dump and Size. Run under -race this catches both data
// races in the double-checked Dump memoization and any reader observing a
// half-applied update.
func TestIndexedCacheConcurrentEquivalence(t *testing.T) {
	idx := NewIndexedCache()
	shadow := NewStreamCache()

	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			exact := branch.MustParse(fmt.Sprintf("probe=p%02d,site=s0,vo=eq", r))
			prefix := branch.MustParse("vo=eq")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := idx.Query(exact); err != nil {
					t.Error(err)
					return
				}
				if _, err := idx.Reports(prefix); err != nil {
					t.Error(err)
					return
				}
				d := idx.Dump()
				// Whatever snapshot a reader gets must be a well-formed
				// cache document, never a torn one.
				if !bytes.HasPrefix(d, []byte("<cache>")) || !bytes.HasSuffix(d, []byte("</cache>")) {
					t.Errorf("torn dump: %.40s...%s", d, d[max(0, len(d)-20):])
					return
				}
				_ = idx.Size()
				_ = idx.Generation()
			}
		}(r)
	}

	const updates = 300
	for i := 0; i < updates; i++ {
		id := branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%d,vo=eq", i%10, i%3))
		payload := reportXMLFor("rep", fmt.Sprintf("u%d", i))
		addedIdx, err := idx.Update(id, payload)
		if err != nil {
			t.Fatal(err)
		}
		addedShadow, err := shadow.Update(id, payload)
		if err != nil {
			t.Fatal(err)
		}
		if addedIdx != addedShadow {
			t.Fatalf("update %d: indexed added=%v, stream added=%v", i, addedIdx, addedShadow)
		}
		if got, want := idx.Dump(), shadow.Dump(); !bytes.Equal(got, want) {
			t.Fatalf("update %d: dumps diverged:\nindexed: %s\nstream:  %s", i, got, want)
		}
		if idx.Generation() != uint64(i+1) {
			t.Fatalf("update %d: generation = %d", i, idx.Generation())
		}
	}
	close(stop)
	wg.Wait()

	if idx.Size() != shadow.Size() || idx.Count() != shadow.Count() {
		t.Fatalf("final state: indexed (size=%d count=%d), stream (size=%d count=%d)",
			idx.Size(), idx.Count(), shadow.Size(), shadow.Count())
	}
}
