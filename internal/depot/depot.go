package depot

import (
	"encoding/xml"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/envelope"
	"inca/internal/metrics"
	"inca/internal/rrd"
)

// Policy is an uploadable archival policy (paper Section 3.2.2): which
// cached data to archive, extracted from where in the report body, at what
// granularity and history length. "This configuration has to be done only
// once and one can assign several pieces of data the same policy at the
// same time."
type Policy struct {
	// Name identifies the policy (and the archive files it creates).
	Name string
	// Prefix selects the branch subtree the policy applies to; a report
	// stored under any matching identifier is archived.
	Prefix branch.ID
	// Path locates the numeric value inside the report body (an Inca path
	// expression, leaf first). When empty, the report's success (1/0) is
	// archived instead — which is how availability series are built.
	Path string
	// Archive is the round-robin storage configuration.
	Archive rrd.ArchivalPolicy
	// ManualOnly policies never match stored reports automatically; they
	// only accept values through ArchiveUpdate (used for derived metrics
	// such as summary percentages).
	ManualOnly bool
}

// Receipt describes the processing of one stored envelope: the paper's
// response-time decomposition into envelope unpacking and cache processing
// (Figure 9's two curves). In async mode Archive covers only the enqueue;
// in sync mode it is the full extraction-and-consolidation time, as before.
type Receipt struct {
	Branch     branch.ID
	ReportSize int
	CacheSize  int
	Unpack     time.Duration
	Insert     time.Duration
	Archive    time.Duration
	Added      bool
}

// Total returns the whole processing time.
func (r Receipt) Total() time.Duration { return r.Unpack + r.Insert + r.Archive }

// Options tune the depot's archive pipeline. The zero value reproduces the
// classic configuration: synchronous archiving with the default shard
// count and the streaming extractor.
type Options struct {
	// ArchiveShards stripes the branch|policy → archive map. Default 16;
	// 1 restores a single global archive lock (ablation baseline).
	ArchiveShards int
	// AsyncArchive takes consolidation off the store path: store returns
	// after the cache insert and an enqueue.
	AsyncArchive bool
	// ArchiveWorkers is the async worker count (default 4).
	ArchiveWorkers int
	// ArchiveQueue is each worker's queue capacity (default 256).
	ArchiveQueue int
	// ArchiveBatch caps how many queued jobs one worker wakeup drains into
	// a single consolidation batch (default 32).
	ArchiveBatch int
	// DropOnFull sheds archive jobs when a queue is full instead of
	// blocking the store (drops are counted; the cache is still updated).
	DropOnFull bool
	// ParseArchive uses the legacy full-DOM report parse for value
	// extraction instead of the streaming extractor (ablation baseline).
	ParseArchive bool
	// Metrics registers the depot's instruments (stage latencies, archive
	// pipeline counters, cache gauges). Nil keeps them private.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.ArchiveShards <= 0 {
		o.ArchiveShards = 16
	}
	if o.ArchiveWorkers <= 0 {
		o.ArchiveWorkers = 4
	}
	if o.ArchiveQueue <= 0 {
		o.ArchiveQueue = 256
	}
	if o.ArchiveBatch <= 0 {
		o.ArchiveBatch = 32
	}
	return o
}

// ChangeKind classifies a depot commit for change-feed publication.
type ChangeKind uint8

const (
	// ChangeReport is a report stored into the cache.
	ChangeReport ChangeKind = iota
	// ChangePolicy is an archival-policy upload.
	ChangePolicy
	// ChangeManual is a manual archive update.
	ChangeManual
)

// Change describes one committed mutation, published to the change feed
// after the commit succeeds. Report carries the report body for
// ChangeReport (valid only for the duration of the publisher call — the
// wire layer reuses envelope buffers) and the policy name for
// ChangePolicy/ChangeManual.
type Change struct {
	Branch branch.ID
	Kind   ChangeKind
	Report []byte
}

// Depot is Inca's storage facility: cache plus archive.
type Depot struct {
	cache Cache
	opts  Options

	// publisher, when set, observes every committed mutation (the change
	// feed). Installed after WAL replay so recovery does not re-publish.
	publisher atomic.Pointer[func(Change)]

	// policies is an immutable snapshot swapped on AddPolicy; the store
	// path matches against it without locking. polMu serializes writers.
	polMu    sync.Mutex
	policies atomic.Pointer[policySet]

	// archives is the storage backend: resident shards (memoryStore) or
	// paged files behind a handle LRU (diskStore).
	archives archiveStore
	pipeline *archivePipeline // nil in sync mode

	// Disk engine only (nil/zero otherwise): the write-ahead log, its
	// directories, and the checkpoint machinery. storeBarrier is held
	// shared by every logged mutation and exclusively around WAL rotation,
	// so no mutation straddles a checkpoint's segment boundary.
	wal          *wal
	dataDir      string
	walDir       string
	ckptMu       sync.Mutex
	storeBarrier sync.RWMutex

	// archiveGen is a cache validator (advances per applied sample), not a
	// metric — it stays an atomic so comparisons are exact.
	archiveGen atomic.Uint64

	received *metrics.Counter
	bytes    *metrics.Counter
	enqueued *metrics.Counter
	dropped  *metrics.Counter
	blocked  *metrics.Counter
	applied  *metrics.Counter
	matched  *metrics.Counter

	unpackH  *metrics.Histogram // envelope decode
	insertH  *metrics.Histogram // cache update
	archiveH *metrics.Histogram // archive phase as seen by store (enqueue in async mode)
	lagH     *metrics.Histogram // async enqueue -> consolidation lag
}

// New creates a depot over the given cache implementation (use
// NewStreamCache for the deployed design) with default options.
func New(cache Cache) *Depot {
	return NewWithOptions(cache, Options{})
}

// NewWithOptions creates a depot with explicit archive-pipeline options.
func NewWithOptions(cache Cache, opts Options) *Depot {
	opts = opts.withDefaults()
	return newDepot(cache, opts, newMemoryStore(opts.ArchiveShards))
}

// newDepot wires a depot over an explicit archive store (OpenDisk passes
// the paged-file backend). opts must already have defaults applied.
func newDepot(cache Cache, opts Options, store archiveStore) *Depot {
	opts = opts.withDefaults()
	d := &Depot{
		cache:    cache,
		opts:     opts,
		archives: store,
	}
	reg := opts.Metrics
	d.received = reg.Counter("inca_depot_received_total", "Reports stored into the depot.")
	d.bytes = reg.Counter("inca_depot_bytes_total", "Report payload bytes stored.")
	d.enqueued = reg.Counter("inca_depot_archive_enqueued_total", "Archive jobs accepted into the async queue.")
	d.dropped = reg.Counter("inca_depot_archive_dropped_total", "Archive jobs shed because a queue was full (drop mode).")
	d.blocked = reg.Counter("inca_depot_archive_blocked_total", "Archive enqueues that had to wait for queue space.")
	d.applied = reg.Counter("inca_depot_archive_applied_total", "Samples consolidated into archives.")
	d.matched = reg.Counter("inca_depot_archive_matched_total", "Stores that matched at least one archival policy.")
	d.unpackH = reg.Histogram("inca_depot_unpack_seconds", "Envelope decode latency.", nil)
	d.insertH = reg.Histogram("inca_depot_insert_seconds", "Cache insert latency.", nil)
	d.archiveH = reg.Histogram("inca_depot_archive_seconds", "Archive phase latency on the store path (enqueue only in async mode).", nil)
	d.lagH = reg.Histogram("inca_depot_archive_lag_seconds", "Async archive lag from enqueue to consolidation.", nil)
	reg.GaugeFunc("inca_depot_cache_bytes", "Bytes held in the report cache.", func() float64 {
		return float64(d.cache.Size())
	})
	reg.GaugeFunc("inca_depot_cache_entries", "Documents held in the report cache.", func() float64 {
		return float64(d.cache.Count())
	})
	reg.GaugeFunc("inca_depot_archives", "Round-robin archives materialized.", func() float64 {
		return float64(d.archives.count())
	})
	d.policies.Store(compilePolicySet(nil))
	if opts.AsyncArchive {
		d.pipeline = newArchivePipeline(opts.ArchiveWorkers, opts.ArchiveQueue, opts.ArchiveBatch, opts.DropOnFull)
		reg.GaugeFunc("inca_depot_archive_pending", "Archive jobs enqueued but not yet consolidated.", func() float64 {
			return float64(d.pipeline.pendingCount())
		})
		d.pipeline.start(d)
	}
	return d
}

// Cache exposes the underlying cache for queries.
func (d *Depot) Cache() Cache { return d.cache }

// SetPublisher installs the change-feed publication hook. The function is
// called synchronously after each successful commit (store, policy upload,
// manual archive update), so it must be fast — the feed hub only stamps a
// cursor and offers to in-memory queues. WAL replay runs inside OpenDisk,
// before any caller can install a publisher, so recovery never
// re-publishes. Pass nil to detach.
func (d *Depot) SetPublisher(fn func(Change)) {
	if fn == nil {
		d.publisher.Store(nil)
		return
	}
	d.publisher.Store(&fn)
}

func (d *Depot) publish(c Change) {
	if fn := d.publisher.Load(); fn != nil {
		(*fn)(c)
	}
}

// AddPolicy uploads an archival policy. Policies apply to reports stored
// after the upload.
func (d *Depot) AddPolicy(p Policy) error {
	if p.Name == "" {
		return fmt.Errorf("depot: policy with empty name")
	}
	if p.Archive.Step <= 0 || p.Archive.History <= 0 {
		return fmt.Errorf("depot: policy %s has invalid archive configuration", p.Name)
	}
	if d.wal != nil {
		d.storeBarrier.RLock()
		defer d.storeBarrier.RUnlock()
		frame, err := xml.Marshal(marshalPolicyEntry(p))
		if err != nil {
			return err
		}
		if err := d.wal.append(walFramePolicy, frame); err != nil {
			return err
		}
	}
	return d.addPolicyApply(p)
}

// addPolicyApply installs a policy (already logged, when logging at all).
func (d *Depot) addPolicyApply(p Policy) error {
	d.polMu.Lock()
	defer d.polMu.Unlock()
	cur := d.policies.Load()
	for _, existing := range cur.all {
		if existing.Name == p.Name {
			return fmt.Errorf("depot: duplicate policy %s", p.Name)
		}
	}
	next := make([]Policy, len(cur.all), len(cur.all)+1)
	copy(next, cur.all)
	next = append(next, p)
	d.policies.Store(compilePolicySet(next))
	d.publish(Change{Branch: p.Prefix, Kind: ChangePolicy, Report: []byte(p.Name)})
	return nil
}

// Policies returns the uploaded policies.
func (d *Depot) Policies() []Policy {
	return append([]Policy(nil), d.policies.Load().all...)
}

// StoreEnvelope ingests one serialized envelope: unpack, cache insert,
// archive. The receipt carries the per-phase timings the evaluation uses.
func (d *Depot) StoreEnvelope(data []byte) (Receipt, error) {
	t0 := time.Now()
	env, err := envelope.Decode(data)
	if err != nil {
		return Receipt{}, err
	}
	t1 := time.Now()
	rec, err := d.store(env.Branch, env.Report)
	if err != nil {
		return Receipt{}, err
	}
	rec.Unpack = t1.Sub(t0)
	d.unpackH.Observe(rec.Unpack.Seconds())
	return rec, nil
}

// Store ingests an already-unwrapped report (used by in-process
// deployments and tests; the unpack phase is zero).
func (d *Depot) Store(id branch.ID, reportXML []byte) (Receipt, error) {
	return d.store(id, reportXML)
}

func (d *Depot) store(id branch.ID, reportXML []byte) (Receipt, error) {
	if d.wal != nil {
		// Log first, then apply: a crash after the append replays the
		// report; a crash before it never acknowledged the store. The
		// shared barrier keeps the append and its application on the same
		// side of any concurrent checkpoint rotation.
		d.storeBarrier.RLock()
		defer d.storeBarrier.RUnlock()
		if err := d.wal.append(walFrameReport, encodeReportFrame(id, reportXML)); err != nil {
			return Receipt{}, err
		}
	}
	return d.storeApply(id, reportXML)
}

// storeApply is the store path past the write-ahead log (the WAL replay
// entry point).
func (d *Depot) storeApply(id branch.ID, reportXML []byte) (Receipt, error) {
	t1 := time.Now()
	// Added comes straight from the cache update: deriving it from
	// Count() before/after misreports under concurrent stores (two adds
	// racing would both see the count rise by two).
	added, err := d.cache.Update(id, reportXML)
	if err != nil {
		return Receipt{}, err
	}
	t2 := time.Now()
	if err := d.archive(id, reportXML); err != nil {
		return Receipt{}, err
	}
	t3 := time.Now()
	d.received.Inc()
	d.bytes.Add(uint64(len(reportXML)))
	d.insertH.Observe(t2.Sub(t1).Seconds())
	d.archiveH.Observe(t3.Sub(t2).Seconds())
	d.publish(Change{Branch: id, Kind: ChangeReport, Report: reportXML})
	return Receipt{
		Branch:     id,
		ReportSize: len(reportXML),
		CacheSize:  d.cache.Size(),
		Insert:     t2.Sub(t1),
		Archive:    t3.Sub(t2),
		Added:      added,
	}, nil
}

// archive routes the stored report through the matching policies: inline in
// sync mode, via the worker pool in async mode.
func (d *Depot) archive(id branch.ID, reportXML []byte) error {
	matching := d.policies.Load().match(id)
	if len(matching) == 0 {
		return nil
	}
	d.matched.Inc()
	job := archiveJob{id: id, key: id.String(), policies: matching, report: reportXML}
	if d.pipeline != nil {
		// The wire layer reuses envelope buffers after StoreEnvelope
		// returns, so an async job owns a copy of the report bytes.
		async := job
		async.report = append([]byte(nil), reportXML...)
		async.enqueuedAt = time.Now()
		if d.pipeline.enqueue(d, async) {
			return nil
		}
		// The pipeline refused the job: Close is tearing it down, and the
		// depot has promised stores keep archiving — synchronously now.
	}
	d.applyJobSync(job)
	return nil
}

// applyJobSync consolidates one report inline (sync mode).
func (d *Depot) applyJobSync(job archiveJob) {
	values, gmt, ok := d.extract(job.policies, job.report)
	if !ok {
		// Non-report XML can be cached (unknown schemas are welcome) but
		// cannot be archived; skip silently.
		return
	}
	for i, cp := range job.policies {
		if !values[i].ok {
			continue
		}
		db, release, err := d.ensureDB(job.key+"|"+cp.Name, cp, gmt)
		if err != nil {
			continue
		}
		if err := db.Update(gmt, values[i].value); err == nil {
			// Out-of-order or duplicate timestamps are dropped, as RRDTool
			// drops them; only applied samples advance the generation.
			d.applied.Inc()
			d.archiveGen.Add(1)
		}
		release()
	}
}

// Drain blocks until every enqueued archive job has been consolidated.
// Snapshots and read-your-writes tests call it; in sync mode it is a no-op.
func (d *Depot) Drain() {
	if d.pipeline != nil {
		d.pipeline.drain()
	}
}

// Close drains the async pipeline and stops its workers; a disk-backed
// depot also closes its archive handles (flushing them to stable storage)
// and the write-ahead log. The memory depot remains usable after Close:
// concurrent and later stores archive synchronously (the closed pipeline
// refuses their enqueues), so no store can race the teardown onto a
// closed queue.
func (d *Depot) Close() {
	if d.pipeline != nil {
		d.pipeline.close()
	}
	if d.wal != nil {
		d.archives.close()
		d.wal.close()
	}
}

// ArchiveUpdate records a value directly into a policy archive, bypassing
// report parsing. Consumers use it to archive derived metrics such as the
// summary percentages behind Figure 5.
func (d *Depot) ArchiveUpdate(id branch.ID, policyName string, at time.Time, value float64) error {
	if d.wal != nil {
		d.storeBarrier.RLock()
		defer d.storeBarrier.RUnlock()
		if err := d.wal.append(walFrameManual, encodeManualFrame(id, policyName, at, value)); err != nil {
			return err
		}
	}
	return d.archiveUpdateApply(id, policyName, at, value)
}

// archiveUpdateApply is ArchiveUpdate past the write-ahead log (the WAL
// replay entry point).
func (d *Depot) archiveUpdateApply(id branch.ID, policyName string, at time.Time, value float64) error {
	cp, ok := d.policies.Load().byName[policyName]
	if !ok {
		return fmt.Errorf("depot: no policy %s", policyName)
	}
	db, release, err := d.ensureDB(id.String()+"|"+policyName, cp, at)
	if err != nil {
		return err
	}
	defer release()
	if err := db.Update(at, value); err != nil {
		return err
	}
	d.archiveGen.Add(1)
	d.publish(Change{Branch: id, Kind: ChangeManual, Report: []byte(policyName)})
	return nil
}

// FetchArchive retrieves an archived series for the exact branch identifier
// and policy.
func (d *Depot) FetchArchive(id branch.ID, policyName string, cf rrd.CF, start, end time.Time) (*rrd.Series, error) {
	db, release, ok := d.lookupDB(id.String() + "|" + policyName)
	if !ok {
		return nil, fmt.Errorf("depot: no archive for %s under policy %s", id, policyName)
	}
	defer release()
	return db.Fetch(cf, start, end)
}

// ArchivedSeries lists the (branch, policy) pairs with archives.
func (d *Depot) ArchivedSeries() []string {
	return d.archives.keys()
}

// CacheGeneration returns the cache's generation counter and whether the
// cache is versioned at all. It is the validator the read layers build
// ETags from — and what the federation query tier composes across shards:
// each shard exports its generation here, and the scatter-gather tier
// concatenates them into one end-to-end validator.
func (d *Depot) CacheGeneration() (uint64, bool) {
	v, ok := d.cache.(Versioned)
	if !ok {
		return 0, false
	}
	return v.Generation(), true
}

// ArchiveGeneration returns a counter that advances on every applied
// archive sample, depot-wide (surfaced in /debug/vars).
func (d *Depot) ArchiveGeneration() uint64 { return d.archiveGen.Load() }

// ArchiveSeriesGeneration returns a validator for one archived series —
// the count of updates applied to its database — and whether the archive
// exists. Unlike ArchiveGeneration it is scoped to the (branch, policy)
// pair, so a /archive client's ETag stays valid while other series ingest.
func (d *Depot) ArchiveSeriesGeneration(id branch.ID, policyName string) (uint64, bool) {
	db, release, ok := d.lookupDB(id.String() + "|" + policyName)
	if !ok {
		return 0, false
	}
	defer release()
	return db.Updates(), true
}

// Stats summarizes depot activity.
type Stats struct {
	Received   uint64
	Bytes      uint64
	CacheSize  int
	CacheCount int
	Archives   int
	Archive    ArchiveStats
}

// Stats returns current counters.
func (d *Depot) Stats() Stats {
	archives := d.archives.count()
	return Stats{
		Received:   d.received.Value(),
		Bytes:      d.bytes.Value(),
		CacheSize:  d.cache.Size(),
		CacheCount: d.cache.Count(),
		Archives:   archives,
		Archive: ArchiveStats{
			Enqueued: d.enqueued.Value(),
			Dropped:  d.dropped.Value(),
			Blocked:  d.blocked.Value(),
			Applied:  d.applied.Value(),
			Matched:  d.matched.Value(),
		},
	}
}

// LatestValue returns the most recent known value from an archive, or NaN.
// The archive tracks it as samples consolidate (rrd.DB.LastKnown), so the
// availability page's per-resource calls are O(1), not a 24-hour fetch.
// As with the fetch-and-scan this replaced, a value consolidated more than
// 24 hours before the archive's last update is treated as unknown: a
// resource that stopped reporting values has no current one.
func (d *Depot) LatestValue(id branch.ID, policyName string, cf rrd.CF) float64 {
	db, release, ok := d.lookupDB(id.String() + "|" + policyName)
	if !ok {
		return math.NaN()
	}
	defer release()
	v, at := db.LastKnown(cf)
	if at.Before(db.Last().Add(-24 * time.Hour)) {
		return math.NaN()
	}
	return v
}
