package depot

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/envelope"
	"inca/internal/report"
	"inca/internal/rrd"
)

// Policy is an uploadable archival policy (paper Section 3.2.2): which
// cached data to archive, extracted from where in the report body, at what
// granularity and history length. "This configuration has to be done only
// once and one can assign several pieces of data the same policy at the
// same time."
type Policy struct {
	// Name identifies the policy (and the archive files it creates).
	Name string
	// Prefix selects the branch subtree the policy applies to; a report
	// stored under any matching identifier is archived.
	Prefix branch.ID
	// Path locates the numeric value inside the report body (an Inca path
	// expression, leaf first). When empty, the report's success (1/0) is
	// archived instead — which is how availability series are built.
	Path string
	// Archive is the round-robin storage configuration.
	Archive rrd.ArchivalPolicy
	// ManualOnly policies never match stored reports automatically; they
	// only accept values through ArchiveUpdate (used for derived metrics
	// such as summary percentages).
	ManualOnly bool
}

// Receipt describes the processing of one stored envelope: the paper's
// response-time decomposition into envelope unpacking and cache processing
// (Figure 9's two curves).
type Receipt struct {
	Branch     branch.ID
	ReportSize int
	CacheSize  int
	Unpack     time.Duration
	Insert     time.Duration
	Archive    time.Duration
	Added      bool
}

// Total returns the whole processing time.
func (r Receipt) Total() time.Duration { return r.Unpack + r.Insert + r.Archive }

// Depot is Inca's storage facility: cache plus archive.
type Depot struct {
	cache Cache

	mu       sync.Mutex
	policies []Policy
	archives map[string]*rrd.DB // key: branch id + "|" + policy name
	received uint64
	bytes    uint64
}

// New creates a depot over the given cache implementation (use
// NewStreamCache for the deployed design).
func New(cache Cache) *Depot {
	return &Depot{cache: cache, archives: make(map[string]*rrd.DB)}
}

// Cache exposes the underlying cache for queries.
func (d *Depot) Cache() Cache { return d.cache }

// AddPolicy uploads an archival policy. Policies apply to reports stored
// after the upload.
func (d *Depot) AddPolicy(p Policy) error {
	if p.Name == "" {
		return fmt.Errorf("depot: policy with empty name")
	}
	if p.Archive.Step <= 0 || p.Archive.History <= 0 {
		return fmt.Errorf("depot: policy %s has invalid archive configuration", p.Name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, existing := range d.policies {
		if existing.Name == p.Name {
			return fmt.Errorf("depot: duplicate policy %s", p.Name)
		}
	}
	d.policies = append(d.policies, p)
	return nil
}

// Policies returns the uploaded policies.
func (d *Depot) Policies() []Policy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Policy(nil), d.policies...)
}

// StoreEnvelope ingests one serialized envelope: unpack, cache insert,
// archive. The receipt carries the per-phase timings the evaluation uses.
func (d *Depot) StoreEnvelope(data []byte) (Receipt, error) {
	t0 := time.Now()
	env, err := envelope.Decode(data)
	if err != nil {
		return Receipt{}, err
	}
	t1 := time.Now()
	rec, err := d.store(env.Branch, env.Report)
	if err != nil {
		return Receipt{}, err
	}
	rec.Unpack = t1.Sub(t0)
	return rec, nil
}

// Store ingests an already-unwrapped report (used by in-process
// deployments and tests; the unpack phase is zero).
func (d *Depot) Store(id branch.ID, reportXML []byte) (Receipt, error) {
	return d.store(id, reportXML)
}

func (d *Depot) store(id branch.ID, reportXML []byte) (Receipt, error) {
	t1 := time.Now()
	// Added comes straight from the cache update: deriving it from
	// Count() before/after misreports under concurrent stores (two adds
	// racing would both see the count rise by two).
	added, err := d.cache.Update(id, reportXML)
	if err != nil {
		return Receipt{}, err
	}
	t2 := time.Now()
	if err := d.archive(id, reportXML); err != nil {
		return Receipt{}, err
	}
	t3 := time.Now()
	d.mu.Lock()
	d.received++
	d.bytes += uint64(len(reportXML))
	d.mu.Unlock()
	return Receipt{
		Branch:     id,
		ReportSize: len(reportXML),
		CacheSize:  d.cache.Size(),
		Insert:     t2.Sub(t1),
		Archive:    t3.Sub(t2),
		Added:      added,
	}, nil
}

// archive applies matching policies to the stored report.
func (d *Depot) archive(id branch.ID, reportXML []byte) error {
	d.mu.Lock()
	policies := d.policies
	d.mu.Unlock()
	var matching []Policy
	for _, p := range policies {
		if !p.ManualOnly && id.HasSuffix(p.Prefix) {
			matching = append(matching, p)
		}
	}
	if len(matching) == 0 {
		return nil
	}
	rep, err := report.Parse(reportXML)
	if err != nil {
		// Non-report XML can be cached (unknown schemas are welcome) but
		// cannot be archived; skip silently.
		return nil
	}
	for _, p := range matching {
		var value float64
		if p.Path == "" {
			if rep.Succeeded() {
				value = 1
			}
		} else {
			if rep.Body == nil {
				continue
			}
			v, ok := rep.Body.Float(p.Path)
			if !ok {
				continue
			}
			value = v
		}
		key := id.String() + "|" + p.Name
		d.mu.Lock()
		db, ok := d.archives[key]
		if !ok {
			start := rep.Header.GMT.Add(-p.Archive.Step)
			db, err = rrd.NewFromPolicy(start, p.Name, p.Archive)
			if err != nil {
				d.mu.Unlock()
				return fmt.Errorf("depot: policy %s: %w", p.Name, err)
			}
			d.archives[key] = db
		}
		d.mu.Unlock()
		if err := db.Update(rep.Header.GMT, value); err != nil {
			// Out-of-order or duplicate timestamps are dropped, as RRDTool
			// drops them.
			continue
		}
	}
	return nil
}

// ArchiveUpdate records a value directly into a policy archive, bypassing
// report parsing. Consumers use it to archive derived metrics such as the
// summary percentages behind Figure 5.
func (d *Depot) ArchiveUpdate(id branch.ID, policyName string, at time.Time, value float64) error {
	d.mu.Lock()
	var pol *Policy
	for i := range d.policies {
		if d.policies[i].Name == policyName {
			pol = &d.policies[i]
			break
		}
	}
	if pol == nil {
		d.mu.Unlock()
		return fmt.Errorf("depot: no policy %s", policyName)
	}
	key := id.String() + "|" + policyName
	db, ok := d.archives[key]
	if !ok {
		var err error
		db, err = rrd.NewFromPolicy(at.Add(-pol.Archive.Step), policyName, pol.Archive)
		if err != nil {
			d.mu.Unlock()
			return err
		}
		d.archives[key] = db
	}
	d.mu.Unlock()
	return db.Update(at, value)
}

// FetchArchive retrieves an archived series for the exact branch identifier
// and policy.
func (d *Depot) FetchArchive(id branch.ID, policyName string, cf rrd.CF, start, end time.Time) (*rrd.Series, error) {
	d.mu.Lock()
	db, ok := d.archives[id.String()+"|"+policyName]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("depot: no archive for %s under policy %s", id, policyName)
	}
	return db.Fetch(cf, start, end)
}

// ArchivedSeries lists the (branch, policy) pairs with archives.
func (d *Depot) ArchivedSeries() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, len(d.archives))
	for k := range d.archives {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats summarizes depot activity.
type Stats struct {
	Received   uint64
	Bytes      uint64
	CacheSize  int
	CacheCount int
	Archives   int
}

// Stats returns current counters.
func (d *Depot) Stats() Stats {
	d.mu.Lock()
	archives := len(d.archives)
	received := d.received
	bytes := d.bytes
	d.mu.Unlock()
	return Stats{
		Received:   received,
		Bytes:      bytes,
		CacheSize:  d.cache.Size(),
		CacheCount: d.cache.Count(),
		Archives:   archives,
	}
}

// LatestValue fetches the most recent known value from an archive, or NaN.
func (d *Depot) LatestValue(id branch.ID, policyName string, cf rrd.CF) float64 {
	d.mu.Lock()
	db, ok := d.archives[id.String()+"|"+policyName]
	d.mu.Unlock()
	if !ok {
		return math.NaN()
	}
	last := db.Last()
	s, err := db.Fetch(cf, last.Add(-24*time.Hour), last)
	if err != nil || len(s.Points) == 0 {
		return math.NaN()
	}
	for i := len(s.Points) - 1; i >= 0; i-- {
		if !math.IsNaN(s.Points[i].Values[0]) {
			return s.Points[i].Values[0]
		}
	}
	return math.NaN()
}
