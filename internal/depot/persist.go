package depot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"time"

	"inca/internal/branch"
	"inca/internal/rrd"
)

// Depot snapshots: the cache document, the uploaded archival policies, and
// every round-robin archive serialize to one image, so a depot restart
// resumes with full history — the durable-depot side of the paper's
// "improved data archival methods" future work.
//
// Image layout: magic, then length-framed sections
//
//	CACH  cache document (canonical XML)
//	POLS  policies (XML)
//	ARCH  one section per archive: key string + rrd image

const snapshotMagic = "INCADEPOT1"

type xmlPolicies struct {
	XMLName  xml.Name         `xml:"policies"`
	Policies []xmlPolicyEntry `xml:"policy"`
}

type xmlPolicyEntry struct {
	Name        string `xml:"name,attr"`
	Prefix      string `xml:"prefix,attr"`
	Path        string `xml:"path,attr"`
	Step        string `xml:"step,attr"`
	Granularity int    `xml:"granularity,attr"`
	History     string `xml:"history,attr"`
	Heartbeat   string `xml:"heartbeat,attr,omitempty"`
	ManualOnly  bool   `xml:"manualOnly,attr"`
}

func writeSection(w *bufio.Writer, tag string, data []byte) error {
	if len(tag) != 4 {
		return fmt.Errorf("depot: section tag %q must be 4 bytes", tag)
	}
	if _, err := w.WriteString(tag); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readSection(r *bufio.Reader) (string, []byte, error) {
	tag := make([]byte, 4)
	if _, err := io.ReadFull(r, tag); err != nil {
		return "", nil, err
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	n := binary.BigEndian.Uint64(lenBuf[:])
	if n > 1<<32 {
		return "", nil, fmt.Errorf("depot: implausible section size %d", n)
	}
	// The length is untrusted input: grow the buffer chunk by chunk so a
	// corrupt header fails on the short read instead of allocating
	// gigabytes up front.
	const chunk = 1 << 20
	data := make([]byte, 0, min64(n, chunk))
	for uint64(len(data)) < n {
		step := n - uint64(len(data))
		if step > chunk {
			step = chunk
		}
		start := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(r, data[start:]); err != nil {
			return "", nil, fmt.Errorf("depot: section %s truncated: %w", tag, err)
		}
	}
	return string(tag), data, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteSnapshot serializes the depot state. In async mode the archive
// queue is drained first, so the image reflects every store acknowledged
// before the call.
func (d *Depot) WriteSnapshot(w io.Writer) error {
	d.Drain()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := writeSection(bw, "CACH", d.cache.Dump()); err != nil {
		return err
	}
	polsXML, err := marshalPolicies(d.policies.Load().all)
	if err != nil {
		return err
	}
	if err := writeSection(bw, "POLS", polsXML); err != nil {
		return err
	}
	// The store iterates in key order pinning one archive at a time, and
	// both backends serialize the same image for the same update history —
	// a disk depot's snapshot is byte-identical to its memory twin's.
	err = d.archives.each(func(key string, db archiveDB) error {
		var buf bytes.Buffer
		buf.WriteString(key)
		buf.WriteByte(0)
		if _, err := db.WriteTo(&buf); err != nil {
			return err
		}
		return writeSection(bw, "ARCH", buf.Bytes())
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func heartbeatString(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return d.String()
}

// ReadSnapshot reconstructs a depot (over a StreamCache, default options)
// from an image written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Depot, error) {
	return ReadSnapshotOptions(r, Options{})
}

// ReadSnapshotOptions is ReadSnapshot with explicit archive-pipeline
// options for the reconstructed depot.
func ReadSnapshotOptions(r io.Reader, opts Options) (*Depot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("depot: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("depot: bad snapshot magic %q", magic)
	}
	d := NewWithOptions(NewStreamCache(), opts)
	for {
		tag, data, err := readSection(br)
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("depot: snapshot section: %w", err)
		}
		switch tag {
		case "CACH":
			cache, err := LoadDump(data)
			if err != nil {
				return nil, err
			}
			d.cache = cache
		case "POLS":
			var pols xmlPolicies
			if err := xml.Unmarshal(data, &pols); err != nil {
				return nil, fmt.Errorf("depot: snapshot policies: %w", err)
			}
			for _, xp := range pols.Policies {
				p, err := snapshotPolicy(xp)
				if err != nil {
					return nil, err
				}
				if err := d.AddPolicy(p); err != nil {
					return nil, err
				}
			}
		case "ARCH":
			sep := bytes.IndexByte(data, 0)
			if sep < 0 {
				return nil, fmt.Errorf("depot: snapshot archive without key")
			}
			key := string(data[:sep])
			db, err := rrd.ReadDB(bytes.NewReader(data[sep+1:]))
			if err != nil {
				return nil, fmt.Errorf("depot: snapshot archive %s: %w", key, err)
			}
			d.archives.(*memoryStore).insert(key, db)
		default:
			// Unknown sections are skipped for forward compatibility.
		}
	}
}

func snapshotPolicy(xp xmlPolicyEntry) (Policy, error) {
	prefix, err := branch.Parse(xp.Prefix)
	if err != nil {
		return Policy{}, fmt.Errorf("depot: snapshot policy %s: %w", xp.Name, err)
	}
	step, err := time.ParseDuration(xp.Step)
	if err != nil {
		return Policy{}, fmt.Errorf("depot: snapshot policy %s step: %w", xp.Name, err)
	}
	history, err := time.ParseDuration(xp.History)
	if err != nil {
		return Policy{}, fmt.Errorf("depot: snapshot policy %s history: %w", xp.Name, err)
	}
	var hb time.Duration
	if xp.Heartbeat != "" {
		if hb, err = time.ParseDuration(xp.Heartbeat); err != nil {
			return Policy{}, fmt.Errorf("depot: snapshot policy %s heartbeat: %w", xp.Name, err)
		}
	}
	return Policy{
		Name: xp.Name, Prefix: prefix, Path: xp.Path, ManualOnly: xp.ManualOnly,
		Archive: rrd.ArchivalPolicy{
			Step: step, Granularity: xp.Granularity, History: history, Heartbeat: hb,
		},
	}, nil
}
