package depot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"

	"inca/internal/branch"
	"inca/internal/rrd"
)

// Depot snapshots: the cache document, the uploaded archival policies, and
// every round-robin archive serialize to one image, so a depot restart
// resumes with full history — the durable-depot side of the paper's
// "improved data archival methods" future work.
//
// Image layout: magic, then length-framed sections
//
//	CACH  cache document (canonical XML)
//	POLS  policies (XML)
//	ARCH  one section per archive: key string + rrd image

const snapshotMagic = "INCADEPOT1"

type xmlPolicies struct {
	XMLName  xml.Name         `xml:"policies"`
	Policies []xmlPolicyEntry `xml:"policy"`
}

type xmlPolicyEntry struct {
	Name        string `xml:"name,attr"`
	Prefix      string `xml:"prefix,attr"`
	Path        string `xml:"path,attr"`
	Step        string `xml:"step,attr"`
	Granularity int    `xml:"granularity,attr"`
	History     string `xml:"history,attr"`
	Heartbeat   string `xml:"heartbeat,attr,omitempty"`
	ManualOnly  bool   `xml:"manualOnly,attr"`
}

func writeSection(w *bufio.Writer, tag string, data []byte) error {
	if len(tag) != 4 {
		return fmt.Errorf("depot: section tag %q must be 4 bytes", tag)
	}
	if _, err := w.WriteString(tag); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readSection(r *bufio.Reader) (string, []byte, error) {
	tag := make([]byte, 4)
	if _, err := io.ReadFull(r, tag); err != nil {
		return "", nil, err
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	n := binary.BigEndian.Uint64(lenBuf[:])
	if n > 1<<32 {
		return "", nil, fmt.Errorf("depot: implausible section size %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return "", nil, err
	}
	return string(tag), data, nil
}

// WriteSnapshot serializes the depot state. In async mode the archive
// queue is drained first, so the image reflects every store acknowledged
// before the call.
func (d *Depot) WriteSnapshot(w io.Writer) error {
	d.Drain()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := writeSection(bw, "CACH", d.cache.Dump()); err != nil {
		return err
	}
	pols := xmlPolicies{}
	for _, p := range d.policies.Load().all {
		pols.Policies = append(pols.Policies, xmlPolicyEntry{
			Name: p.Name, Prefix: p.Prefix.String(), Path: p.Path,
			Step: p.Archive.Step.String(), Granularity: p.Archive.Granularity,
			History: p.Archive.History.String(), ManualOnly: p.ManualOnly,
			Heartbeat: heartbeatString(p.Archive.Heartbeat),
		})
	}
	type archiveEntry struct {
		key string
		db  *rrd.DB
	}
	var archives []archiveEntry
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for k, db := range sh.dbs {
			archives = append(archives, archiveEntry{k, db})
		}
		sh.mu.Unlock()
	}
	sort.Slice(archives, func(i, j int) bool { return archives[i].key < archives[j].key })

	polsXML, err := xml.Marshal(pols)
	if err != nil {
		return err
	}
	if err := writeSection(bw, "POLS", polsXML); err != nil {
		return err
	}
	for _, a := range archives {
		var buf bytes.Buffer
		buf.WriteString(a.key)
		buf.WriteByte(0)
		if _, err := a.db.WriteTo(&buf); err != nil {
			return err
		}
		if err := writeSection(bw, "ARCH", buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func heartbeatString(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return d.String()
}

// ReadSnapshot reconstructs a depot (over a StreamCache, default options)
// from an image written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Depot, error) {
	return ReadSnapshotOptions(r, Options{})
}

// ReadSnapshotOptions is ReadSnapshot with explicit archive-pipeline
// options for the reconstructed depot.
func ReadSnapshotOptions(r io.Reader, opts Options) (*Depot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("depot: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("depot: bad snapshot magic %q", magic)
	}
	d := NewWithOptions(NewStreamCache(), opts)
	for {
		tag, data, err := readSection(br)
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("depot: snapshot section: %w", err)
		}
		switch tag {
		case "CACH":
			cache, err := LoadDump(data)
			if err != nil {
				return nil, err
			}
			d.cache = cache
		case "POLS":
			var pols xmlPolicies
			if err := xml.Unmarshal(data, &pols); err != nil {
				return nil, fmt.Errorf("depot: snapshot policies: %w", err)
			}
			for _, xp := range pols.Policies {
				p, err := snapshotPolicy(xp)
				if err != nil {
					return nil, err
				}
				if err := d.AddPolicy(p); err != nil {
					return nil, err
				}
			}
		case "ARCH":
			sep := bytes.IndexByte(data, 0)
			if sep < 0 {
				return nil, fmt.Errorf("depot: snapshot archive without key")
			}
			key := string(data[:sep])
			db, err := rrd.ReadDB(bytes.NewReader(data[sep+1:]))
			if err != nil {
				return nil, fmt.Errorf("depot: snapshot archive %s: %w", key, err)
			}
			sh := d.shardFor(key)
			sh.mu.Lock()
			sh.dbs[key] = db
			sh.mu.Unlock()
		default:
			// Unknown sections are skipped for forward compatibility.
		}
	}
}

func snapshotPolicy(xp xmlPolicyEntry) (Policy, error) {
	prefix, err := branch.Parse(xp.Prefix)
	if err != nil {
		return Policy{}, fmt.Errorf("depot: snapshot policy %s: %w", xp.Name, err)
	}
	step, err := time.ParseDuration(xp.Step)
	if err != nil {
		return Policy{}, fmt.Errorf("depot: snapshot policy %s step: %w", xp.Name, err)
	}
	history, err := time.ParseDuration(xp.History)
	if err != nil {
		return Policy{}, fmt.Errorf("depot: snapshot policy %s history: %w", xp.Name, err)
	}
	var hb time.Duration
	if xp.Heartbeat != "" {
		if hb, err = time.ParseDuration(xp.Heartbeat); err != nil {
			return Policy{}, fmt.Errorf("depot: snapshot policy %s heartbeat: %w", xp.Name, err)
		}
	}
	return Policy{
		Name: xp.Name, Prefix: prefix, Path: xp.Path, ManualOnly: xp.ManualOnly,
		Archive: rrd.ArchivalPolicy{
			Step: step, Granularity: xp.Granularity, History: history, Heartbeat: hb,
		},
	}, nil
}
