package depot

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"strconv"

	"inca/internal/branch"
)

// This file implements the byte-level splice path for StreamCache.
//
// The cache document is canonical: every byte of it was produced by this
// package through encoding/xml, which escapes '<' and '>' everywhere
// outside tag delimiters (character data and attribute values alike). That
// guarantee lets updates scan tags directly — the same single-pass
// streaming discipline as the paper's SAX cache, minus a general-purpose
// parser's overhead — and splice the new entry in with one copy.
//
// spliceUpdate (cache.go) is the generic-token reference implementation;
// property tests assert the two agree.

// tagInfo describes one tag found by the scanner.
type tagInfo struct {
	start, end int // byte offsets: old[start:end] covers "<...>"
	name       []byte
	closing    bool
	attrs      []byte // raw bytes after the name, inside the tag
}

// scanTag finds the next tag at or after pos. ok=false at end of input.
func scanTag(data []byte, pos int) (tagInfo, bool, error) {
	lt := bytes.IndexByte(data[pos:], '<')
	if lt < 0 {
		return tagInfo{}, false, nil
	}
	start := pos + lt
	gt := bytes.IndexByte(data[start:], '>')
	if gt < 0 {
		return tagInfo{}, false, fmt.Errorf("depot: unterminated tag at %d", start)
	}
	end := start + gt + 1
	inner := data[start+1 : end-1]
	t := tagInfo{start: start, end: end}
	if len(inner) > 0 && inner[0] == '/' {
		t.closing = true
		t.name = bytes.TrimSpace(inner[1:])
		return t, true, nil
	}
	if sp := bytes.IndexByte(inner, ' '); sp >= 0 {
		t.name = inner[:sp]
		t.attrs = inner[sp+1:]
	} else {
		t.name = inner
	}
	return t, true, nil
}

// skipSubtree returns the offset just past the matching close of the open
// tag t. This is the scan's hot path, so it only looks at tag delimiters
// (every '<' in a canonical document opens a tag; '/' marks a close).
func skipSubtree(data []byte, t tagInfo) (int, error) {
	depth := 1
	pos := t.end
	for depth > 0 {
		lt := bytes.IndexByte(data[pos:], '<')
		if lt < 0 {
			return 0, fmt.Errorf("depot: unbalanced document while skipping <%s>", t.name)
		}
		p := pos + lt
		gt := bytes.IndexByte(data[p:], '>')
		if gt < 0 {
			return 0, fmt.Errorf("depot: unterminated tag at %d", p)
		}
		if p+1 < len(data) && data[p+1] == '/' {
			depth--
		} else {
			depth++
		}
		pos = p + gt + 1
	}
	return pos, nil
}

// attrValue extracts and unescapes the named attribute from raw attr bytes.
func attrValue(attrs []byte, name string) (string, bool) {
	key := []byte(name + `="`)
	i := bytes.Index(attrs, key)
	if i < 0 {
		return "", false
	}
	rest := attrs[i+len(key):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return unescapeXML(rest[:j]), true
}

// unescapeXML resolves the entity references encoding/xml emits.
func unescapeXML(s []byte) string {
	if bytes.IndexByte(s, '&') < 0 {
		return string(s)
	}
	var out []byte
	for i := 0; i < len(s); {
		if s[i] != '&' {
			out = append(out, s[i])
			i++
			continue
		}
		semi := bytes.IndexByte(s[i:], ';')
		if semi < 0 {
			out = append(out, s[i:]...)
			break
		}
		ent := string(s[i+1 : i+semi])
		switch {
		case ent == "lt":
			out = append(out, '<')
		case ent == "gt":
			out = append(out, '>')
		case ent == "amp":
			out = append(out, '&')
		case ent == "quot":
			out = append(out, '"')
		case ent == "apos":
			out = append(out, '\'')
		case len(ent) > 1 && ent[0] == '#':
			var code int64
			var err error
			if ent[1] == 'x' || ent[1] == 'X' {
				code, err = strconv.ParseInt(ent[2:], 16, 32)
			} else {
				code, err = strconv.ParseInt(ent[1:], 10, 32)
			}
			if err != nil {
				out = append(out, s[i:i+semi+1]...)
			} else {
				out = append(out, string(rune(code))...)
			}
		default:
			out = append(out, s[i:i+semi+1]...)
		}
		i += semi + 1
	}
	return string(out)
}

// renderFragment builds the bytes for the remaining path components
// wrapping the report entry (or just the entry when comps is empty).
func renderFragment(comps []branch.Pair, reportXML []byte) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	var err error
	if len(comps) == 0 {
		err = writeEntry(enc, reportXML)
	} else {
		err = writeNewSubtree(enc, comps, reportXML)
	}
	if err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// collectReportsFast walks a canonical document gathering every entry
// under prefix with the byte-level scanner — the read-side counterpart of
// fastSplice. It errors on any structural surprise, and callers fall back
// to the generic token walk (collectReports).
func collectReportsFast(data []byte, prefix branch.ID) ([]Stored, error) {
	var stack []branch.Pair
	var out []Stored
	pos := 0
	sawRoot := false
	for {
		t, ok, err := scanTag(data, pos)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if t.closing {
			if string(t.name) == "branch" {
				if len(stack) == 0 {
					return nil, fmt.Errorf("depot: unbalanced branch close at %d", t.start)
				}
				stack = stack[:len(stack)-1]
			}
			pos = t.end
			continue
		}
		switch string(t.name) {
		case "cache":
			sawRoot = true
			pos = t.end
		case "branch":
			name, ok1 := attrValue(t.attrs, "name")
			value, ok2 := attrValue(t.attrs, "value")
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("depot: branch element without name/value at %d", t.start)
			}
			stack = append(stack, branch.Pair{Name: name, Value: value})
			pos = t.end
		case "entry":
			end, err := skipSubtree(data, t)
			if err != nil {
				return nil, err
			}
			const closeLen = len("</entry>")
			if end-closeLen < t.end {
				return nil, fmt.Errorf("depot: malformed entry at %d", t.start)
			}
			payload := data[t.end : end-closeLen]
			pairs := make([]branch.Pair, len(stack))
			for i, p := range stack {
				pairs[len(stack)-1-i] = p
			}
			id := branch.New(pairs...)
			if id.HasSuffix(prefix) {
				out = append(out, Stored{ID: id, XML: append([]byte(nil), payload...)})
			}
			pos = end
		default:
			// Foreign element preserved in the cache: skip it wholesale.
			if pos, err = skipSubtree(data, t); err != nil {
				return nil, err
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("depot: %d unclosed branch elements", len(stack))
	}
	if !sawRoot {
		return nil, fmt.Errorf("depot: document has no cache root")
	}
	return out, nil
}

// fastSplice performs the spliceUpdate operation on a canonical document
// with a single byte-level pass and one copy.
func fastSplice(old []byte, path []branch.Pair, reportXML []byte) ([]byte, bool, error) {
	if err := wellFormed(reportXML); err != nil {
		return nil, false, err
	}
	matched := 0
	pos := 0
	insertAt := -1   // where the new fragment goes
	replaceEnd := -1 // end of the replaced entry, if replacing
	var fragComps []branch.Pair

	for insertAt < 0 {
		t, ok, err := scanTag(old, pos)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, fmt.Errorf("depot: cache document has no root element")
		}
		if t.closing {
			// Leaving the deepest matched node (or the cache root):
			// everything still unmatched nests here, before the close.
			insertAt = t.start
			fragComps = path[matched:]
			break
		}
		switch string(t.name) {
		case "cache":
			pos = t.end
		case "branch":
			if matched < len(path) {
				name, _ := attrValue(t.attrs, "name")
				value, _ := attrValue(t.attrs, "value")
				comp := path[matched]
				if name == comp.Name && value == comp.Value {
					matched++
					pos = t.end
					continue
				}
				if pairBefore(comp, name, value) {
					insertAt = t.start
					fragComps = path[matched:]
					break
				}
			} else {
				// Target fully matched; its entry slot precedes branch
				// children.
				insertAt = t.start
				fragComps = nil
				break
			}
			// Unrelated sibling: skip it wholesale.
			if pos, err = skipSubtree(old, t); err != nil {
				return nil, false, err
			}
		case "entry":
			if matched == len(path) {
				end, err := skipSubtree(old, t)
				if err != nil {
					return nil, false, err
				}
				insertAt = t.start
				replaceEnd = end
				fragComps = nil
				break
			}
			if pos, err = skipSubtree(old, t); err != nil {
				return nil, false, err
			}
		default:
			// Foreign element at branch level: preserve it untouched.
			if pos, err = skipSubtree(old, t); err != nil {
				return nil, false, err
			}
		}
	}

	frag, err := renderFragment(fragComps, reportXML)
	if err != nil {
		return nil, false, err
	}
	tail := insertAt
	if replaceEnd >= 0 {
		tail = replaceEnd
	}
	out := make([]byte, 0, len(old)+len(frag))
	out = append(out, old[:insertAt]...)
	out = append(out, frag...)
	out = append(out, old[tail:]...)
	return out, replaceEnd < 0, nil
}
