package depot

import (
	"hash/fnv"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
	"inca/internal/rrd"
)

// The archive pipeline. The paper's depot does both jobs on every report —
// cache update and archival (Section 3.2.2) — and Figure 9 shows the
// archive phase dominating cache processing once policies match. Three
// structural changes take it off the hot path:
//
//   - Policy matching is O(matching policies): policies are compiled into a
//     prefix index keyed by the most general pair of their branch prefix,
//     so a store consults only the policies rooted at its own subtree.
//   - Archives live in striped shards keyed by branch|policy, so stores on
//     unrelated branches never contend on one mutex.
//   - In async mode the store enqueues an archive job and returns after the
//     cache insert; a worker pool extracts and consolidates in the
//     background, batching RRD updates per archive (rrd.UpdateBatch).
//     Jobs are routed to workers by branch hash, which keeps per-branch
//     FIFO order — after Drain(), series contents are identical to sync
//     mode.

// compiledPolicy pairs a Policy with its pre-compiled extraction path.
type compiledPolicy struct {
	Policy
	path   report.Path
	pathOK bool // false: expression never resolves (matches Node.Find)
}

// policySet is an immutable snapshot of the uploaded policies, indexed for
// matching. Depot swaps the whole set atomically on AddPolicy, so the store
// path reads it without locking.
type policySet struct {
	all []Policy
	// byRoot indexes auto-matching policies by the most general pair of
	// their prefix: a report under branch id can only match policies whose
	// prefix ends with id's own most general pair.
	byRoot map[branch.Pair][]*compiledPolicy
	// rootless policies (empty prefix) match every branch.
	rootless []*compiledPolicy
	// byName resolves ArchiveUpdate targets (includes ManualOnly).
	byName map[string]*compiledPolicy
}

func compilePolicySet(policies []Policy) *policySet {
	set := &policySet{
		all:    policies,
		byRoot: make(map[branch.Pair][]*compiledPolicy),
		byName: make(map[string]*compiledPolicy, len(policies)),
	}
	for i := range policies {
		cp := &compiledPolicy{Policy: policies[i]}
		if p, err := report.CompilePath(policies[i].Path); err == nil {
			cp.path, cp.pathOK = p, true
		}
		set.byName[cp.Name] = cp
		if cp.ManualOnly {
			continue
		}
		if len(cp.Prefix.Pairs) == 0 {
			set.rootless = append(set.rootless, cp)
			continue
		}
		root := cp.Prefix.Pairs[len(cp.Prefix.Pairs)-1]
		set.byRoot[root] = append(set.byRoot[root], cp)
	}
	return set
}

// match returns the auto-matching policies for a branch, in upload order
// (the index preserves per-root order, and candidate lists are disjoint).
func (s *policySet) match(id branch.ID) []*compiledPolicy {
	var out []*compiledPolicy
	if len(id.Pairs) > 0 {
		for _, cp := range s.byRoot[id.Pairs[len(id.Pairs)-1]] {
			if id.HasSuffix(cp.Prefix) {
				out = append(out, cp)
			}
		}
	}
	if len(s.rootless) > 0 {
		out = append(out, s.rootless...)
	}
	return out
}

func shardIndex(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// lookupDB returns the pinned archive for key; the caller must invoke the
// release function when done with the handle.
func (d *Depot) lookupDB(key string) (archiveDB, func(), bool) {
	return d.archives.lookup(key)
}

// ensureDB returns the pinned archive for key, creating it from the policy
// when absent. start seeds a new database one step before the first
// sample. The caller must invoke the release function when done.
func (d *Depot) ensureDB(key string, cp *compiledPolicy, start time.Time) (archiveDB, func(), error) {
	return d.archives.ensure(key, cp, start)
}

// archiveJob is one report headed for the archive: the branch, the matched
// policies (snapshotted at store time, exactly as the sync path applies
// them), and the report bytes — copied at enqueue in async mode because the
// wire layer pools envelope buffers.
type archiveJob struct {
	id       branch.ID
	key      string // id.String(), computed once
	policies []*compiledPolicy
	report   []byte
	// enqueuedAt stamps async jobs for the enqueue→consolidation lag
	// histogram; zero on the sync path.
	enqueuedAt time.Time
}

// archivePipeline is the async machinery: one bounded queue per worker,
// jobs routed by branch hash so one branch's samples stay ordered.
type archivePipeline struct {
	queues  []chan archiveJob
	workers sync.WaitGroup
	batch   int
	drop    bool

	// pending counts enqueued-but-unfinished jobs; Drain waits for zero.
	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	// closed refuses new enqueues so shutdown cannot race a concurrent
	// store into a closed queue; refused callers archive synchronously.
	closed bool
}

// ArchiveStats are the archive pipeline counters surfaced in /debug/vars.
type ArchiveStats struct {
	Enqueued uint64 // jobs accepted into the async queue
	Dropped  uint64 // jobs rejected because the queue was full (drop mode)
	Blocked  uint64 // enqueues that had to wait for queue space
	Applied  uint64 // samples consolidated into archives
	Matched  uint64 // stores that matched at least one policy
}

func newArchivePipeline(workers, queue, batch int, drop bool) *archivePipeline {
	p := &archivePipeline{
		queues: make([]chan archiveJob, workers),
		batch:  batch,
		drop:   drop,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.queues {
		p.queues[i] = make(chan archiveJob, queue)
	}
	return p
}

func (p *archivePipeline) start(d *Depot) {
	for _, q := range p.queues {
		p.workers.Add(1)
		go d.archiveWorker(q)
	}
}

// enqueue hands a job to the worker owning its branch. It returns false
// only when the pipeline is shutting down and refused the job — the caller
// must archive synchronously. A job shed in drop mode (full queue) was
// still taken: it is counted as dropped and enqueue returns true.
func (p *archivePipeline) enqueue(d *Depot, job archiveJob) bool {
	q := p.queues[shardIndex(job.key, len(p.queues))]
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	// Registering pending before the send pins the shutdown order: close()
	// flips closed, then drains, and pending cannot reach zero until the
	// worker has both received and applied this job — so the queues stay
	// open for every send that got past the closed check.
	p.pending++
	p.mu.Unlock()
	select {
	case q <- job:
		d.enqueued.Inc()
		return true
	default:
	}
	if p.drop {
		p.jobsDone(1)
		d.dropped.Inc()
		return true
	}
	// Backpressure: block until the worker catches up.
	d.blocked.Inc()
	q <- job
	d.enqueued.Inc()
	return true
}

// pendingCount reads the enqueued-but-unfinished job count (scrape-time
// gauge).
func (p *archivePipeline) pendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

func (p *archivePipeline) jobsDone(n int) {
	p.mu.Lock()
	p.pending -= n
	if p.pending == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// drain blocks until every enqueued job has been consolidated.
func (p *archivePipeline) drain() {
	p.mu.Lock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// close refuses further enqueues, waits for the queued jobs to
// consolidate, and stops the workers. Safe against concurrent enqueues;
// later calls return immediately.
func (p *archivePipeline) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.drain()
	for _, q := range p.queues {
		close(q)
	}
	p.workers.Wait()
}

// archiveWorker consumes one queue. Each wakeup greedily drains up to the
// batch limit so consecutive samples for the same archive consolidate under
// one lock acquisition (rrd.UpdateBatch).
func (d *Depot) archiveWorker(q chan archiveJob) {
	defer d.pipeline.workers.Done()
	jobs := make([]archiveJob, 0, d.pipeline.batch)
	for job := range q {
		jobs = append(jobs[:0], job)
		for len(jobs) < d.pipeline.batch {
			select {
			case j, ok := <-q:
				if !ok {
					d.applyJobs(jobs)
					return
				}
				jobs = append(jobs, j)
			default:
				goto apply
			}
		}
	apply:
		d.applyJobs(jobs)
	}
}

// applyJobs extracts values from a batch of jobs and consolidates them,
// grouping samples per archive. Queue routing guarantees every job for a
// branch lands in the same batch stream in order, so grouped samples stay
// chronological.
func (d *Depot) applyJobs(jobs []archiveJob) {
	// Jobs stay pending until their samples are consolidated: Drain() is
	// the read-your-writes barrier for snapshots and shutdown, so pending
	// must not reach zero between extraction and UpdateBatch.
	defer d.pipeline.jobsDone(len(jobs))
	type pendingArchive struct {
		cp      *compiledPolicy
		start   time.Time
		samples []rrd.Sample
	}
	var order []string
	grouped := make(map[string]*pendingArchive)
	for _, job := range jobs {
		if !job.enqueuedAt.IsZero() {
			d.lagH.ObserveSince(job.enqueuedAt)
		}
		values, gmt, ok := d.extract(job.policies, job.report)
		if !ok {
			continue
		}
		for i, cp := range job.policies {
			if !values[i].ok {
				continue
			}
			key := job.key + "|" + cp.Name
			pa := grouped[key]
			if pa == nil {
				pa = &pendingArchive{cp: cp, start: gmt}
				grouped[key] = pa
				order = append(order, key)
			}
			pa.samples = append(pa.samples, rrd.Sample{Time: gmt, Value: values[i].value})
		}
	}
	for _, key := range order {
		pa := grouped[key]
		db, release, err := d.ensureDB(key, pa.cp, pa.start)
		if err != nil {
			continue
		}
		if n, err := db.UpdateBatch(pa.samples); err == nil && n > 0 {
			d.applied.Add(uint64(n))
			d.archiveGen.Add(1)
		}
		release()
	}
}

// extracted is one policy's extraction outcome for a report.
type extracted struct {
	value float64
	ok    bool
}

// extract pulls every policy-referenced value out of one report. The
// streaming extractor reads only the requested paths; ParseArchive mode
// reproduces the pre-pipeline DOM walk for the ablation. Returns ok=false
// when the payload is not a report (cacheable, not archivable — skipped
// silently, as before).
func (d *Depot) extract(policies []*compiledPolicy, reportXML []byte) ([]extracted, time.Time, bool) {
	out := make([]extracted, len(policies))
	if d.opts.ParseArchive {
		rep, err := report.Parse(reportXML)
		if err != nil {
			return nil, time.Time{}, false
		}
		for i, cp := range policies {
			if cp.Path == "" {
				if rep.Succeeded() {
					out[i] = extracted{1, true}
				} else {
					out[i] = extracted{0, true}
				}
				continue
			}
			if rep.Body == nil {
				continue
			}
			if v, ok := rep.Body.Float(cp.Path); ok {
				out[i] = extracted{v, true}
			}
		}
		return out, rep.Header.GMT, true
	}

	// Deduplicate paths across policies (several policies often archive the
	// same leaf under different granularities) so each distinct path is
	// matched once per scan.
	paths := make([]report.Path, 0, len(policies))
	slot := make([]int, len(policies))
	for i, cp := range policies {
		if !cp.pathOK {
			slot[i] = -1
			continue
		}
		found := -1
		for j := range paths {
			if paths[j].String() == cp.path.String() {
				found = j
				break
			}
		}
		if found < 0 {
			found = len(paths)
			paths = append(paths, cp.path)
		}
		slot[i] = found
	}
	ex, err := report.ExtractValues(reportXML, paths)
	if err != nil {
		return nil, time.Time{}, false
	}
	for i := range policies {
		if slot[i] >= 0 && ex.Found[slot[i]] {
			out[i] = extracted{ex.Values[slot[i]], true}
		}
	}
	return out, ex.GMT, true
}
