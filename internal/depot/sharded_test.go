package depot

import (
	"bytes"
	"fmt"
	"testing"

	"inca/internal/branch"
)

var _ Cache = (*ShardedCache)(nil)

func TestShardedCacheSpreadsAcrossShards(t *testing.T) {
	c := NewShardedCacheDepth(8, 2)
	for site := 0; site < 32; site++ {
		id := fmt.Sprintf("probe=p,site=s%02d,vo=tg", site)
		mustUpdate(t, c, id, reportXMLFor("rep", id))
	}
	populated := 0
	for _, s := range c.shards {
		if s.Count() > 0 {
			populated++
		}
	}
	if populated < 4 {
		t.Fatalf("32 sites landed on only %d of 8 shards", populated)
	}
	if c.Count() != 32 {
		t.Fatalf("Count = %d, want 32", c.Count())
	}
}

func TestShardedCacheRoutingIsStable(t *testing.T) {
	c := NewShardedCacheDepth(16, 2)
	id := branch.MustParse("probe=p1,site=sdsc,vo=tg")
	want := c.shardFor(id)
	// Identifiers sharing the most-general depth components co-locate.
	sibling := branch.MustParse("probe=p2,site=sdsc,vo=tg")
	if got := c.shardFor(sibling); got != want {
		t.Fatalf("sibling routed to shard %d, want %d", got, want)
	}
	deeper := branch.MustParse("run=r9,probe=p1,site=sdsc,vo=tg")
	if got := c.shardFor(deeper); got != want {
		t.Fatalf("descendant routed to shard %d, want %d", got, want)
	}
}

func TestShardedCacheDeepQueryTouchesOneShard(t *testing.T) {
	c := NewShardedCacheDepth(4, 2)
	mustUpdate(t, c, "probe=p1,site=sdsc,vo=tg", reportXMLFor("rep", "one"))
	sub, ok, err := c.Query(branch.MustParse("probe=p1,site=sdsc,vo=tg"))
	if err != nil || !ok || !bytes.Contains(sub, []byte("one")) {
		t.Fatalf("deep query: ok=%v err=%v %s", ok, err, sub)
	}
	// A shallow prefix merges subtrees from every shard holding children.
	for site := 0; site < 8; site++ {
		id := fmt.Sprintf("probe=p1,site=s%d,vo=tg", site)
		mustUpdate(t, c, id, reportXMLFor("rep", fmt.Sprintf("s%d", site)))
	}
	sub, ok, err = c.Query(branch.MustParse("vo=tg"))
	if err != nil || !ok {
		t.Fatalf("prefix query: ok=%v err=%v", ok, err)
	}
	for site := 0; site < 8; site++ {
		if !bytes.Contains(sub, []byte(fmt.Sprintf("s%d", site))) {
			t.Fatalf("merged prefix missing site %d: %s", site, sub)
		}
	}
}

func TestShardedCacheDumpMergesToCanonical(t *testing.T) {
	c := NewShardedCacheDepth(5, 1)
	ids := []string{
		"r=a,vo=one", "r=b,vo=one", "r=a,vo=two",
		"r=a,vo=three", "r=a,vo=four", "r=a,vo=five",
	}
	for _, id := range ids {
		mustUpdate(t, c, id, reportXMLFor("rep", id))
	}
	// The stitched dump reloads into a canonical single document holding
	// every entry exactly once.
	re, err := LoadDump(c.Dump())
	if err != nil {
		t.Fatal(err)
	}
	if re.Count() != len(ids) {
		t.Fatalf("reloaded count = %d, want %d", re.Count(), len(ids))
	}
	for _, id := range ids {
		stored, err := re.Reports(branch.MustParse(id))
		if err != nil || len(stored) != 1 {
			t.Fatalf("reloaded %s: %d entries, err %v", id, len(stored), err)
		}
	}
}

func TestShardedCacheMergeInterop(t *testing.T) {
	// A sharded cache merges with other cache kinds through depot.Merge.
	sharded := NewShardedCache(4)
	stream := NewStreamCache()
	mustUpdate(t, sharded, "r=a,vo=x", reportXMLFor("rep", "fromShards"))
	mustUpdate(t, stream, "r=b,vo=y", reportXMLFor("rep", "fromStream"))
	merged, err := Merge(sharded, stream)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count() != 2 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	dump := merged.Dump()
	for _, want := range []string{"fromShards", "fromStream"} {
		if !bytes.Contains(dump, []byte(want)) {
			t.Fatalf("merged dump missing %s: %s", want, dump)
		}
	}
}

func TestShardedCacheSingleShardDegeneratesToStream(t *testing.T) {
	sharded := NewShardedCache(1)
	stream := NewStreamCache()
	ids := []string{"r=b,s=2", "r=a,s=1", "r=c,s=1"}
	for _, id := range ids {
		mustUpdate(t, sharded, id, reportXMLFor("rep", id))
		mustUpdate(t, stream, id, reportXMLFor("rep", id))
	}
	if !bytes.Equal(sharded.Dump(), stream.Dump()) {
		t.Fatalf("1-shard dump diverges from StreamCache:\n%s\nvs\n%s",
			sharded.Dump(), stream.Dump())
	}
}
