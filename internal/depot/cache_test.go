package depot

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"inca/internal/branch"
)

func reportXMLFor(tag, text string) []byte {
	return []byte(fmt.Sprintf("<%s><v>%s</v></%s>", tag, text, tag))
}

func mustUpdate(t *testing.T, c Cache, id string, payload []byte) {
	t.Helper()
	if _, err := c.Update(branch.MustParse(id), payload); err != nil {
		t.Fatalf("Update(%s): %v", id, err)
	}
}

func allCaches() map[string]func() Cache {
	return map[string]func() Cache{
		"stream":      func() Cache { return NewStreamCache() },
		"dom":         func() Cache { return NewDOMCache() },
		"split":       func() Cache { return NewSplitCache() },
		"sharded4":    func() Cache { return NewShardedCache(4) },
		"sharded3-d2": func() Cache { return NewShardedCacheDepth(3, 2) },
		"indexed":     func() Cache { return NewIndexedCache() },
	}
}

func TestCacheInsertAndQuery(t *testing.T) {
	for name, mk := range allCaches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			mustUpdate(t, c, "resource=r1,site=sdsc,vo=tg", reportXMLFor("rep", "one"))
			if c.Count() != 1 {
				t.Fatalf("Count = %d", c.Count())
			}
			sub, ok, err := c.Query(branch.MustParse("resource=r1,site=sdsc,vo=tg"))
			if err != nil || !ok {
				t.Fatalf("Query: %v %v", ok, err)
			}
			if !bytes.Contains(sub, []byte("one")) {
				t.Fatalf("subtree missing payload: %s", sub)
			}
			// Prefix query returns the containing subtree.
			sub, ok, err = c.Query(branch.MustParse("site=sdsc,vo=tg"))
			if err != nil || !ok || !bytes.Contains(sub, []byte("one")) {
				t.Fatalf("prefix query failed: %v %v %s", ok, err, sub)
			}
			// Miss.
			if _, ok, _ := c.Query(branch.MustParse("site=ncsa,vo=tg")); ok {
				t.Fatal("phantom subtree")
			}
		})
	}
}

func TestCacheReplaceSemantics(t *testing.T) {
	// "Further updates of the report will result in the replacement of the
	// previous copy." (Section 3.2.2)
	for name, mk := range allCaches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			id := "resource=r1,vo=tg"
			mustUpdate(t, c, id, reportXMLFor("rep", "old"))
			mustUpdate(t, c, id, reportXMLFor("rep", "new"))
			if c.Count() != 1 {
				t.Fatalf("Count = %d after replacement", c.Count())
			}
			dump := c.Dump()
			if bytes.Contains(dump, []byte("old")) {
				t.Fatalf("old payload survived: %s", dump)
			}
			if !bytes.Contains(dump, []byte("new")) {
				t.Fatalf("new payload missing: %s", dump)
			}
		})
	}
}

func TestCacheNoConfigurationForNewSchemas(t *testing.T) {
	// Arbitrary well-formed XML with unknown schema must be accepted.
	for name, mk := range allCaches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			weird := []byte(`<wholeNewThing attr="x"><nested><deep>1</deep></nested></wholeNewThing>`)
			mustUpdate(t, c, "kind=unknown,vo=tg", weird)
			got, err := c.Reports(branch.ID{})
			if err != nil || len(got) != 1 {
				t.Fatalf("Reports: %v %d", err, len(got))
			}
			if !bytes.Contains(got[0].XML, []byte("wholeNewThing")) {
				t.Fatalf("payload mangled: %s", got[0].XML)
			}
		})
	}
}

func TestCacheRejectsMalformedPayload(t *testing.T) {
	for name, mk := range allCaches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			mustUpdate(t, c, "a=1", reportXMLFor("rep", "keep"))
			before := c.Dump()
			for _, bad := range [][]byte{nil, []byte(""), []byte("not xml"), []byte("<open>")} {
				if _, err := c.Update(branch.MustParse("b=2"), bad); err == nil {
					t.Fatalf("accepted %q", bad)
				}
			}
			if !bytes.Equal(c.Dump(), before) {
				t.Fatal("failed update corrupted the cache")
			}
		})
	}
}

func TestCacheSiblingsAndNesting(t *testing.T) {
	for name, mk := range allCaches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			ids := []string{
				"resource=r1,site=sdsc,vo=tg",
				"resource=r2,site=sdsc,vo=tg",
				"resource=r1,site=ncsa,vo=tg",
				"site=sdsc,vo=tg", // entry at an interior node
				"vo=tg",           // entry nearer the root
			}
			for i, id := range ids {
				mustUpdate(t, c, id, reportXMLFor("rep", fmt.Sprintf("p%d", i)))
			}
			if c.Count() != len(ids) {
				t.Fatalf("Count = %d, want %d", c.Count(), len(ids))
			}
			for i, id := range ids {
				all, err := c.Reports(branch.MustParse(id))
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, s := range all {
					if s.ID.Equal(branch.MustParse(id)) && bytes.Contains(s.XML, []byte(fmt.Sprintf("p%d", i))) {
						found = true
					}
				}
				if !found {
					t.Fatalf("report %s not found (got %d under prefix)", id, len(all))
				}
			}
			// Prefix site=sdsc collects r1, r2 and the interior entry.
			got, _ := c.Reports(branch.MustParse("site=sdsc,vo=tg"))
			if len(got) != 3 {
				t.Fatalf("prefix reports = %d, want 3", len(got))
			}
		})
	}
}

func TestCacheRootEntry(t *testing.T) {
	for name, mk := range allCaches() {
		if name == "split" {
			continue // split cache has no root shard by design
		}
		t.Run(name, func(t *testing.T) {
			c := mk()
			if _, err := c.Update(branch.ID{}, reportXMLFor("rep", "root")); err != nil {
				t.Fatal(err)
			}
			got, err := c.Reports(branch.ID{})
			if err != nil || len(got) != 1 || !got[0].ID.IsRoot() {
				t.Fatalf("root entry: %v %v", got, err)
			}
		})
	}
}

func TestStreamCacheCanonicalOrdering(t *testing.T) {
	// Insertion order must not affect the document: children are kept in
	// (name, value) order.
	c1 := NewStreamCache()
	c2 := NewStreamCache()
	ids := []string{"r=b,s=2", "r=a,s=1", "r=c,s=1", "r=a,s=2"}
	for _, id := range ids {
		mustUpdate(t, c1, id, reportXMLFor("rep", id))
	}
	for i := len(ids) - 1; i >= 0; i-- {
		mustUpdate(t, c2, ids[i], reportXMLFor("rep", ids[i]))
	}
	if !bytes.Equal(c1.Dump(), c2.Dump()) {
		t.Fatalf("order-dependent documents:\n%s\nvs\n%s", c1.Dump(), c2.Dump())
	}
}

func TestStreamCacheGrowsWithData(t *testing.T) {
	c := NewStreamCache()
	initial := c.Size()
	payload := bytes.Repeat([]byte("x"), 500)
	mustUpdate(t, c, "r=1", []byte("<rep>"+string(payload)+"</rep>"))
	if c.Size() < initial+500 {
		t.Fatalf("Size = %d after 500-byte payload", c.Size())
	}
}

func TestCacheEscapedContentSurvives(t *testing.T) {
	for name, mk := range allCaches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			payload := []byte("<rep><msg>a &lt;b&gt; &amp; c</msg></rep>")
			mustUpdate(t, c, "r=1", payload)
			got, _ := c.Reports(branch.ID{})
			if len(got) != 1 {
				t.Fatal("report lost")
			}
			if !bytes.Contains(got[0].XML, []byte("&lt;b&gt;")) {
				t.Fatalf("escaping lost: %s", got[0].XML)
			}
		})
	}
}

func TestCacheImplementationsAgreeProperty(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		stream, dom, split := NewStreamCache(), NewDOMCache(), NewSplitCache()
		ops := int(n%40) + 5
		for i := 0; i < ops; i++ {
			depth := 1 + r.Intn(3)
			parts := make([]string, depth)
			for d := 0; d < depth; d++ {
				parts[d] = fmt.Sprintf("l%d=%s", d, names[r.Intn(len(names))])
			}
			id := branch.MustParse(strings.Join(parts, ","))
			payload := reportXMLFor("rep", fmt.Sprintf("v%d", r.Intn(10)))
			for _, c := range []Cache{stream, dom, split} {
				if _, err := c.Update(id, payload); err != nil {
					return false
				}
			}
		}
		rs, _ := stream.Reports(branch.ID{})
		rd, _ := dom.Reports(branch.ID{})
		rp, _ := split.Reports(branch.ID{})
		return reportsEqual(rs, rd) && reportsEqual(rs, rp) &&
			stream.Count() == dom.Count() && stream.Count() == split.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func reportsEqual(a, b []Stored) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(s Stored) string { return s.ID.String() + "\x00" + string(s.XML) }
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = key(a[i]), key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

func TestStreamCacheIdempotentReplaceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewStreamCache()
		id := branch.MustParse(fmt.Sprintf("r=%d,s=%d", r.Intn(3), r.Intn(3)))
		payload := reportXMLFor("rep", fmt.Sprintf("%d", r.Int()))
		if _, err := c.Update(id, payload); err != nil {
			return false
		}
		once := c.Dump()
		if _, err := c.Update(id, payload); err != nil {
			return false
		}
		return bytes.Equal(once, c.Dump())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCacheSharding(t *testing.T) {
	c := NewSplitCache()
	mustUpdate(t, c, "r=1,vo=tg", reportXMLFor("rep", "a"))
	mustUpdate(t, c, "r=1,vo=other", reportXMLFor("rep", "b"))
	if c.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", c.Shards())
	}
	got, _ := c.Reports(branch.MustParse("vo=tg"))
	if len(got) != 1 || !bytes.Contains(got[0].XML, []byte(">a<")) {
		t.Fatalf("shard query wrong: %v", got)
	}
	dump := c.Dump()
	if !bytes.Contains(dump, []byte(">a<")) || !bytes.Contains(dump, []byte(">b<")) {
		t.Fatalf("dump incomplete: %s", dump)
	}
	if !bytes.HasPrefix(dump, []byte("<cache>")) || !bytes.HasSuffix(dump, []byte("</cache>")) {
		t.Fatalf("dump not wrapped: %s", dump)
	}
}

func TestDOMCacheMemoryFootprint(t *testing.T) {
	c := NewDOMCache()
	empty := c.MemoryFootprint()
	mustUpdate(t, c, "r=1,s=2", bytes.Repeat([]byte("<r>x</r>"), 1))
	if c.MemoryFootprint() <= empty {
		t.Fatal("footprint did not grow")
	}
}

func TestStreamCacheDumpIsParseable(t *testing.T) {
	c := NewStreamCache()
	for i := 0; i < 10; i++ {
		mustUpdate(t, c, fmt.Sprintf("r=%d,site=s%d", i, i%3), reportXMLFor("rep", fmt.Sprint(i)))
	}
	// The dump must itself be a well-formed document.
	if err := wellFormed(c.Dump()); err != nil {
		t.Fatalf("dump not well-formed: %v\n%s", err, c.Dump())
	}
}

func TestQueryReturnsCopies(t *testing.T) {
	c := NewStreamCache()
	mustUpdate(t, c, "r=1", reportXMLFor("rep", "x"))
	d1 := c.Dump()
	d1[0] = '!'
	if c.Dump()[0] == '!' {
		t.Fatal("Dump aliases internal buffer")
	}
}

func TestMergeCaches(t *testing.T) {
	a := NewStreamCache()
	b := NewStreamCache()
	mustUpdate(t, a, "r=1,site=x", reportXMLFor("rep", "A1"))
	mustUpdate(t, a, "r=2,site=x", reportXMLFor("rep", "A2"))
	mustUpdate(t, b, "r=1,site=y", reportXMLFor("rep", "B1"))
	// Collision: b's copy wins (later cache).
	mustUpdate(t, b, "r=1,site=x", reportXMLFor("rep", "B-override"))
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Count() != 3 {
		t.Fatalf("count = %d", merged.Count())
	}
	got, _ := merged.Reports(branch.MustParse("r=1,site=x"))
	if len(got) != 1 || !bytes.Contains(got[0].XML, []byte("B-override")) {
		t.Fatalf("collision resolution: %+v", got)
	}
	// Merging different implementations works too.
	dom := NewDOMCache()
	mustUpdate(t, dom, "r=9,site=z", reportXMLFor("rep", "D"))
	merged, err = Merge(merged, dom)
	if err != nil || merged.Count() != 4 {
		t.Fatalf("cross-impl merge: %v count=%d", err, merged.Count())
	}
}
