package depot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The depot write-ahead log: every mutation that must survive a crash —
// stored reports, uploaded policies, manual archive updates — is appended
// as a length- and CRC-framed record before it is applied. Recovery replays
// the log through the normal store path, which is idempotent (the cache
// replaces same-branch documents; archives drop non-newer samples), and
// truncates a torn tail at the last whole frame, the same scan-and-truncate
// discipline agent.Spool proved on the report path.
//
// The log is segmented (wal-<seq>.log): a checkpoint rotates to a fresh
// segment, makes everything older durable elsewhere, then deletes the
// segments below the new sequence — so log size is bounded by write volume
// between checkpoints, not uptime.
//
// Appends are not fsynced: surviving process death needs only the page
// cache, and machine-crash durability is the checkpoint's job (the window
// is the checkpoint interval, a bounded and documented trade).

const (
	walFrameReport = 1 // u16 branch len | branch | report bytes
	walFramePolicy = 2 // policy XML (snapshot schema)
	walFrameManual = 3 // u16 branch len | branch | u16 name len | name | i64 nanos | f64 value

	walMaxFrame        = 64 << 20 // sanity cap on a single frame
	defaultSegmentSize = 64 << 20
)

// walRecord is one decoded frame.
type walRecord struct {
	kind    byte
	payload []byte
}

// wal is the append side. One goroutine-safe writer per depot.
type wal struct {
	dir      string
	segBytes int64

	mu   sync.Mutex
	f    *os.File
	seq  uint64
	size int64
}

func walSegmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016d.log", seq)
}

// walSegments lists the segment sequences present in dir, ascending.
func walSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// openWAL starts appending to a fresh segment numbered one past the
// newest on disk. Recovery reads the old segments first; starting fresh
// (rather than appending to a possibly-truncated tail) keeps the append
// path free of repair states.
func openWAL(dir string, segBytes int64) (*wal, error) {
	if segBytes <= 0 {
		segBytes = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("depot: wal dir: %w", err)
	}
	seqs, err := walSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("depot: wal scan: %w", err)
	}
	next := uint64(1)
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	w := &wal{dir: dir, segBytes: segBytes}
	if err := w.startSegmentLocked(next); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *wal) startSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, walSegmentName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("depot: wal segment: %w", err)
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f, w.seq, w.size = f, seq, 0
	return nil
}

// append frames one record. The frame is assembled in one buffer and
// written with a single call so a crash can tear only the tail, never
// interleave two records.
func (w *wal) append(kind byte, payload []byte) error {
	if len(payload) > walMaxFrame {
		return fmt.Errorf("depot: wal record of %d bytes exceeds frame cap", len(payload))
	}
	buf := make([]byte, 8+1+len(payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(1+len(payload)))
	buf[8] = kind
	copy(buf[9:], payload)
	binary.BigEndian.PutUint32(buf[4:], crc32.Checksum(buf[8:], crcTableWAL))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("depot: wal closed")
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("depot: wal append: %w", err)
	}
	w.size += int64(len(buf))
	if w.size >= w.segBytes {
		return w.startSegmentLocked(w.seq + 1)
	}
	return nil
}

// rotate closes the current segment and opens the next, returning the new
// sequence: every record appended before the call lives in a segment
// below it. The checkpoint protocol hinges on that boundary.
func (w *wal) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("depot: wal closed")
	}
	if err := w.startSegmentLocked(w.seq + 1); err != nil {
		return 0, err
	}
	return w.seq, nil
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// deleteSegmentsBelow removes every segment with sequence < seq (the
// checkpoint's truncation step; also run at open to finish an interrupted
// truncation).
func deleteSegmentsBelow(dir string, seq uint64) error {
	seqs, err := walSegments(dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s >= seq {
			break
		}
		if err := os.Remove(filepath.Join(dir, walSegmentName(s))); err != nil {
			return err
		}
	}
	return nil
}

var crcTableWAL = crc32.MakeTable(crc32.Castagnoli)

// replaySegment scans one segment, invoking fn per whole frame. A torn or
// corrupt tail is truncated in place when final is set (only the last
// segment can legitimately be torn — an earlier one went through rotate,
// which only ever leaves whole frames behind); in an earlier segment the
// same damage is an error, because records acked after it exist and
// silently dropping the rest of the segment would reorder history.
func replaySegment(path string, final bool, fn func(walRecord) error) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var (
		offset int64 // last known-good frame boundary
		header [8]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF {
				return nil // clean end
			}
			break // torn length/crc header
		}
		n := binary.BigEndian.Uint32(header[0:])
		crc := binary.BigEndian.Uint32(header[4:])
		if n == 0 || n > walMaxFrame {
			break
		}
		// Fresh buffer per frame: the store path may retain report bytes.
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn body
		}
		if crc32.Checksum(payload, crcTableWAL) != crc {
			break // torn or bit-rotted frame
		}
		if err := fn(walRecord{kind: payload[0], payload: payload[1:]}); err != nil {
			return err
		}
		offset += int64(8 + n)
	}
	if !final {
		return fmt.Errorf("depot: wal segment %s corrupt mid-sequence at offset %d", filepath.Base(path), offset)
	}
	// Drop the torn tail so the damage cannot be re-read as data.
	if err := f.Truncate(offset); err != nil {
		return fmt.Errorf("depot: wal truncate: %w", err)
	}
	return f.Sync()
}
