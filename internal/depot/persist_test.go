package depot

import (
	"bytes"
	"math"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/rrd"
)

func snapshotTestDepot(t *testing.T) *Depot {
	t.Helper()
	d := New(NewStreamCache())
	if err := d.AddPolicy(Policy{
		Name:   "bw",
		Prefix: branch.MustParse("site=sdsc"),
		Path:   "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{
			Step: time.Hour, Granularity: 1, History: 7 * 24 * time.Hour,
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPolicy(Policy{
		Name:       "manual",
		ManualOnly: true,
		Archive:    rrd.ArchivalPolicy{Step: 10 * time.Minute, History: 24 * time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("tool=pathload,site=sdsc")
	for i := 1; i <= 12; i++ {
		if _, err := d.Store(id, reportWithValue(t, dt0.Add(time.Duration(i)*time.Hour), 900+float64(i), true)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Store(branch.MustParse("x=1,site=other"), []byte("<foreign><v>1</v></foreign>")); err != nil {
		t.Fatal(err)
	}
	if err := d.ArchiveUpdate(branch.MustParse("category=Grid,resource=r1"), "manual", dt0.Add(time.Hour), 97); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := snapshotTestDepot(t)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Cache contents identical.
	origReports, _ := d.Cache().Reports(branch.ID{})
	backReports, _ := back.Cache().Reports(branch.ID{})
	if !reportsEqual(origReports, backReports) {
		t.Fatal("cache contents diverge")
	}
	if back.Cache().Count() != d.Cache().Count() {
		t.Fatalf("counts: %d vs %d", back.Cache().Count(), d.Cache().Count())
	}
	// Policies identical.
	op, bp := d.Policies(), back.Policies()
	if len(op) != len(bp) {
		t.Fatalf("policies: %d vs %d", len(op), len(bp))
	}
	for i := range op {
		if op[i].Name != bp[i].Name || !op[i].Prefix.Equal(bp[i].Prefix) ||
			op[i].Path != bp[i].Path || op[i].ManualOnly != bp[i].ManualOnly ||
			op[i].Archive.Step != bp[i].Archive.Step {
			t.Fatalf("policy %d: %+v vs %+v", i, op[i], bp[i])
		}
	}
	// Archives identical.
	if len(back.ArchivedSeries()) != len(d.ArchivedSeries()) {
		t.Fatalf("archives: %v vs %v", back.ArchivedSeries(), d.ArchivedSeries())
	}
	id := branch.MustParse("tool=pathload,site=sdsc")
	a, err := d.FetchArchive(id, "bw", rrd.Average, dt0, dt0.Add(13*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.FetchArchive(id, "bw", rrd.Average, dt0, dt0.Add(13*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("series length: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		x, y := a.Points[i].Values[0], b.Points[i].Values[0]
		if math.IsNaN(x) != math.IsNaN(y) || (!math.IsNaN(x) && x != y) {
			t.Fatalf("point %d: %g vs %g", i, x, y)
		}
	}
}

func TestSnapshotReloadedDepotKeepsWorking(t *testing.T) {
	d := snapshotTestDepot(t)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// New reports keep archiving under the restored policy. The update
	// lands one step after the snapshot's last update, inside the
	// heartbeat, so its PDP is known.
	id := branch.MustParse("tool=pathload,site=sdsc")
	if _, err := back.Store(id, reportWithValue(t, dt0.Add(13*time.Hour), 955, true)); err != nil {
		t.Fatal(err)
	}
	s, err := back.FetchArchive(id, "bw", rrd.Average, dt0.Add(12*time.Hour), dt0.Add(14*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range s.Points {
		if !math.IsNaN(p.Values[0]) && p.Values[0] == 955 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-restore update not archived")
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("junk"), []byte("INCADEPOT1CACHbad")} {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("ReadSnapshot accepted %q", data)
		}
	}
	// Truncated valid snapshot.
	d := snapshotTestDepot(t)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestSnapshotEmptyDepot(t *testing.T) {
	d := New(NewStreamCache())
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cache().Count() != 0 || len(back.Policies()) != 0 {
		t.Fatal("empty depot round trip not empty")
	}
}
