package loadgen

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/query"
	"inca/internal/stats"
	"inca/internal/wire"
)

// This file grows loadgen from the synthetic-report builder into a
// DiPerF-style closed-loop capacity harness (DESIGN.md §5j): a
// coordinator ramps N concurrent agent workers through staged
// concurrency levels against a live inca-server (or -federate router)
// over real TCP. Each worker drives a mixed workload — batched wire
// ingest, conditional /cache and /reports revalidations, and cold deep
// /reports queries — and the harness records per-stage throughput,
// client-side latency reservoirs, and server-side /metrics deltas, then
// locates the saturation knee: the load at which throughput plateaus
// while response time inflects.

// Op classes of the mixed workload.
const (
	OpWrite    = iota // one batched wire ingest round trip (WriteBatch reports)
	OpCondRead        // conditional GET /cache or /reports with the last ETag
	OpDeepRead        // cold site-prefix GET /reports (data-bearing body)
	opClasses
)

// opClassNames label the classes in results.
var opClassNames = [opClasses]string{"write", "cond-read", "deep-read"}

// Mix weights the op classes of the closed-loop workload. Zero values
// take the defaults (write 4, conditional read 4, deep read 2); a class
// can be disabled by making the whole mix explicit and leaving it 0 —
// a fully zero mix is rejected by NewHarness.
type Mix struct {
	Write    int
	CondRead int
	DeepRead int
}

// DefaultMix is the standard mixed workload.
var DefaultMix = Mix{Write: 4, CondRead: 4, DeepRead: 2}

func (m Mix) weights() [opClasses]int {
	return [opClasses]int{m.Write, m.CondRead, m.DeepRead}
}

func (m Mix) total() int { return m.Write + m.CondRead + m.DeepRead }

// HarnessOptions configures a capacity run.
type HarnessOptions struct {
	// WireAddr is the ingest target: a single inca-server's controller
	// port or a -federate router's.
	WireAddr string
	// HTTPBase is the querying interface ("http://host:port"), also the
	// /metrics scrape target.
	HTTPBase string
	// Stages is the concurrency ramp: strictly increasing closed-loop
	// worker counts, one measured stage each (default DefaultStages).
	Stages []int
	// StageDuration is each stage's measured window (default 2s).
	StageDuration time.Duration
	// Warmup settles each stage before measurement begins (default 300ms).
	Warmup time.Duration
	// Mix weights the op classes (zero value = DefaultMix).
	Mix Mix
	// ReportSize is the premade report payload (default 851, the paper's
	// smallest TeraGrid sample).
	ReportSize int
	// WriteBatch is how many reports one write op carries (default 8) —
	// the batched wire ingest unit whose round trip is one latency sample.
	WriteBatch int
	// Sites and Probes shape the branch working set (default 16×8).
	Sites, Probes int
	// ReservoirCap bounds each per-worker, per-class latency reservoir
	// (default 2048).
	ReservoirCap int
	// Seed makes worker op-mix choices and reservoir replacement
	// deterministic (default 2004).
	Seed int64
	// Knee tunes saturation detection.
	Knee stats.KneeOptions
}

// DefaultStages is the standard ramp: six stages doubling from 1 to 32
// concurrent closed-loop workers.
var DefaultStages = []int{1, 2, 4, 8, 16, 32}

func (o *HarnessOptions) fill() error {
	if o.WireAddr == "" || o.HTTPBase == "" {
		return fmt.Errorf("loadgen: harness needs WireAddr and HTTPBase")
	}
	if len(o.Stages) == 0 {
		o.Stages = append([]int(nil), DefaultStages...)
	}
	if err := ValidateStages(o.Stages); err != nil {
		return err
	}
	if o.StageDuration <= 0 {
		o.StageDuration = 2 * time.Second
	}
	if o.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup")
	}
	if o.Warmup == 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if (o.Mix == Mix{}) {
		o.Mix = DefaultMix
	}
	if o.Mix.total() <= 0 || o.Mix.Write < 0 || o.Mix.CondRead < 0 || o.Mix.DeepRead < 0 {
		return fmt.Errorf("loadgen: invalid op mix %+v", o.Mix)
	}
	if o.ReportSize == 0 {
		o.ReportSize = PaperReportSizes[0]
	}
	if o.WriteBatch <= 0 {
		o.WriteBatch = 8
	}
	if o.Sites <= 0 {
		o.Sites = 16
	}
	if o.Probes <= 0 {
		o.Probes = 8
	}
	if o.ReservoirCap <= 0 {
		o.ReservoirCap = 2048
	}
	if o.Seed == 0 {
		o.Seed = 2004
	}
	return nil
}

// ValidateStages enforces the ramp contract: at least one stage, every
// concurrency positive, strictly increasing.
func ValidateStages(stages []int) error {
	if len(stages) == 0 {
		return fmt.Errorf("loadgen: empty ramp")
	}
	for i, s := range stages {
		if s <= 0 {
			return fmt.Errorf("loadgen: stage %d has non-positive concurrency %d", i, s)
		}
		if i > 0 && s <= stages[i-1] {
			return fmt.Errorf("loadgen: ramp not strictly increasing at stage %d (%d after %d)", i, s, stages[i-1])
		}
	}
	return nil
}

// OpClassStats is one op class's share of a measured stage.
type OpClassStats struct {
	Ops           int64   `json:"ops"`
	Errors        int64   `json:"errors"`
	NotModified   int64   `json:"not_modified,omitempty"` // 304 answers (conditional reads)
	P50, P95, P99 float64 `json:"-"`                      // microseconds
}

// StageResult is one measured concurrency level.
type StageResult struct {
	// Concurrency is the closed-loop worker count.
	Concurrency int
	// Window is the measured wall time.
	Window time.Duration
	// Ops counts completed operations in the window: each stored report,
	// each conditional revalidation, each deep query.
	Ops int64
	// Errors counts failed operations.
	Errors int64
	// OpsPerSec is Ops normalized by the window.
	OpsPerSec float64
	// P50/P95/P99 are client-side response-time percentiles in
	// microseconds, merged across op classes and workers (writes
	// contribute their batch round trip as one sample).
	P50, P95, P99 float64
	// Classes breaks the stage down by op class, indexed by OpWrite,
	// OpCondRead, OpDeepRead.
	Classes [opClasses]OpClassStats
	// Server holds the /metrics deltas over the window, summed per
	// metric family (empty when scraping failed).
	Server map[string]float64
}

// Curve is a completed capacity run: the full load-vs-response-time
// trajectory and, when the ramp reached saturation, its knee.
type Curve struct {
	// Stages are the measured ramp points, in ramp order.
	Stages []StageResult
	// Knee is the detected saturation point; KneeFound reports whether
	// the ramp flattened at all.
	Knee      stats.Knee
	KneeFound bool
}

// Points projects the curve onto the knee detector's axes.
func (c *Curve) Points() []stats.CurvePoint {
	pts := make([]stats.CurvePoint, len(c.Stages))
	for i, s := range c.Stages {
		pts[i] = stats.CurvePoint{Load: float64(s.Concurrency), Throughput: s.OpsPerSec, P95: s.P95}
	}
	return pts
}

// Harness is the closed-loop coordinator.
type Harness struct {
	opt HarnessOptions

	ids      []branch.ID
	prefixes []string // site-level deep-query prefixes
	data     []byte
	tr       *http.Transport

	collector atomic.Pointer[stageCollector]
	stop      chan struct{}
	wg        sync.WaitGroup
	workers   int
}

// NewHarness validates options and prepares the working set.
func NewHarness(opt HarnessOptions) (*Harness, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	data, err := PremadeReport(opt.ReportSize)
	if err != nil {
		return nil, err
	}
	h := &Harness{opt: opt, data: data, stop: make(chan struct{})}
	for s := 0; s < opt.Sites; s++ {
		for p := 0; p < opt.Probes; p++ {
			h.ids = append(h.ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=synthetic", p, s)))
		}
	}
	// The deep-query prefixes are the most-general two components of a
	// full identifier (vo + site) — the ring's affinity key, so a
	// federated deep read resolves to one owning shard.
	for s := 0; s < opt.Sites; s += 1 {
		path := h.ids[s*opt.Probes].Path()
		prefix := branch.ID{}
		for _, p := range path[:2] {
			prefix = prefix.Child(p.Name, p.Value)
		}
		h.prefixes = append(h.prefixes, prefix.String())
	}
	maxWorkers := opt.Stages[len(opt.Stages)-1]
	h.tr = &http.Transport{MaxIdleConns: 2 * maxWorkers, MaxIdleConnsPerHost: 2 * maxWorkers}
	return h, nil
}

// Options returns the harness options with defaults applied.
func (h *Harness) Options() HarnessOptions { return h.opt }

// Seed stores one report under every working-set branch and waits until
// a deep query observes data, so cold reads during the ramp always have
// something to return. It runs through the same wire path the ramp uses.
func (h *Harness) Seed() error {
	c := wire.NewBatchClient(h.opt.WireAddr, wire.BatchOptions{
		MaxBatch: 32, FlushInterval: 10 * time.Millisecond, DialTimeout: 5 * time.Second,
	})
	defer c.Close()
	for _, id := range h.ids {
		if err := c.Enqueue(&wire.Message{Branch: id.String(), Hostname: "loadgen", Report: h.data}); err != nil {
			return fmt.Errorf("loadgen: seed enqueue: %w", err)
		}
	}
	if err := c.Drain(); err != nil {
		return fmt.Errorf("loadgen: seed drain: %w", err)
	}
	// The router ack is a custody transfer; shard delivery is
	// asynchronous. Poll a deep read until every site answers.
	qc := h.queryClient()
	deadline := time.Now().Add(15 * time.Second)
	for _, prefix := range h.prefixes {
		for {
			if body, err := qc.Reports(prefix); err == nil && len(body) > 0 {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("loadgen: seed not visible at %s: %v", prefix, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

func (h *Harness) queryClient() *query.Client {
	qc := query.NewClient(h.opt.HTTPBase)
	qc.HTTP = &http.Client{Transport: h.tr, Timeout: 30 * time.Second}
	return qc
}

// Run executes the full ramp and returns the capacity curve. It seeds
// the working set first, holds workers across stages (the ramp only ever
// adds load), and detects the saturation knee from the per-stage
// throughput and p95 trajectory.
func (h *Harness) Run() (*Curve, error) {
	if err := h.Seed(); err != nil {
		return nil, err
	}
	defer h.Shutdown()
	metricsURL := h.opt.HTTPBase + "/metrics"
	curve := &Curve{}
	for _, n := range h.opt.Stages {
		for h.workers < n {
			h.spawnWorker(h.workers)
			h.workers++
		}
		time.Sleep(h.opt.Warmup)
		before, _ := ScrapeMetrics(h.tr, metricsURL)
		col := newStageCollector(n, h.opt.ReservoirCap, h.opt.Seed)
		start := time.Now()
		h.collector.Store(col)
		time.Sleep(h.opt.StageDuration)
		h.collector.Store(nil)
		window := time.Since(start)
		after, _ := ScrapeMetrics(h.tr, metricsURL)
		curve.Stages = append(curve.Stages, col.result(n, window, DeltaMetrics(before, after)))
	}
	curve.Knee, curve.KneeFound = stats.DetectKnee(curve.Points(), h.opt.Knee)
	return curve, nil
}

// Shutdown stops every worker and releases client connections. It is
// idempotent; Run arranges for it to be called automatically.
func (h *Harness) Shutdown() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	h.wg.Wait()
	h.tr.CloseIdleConnections()
}

func (h *Harness) spawnWorker(idx int) {
	w := &worker{
		h:   h,
		idx: idx,
		rng: rand.New(rand.NewSource(h.opt.Seed + int64(idx)*7919)),
		qc:  h.queryClient(),
		wc: wire.NewBatchClient(h.opt.WireAddr, wire.BatchOptions{
			// One write op = fill exactly one batch (the last Enqueue
			// flushes it) and Drain for its ack: a synchronous batched
			// round trip, Window 1 so Drain waits only this op's frame.
			MaxBatch:      h.opt.WriteBatch,
			Window:        1,
			FlushInterval: -1,
			DialTimeout:   5 * time.Second,
			IOTimeout:     15 * time.Second,
		}),
	}
	h.wg.Add(1)
	go w.run()
}

// worker is one closed-loop agent: it issues an operation, waits for the
// response, records the latency, and immediately issues the next — load
// scales with the worker population, never with open-loop timers.
type worker struct {
	h    *Harness
	idx  int
	rng  *rand.Rand
	qc   *query.Client
	wc   *wire.BatchClient
	etag struct{ cache, reports string }
}

func (w *worker) run() {
	defer w.h.wg.Done()
	defer w.wc.Close()
	weights := w.h.opt.Mix.weights()
	total := w.h.opt.Mix.total()
	for {
		select {
		case <-w.h.stop:
			return
		default:
		}
		class := w.pick(weights, total)
		start := time.Now()
		ops, notMod, err := w.do(class)
		elapsed := time.Since(start)
		if col := w.h.collector.Load(); col != nil {
			col.record(w.idx, class, elapsed, ops, notMod, err)
		}
		if err != nil {
			// Back off a failing op so an unreachable server cannot spin
			// the loop into a hot error storm.
			select {
			case <-w.h.stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
}

func (w *worker) pick(weights [opClasses]int, total int) int {
	n := w.rng.Intn(total)
	for class, weight := range weights {
		if n < weight {
			return class
		}
		n -= weight
	}
	return OpWrite
}

// do executes one operation and returns how many service ops it
// completed (reports stored for a write batch, 1 for a read).
func (w *worker) do(class int) (ops int64, notModified bool, err error) {
	switch class {
	case OpWrite:
		for i := 0; i < w.h.opt.WriteBatch; i++ {
			id := w.h.ids[w.rng.Intn(len(w.h.ids))]
			if err = w.wc.Enqueue(&wire.Message{Branch: id.String(), Hostname: "loadgen", Report: w.h.data}); err != nil {
				return 0, false, err
			}
		}
		if err = w.wc.Drain(); err != nil {
			return 0, false, err
		}
		return int64(w.h.opt.WriteBatch), false, nil
	case OpCondRead:
		// Alternate the two read endpoints, carrying each one's last
		// validator — the dashboard-refresh pattern whose steady state is
		// a 304.
		if w.rng.Intn(2) == 0 {
			_, tag, nm, cerr := w.qc.CacheConditional("", w.etag.cache)
			if cerr != nil {
				return 0, false, cerr
			}
			w.etag.cache = tag
			return 1, nm, nil
		}
		_, tag, nm, cerr := w.qc.ReportsConditional("", w.etag.reports)
		if cerr != nil {
			return 0, false, cerr
		}
		w.etag.reports = tag
		return 1, nm, nil
	default: // OpDeepRead
		prefix := w.h.prefixes[w.rng.Intn(len(w.h.prefixes))]
		body, derr := w.qc.Reports(prefix)
		if derr != nil {
			return 0, false, derr
		}
		if len(body) == 0 {
			return 0, false, fmt.Errorf("loadgen: empty deep read at %s", prefix)
		}
		return 1, false, nil
	}
}

// stageCollector gathers one stage's client-side measurements: atomic op
// counters plus per-worker, per-class bounded latency reservoirs, so
// recording stays contention-free while memory stays capped no matter
// how long the stage runs.
type stageCollector struct {
	classes [opClasses]struct {
		ops     atomic.Int64
		errs    atomic.Int64
		notMod  atomic.Int64
		byClass []*stats.Reservoir
	}
}

func newStageCollector(workers, reservoirCap int, seed int64) *stageCollector {
	c := &stageCollector{}
	for class := range c.classes {
		c.classes[class].byClass = make([]*stats.Reservoir, workers)
		for wkr := 0; wkr < workers; wkr++ {
			c.classes[class].byClass[wkr] = stats.NewReservoir(reservoirCap, seed+int64(class*workers+wkr))
		}
	}
	return c
}

func (c *stageCollector) record(worker, class int, d time.Duration, ops int64, notModified bool, err error) {
	cl := &c.classes[class]
	if err != nil {
		cl.errs.Add(1)
		return
	}
	cl.ops.Add(ops)
	if notModified {
		cl.notMod.Add(1)
	}
	if worker < len(cl.byClass) {
		cl.byClass[worker].Add(float64(d) / float64(time.Microsecond))
	}
}

func (c *stageCollector) result(concurrency int, window time.Duration, server map[string]float64) StageResult {
	r := StageResult{Concurrency: concurrency, Window: window, Server: server}
	var all []*stats.Reservoir
	for class := range c.classes {
		cl := &c.classes[class]
		ps := stats.MergedPercentiles(cl.byClass, 50, 95, 99)
		r.Classes[class] = OpClassStats{
			Ops:         cl.ops.Load(),
			Errors:      cl.errs.Load(),
			NotModified: cl.notMod.Load(),
			P50:         zeroNaN(ps[0]), P95: zeroNaN(ps[1]), P99: zeroNaN(ps[2]),
		}
		r.Ops += cl.ops.Load()
		r.Errors += cl.errs.Load()
		all = append(all, cl.byClass...)
	}
	ps := stats.MergedPercentiles(all, 50, 95, 99)
	r.P50, r.P95, r.P99 = zeroNaN(ps[0]), zeroNaN(ps[1]), zeroNaN(ps[2])
	if window > 0 {
		r.OpsPerSec = float64(r.Ops) / window.Seconds()
	}
	return r
}

// ClassName labels an op class index.
func ClassName(class int) string {
	if class < 0 || class >= opClasses {
		return "unknown"
	}
	return opClassNames[class]
}

// NumOpClasses is the op-class count, for iterating StageResult.Classes.
const NumOpClasses = opClasses

func zeroNaN(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}
