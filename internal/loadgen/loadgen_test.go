package loadgen

import (
	"fmt"
	"strings"
	"testing"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

func TestPremadeReportExactSizes(t *testing.T) {
	for _, size := range PaperReportSizes {
		data, err := PremadeReport(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(data) != size {
			t.Fatalf("size %d: got %d bytes", size, len(data))
		}
		rep, err := report.Parse(data)
		if err != nil {
			t.Fatalf("size %d: unparseable: %v", size, err)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("size %d: invalid: %v", size, err)
		}
	}
}

func TestPremadeReportTooSmall(t *testing.T) {
	if _, err := PremadeReport(50); err == nil {
		t.Fatal("50-byte report accepted")
	}
}

func TestPremadeReportArbitrarySizes(t *testing.T) {
	for _, size := range []int{600, 1024, 4096, 100000} {
		data, err := PremadeReport(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(data) != size {
			t.Fatalf("size %d: got %d", size, len(data))
		}
	}
}

func TestFillToSize(t *testing.T) {
	c := depot.NewStreamCache()
	target := 256 * 1024
	n, err := FillToSize(CacheStore{c}, target, 851)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() < target {
		t.Fatalf("cache %d below target %d", c.Size(), target)
	}
	// Roughly target/entrySize identifiers.
	if n < target/1200 || n > target/700 {
		t.Fatalf("n = %d implausible for target %d", n, target)
	}
	if c.Count() != n {
		t.Fatalf("count %d != fills %d", c.Count(), n)
	}
}

func TestUpdateCycleHoldsSizeSteady(t *testing.T) {
	c := depot.NewStreamCache()
	n, err := FillToSize(CacheStore{c}, 128*1024, 851)
	if err != nil {
		t.Fatal(err)
	}
	sizeAfterFill := c.Size()
	cycle, err := NewUpdateCycle(CacheStore{c}, 851, n)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < n*2; i++ {
		id, err := cycle.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen[id.String()] = true
	}
	if len(seen) != n {
		t.Fatalf("cycle touched %d ids, want %d", len(seen), n)
	}
	if c.Size() != sizeAfterFill {
		t.Fatalf("steady-state size drifted: %d -> %d", sizeAfterFill, c.Size())
	}
	if c.Count() != n {
		t.Fatalf("count changed: %d", c.Count())
	}
}

func TestNewUpdateCycleValidation(t *testing.T) {
	c := depot.NewStreamCache()
	if _, err := NewUpdateCycle(CacheStore{c}, 851, 0); err == nil {
		t.Fatal("empty cycle accepted")
	}
}

func TestDepotStoreAdapter(t *testing.T) {
	d := depot.New(depot.NewStreamCache())
	s := DepotStore{d}
	if err := s.Store(branch.MustParse("a=1"), MustPremadeReport(851)); err != nil {
		t.Fatal(err)
	}
	if s.Size() == 0 {
		t.Fatal("size not reported")
	}
	if d.Stats().Received != 1 {
		t.Fatal("depot stats not updated")
	}
}

func TestMustPremadeReportPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustPremadeReport(10)
}

func TestPremadeReportBoundarySizes(t *testing.T) {
	min, padMin := MinReportSize(), MinPaddedReportSize()
	if min <= 0 || padMin <= min+1 {
		t.Fatalf("implausible bounds: MinReportSize=%d MinPaddedReportSize=%d", min, padMin)
	}
	cases := []struct {
		name     string
		size     int
		feasible bool
		errWant  string // substring the error must carry when infeasible
	}{
		{"below minimum", min - 1, false, "minimum feasible report size"},
		{"bare minimum", min, true, ""},
		{"first gap byte", min + 1, false, "unreachable"},
		{"last gap byte", padMin - 1, false, "unreachable"},
		{"smallest padded", padMin, true, ""},
		{"padded + 1", padMin + 1, true, ""},
		{"padded + 100", padMin + 100, true, ""},
	}
	for _, size := range PaperReportSizes {
		cases = append(cases, struct {
			name     string
			size     int
			feasible bool
			errWant  string
		}{fmt.Sprintf("paper size %d", size), size, true, ""})
	}
	for _, tc := range cases {
		data, err := PremadeReport(tc.size)
		if tc.feasible {
			if err != nil {
				t.Fatalf("%s (%d): %v", tc.name, tc.size, err)
			}
			if len(data) != tc.size {
				t.Fatalf("%s (%d): produced %d bytes", tc.name, tc.size, len(data))
			}
			rep, perr := report.Parse(data)
			if perr != nil {
				t.Fatalf("%s (%d): unparseable: %v", tc.name, tc.size, perr)
			}
			if verr := rep.Validate(); verr != nil {
				t.Fatalf("%s (%d): invalid: %v", tc.name, tc.size, verr)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s (%d): unexpectedly feasible (%d bytes)", tc.name, tc.size, len(data))
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Fatalf("%s (%d): error %q does not explain the boundary (want %q)", tc.name, tc.size, err, tc.errWant)
		}
	}
}

func TestMinReportSizeDiscoversFeasibleSet(t *testing.T) {
	// Exhaustively confirm the advertised bounds: everything below
	// MinReportSize or inside the gap errors, everything from
	// MinPaddedReportSize up to a margin is hit exactly.
	min, padMin := MinReportSize(), MinPaddedReportSize()
	for size := min - 5; size < padMin+50; size++ {
		data, err := PremadeReport(size)
		feasible := size == min || size >= padMin
		if feasible {
			if err != nil {
				t.Fatalf("size %d inside the advertised feasible set failed: %v", size, err)
			}
			if len(data) != size {
				t.Fatalf("size %d: produced %d", size, len(data))
			}
		} else if err == nil {
			t.Fatalf("size %d outside the advertised feasible set succeeded", size)
		}
	}
}
