package loadgen

import (
	"testing"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

func TestPremadeReportExactSizes(t *testing.T) {
	for _, size := range PaperReportSizes {
		data, err := PremadeReport(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(data) != size {
			t.Fatalf("size %d: got %d bytes", size, len(data))
		}
		rep, err := report.Parse(data)
		if err != nil {
			t.Fatalf("size %d: unparseable: %v", size, err)
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("size %d: invalid: %v", size, err)
		}
	}
}

func TestPremadeReportTooSmall(t *testing.T) {
	if _, err := PremadeReport(50); err == nil {
		t.Fatal("50-byte report accepted")
	}
}

func TestPremadeReportArbitrarySizes(t *testing.T) {
	for _, size := range []int{600, 1024, 4096, 100000} {
		data, err := PremadeReport(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(data) != size {
			t.Fatalf("size %d: got %d", size, len(data))
		}
	}
}

func TestFillToSize(t *testing.T) {
	c := depot.NewStreamCache()
	target := 256 * 1024
	n, err := FillToSize(CacheStore{c}, target, 851)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() < target {
		t.Fatalf("cache %d below target %d", c.Size(), target)
	}
	// Roughly target/entrySize identifiers.
	if n < target/1200 || n > target/700 {
		t.Fatalf("n = %d implausible for target %d", n, target)
	}
	if c.Count() != n {
		t.Fatalf("count %d != fills %d", c.Count(), n)
	}
}

func TestUpdateCycleHoldsSizeSteady(t *testing.T) {
	c := depot.NewStreamCache()
	n, err := FillToSize(CacheStore{c}, 128*1024, 851)
	if err != nil {
		t.Fatal(err)
	}
	sizeAfterFill := c.Size()
	cycle, err := NewUpdateCycle(CacheStore{c}, 851, n)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < n*2; i++ {
		id, err := cycle.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen[id.String()] = true
	}
	if len(seen) != n {
		t.Fatalf("cycle touched %d ids, want %d", len(seen), n)
	}
	if c.Size() != sizeAfterFill {
		t.Fatalf("steady-state size drifted: %d -> %d", sizeAfterFill, c.Size())
	}
	if c.Count() != n {
		t.Fatalf("count changed: %d", c.Count())
	}
}

func TestNewUpdateCycleValidation(t *testing.T) {
	c := depot.NewStreamCache()
	if _, err := NewUpdateCycle(CacheStore{c}, 851, 0); err == nil {
		t.Fatal("empty cycle accepted")
	}
}

func TestDepotStoreAdapter(t *testing.T) {
	d := depot.New(depot.NewStreamCache())
	s := DepotStore{d}
	if err := s.Store(branch.MustParse("a=1"), MustPremadeReport(851)); err != nil {
		t.Fatal(err)
	}
	if s.Size() == 0 {
		t.Fatal("size not reported")
	}
	if d.Stats().Received != 1 {
		t.Fatal("depot stats not updated")
	}
}

func TestMustPremadeReportPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustPremadeReport(10)
}

func TestPremadeReportBoundarySizes(t *testing.T) {
	// Find the minimum feasible size, then confirm exact hits around it.
	min := 0
	for size := 300; size < 900; size++ {
		if data, err := PremadeReport(size); err == nil {
			if len(data) != size {
				t.Fatalf("size %d: got %d", size, len(data))
			}
			min = size
			break
		}
	}
	if min == 0 {
		t.Fatal("no feasible size under 900 bytes")
	}
	// One below the minimum fails cleanly.
	if _, err := PremadeReport(min - 1); err == nil {
		t.Fatalf("size %d unexpectedly feasible", min-1)
	}
	// Sizes inside the gap between the bare report and the smallest padded
	// report (the <pad></pad> wrapper costs 11 bytes) must error, not
	// silently produce the wrong size.
	if _, err := PremadeReport(min + 1); err == nil {
		t.Fatalf("size %d inside the pad gap unexpectedly feasible", min+1)
	}
	for _, delta := range []int{0, 11, 12, 100} {
		data, err := PremadeReport(min + delta)
		if err != nil {
			if delta == 11 {
				// min+11 is padLen 0 again via the adjust path; allow
				// either outcome as long as exactness holds when it
				// succeeds.
				continue
			}
			t.Fatalf("size %d: %v", min+delta, err)
		}
		if len(data) != min+delta {
			t.Fatalf("size %d: got %d", min+delta, len(data))
		}
	}
}
