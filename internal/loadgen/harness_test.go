package loadgen

import (
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"inca/internal/controller"
	"inca/internal/depot"
	"inca/internal/metrics"
	"inca/internal/query"
	"inca/internal/wire"
)

// testCell is an in-process single-depot server: controller behind a
// real wire listener, query tier (with /metrics) behind a real HTTP
// listener — the same surface a spawned inca-server exposes, loopback
// TCP included, without the process boundary.
type testCell struct {
	WireAddr string
	HTTPBase string
	depot    *depot.Depot
	wsrv     *wire.Server
	hsrv     *http.Server
}

func startTestCell(t *testing.T) *testCell {
	t.Helper()
	reg := metrics.NewRegistry()
	d := depot.New(depot.NewIndexedCache())
	ctl := controller.New(d, controller.Options{Metrics: reg})
	wsrv, err := wire.ServeOptions("127.0.0.1:0", ctl.Handle, wire.ServerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	qsrv := query.NewServerMetrics(d, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		wsrv.Close()
		t.Fatal(err)
	}
	hsrv := &http.Server{Handler: qsrv.Handler()}
	go hsrv.Serve(ln)
	c := &testCell{
		WireAddr: wsrv.Addr(),
		HTTPBase: "http://" + ln.Addr().String(),
		depot:    d,
		wsrv:     wsrv,
		hsrv:     hsrv,
	}
	t.Cleanup(func() {
		c.hsrv.Close()
		c.wsrv.Close()
		c.depot.Close()
	})
	return c
}

func TestHarnessMiniRamp(t *testing.T) {
	cell := startTestCell(t)
	h, err := NewHarness(HarnessOptions{
		WireAddr:      cell.WireAddr,
		HTTPBase:      cell.HTTPBase,
		Stages:        []int{1, 2},
		StageDuration: 300 * time.Millisecond,
		Warmup:        50 * time.Millisecond,
		Sites:         4,
		Probes:        2,
		WriteBatch:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Stages) != 2 {
		t.Fatalf("measured %d stages, want 2", len(curve.Stages))
	}
	for i, s := range curve.Stages {
		if s.Concurrency != []int{1, 2}[i] {
			t.Fatalf("stage %d concurrency %d", i, s.Concurrency)
		}
		if s.Ops == 0 || s.OpsPerSec <= 0 {
			t.Fatalf("stage %d did no work: %+v", i, s)
		}
		if s.Errors != 0 {
			t.Fatalf("stage %d saw %d errors against a healthy cell", i, s.Errors)
		}
		if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
			t.Fatalf("stage %d percentiles not ordered: p50=%g p95=%g p99=%g", i, s.P50, s.P95, s.P99)
		}
		// All three op classes must participate in the mixed workload.
		for class := 0; class < NumOpClasses; class++ {
			if s.Classes[class].Ops == 0 {
				t.Fatalf("stage %d: op class %s idle", i, ClassName(class))
			}
		}
		// Server-side counters must have moved over the window: the
		// controller accepted this stage's writes.
		if s.Server["inca_controller_accepted_total"] <= 0 {
			t.Fatalf("stage %d: no server-side ingest observed: %v", i, s.Server)
		}
		if s.Server["inca_query_hits_total"]+s.Server["inca_query_not_modified_total"] <= 0 {
			t.Fatalf("stage %d: no server-side query traffic observed: %v", i, s.Server)
		}
	}
	// Two stages cannot produce a knee (the detector needs three points);
	// the curve must say so rather than fabricate one.
	if curve.KneeFound {
		t.Fatalf("knee %+v detected on a two-stage ramp", curve.Knee)
	}
	if pts := curve.Points(); len(pts) != 2 || pts[1].Load != 2 {
		t.Fatalf("curve points malformed: %+v", pts)
	}
}

func TestHarnessSeedMakesDeepReadsVisible(t *testing.T) {
	cell := startTestCell(t)
	h, err := NewHarness(HarnessOptions{
		WireAddr: cell.WireAddr,
		HTTPBase: cell.HTTPBase,
		Stages:   []int{1},
		Sites:    3,
		Probes:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	if err := h.Seed(); err != nil {
		t.Fatal(err)
	}
	qc := h.queryClient()
	for _, prefix := range h.prefixes {
		body, err := qc.Reports(prefix)
		if err != nil {
			t.Fatalf("deep read at %s after seed: %v", prefix, err)
		}
		if len(body) == 0 {
			t.Fatalf("deep read at %s empty after seed", prefix)
		}
	}
	if got := cell.depot.Stats().Received; got != 6 {
		t.Fatalf("seed stored %d reports, want one per branch (6)", got)
	}
}

func TestHarnessOptionValidation(t *testing.T) {
	if _, err := NewHarness(HarnessOptions{}); err == nil {
		t.Fatal("harness without endpoints accepted")
	}
	if _, err := NewHarness(HarnessOptions{
		WireAddr: "x", HTTPBase: "http://x", Stages: []int{4, 2},
	}); err == nil {
		t.Fatal("non-increasing ramp accepted")
	}
	if _, err := NewHarness(HarnessOptions{
		WireAddr: "x", HTTPBase: "http://x",
		Mix: Mix{Write: -1, CondRead: 2, DeepRead: 0},
	}); err == nil {
		t.Fatal("negative mix weight accepted")
	}
}

func TestValidateStages(t *testing.T) {
	cases := []struct {
		stages []int
		ok     bool
	}{
		{nil, false},
		{[]int{0}, false},
		{[]int{-1, 2}, false},
		{[]int{1}, true},
		{[]int{1, 2, 4, 8}, true},
		{[]int{1, 2, 2}, false},
		{[]int{8, 4}, false},
	}
	for _, tc := range cases {
		if err := ValidateStages(tc.stages); (err == nil) != tc.ok {
			t.Fatalf("ValidateStages(%v) = %v, want ok=%v", tc.stages, err, tc.ok)
		}
	}
}

func TestParseMetricsSumsFamilies(t *testing.T) {
	text := `# HELP inca_depot_received_total Reports accepted.
# TYPE inca_depot_received_total counter
inca_depot_received_total 41
inca_federation_routed_total{shard="a"} 10
inca_federation_routed_total{shard="b"} 32
inca_request_seconds_bucket{le="0.1"} 5
inca_request_seconds_bucket{le="+Inf"} 9
garbage line without a value
inca_bad_value_total notanumber
`
	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m["inca_depot_received_total"] != 41 {
		t.Fatalf("unlabeled counter = %g", m["inca_depot_received_total"])
	}
	if m["inca_federation_routed_total"] != 42 {
		t.Fatalf("labeled family sum = %g, want 42", m["inca_federation_routed_total"])
	}
	if m["inca_request_seconds_bucket"] != 14 {
		t.Fatalf("bucket family sum = %g, want 14", m["inca_request_seconds_bucket"])
	}
	if _, ok := m["inca_bad_value_total"]; ok {
		t.Fatal("malformed value retained")
	}
}

func TestDeltaMetrics(t *testing.T) {
	before := map[string]float64{"a": 10, "b": 5}
	after := map[string]float64{"a": 17, "b": 5, "c": 3}
	d := DeltaMetrics(before, after)
	if d["a"] != 7 || d["b"] != 0 || d["c"] != 3 {
		t.Fatalf("delta = %v", d)
	}
	if len(d) != 3 {
		t.Fatalf("delta carries %d families, want 3", len(d))
	}
}
