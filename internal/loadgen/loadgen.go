// Package loadgen reproduces the synthetic depot workload of paper Section
// 5.2.2: "a simple reporter that read one of four premade reports and
// printed its contents to standard out. The four synthetic report sizes
// were 851, 9,257, 23,168, and 45,527 bytes," with a specification file
// controlling how often the reporter ran and which file it printed, making
// it possible to hold the cache at target sizes between 0.928 MB and
// 5.4 MB.
package loadgen

import (
	"fmt"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
)

// PaperReportSizes are the four premade report sizes from Section 5.2.2
// (bytes), themselves "a sample of actual TeraGrid reporter sizes".
var PaperReportSizes = []int{851, 9257, 23168, 45527}

// PaperCacheSizes are the steady-state cache sizes examined in Figure 9
// (bytes).
var PaperCacheSizes = []int{
	928 * 1024,
	1800 * 1024,
	2700 * 1024,
	3600 * 1024,
	4400 * 1024,
	5400 * 1024,
}

// sizeBounds measures the builder's geometry once: the bare report's
// size (the minimum feasible) and the serialized overhead of the <pad>
// filler element, from which every reachable size follows.
var sizeBounds = sync.OnceValues(func() (bare int, padOverhead int) {
	base, err := report.Marshal(buildReport(0))
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal bare report: %v", err))
	}
	padded, err := report.Marshal(buildReport(1))
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshal padded report: %v", err))
	}
	// The pad alphabet never triggers XML escaping, so size is linear in
	// the pad length: one pad byte costs exactly one output byte, and
	// the rest is the element's fixed framing.
	return len(base), len(padded) - len(base) - 1
})

// MinReportSize returns the smallest size PremadeReport can produce: the
// bare synthetic report with no filler. Sizes strictly between it and
// MinPaddedReportSize are unreachable (the <pad> element's framing costs
// a fixed number of bytes before its first content byte).
func MinReportSize() int {
	bare, _ := sizeBounds()
	return bare
}

// MinPaddedReportSize returns the smallest size above MinReportSize that
// PremadeReport can produce — the bare report plus a one-byte pad and
// its framing. Every size at or above it is reachable exactly.
func MinPaddedReportSize() int {
	bare, overhead := sizeBounds()
	return bare + overhead + 1
}

// PremadeReport builds a serialized report of exactly size bytes,
// padding the body with a filler element. Feasible sizes are exactly
// MinReportSize (the unpadded report) and everything at or above
// MinPaddedReportSize; requests in between or below return an error
// naming the feasible boundary.
func PremadeReport(size int) ([]byte, error) {
	bare, overhead := sizeBounds()
	switch {
	case size < bare:
		return nil, fmt.Errorf("loadgen: size %d below the minimum feasible report size %d (loadgen.MinReportSize)", size, bare)
	case size == bare:
		return report.Marshal(buildReport(0))
	case size < bare+overhead+1:
		return nil, fmt.Errorf("loadgen: size %d unreachable: the pad element's framing costs %d bytes, so feasible sizes are exactly %d or at least %d (loadgen.MinPaddedReportSize)",
			size, overhead, bare, bare+overhead+1)
	}
	data, err := report.Marshal(buildReport(size - bare - overhead))
	if err != nil {
		return nil, err
	}
	if len(data) != size {
		// Defensive: only reachable if the builder's geometry changes out
		// from under the measured bounds.
		return nil, fmt.Errorf("loadgen: produced %d bytes, want %d", len(data), size)
	}
	return data, nil
}

func buildReport(padLen int) *report.Report {
	r := report.New("synthetic.premade", "1.0", "inca.sdsc.edu",
		time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC))
	body := report.Branch("synthetic", "premade",
		report.Branch("statistic", "sample",
			report.Leaf("value", "1.00"),
			report.Leaf("units", "count")),
	)
	if padLen > 0 {
		pad := make([]byte, padLen)
		for i := range pad {
			pad[i] = "abcdefghijklmnopqrstuvwxyz0123456789"[i%36]
		}
		body.Add(report.Leaf("pad", string(pad)))
	}
	r.Body = body
	return r
}

// MustPremadeReport panics on error; for experiment setup code.
func MustPremadeReport(size int) []byte {
	data, err := PremadeReport(size)
	if err != nil {
		panic(err)
	}
	return data
}

// Store abstracts the depot-facing insertion the workload drives.
type Store interface {
	Store(id branch.ID, reportXML []byte) error
	Size() int
}

// FillToSize inserts premade reports of reportSize under distinct branch
// identifiers until the store reaches at least targetBytes, returning the
// number of distinct identifiers used. The identifiers live under
// vo=synthetic so they never collide with deployment data.
func FillToSize(s Store, targetBytes, reportSize int) (int, error) {
	data, err := PremadeReport(reportSize)
	if err != nil {
		return 0, err
	}
	n := 0
	for s.Size() < targetBytes {
		id := branch.MustParse(fmt.Sprintf("seq=fill%06d,size=s%d,vo=synthetic", n, reportSize))
		if err := s.Store(id, data); err != nil {
			return n, err
		}
		n++
		if n > 1<<20 {
			return n, fmt.Errorf("loadgen: fill did not converge")
		}
	}
	return n, nil
}

// UpdateCycle replays steady-state updates: it overwrites round-robin
// among the n identifiers FillToSize created, holding the cache size fixed
// (replacement semantics) — the Section 5.2.2 methodology of emulating
// many clients with one high-frequency client.
type UpdateCycle struct {
	store      Store
	reportSize int
	data       []byte
	n          int
	next       int
}

// NewUpdateCycle prepares a cycle over the identifiers created by a fill.
func NewUpdateCycle(s Store, reportSize, idCount int) (*UpdateCycle, error) {
	if idCount <= 0 {
		return nil, fmt.Errorf("loadgen: empty identifier set")
	}
	data, err := PremadeReport(reportSize)
	if err != nil {
		return nil, err
	}
	return &UpdateCycle{store: s, reportSize: reportSize, data: data, n: idCount}, nil
}

// Step performs one steady-state update and returns the identifier used.
func (u *UpdateCycle) Step() (branch.ID, error) {
	id := branch.MustParse(fmt.Sprintf("seq=fill%06d,size=s%d,vo=synthetic", u.next, u.reportSize))
	u.next = (u.next + 1) % u.n
	return id, u.store.Store(id, u.data)
}
