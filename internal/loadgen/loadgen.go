// Package loadgen reproduces the synthetic depot workload of paper Section
// 5.2.2: "a simple reporter that read one of four premade reports and
// printed its contents to standard out. The four synthetic report sizes
// were 851, 9,257, 23,168, and 45,527 bytes," with a specification file
// controlling how often the reporter ran and which file it printed, making
// it possible to hold the cache at target sizes between 0.928 MB and
// 5.4 MB.
package loadgen

import (
	"fmt"
	"time"

	"inca/internal/branch"
	"inca/internal/report"
)

// PaperReportSizes are the four premade report sizes from Section 5.2.2
// (bytes), themselves "a sample of actual TeraGrid reporter sizes".
var PaperReportSizes = []int{851, 9257, 23168, 45527}

// PaperCacheSizes are the steady-state cache sizes examined in Figure 9
// (bytes).
var PaperCacheSizes = []int{
	928 * 1024,
	1800 * 1024,
	2700 * 1024,
	3600 * 1024,
	4400 * 1024,
	5400 * 1024,
}

// PremadeReport builds a serialized report of exactly size bytes (padding
// the body with measurement rows and a final filler element). Minimum
// feasible size is about 400 bytes; smaller requests return an error.
func PremadeReport(size int) ([]byte, error) {
	base := buildReport(0)
	data, err := report.Marshal(base)
	if err != nil {
		return nil, err
	}
	if len(data) > size {
		return nil, fmt.Errorf("loadgen: size %d below minimum report size %d", size, len(data))
	}
	// The pad leaf costs len("<pad></pad>") plus its content.
	const overhead = len("<pad></pad>")
	padLen := size - len(data) - overhead
	if padLen < 0 {
		padLen = 0
	}
	rep := buildReport(padLen)
	data, err = report.Marshal(rep)
	if err != nil {
		return nil, err
	}
	// Fine-tune: adjust pad by the exact difference (escaping never
	// triggers on the pad alphabet, so length is linear).
	diff := size - len(data)
	if diff != 0 {
		padLen += diff
		if padLen < 0 {
			return nil, fmt.Errorf("loadgen: cannot hit size %d exactly", size)
		}
		rep = buildReport(padLen)
		if data, err = report.Marshal(rep); err != nil {
			return nil, err
		}
	}
	if len(data) != size {
		return nil, fmt.Errorf("loadgen: produced %d bytes, want %d", len(data), size)
	}
	return data, nil
}

func buildReport(padLen int) *report.Report {
	r := report.New("synthetic.premade", "1.0", "inca.sdsc.edu",
		time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC))
	body := report.Branch("synthetic", "premade",
		report.Branch("statistic", "sample",
			report.Leaf("value", "1.00"),
			report.Leaf("units", "count")),
	)
	if padLen > 0 {
		pad := make([]byte, padLen)
		for i := range pad {
			pad[i] = "abcdefghijklmnopqrstuvwxyz0123456789"[i%36]
		}
		body.Add(report.Leaf("pad", string(pad)))
	}
	r.Body = body
	return r
}

// MustPremadeReport panics on error; for experiment setup code.
func MustPremadeReport(size int) []byte {
	data, err := PremadeReport(size)
	if err != nil {
		panic(err)
	}
	return data
}

// Store abstracts the depot-facing insertion the workload drives.
type Store interface {
	Store(id branch.ID, reportXML []byte) error
	Size() int
}

// FillToSize inserts premade reports of reportSize under distinct branch
// identifiers until the store reaches at least targetBytes, returning the
// number of distinct identifiers used. The identifiers live under
// vo=synthetic so they never collide with deployment data.
func FillToSize(s Store, targetBytes, reportSize int) (int, error) {
	data, err := PremadeReport(reportSize)
	if err != nil {
		return 0, err
	}
	n := 0
	for s.Size() < targetBytes {
		id := branch.MustParse(fmt.Sprintf("seq=fill%06d,size=s%d,vo=synthetic", n, reportSize))
		if err := s.Store(id, data); err != nil {
			return n, err
		}
		n++
		if n > 1<<20 {
			return n, fmt.Errorf("loadgen: fill did not converge")
		}
	}
	return n, nil
}

// UpdateCycle replays steady-state updates: it overwrites round-robin
// among the n identifiers FillToSize created, holding the cache size fixed
// (replacement semantics) — the Section 5.2.2 methodology of emulating
// many clients with one high-frequency client.
type UpdateCycle struct {
	store      Store
	reportSize int
	data       []byte
	n          int
	next       int
}

// NewUpdateCycle prepares a cycle over the identifiers created by a fill.
func NewUpdateCycle(s Store, reportSize, idCount int) (*UpdateCycle, error) {
	if idCount <= 0 {
		return nil, fmt.Errorf("loadgen: empty identifier set")
	}
	data, err := PremadeReport(reportSize)
	if err != nil {
		return nil, err
	}
	return &UpdateCycle{store: s, reportSize: reportSize, data: data, n: idCount}, nil
}

// Step performs one steady-state update and returns the identifier used.
func (u *UpdateCycle) Step() (branch.ID, error) {
	id := branch.MustParse(fmt.Sprintf("seq=fill%06d,size=s%d,vo=synthetic", u.next, u.reportSize))
	u.next = (u.next + 1) % u.n
	return id, u.store.Store(id, u.data)
}
