package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ScrapeMetrics fetches a Prometheus text-format exposition and returns
// each series family summed over its label sets — counters like
// inca_depot_received_total arrive ready to delta, whether the target is
// one depot or a federated handler exporting per-shard series. tr may be
// nil (the default transport).
func ScrapeMetrics(tr http.RoundTripper, url string) (map[string]float64, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	if tr != nil {
		client.Transport = tr
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("loadgen: scrape %s: %s", url, resp.Status)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics parses text-format exposition from r. Series values are
// summed per family name (the token before any label braces); comment
// and malformed lines are skipped, NaN values dropped.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value [timestamp]  |  name value [timestamp]
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				continue
			}
			rest = strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
			rest = strings.TrimSpace(line[i+1:])
		} else {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || v != v {
			continue
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// DeltaMetrics subtracts scrape before from scrape after family-wise:
// the server-side work done over a measurement window. Families absent
// from before count from zero; families absent from after are dropped.
func DeltaMetrics(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for name, v := range after {
		out[name] = v - before[name]
	}
	return out
}
