package loadgen

import (
	"inca/internal/branch"
	"inca/internal/depot"
)

// CacheStore adapts a depot.Cache to the workload Store interface.
type CacheStore struct {
	Cache depot.Cache
}

// Store implements Store.
func (c CacheStore) Store(id branch.ID, reportXML []byte) error {
	_, err := c.Cache.Update(id, reportXML)
	return err
}

// Size implements Store.
func (c CacheStore) Size() int { return c.Cache.Size() }

// DepotStore adapts a full depot (cache + archive pipeline) to the
// workload Store interface.
type DepotStore struct {
	Depot *depot.Depot
}

// Store implements Store.
func (d DepotStore) Store(id branch.ID, reportXML []byte) error {
	_, err := d.Depot.Store(id, reportXML)
	return err
}

// Size implements Store.
func (d DepotStore) Size() int { return d.Depot.Cache().Size() }
