package feed

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"inca/internal/branch"
)

func mustParse(t *testing.T, s string) branch.ID {
	t.Helper()
	id, err := branch.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return id
}

// drainWait blocks until the subscriber yields events or a resync flag,
// or the timeout expires.
func drainWait(t *testing.T, s *Subscriber, timeout time.Duration) ([]Event, bool) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		if ev, resync := s.Drain(); len(ev) > 0 || resync {
			return ev, resync
		}
		select {
		case <-s.Ready():
		case <-s.Done():
			return nil, false
		case <-deadline:
			t.Fatalf("drainWait: nothing after %v", timeout)
		}
	}
}

func TestPublishDeliversToMatchingPrefix(t *testing.T) {
	h := NewHub(Options{})
	resA := mustParse(t, "host=a.example.org,site=sdsc")
	resB := mustParse(t, "host=b.example.org,site=ncsa")
	site := mustParse(t, "site=sdsc")

	sub, needSnap, cur := h.Subscribe(site, "")
	defer sub.Close()
	if !needSnap {
		t.Fatalf("fresh subscriber should need a snapshot")
	}
	if cur == "" {
		t.Fatalf("empty current cursor")
	}
	// Up-to-date reconnect resumes live.
	sub2, needSnap2, _ := h.Subscribe(site, cur)
	defer sub2.Close()
	if needSnap2 {
		t.Fatalf("reconnect with current cursor should not need a snapshot")
	}

	h.Publish(Event{Branch: resA, Kind: KindReport, Data: []byte("<a/>")})
	h.Publish(Event{Branch: resB, Kind: KindReport, Data: []byte("<b/>")})

	ev, resync := drainWait(t, sub, time.Second)
	if resync {
		t.Fatalf("unexpected resync")
	}
	if len(ev) != 1 || !ev[0].Branch.Equal(resA) {
		t.Fatalf("want only the site=sdsc event, got %v", ev)
	}
	if ev[0].Cursor == "" || ev[0].Cursor != h.LastCursor() {
		// resB was published after resA, so sub's event cursor is older
		// than the hub's newest.
		if ev[0].Cursor == "" {
			t.Fatalf("event missing cursor")
		}
	}
}

func TestPolicyEventsReachEverySubscriber(t *testing.T) {
	h := NewHub(Options{})
	sub, _, _ := h.Subscribe(mustParse(t, "site=sdsc"), "")
	defer sub.Close()
	h.Publish(Event{Branch: mustParse(t, "site=ncsa"), Kind: KindPolicy, Key: "pol", Data: []byte("pol")})
	ev, _ := drainWait(t, sub, time.Second)
	if len(ev) != 1 || ev[0].Kind != KindPolicy {
		t.Fatalf("policy event not delivered: %v", ev)
	}
}

func TestCoalescingLatestWins(t *testing.T) {
	h := NewHub(Options{})
	res := mustParse(t, "host=a.example.org,site=sdsc")
	other := mustParse(t, "host=b.example.org,site=sdsc")
	sub, _, _ := h.Subscribe(branch.ID{}, "")
	defer sub.Close()

	h.Publish(Event{Branch: res, Kind: KindReport, Data: []byte("v1")})
	h.Publish(Event{Branch: other, Kind: KindReport, Data: []byte("x1")})
	h.Publish(Event{Branch: res, Kind: KindReport, Data: []byte("v2")})
	h.Publish(Event{Branch: res, Kind: KindReport, Data: []byte("v3")})

	ev, resync := drainWait(t, sub, time.Second)
	if resync {
		t.Fatalf("unexpected resync")
	}
	if len(ev) != 2 {
		t.Fatalf("want 2 coalesced events, got %d: %v", len(ev), ev)
	}
	// Drain restores stamp order: "x1" (stamp 2) before "v3" (stamp 4).
	if string(ev[0].Data) != "x1" || string(ev[1].Data) != "v3" {
		t.Fatalf("coalescing kept wrong payloads/order: %q, %q", ev[0].Data, ev[1].Data)
	}
	if !(ev[0].seq < ev[1].seq) {
		t.Fatalf("drain not in stamp order: %d, %d", ev[0].seq, ev[1].seq)
	}
	if ev[1].Cursor != h.LastCursor() {
		t.Fatalf("latest coalesced event should carry the newest cursor")
	}
}

func TestSlowSubscriberDemotion(t *testing.T) {
	h := NewHub(Options{QueueLimit: 4})
	sub, _, _ := h.Subscribe(branch.ID{}, "")
	defer sub.Close()
	for i := 0; i < 10; i++ {
		id := mustParse(t, fmt.Sprintf("host=h%d.example.org,site=sdsc", i))
		h.Publish(Event{Branch: id, Kind: KindReport, Data: []byte("r")})
	}
	ev, resync := drainWait(t, sub, time.Second)
	if !resync || len(ev) != 0 {
		t.Fatalf("want demotion with no events, got %d events resync=%v", len(ev), resync)
	}
	cur := sub.Resync()
	if cur != h.LastCursor() {
		t.Fatalf("resync cursor %q != hub cursor %q", cur, h.LastCursor())
	}
	// After resync the subscriber queues again.
	h.Publish(Event{Branch: mustParse(t, "host=h0.example.org,site=sdsc"), Kind: KindReport, Data: []byte("r2")})
	ev, resync = drainWait(t, sub, time.Second)
	if resync || len(ev) != 1 {
		t.Fatalf("post-resync delivery broken: %d events resync=%v", len(ev), resync)
	}
}

func TestCursorsStrictlyIncreaseAndFloorOnSource(t *testing.T) {
	var gen atomic.Uint64
	h := NewHub(Options{CursorSource: func() uint64 { return gen.Load() }, Epoch: "e"})
	sub, _, _ := h.Subscribe(branch.ID{}, "")
	defer sub.Close()
	id := mustParse(t, "host=a.example.org,site=sdsc")

	c1 := h.Publish(Event{Branch: id, Kind: KindReport, Key: "1"})
	gen.Store(100)
	c2 := h.Publish(Event{Branch: id, Kind: KindReport, Key: "2"})
	c3 := h.Publish(Event{Branch: id, Kind: KindReport, Key: "3"})
	if c1 != "fe-g1" || c2 != "fe-g100" || c3 != "fe-g101" {
		t.Fatalf("cursor sequence wrong: %q %q %q", c1, c2, c3)
	}
	if !strings.HasPrefix(c1, "fe-g") {
		t.Fatalf("cursor format wrong: %q", c1)
	}
}

func TestForceResyncDemotesAll(t *testing.T) {
	h := NewHub(Options{})
	a, _, _ := h.Subscribe(branch.ID{}, "")
	b, _, _ := h.Subscribe(mustParse(t, "site=sdsc"), "")
	defer a.Close()
	defer b.Close()
	h.ForceResync()
	if _, resync := a.Drain(); !resync {
		t.Fatalf("subscriber a not demoted")
	}
	if _, resync := b.Drain(); !resync {
		t.Fatalf("subscriber b not demoted")
	}
}

func TestPublishCopiesData(t *testing.T) {
	h := NewHub(Options{})
	sub, _, _ := h.Subscribe(branch.ID{}, "")
	defer sub.Close()
	buf := []byte("original")
	h.Publish(Event{Branch: mustParse(t, "host=a.example.org,site=sdsc"), Kind: KindReport, Data: buf})
	copy(buf, "SCRIBBLE")
	ev, _ := drainWait(t, sub, time.Second)
	if string(ev[0].Data) != "original" {
		t.Fatalf("publish shared the caller's buffer: %q", ev[0].Data)
	}
}

func TestHubCloseEndsSubscribers(t *testing.T) {
	h := NewHub(Options{})
	sub, _, _ := h.Subscribe(branch.ID{}, "")
	h.Close()
	select {
	case <-sub.Done():
	case <-time.After(time.Second):
		t.Fatalf("Done not closed on hub close")
	}
	// Publishing after close is a quiet no-op.
	h.Publish(Event{Branch: mustParse(t, "host=a.example.org,site=sdsc"), Kind: KindReport})
	// Subscribing after close yields an already-done subscriber.
	s2, _, _ := h.Subscribe(branch.ID{}, "")
	select {
	case <-s2.Done():
	default:
		t.Fatalf("post-close subscriber should be done")
	}
}

// TestConcurrentPublishSubscribe hammers subscribe/unsubscribe/publish
// from many goroutines under -race, and checks every subscriber that
// stays attached observes strictly increasing stamps with no duplicates.
func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(Options{QueueLimit: 64})
	ids := make([]branch.ID, 8)
	for i := range ids {
		ids[i] = mustParse(t, fmt.Sprintf("host=h%d.example.org,site=sdsc", i))
	}
	var work sync.WaitGroup
	stop := make(chan struct{})

	// Publishers.
	for p := 0; p < 4; p++ {
		work.Add(1)
		go func(p int) {
			defer work.Done()
			for i := 0; i < 500; i++ {
				h.Publish(Event{Branch: ids[(p+i)%len(ids)], Kind: KindReport, Key: fmt.Sprintf("p%d-%d", p, i), Data: []byte("r")})
			}
		}(p)
	}
	// Churning subscribers: attach, drain a little, detach.
	for c := 0; c < 4; c++ {
		work.Add(1)
		go func() {
			defer work.Done()
			for i := 0; i < 50; i++ {
				s, _, _ := h.Subscribe(branch.ID{}, "")
				if _, resync := s.Drain(); resync {
					s.Resync()
				}
				s.Close()
			}
		}()
	}
	// One durable subscriber verifying stamp monotonicity across drains.
	var verifier sync.WaitGroup
	verifier.Add(1)
	go func() {
		defer verifier.Done()
		s, _, _ := h.Subscribe(branch.ID{}, "")
		defer s.Close()
		var last uint64
		for {
			ev, resync := s.Drain()
			if resync {
				s.Resync()
				last = 0 // snapshot supersedes; stamps restart monotonic
				continue
			}
			for _, e := range ev {
				if e.seq <= last {
					t.Errorf("stamp regression: %d after %d", e.seq, last)
					return
				}
				last = e.seq
			}
			select {
			case <-s.Ready():
			case <-stop:
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { work.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("concurrent test wedged")
	}
	close(stop)
	verifier.Wait()
	if n := h.SubscriberCount(); n != 0 {
		t.Fatalf("subscribers leaked: %d", n)
	}
}
