// Package feed is the depot change feed's fan-out hub (DESIGN.md §5h):
// branch-keyed pub/sub with bounded per-subscriber queues, latest-wins
// coalescing, and backpressure that demotes slow subscribers to a
// snapshot-then-resubscribe cycle instead of buffering unboundedly.
//
// Cursor model: the hub stamps every published event with a strictly
// increasing sequence rendered as "f<epoch>-g<stamp>". The stamp is seeded
// from the depot's cache generation (CursorSource) and advanced under the
// publish mutex as max(generation, last+1), so stamps are unique and
// ordered even when concurrent commits observe the same generation (the
// sharded cache's generation is a sum of shard counters, not a commit
// log). A reconnecting subscriber presents its last cursor; the hub
// compares it to the newest cursor by string equality — equal means the
// subscriber is current and resumes live, anything else means catch-up,
// which is simply a conditional snapshot read (no replay log, no new
// durability machinery). The epoch is unique per hub lifetime so cursors
// from a previous process never false-match.
package feed

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/metrics"
)

// Kind classifies a change event.
type Kind uint8

const (
	// KindReport is a report stored into the depot cache.
	KindReport Kind = iota
	// KindPolicy is an archival-policy upload.
	KindPolicy
	// KindManual is a manual archive update (derived metrics).
	KindManual
	// KindStatus is an agreement red/green delta (status stream).
	KindStatus
)

// String names the kind for wire payloads.
func (k Kind) String() string {
	switch k {
	case KindReport:
		return "report"
	case KindPolicy:
		return "policy"
	case KindManual:
		return "manual"
	case KindStatus:
		return "status"
	}
	return "unknown"
}

// Event is one published change. Data is shared by every subscriber and
// must be treated as read-only.
type Event struct {
	Branch branch.ID
	Kind   Kind
	// Key is the coalescing identity within a kind; empty means the
	// branch identifier. Two queued events with the same (kind, key)
	// coalesce latest-wins.
	Key string
	// Data is the event payload: the report body for KindReport, the
	// policy name for KindPolicy/KindManual, a status-delta JSON
	// document for KindStatus.
	Data []byte
	// Cursor is the event's position in the stream. Publish assigns it;
	// PublishExternal requires the caller to (federated composition).
	Cursor string

	seq uint64
	at  time.Time
}

// Options configure a Hub.
type Options struct {
	// QueueLimit bounds each subscriber's queue (coalesced entries).
	// Exceeding it demotes the subscriber to snapshot-then-resubscribe.
	// Default 256.
	QueueLimit int
	// CursorSource seeds and floors the stamp sequence — the depot's
	// cache generation, so cursors advance at least as fast as the
	// ETag validator. Nil means a pure counter.
	CursorSource func() uint64
	// Epoch distinguishes this hub's cursors from any other lifetime's.
	// Default: hex of the creation time in nanoseconds.
	Epoch string
	// Name labels this hub's metrics (label "feed").
	Name string
	// Metrics registers the hub's instruments; nil keeps them private.
	Metrics *metrics.Registry
}

// Hub fans events out to subscribers.
type Hub struct {
	mu         sync.Mutex
	last       uint64
	lastCursor string
	epoch      string
	queueLimit int
	source     func() uint64
	subs       map[*Subscriber]struct{}
	closed     bool

	published *metrics.Counter
	coalesced *metrics.Counter
	dropped   *metrics.Counter
	resyncs   *metrics.Counter
	fanoutH   *metrics.Histogram
}

// NewHub creates a hub. The initial cursor is rendered from CursorSource
// so a subscriber connecting before any publish still gets a comparable
// position.
func NewHub(opts Options) *Hub {
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 256
	}
	if opts.Epoch == "" {
		opts.Epoch = strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	if opts.Name == "" {
		opts.Name = "depot"
	}
	h := &Hub{
		epoch:      opts.Epoch,
		queueLimit: opts.QueueLimit,
		source:     opts.CursorSource,
		subs:       make(map[*Subscriber]struct{}),
	}
	if h.source != nil {
		h.last = h.source()
	}
	h.lastCursor = h.render(h.last)
	reg := opts.Metrics
	h.published = reg.Counter("inca_feed_events_published_total", "Events published into the feed hub.", "feed", opts.Name)
	h.coalesced = reg.Counter("inca_feed_events_coalesced_total", "Queued events superseded by a newer event for the same key.", "feed", opts.Name)
	h.dropped = reg.Counter("inca_feed_events_dropped_total", "Events dropped by slow-subscriber queue overflow.", "feed", opts.Name)
	h.resyncs = reg.Counter("inca_feed_resyncs_total", "Subscribers demoted to snapshot-then-resubscribe.", "feed", opts.Name)
	h.fanoutH = reg.Histogram("inca_feed_fanout_seconds", "Latency from publish to subscriber drain.", nil, "feed", opts.Name)
	reg.GaugeFunc("inca_feed_subscribers", "Currently attached feed subscribers.", func() float64 {
		return float64(h.SubscriberCount())
	}, "feed", opts.Name)
	return h
}

func (h *Hub) render(stamp uint64) string {
	return "f" + h.epoch + "-g" + strconv.FormatUint(stamp, 10)
}

// Publish stamps the event with the next cursor and offers it to every
// matching subscriber. Data is copied once (shared read-only) when anyone
// is listening, so callers may reuse their buffer after Publish returns.
func (h *Hub) Publish(e Event) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return h.lastCursor
	}
	stamp := h.last + 1
	if h.source != nil {
		if g := h.source(); g > stamp {
			stamp = g
		}
	}
	h.last = stamp
	e.seq = stamp
	e.Cursor = h.render(stamp)
	h.lastCursor = e.Cursor
	h.offerLocked(e)
	return e.Cursor
}

// PublishExternal publishes an event whose cursor is owned by the caller
// (the federated tier composes per-shard cursors). Ordering within the
// hub still follows publish order.
func (h *Hub) PublishExternal(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.last++
	e.seq = h.last
	h.lastCursor = e.Cursor
	h.offerLocked(e)
}

// SetCursor records a new current cursor without an event (federated
// snapshot resync: subscribers are force-resynced separately).
func (h *Hub) SetCursor(c string) {
	h.mu.Lock()
	h.lastCursor = c
	h.mu.Unlock()
}

func (h *Hub) offerLocked(e Event) {
	h.published.Inc()
	e.at = time.Now()
	copied := false
	for s := range h.subs {
		if !s.wants(e) {
			continue
		}
		if !copied && e.Data != nil {
			e.Data = append([]byte(nil), e.Data...)
			copied = true
		}
		s.offer(e, h)
	}
}

// wants reports whether the event matches the subscriber's branch filter.
// Policy uploads reshape archival behavior for a whole prefix the
// subscriber cannot see from its own subtree, so they go to everyone.
func (s *Subscriber) wants(e Event) bool {
	if e.Kind == KindPolicy {
		return true
	}
	return e.Branch.HasSuffix(s.prefix)
}

// Subscribe registers a subscriber for the branch subtree under prefix.
// The needSnapshot decision is atomic with registration: events published
// after Subscribe returns are queued, so "snapshot at cursor, then apply
// the queue" converges with no missed window. cursor is the client's
// resume position ("" for a fresh subscriber); current is the hub's
// newest cursor, which the snapshot must be served at.
func (h *Hub) Subscribe(prefix branch.ID, cursor string) (sub *Subscriber, needSnapshot bool, current string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub = &Subscriber{
		hub:    h,
		prefix: prefix,
		index:  make(map[string]int),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if h.closed {
		close(sub.done)
		sub.closed = true
		return sub, false, h.lastCursor
	}
	h.subs[sub] = struct{}{}
	return sub, cursor != h.lastCursor, h.lastCursor
}

// LastCursor returns the hub's newest cursor.
func (h *Hub) LastCursor() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastCursor
}

// SubscriberCount returns the number of attached subscribers.
func (h *Hub) SubscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// ForceResync demotes every subscriber to snapshot-then-resubscribe
// (federated membership change: composed cursors are no longer
// comparable).
func (h *Hub) ForceResync() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		s.forceResync(h)
	}
}

// Close detaches every subscriber and refuses further publishes.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.done)
		}
		s.mu.Unlock()
	}
	h.subs = make(map[*Subscriber]struct{})
}

// Subscriber is one attached consumer. Lock order: Hub.mu before
// Subscriber.mu.
type Subscriber struct {
	hub    *Hub
	prefix branch.ID

	mu         sync.Mutex
	queue      []Event
	index      map[string]int // (kind|key) -> queue position
	overflowed bool
	closed     bool
	wake       chan struct{}
	done       chan struct{}
}

func coalesceKey(e Event) string {
	key := e.Key
	if key == "" {
		key = e.Branch.String()
	}
	return string('0'+byte(e.Kind)) + key
}

// offer appends or coalesces one event; called with Hub.mu held.
func (s *Subscriber) offer(e Event, h *Hub) {
	s.mu.Lock()
	if s.closed || s.overflowed {
		// A demoted subscriber re-snapshots at a newer cursor; queueing
		// more events before it does would only be superseded.
		if s.overflowed && !s.closed {
			h.dropped.Inc()
		}
		s.mu.Unlock()
		return
	}
	key := coalesceKey(e)
	if i, ok := s.index[key]; ok {
		s.queue[i] = e
		h.coalesced.Inc()
		s.mu.Unlock()
		s.notify()
		return
	}
	if len(s.queue) >= h.queueLimit {
		// Overflow: drop the whole queue and demote to snapshot — the
		// snapshot at the hub's newest cursor supersedes every queued
		// event, so nothing is lost, only batched.
		h.dropped.Add(uint64(len(s.queue)) + 1)
		h.resyncs.Inc()
		s.queue = nil
		s.index = make(map[string]int)
		s.overflowed = true
		s.mu.Unlock()
		s.notify()
		return
	}
	s.queue = append(s.queue, e)
	s.index[key] = len(s.queue) - 1
	s.mu.Unlock()
	s.notify()
}

func (s *Subscriber) forceResync(h *Hub) {
	s.mu.Lock()
	if !s.closed && !s.overflowed {
		h.resyncs.Inc()
		s.queue = nil
		s.index = make(map[string]int)
		s.overflowed = true
	}
	s.mu.Unlock()
	s.notify()
}

func (s *Subscriber) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Ready is signaled (coalesced) whenever the subscriber has events or was
// demoted. Pair with Drain in a select loop.
func (s *Subscriber) Ready() <-chan struct{} { return s.wake }

// Done is closed when the subscriber or its hub closes.
func (s *Subscriber) Done() <-chan struct{} { return s.done }

// Drain returns the queued events in stamp order and whether the
// subscriber has been demoted (resync true ⇒ no events; call Resync, send
// a fresh snapshot at the returned cursor, and continue). Coalescing
// replaces an event in place with a newer stamp, so the drain sorts by
// stamp to restore monotonic cursor order on the wire.
func (s *Subscriber) Drain() (events []Event, resync bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.overflowed {
		return nil, true
	}
	if len(s.queue) == 0 {
		return nil, false
	}
	events = s.queue
	s.queue = nil
	s.index = make(map[string]int)
	sort.Slice(events, func(i, j int) bool { return events[i].seq < events[j].seq })
	now := time.Now()
	for i := range events {
		s.hub.fanoutH.Observe(now.Sub(events[i].at).Seconds())
	}
	return events, false
}

// Resync acknowledges a demotion: clears the overflow flag so events
// queue again, and returns the hub's newest cursor — the position the
// caller must snapshot at. The flag clear and cursor read are atomic
// under the hub mutex, so events published after Resync are queued and
// re-applied on top of the snapshot (latest-wins makes that idempotent).
func (s *Subscriber) Resync() string {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	s.mu.Lock()
	s.overflowed = false
	s.queue = nil
	s.index = make(map[string]int)
	s.mu.Unlock()
	return s.hub.lastCursor
}

// Close detaches the subscriber.
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	s.mu.Unlock()
}
