package simtime

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func TestRealClockNow(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSimNowStable(t *testing.T) {
	s := NewSim(epoch)
	if !s.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", s.Now(), epoch)
	}
	s.Advance(0)
	if !s.Now().Equal(epoch) {
		t.Fatalf("Now moved on zero advance: %v", s.Now())
	}
}

func TestSimAfterFiresOnAdvance(t *testing.T) {
	s := NewSim(epoch)
	ch := s.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}
	if n := s.Advance(9 * time.Second); n != 0 {
		t.Fatalf("fired %d timers before deadline", n)
	}
	if n := s.Advance(time.Second); n != 1 {
		t.Fatalf("fired %d timers at deadline, want 1", n)
	}
	got := <-ch
	if want := epoch.Add(10 * time.Second); !got.Equal(want) {
		t.Fatalf("timer delivered %v, want %v", got, want)
	}
}

func TestSimAfterNonPositiveFiresImmediately(t *testing.T) {
	s := NewSim(epoch)
	for _, d := range []time.Duration{0, -time.Second} {
		select {
		case got := <-s.After(d):
			if !got.Equal(epoch) {
				t.Fatalf("After(%v) delivered %v, want %v", d, got, epoch)
			}
		default:
			t.Fatalf("After(%v) did not fire immediately", d)
		}
	}
}

func TestSimTimersFireInDeadlineOrder(t *testing.T) {
	s := NewSim(epoch)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		ch := s.After(d)
		go func(i int) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	// Advance past all deadlines one step at a time so delivery order is
	// observable.
	for s.Step() {
		time.Sleep(time.Millisecond) // let the woken goroutine record itself
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestSimEqualDeadlinesFireInRegistrationOrder(t *testing.T) {
	s := NewSim(epoch)
	a := s.After(5 * time.Second)
	b := s.After(5 * time.Second)
	s.Advance(5 * time.Second)
	// Both buffered channels hold a value; heap order determined a fired
	// first. We can only verify both fired and at the same instant.
	ta, tb := <-a, <-b
	if !ta.Equal(tb) {
		t.Fatalf("equal deadlines delivered different times: %v vs %v", ta, tb)
	}
}

func TestSimAdvanceToPastIsNoOp(t *testing.T) {
	s := NewSim(epoch)
	s.Advance(time.Hour)
	if n := s.AdvanceTo(epoch); n != 0 {
		t.Fatalf("AdvanceTo(past) fired %d timers", n)
	}
	if !s.Now().Equal(epoch.Add(time.Hour)) {
		t.Fatalf("AdvanceTo(past) moved the clock backwards to %v", s.Now())
	}
}

func TestSimSleepWakes(t *testing.T) {
	s := NewSim(epoch)
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Minute)
		close(done)
	}()
	s.WaitForWaiters(1)
	if w := s.Waiters(); w != 1 {
		t.Fatalf("Waiters = %d, want 1", w)
	}
	s.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper did not wake after advance")
	}
}

func TestSimNextDeadline(t *testing.T) {
	s := NewSim(epoch)
	if _, ok := s.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a deadline on an empty clock")
	}
	s.After(time.Hour)
	s.After(time.Minute)
	dl, ok := s.NextDeadline()
	if !ok || !dl.Equal(epoch.Add(time.Minute)) {
		t.Fatalf("NextDeadline = %v,%v; want %v,true", dl, ok, epoch.Add(time.Minute))
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
}

func TestSimStepOnEmptyClock(t *testing.T) {
	s := NewSim(epoch)
	if s.Step() {
		t.Fatal("Step fired on an empty clock")
	}
}

func TestSimManyTimersAllFire(t *testing.T) {
	s := NewSim(epoch)
	const n = 1000
	chans := make([]<-chan time.Time, n)
	for i := 0; i < n; i++ {
		chans[i] = s.After(time.Duration(i%97+1) * time.Second)
	}
	if fired := s.Advance(100 * time.Second); fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
	for i, ch := range chans {
		select {
		case <-ch:
		default:
			t.Fatalf("timer %d never delivered", i)
		}
	}
}
