// Package simtime provides a clock abstraction so that Inca components can
// run against either real wall-clock time or a discrete-event virtual clock.
//
// The paper's evaluation observes deployments over one-week windows
// (Sections 5.1 and 5.2.1). Re-running those experiments in real time is not
// practical, so every time-dependent component in this reproduction accepts a
// Clock. The virtual clock executes the same schedule with identical event
// ordering while compressing wall time to however long the work itself takes.
package simtime

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout Inca. Real deployments
// use Real; experiments use a *Sim clock advanced by the harness.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is the wall-clock implementation of Clock.
type Real struct{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// After wraps time.After.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep wraps time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// timer is a pending wake-up registered on a Sim clock.
type timer struct {
	at      time.Time
	ch      chan time.Time
	seq     uint64 // tiebreaker so equal deadlines fire in registration order
	sleeper bool   // registered by Sleep; counted in waiters until fired
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Sim is a virtual clock. Time only moves when the owner calls Advance,
// AdvanceTo, or Run; goroutines blocked in Sleep/After wake deterministically
// in deadline order.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	timers  timerHeap
	seq     uint64
	waiters int // goroutines currently blocked on this clock
	cond    *sync.Cond
}

// NewSim returns a virtual clock whose current time is start.
func NewSim(start time.Time) *Sim {
	s := &Sim{now: start}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After returns a channel that fires when the virtual clock reaches
// Now()+d. Non-positive durations fire at the current instant on the next
// advance (or immediately if the deadline is already due).
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &timer{at: s.now.Add(d), ch: make(chan time.Time, 1), seq: s.seq}
	s.seq++
	if !t.at.After(s.now) {
		t.ch <- s.now
		return t.ch
	}
	heap.Push(&s.timers, t)
	return t.ch
}

// Sleep blocks the calling goroutine until the virtual clock has advanced by
// d. The clock tracks blocked sleepers so a driver can wait for quiescence;
// the waiter count is decremented when the deadline fires (inside
// Advance/Step), not when the goroutine resumes, so after Step returns the
// count already excludes every just-woken sleeper. A driver can therefore
// alternate WaitForWaiters(n) and Step() without racing the sleepers.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	t := &timer{at: s.now.Add(d), ch: make(chan time.Time, 1), seq: s.seq, sleeper: true}
	s.seq++
	heap.Push(&s.timers, t)
	s.waiters++
	s.cond.Broadcast()
	s.mu.Unlock()
	<-t.ch
}

// Waiters reports how many goroutines are currently blocked in Sleep on this
// clock. Harness code uses it to detect that a simulated component has
// settled before advancing time again.
func (s *Sim) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters
}

// WaitForWaiters blocks until at least n goroutines are asleep on the clock.
func (s *Sim) WaitForWaiters(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.waiters < n {
		s.cond.Wait()
	}
}

// Advance moves virtual time forward by d, firing every timer whose deadline
// falls inside the window in deadline order. It returns the number of timers
// fired.
func (s *Sim) Advance(d time.Duration) int {
	return s.AdvanceTo(s.Now().Add(d))
}

// AdvanceTo moves virtual time to target (no-op if target is in the past),
// firing due timers in order. It returns the number of timers fired.
func (s *Sim) AdvanceTo(target time.Time) int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.timers) == 0 || s.timers[0].at.After(target) {
			if target.After(s.now) {
				s.now = target
			}
			s.mu.Unlock()
			return fired
		}
		t := heap.Pop(&s.timers).(*timer)
		if t.at.After(s.now) {
			s.now = t.at
		}
		if t.sleeper {
			s.waiters--
		}
		now := s.now
		s.mu.Unlock()
		t.ch <- now
		fired++
	}
}

// NextDeadline returns the earliest pending timer deadline and true, or the
// zero time and false when no timers are pending.
func (s *Sim) NextDeadline() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.timers) == 0 {
		return time.Time{}, false
	}
	return s.timers[0].at, true
}

// Step advances the clock to the next pending deadline, firing exactly the
// timers due at that instant. It reports whether any timer fired.
func (s *Sim) Step() bool {
	dl, ok := s.NextDeadline()
	if !ok {
		return false
	}
	return s.AdvanceTo(dl) > 0
}

// Pending reports the number of pending timers.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}
