// Package query implements Inca's web-service layer: the depot's store
// interface used by the centralized controller (paper Section 3.2.1) and
// the querying interface for data consumers (Section 3.2.3), which serves
// both current data from the cache (by branch identifier, or the whole
// cache when none is supplied) and archived time series.
//
// The read side is cache-aware: when the depot's cache implements
// depot.Versioned, /cache and /reports responses carry an ETag derived
// from the cache generation, and conditional requests (If-None-Match)
// short-circuit to 304 Not Modified before any cache work happens — the
// cheapest possible answer to the most common consumer poll ("anything
// new since last time?"). The availability overview is memoized on
// (query parameters, generation) for the same reason: between depot
// writes, repeat renders are free.
package query

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/metrics"
	"inca/internal/rrd"
	"inca/internal/wire"
)

// Server exposes a depot over HTTP.
type Server struct {
	d     *depot.Depot
	specs *SpecStore
	reg   *metrics.Registry // nil: instruments stay private, no /metrics route

	// WireStats, when set by the embedding process, surfaces the TCP
	// ingest server's connection/frame counters on /debug/vars as the
	// delivery_* group (e.g. qsrv.WireStats = wireSrv.Stats).
	WireStats func() wire.ServerStats

	// Pprof, when set before Handler is called, mounts the runtime
	// profiling endpoints under /debug/pprof/ (inca-server -pprof).
	Pprof bool

	// Feed, when set before Handler is called, mounts the change feed
	// on /feed (and, when the feed evaluates an agreement, the status
	// snapshot on /summary). See NewFeed.
	Feed *Feed

	// Read-path counters, exposed on /debug/vars (and, with a registry,
	// on /metrics).
	queryHits   *metrics.Counter // /cache and /reports queries that found data
	queryMisses *metrics.Counter // queries for absent branches (404)
	conditional *metrics.Counter // requests carrying If-None-Match
	notModified *metrics.Counter // conditional requests answered 304
	availHits   *metrics.Counter // availability pages served from the memo
	availMisses *metrics.Counter // availability pages rendered fresh

	availMu sync.Mutex
	avail   map[string]*availEntry // canonical query params → rendered page
}

// availEntry is one memoized availability rendering; valid while the
// cache generation is unchanged.
type availEntry struct {
	gen  uint64
	body []byte
}

// availMemoCap bounds the memo; the map resets once it is exceeded (the
// parameter space is small in practice — consumers poll a handful of
// dashboards — so eviction sophistication buys nothing).
const availMemoCap = 128

// NewServer wraps d.
func NewServer(d *depot.Depot) *Server {
	return NewServerMetrics(d, nil)
}

// NewServerMetrics is NewServer with the read-path instruments registered
// in reg and a Prometheus text endpoint mounted at /metrics. A nil reg
// keeps the instruments private and omits the route.
func NewServerMetrics(d *depot.Depot, reg *metrics.Registry) *Server {
	s := &Server{d: d, reg: reg, avail: make(map[string]*availEntry)}
	s.queryHits = reg.Counter("inca_query_hits_total", "Cache and report queries that found data.")
	s.queryMisses = reg.Counter("inca_query_misses_total", "Queries for absent branches (404).")
	s.conditional = reg.Counter("inca_query_conditional_total", "Requests carrying If-None-Match.")
	s.notModified = reg.Counter("inca_query_not_modified_total", "Conditional requests answered 304.")
	s.availHits = reg.Counter("inca_query_availability_memo_hits_total", "Availability pages served from the memo.")
	s.availMisses = reg.Counter("inca_query_availability_renders_total", "Availability pages rendered fresh.")
	return s
}

// timed wraps a handler with the per-endpoint latency histogram
// inca_query_request_seconds{handler=name}. Observation covers the full
// handler, 304s and errors included — the consumer-visible response time.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("inca_query_request_seconds", "Query HTTP request latency by endpoint.", nil, "handler", name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.ObserveSince(start)
	}
}

// Handler returns the HTTP mux:
//
//	POST /store       — envelope in the body; returns an XML receipt
//	POST /policy      — archival policy XML
//	GET  /cache       — ?branch= subtree (whole cache when omitted); ETag/304
//	GET  /reports     — ?branch= all reports under the prefix; ETag/304
//	GET  /archive     — ?branch=&policy=&cf=&start=&end= CSV series
//	GET  /graph       — same params plus &title=&ylabel=; ASCII plot
//	GET  /stats       — depot counters as XML
//	GET  /availability — VO-wide availability overview (memoized)
//	GET  /feed        — SSE/long-poll change feed (servers with Feed set;
//	                    ?branch=&cursor=&stream=&mode=&wait=)
//	GET  /summary     — live agreement status as JSON (feed servers
//	                    evaluating an agreement only)
//	GET  /debug/vars  — read-path counters as JSON
//	GET  /metrics     — Prometheus text exposition (servers built with
//	                    NewServerMetrics only)
//	GET  /debug/pprof/* — runtime profiles (Pprof field set only)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/store", s.timed("store", s.handleStore))
	mux.HandleFunc("/policy", s.timed("policy", s.handlePolicy))
	mux.HandleFunc("/cache", s.timed("cache", readOnly(s.handleCache)))
	mux.HandleFunc("/reports", s.timed("reports", readOnly(s.handleReports)))
	mux.HandleFunc("/archive", s.timed("archive", readOnly(s.handleArchive)))
	mux.HandleFunc("/graph", s.timed("graph", readOnly(s.handleGraph)))
	mux.HandleFunc("/stats", s.timed("stats", readOnly(s.handleStats)))
	mux.HandleFunc("/spec", s.timed("spec", s.handleSpec))
	mux.HandleFunc("/availability", s.timed("availability", readOnly(s.handleAvailability)))
	mux.HandleFunc("/debug/vars", s.timed("debug_vars", readOnly(s.handleDebugVars)))
	if s.Feed != nil {
		mux.HandleFunc("/feed", s.timed("feed", readOnly(s.handleFeed)))
		if s.Feed.status != nil {
			mux.HandleFunc("/summary", s.timed("summary", readOnly(s.handleSummary)))
		}
	}
	if s.reg != nil {
		mux.Handle("/metrics", s.reg.Handler())
	}
	if s.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// readOnly rejects anything but GET and HEAD on a read endpoint.
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// generation returns the cache generation when the underlying cache is
// versioned.
func (s *Server) generation() (uint64, bool) {
	return s.d.CacheGeneration()
}

// etagFor renders a generation as a strong entity tag. Each endpoint has
// per-URL semantics, so the bare generation is a sufficient validator:
// equal generation implies a byte-identical cache, hence byte-identical
// responses.
func etagFor(gen uint64) string {
	return `"` + strconv.FormatUint(gen, 10) + `"`
}

// checkNotModified answers a conditional request with 304 when the
// client's validator still matches. It runs before any cache query — the
// point of the generation-derived ETag is that an up-to-date consumer
// costs one integer comparison, not one document scan.
func (s *Server) checkNotModified(w http.ResponseWriter, r *http.Request, tag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	s.conditional.Inc()
	for _, cand := range strings.Split(inm, ",") {
		if c := strings.TrimSpace(cand); c == tag || c == "*" {
			w.Header().Set("ETag", tag)
			w.WriteHeader(http.StatusNotModified)
			s.notModified.Inc()
			return true
		}
	}
	return false
}

// handleAvailability renders the VO-wide availability overview page:
// GET /availability?resource=a&resource=b&category=Grid&start=&end=[&format=text]
//
// Renders are memoized per (canonical query string, cache generation):
// building the page walks every requested resource's archives, so
// between depot writes the repeat cost collapses to a map lookup.
func (s *Server) handleAvailability(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	contentType := "text/html; charset=utf-8"
	switch q.Get("format") {
	case "text":
		contentType = "text/plain; charset=utf-8"
	case "json":
		// Structured rows — the interchange the federated query tier
		// scatters and merges (see internal/query/federated.go).
		contentType = "application/json; charset=utf-8"
	}
	resources := q["resource"]
	if len(resources) == 0 {
		http.Error(w, "at least one resource parameter required", http.StatusBadRequest)
		return
	}
	var cats []agreement.Category
	for _, c := range q["category"] {
		cats = append(cats, agreement.Category(c))
	}
	if len(cats) == 0 {
		cats = append(agreement.Categories[:0:0], agreement.Categories...)
		cats = append(cats, "Total")
	}
	start, err := time.Parse(time.RFC3339, q.Get("start"))
	if err != nil {
		http.Error(w, "bad start: "+err.Error(), http.StatusBadRequest)
		return
	}
	end, err := time.Parse(time.RFC3339, q.Get("end"))
	if err != nil {
		http.Error(w, "bad end: "+err.Error(), http.StatusBadRequest)
		return
	}
	gen, versioned := s.generation()
	var tag, key string
	if versioned {
		tag = etagFor(gen)
		if s.checkNotModified(w, r, tag) {
			return
		}
		key = q.Encode()
		s.availMu.Lock()
		e, ok := s.avail[key]
		s.availMu.Unlock()
		if ok && e.gen == gen {
			s.availHits.Inc()
			s.writeAvailability(w, r, contentType, tag, e.body)
			return
		}
	}
	page, err := consumer.BuildAvailabilityPage(s.d, "Availability overview", resources, cats, start, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var body []byte
	switch q.Get("format") {
	case "text":
		body = []byte(page.Text())
	case "json":
		if body, err = marshalAvailabilityPage(page); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	default:
		if body, err = page.HTML(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.availMisses.Inc()
	if versioned {
		s.availMu.Lock()
		if len(s.avail) >= availMemoCap {
			s.avail = make(map[string]*availEntry)
		}
		s.avail[key] = &availEntry{gen: gen, body: body}
		s.availMu.Unlock()
	}
	s.writeAvailability(w, r, contentType, tag, body)
}

func (s *Server) writeAvailability(w http.ResponseWriter, r *http.Request, contentType, tag string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	if tag != "" {
		w.Header().Set("ETag", tag)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}

// xmlReceipt is the wire form of a depot.Receipt.
type xmlReceipt struct {
	XMLName    xml.Name `xml:"receipt"`
	Branch     string   `xml:"branch,attr"`
	ReportSize int      `xml:"reportSize,attr"`
	CacheSize  int      `xml:"cacheSize,attr"`
	UnpackNs   int64    `xml:"unpackNs,attr"`
	InsertNs   int64    `xml:"insertNs,attr"`
	ArchiveNs  int64    `xml:"archiveNs,attr"`
	Added      bool     `xml:"added,attr"`
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec, err := s.d.StoreEnvelope(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	xml.NewEncoder(w).Encode(xmlReceipt{
		Branch:     rec.Branch.String(),
		ReportSize: rec.ReportSize,
		CacheSize:  rec.CacheSize,
		UnpackNs:   rec.Unpack.Nanoseconds(),
		InsertNs:   rec.Insert.Nanoseconds(),
		ArchiveNs:  rec.Archive.Nanoseconds(),
		Added:      rec.Added,
	})
}

// xmlPolicy is the wire form of a depot.Policy.
type xmlPolicy struct {
	XMLName     xml.Name `xml:"archivalPolicy"`
	Name        string   `xml:"name,attr"`
	Prefix      string   `xml:"prefix,attr"`
	Path        string   `xml:"path,attr"`
	Step        string   `xml:"step,attr"`
	Granularity int      `xml:"granularity,attr"`
	History     string   `xml:"history,attr"`
	Heartbeat   string   `xml:"heartbeat,attr"`
	// CFs is a comma-separated consolidation function list (default
	// AVERAGE).
	CFs string `xml:"cfs,attr"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var xp xmlPolicy
	if err := xml.Unmarshal(body, &xp); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, err := policyFromXML(xp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.d.AddPolicy(p); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func policyFromXML(xp xmlPolicy) (depot.Policy, error) {
	prefix, err := branch.Parse(xp.Prefix)
	if err != nil {
		return depot.Policy{}, fmt.Errorf("bad prefix: %w", err)
	}
	step, err := time.ParseDuration(xp.Step)
	if err != nil {
		return depot.Policy{}, fmt.Errorf("bad step: %w", err)
	}
	history, err := time.ParseDuration(xp.History)
	if err != nil {
		return depot.Policy{}, fmt.Errorf("bad history: %w", err)
	}
	var hb time.Duration
	if xp.Heartbeat != "" {
		if hb, err = time.ParseDuration(xp.Heartbeat); err != nil {
			return depot.Policy{}, fmt.Errorf("bad heartbeat: %w", err)
		}
	}
	var cfs []rrd.CF
	if xp.CFs != "" {
		for _, s := range strings.Split(xp.CFs, ",") {
			cf, err := parseCF(strings.TrimSpace(s))
			if err != nil {
				return depot.Policy{}, err
			}
			cfs = append(cfs, cf)
		}
	}
	return depot.Policy{
		Name:   xp.Name,
		Prefix: prefix,
		Path:   xp.Path,
		Archive: rrd.ArchivalPolicy{
			Step:        step,
			Granularity: xp.Granularity,
			History:     history,
			Heartbeat:   hb,
			CFs:         cfs,
		},
	}, nil
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	id, err := branch.Parse(r.URL.Query().Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var tag string
	if gen, ok := s.generation(); ok {
		tag = etagFor(gen)
		if s.checkNotModified(w, r, tag) {
			return
		}
	}
	sub, ok, err := s.d.Cache().Query(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		s.queryMisses.Inc()
		http.Error(w, "no data at branch "+id.String(), http.StatusNotFound)
		return
	}
	s.queryHits.Inc()
	w.Header().Set("Content-Type", "text/xml")
	if tag != "" {
		w.Header().Set("ETag", tag)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(sub)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(sub)
}

// handleReports streams the report list: branch identifiers are escaped
// into one reused buffer (no per-identifier string allocation) and the
// pieces are written straight to the response — the exact Content-Length
// is known up front from the piece lengths, so no second full-response
// buffer is built.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	id, err := branch.Parse(r.URL.Query().Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var tag string
	if gen, ok := s.generation(); ok {
		tag = etagFor(gen)
		if s.checkNotModified(w, r, tag) {
			return
		}
	}
	stored, err := s.d.Cache().Reports(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if len(stored) == 0 {
		s.queryMisses.Inc()
	} else {
		s.queryHits.Inc()
	}
	const (
		openTag   = `<stored branch="`
		closeAttr = `">`
		closeTag  = `</stored>`
	)
	var esc bytes.Buffer
	offs := make([]int, len(stored)+1)
	total := len("<reports></reports>")
	for i, st := range stored {
		xml.EscapeText(&esc, []byte(st.ID.String()))
		offs[i+1] = esc.Len()
		total += len(openTag) + (offs[i+1] - offs[i]) + len(closeAttr) + len(st.XML) + len(closeTag)
	}
	w.Header().Set("Content-Type", "text/xml")
	if tag != "" {
		w.Header().Set("ETag", tag)
	}
	w.Header().Set("Content-Length", strconv.Itoa(total))
	if r.Method == http.MethodHead {
		return
	}
	escaped := esc.Bytes()
	io.WriteString(w, "<reports>")
	for i, st := range stored {
		io.WriteString(w, openTag)
		w.Write(escaped[offs[i]:offs[i+1]])
		io.WriteString(w, closeAttr)
		w.Write(st.XML)
		io.WriteString(w, closeTag)
	}
	io.WriteString(w, "</reports>")
}

func parseCF(s string) (rrd.CF, error) {
	switch strings.ToUpper(s) {
	case "", "AVERAGE":
		return rrd.Average, nil
	case "MIN":
		return rrd.Min, nil
	case "MAX":
		return rrd.Max, nil
	case "LAST":
		return rrd.Last, nil
	default:
		return 0, fmt.Errorf("unknown consolidation function %q", s)
	}
}

func (s *Server) archiveParams(r *http.Request) (branch.ID, string, rrd.CF, time.Time, time.Time, error) {
	q := r.URL.Query()
	id, err := branch.Parse(q.Get("branch"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, err
	}
	policy := q.Get("policy")
	if policy == "" {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, fmt.Errorf("policy parameter required")
	}
	cf, err := parseCF(q.Get("cf"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, err
	}
	start, err := time.Parse(time.RFC3339, q.Get("start"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, fmt.Errorf("bad start: %w", err)
	}
	end, err := time.Parse(time.RFC3339, q.Get("end"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, fmt.Errorf("bad end: %w", err)
	}
	return id, policy, cf, start, end, nil
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	id, policy, cf, start, end, err := s.archiveParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Each archived series validates with its own update counter, so a
	// poller's ETag stays good while *other* series ingest — a depot-wide
	// generation would invalidate every /archive client on every applied
	// sample. An up-to-date poller costs one integer comparison, no fetch
	// and no CSV rendering.
	var tag string
	if gen, ok := s.d.ArchiveSeriesGeneration(id, policy); ok {
		tag = etagFor(gen)
		if s.checkNotModified(w, r, tag) {
			return
		}
	}
	series, err := s.d.FetchArchive(id, policy, cf, start, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var body bytes.Buffer
	body.WriteString("time,value\n")
	for _, p := range series.Points {
		v := "nan"
		if !math.IsNaN(p.Values[0]) {
			v = strconv.FormatFloat(p.Values[0], 'g', -1, 64)
		}
		fmt.Fprintf(&body, "%s,%s\n", p.Time.Format(time.RFC3339), v)
	}
	w.Header().Set("Content-Type", "text/csv")
	if tag != "" {
		w.Header().Set("ETag", tag)
	}
	w.Header().Set("Content-Length", strconv.Itoa(body.Len()))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body.Bytes())
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	id, policy, cf, start, end, err := s.archiveParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	series, err := s.d.FetchArchive(id, policy, cf, start, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	out, err := rrd.Graph(series, policy, rrd.GraphOptions{
		Title:  q.Get("title"),
		YLabel: q.Get("ylabel"),
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

// xmlStats is the wire form of depot.Stats.
type xmlStats struct {
	XMLName    xml.Name `xml:"depotStats"`
	Received   uint64   `xml:"received,attr"`
	Bytes      uint64   `xml:"bytes,attr"`
	CacheSize  int      `xml:"cacheSize,attr"`
	CacheCount int      `xml:"cacheCount,attr"`
	Archives   int      `xml:"archives,attr"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.d.Stats()
	w.Header().Set("Content-Type", "text/xml")
	xml.NewEncoder(w).Encode(xmlStats{
		Received: st.Received, Bytes: st.Bytes,
		CacheSize: st.CacheSize, CacheCount: st.CacheCount, Archives: st.Archives,
	})
}

// DebugVars is the JSON shape of /debug/vars: depot ingest counters plus
// the read-path counters this server maintains.
type DebugVars struct {
	Received            uint64 `json:"received"`
	Bytes               uint64 `json:"bytes"`
	CacheSize           int    `json:"cache_size"`
	CacheCount          int    `json:"cache_count"`
	Archives            int    `json:"archives"`
	Versioned           bool   `json:"versioned"`
	Generation          uint64 `json:"generation"`
	ArchiveGeneration   uint64 `json:"archive_generation"`
	ArchiveMatched      uint64 `json:"archive_matched"`
	ArchiveEnqueued     uint64 `json:"archive_enqueued"`
	ArchiveDropped      uint64 `json:"archive_dropped"`
	ArchiveBlocked      uint64 `json:"archive_blocked"`
	ArchiveApplied      uint64 `json:"archive_applied"`
	QueryHits           uint64 `json:"query_hits"`
	QueryMisses         uint64 `json:"query_misses"`
	ConditionalRequests uint64 `json:"conditional_requests"`
	NotModified         uint64 `json:"not_modified"`
	AvailabilityHits    uint64 `json:"availability_hits"`
	AvailabilityMisses  uint64 `json:"availability_misses"`

	// delivery_* is the TCP ingest side (the agent→controller wire
	// protocol), present when the embedding process registered its wire
	// server via Server.WireStats. DeliveryMessages should reconcile with
	// Received: every message the wire accepted reached the depot.
	DeliveryWired           bool   `json:"delivery_wired"`
	DeliveryConnsAccepted   uint64 `json:"delivery_conns_accepted"`
	DeliveryConnsIdleClosed uint64 `json:"delivery_conns_idle_closed"`
	DeliveryMessages        uint64 `json:"delivery_messages"`
	DeliveryBatches         uint64 `json:"delivery_batches"`
}

// handleDebugVars serves the counters expvar-style, but self-rendered:
// the stdlib expvar package registers into a process-global map, which
// would collide when tests (or an embedding process) construct several
// servers.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	st := s.d.Stats()
	v := DebugVars{
		Received:            st.Received,
		Bytes:               st.Bytes,
		CacheSize:           st.CacheSize,
		CacheCount:          st.CacheCount,
		Archives:            st.Archives,
		ArchiveGeneration:   s.d.ArchiveGeneration(),
		ArchiveMatched:      st.Archive.Matched,
		ArchiveEnqueued:     st.Archive.Enqueued,
		ArchiveDropped:      st.Archive.Dropped,
		ArchiveBlocked:      st.Archive.Blocked,
		ArchiveApplied:      st.Archive.Applied,
		QueryHits:           s.queryHits.Value(),
		QueryMisses:         s.queryMisses.Value(),
		ConditionalRequests: s.conditional.Value(),
		NotModified:         s.notModified.Value(),
		AvailabilityHits:    s.availHits.Value(),
		AvailabilityMisses:  s.availMisses.Value(),
	}
	v.Generation, v.Versioned = s.generation()
	if s.WireStats != nil {
		ws := s.WireStats()
		v.DeliveryWired = true
		v.DeliveryConnsAccepted = ws.ConnsAccepted
		v.DeliveryConnsIdleClosed = ws.ConnsIdleClosed
		v.DeliveryMessages = ws.Messages
		v.DeliveryBatches = ws.Batches
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
