// Package query implements Inca's web-service layer: the depot's store
// interface used by the centralized controller (paper Section 3.2.1) and
// the querying interface for data consumers (Section 3.2.3), which serves
// both current data from the cache (by branch identifier, or the whole
// cache when none is supplied) and archived time series.
package query

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/rrd"
)

// Server exposes a depot over HTTP.
type Server struct {
	d     *depot.Depot
	specs *SpecStore
}

// NewServer wraps d.
func NewServer(d *depot.Depot) *Server { return &Server{d: d} }

// Handler returns the HTTP mux:
//
//	POST /store    — envelope in the body; returns an XML receipt
//	POST /policy   — archival policy XML
//	GET  /cache    — ?branch= subtree (whole cache when omitted)
//	GET  /reports  — ?branch= all reports under the prefix
//	GET  /archive  — ?branch=&policy=&cf=&start=&end= CSV series
//	GET  /graph    — same params plus &title=&ylabel=; ASCII plot
//	GET  /stats    — depot counters as XML
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/store", s.handleStore)
	mux.HandleFunc("/policy", s.handlePolicy)
	mux.HandleFunc("/cache", s.handleCache)
	mux.HandleFunc("/reports", s.handleReports)
	mux.HandleFunc("/archive", s.handleArchive)
	mux.HandleFunc("/graph", s.handleGraph)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/spec", s.handleSpec)
	mux.HandleFunc("/availability", s.handleAvailability)
	return mux
}

// handleAvailability renders the VO-wide availability overview page:
// GET /availability?resource=a&resource=b&category=Grid&start=&end=[&format=text]
func (s *Server) handleAvailability(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	resources := q["resource"]
	if len(resources) == 0 {
		http.Error(w, "at least one resource parameter required", http.StatusBadRequest)
		return
	}
	var cats []agreement.Category
	for _, c := range q["category"] {
		cats = append(cats, agreement.Category(c))
	}
	if len(cats) == 0 {
		cats = append(agreement.Categories[:0:0], agreement.Categories...)
		cats = append(cats, "Total")
	}
	start, err := time.Parse(time.RFC3339, q.Get("start"))
	if err != nil {
		http.Error(w, "bad start: "+err.Error(), http.StatusBadRequest)
		return
	}
	end, err := time.Parse(time.RFC3339, q.Get("end"))
	if err != nil {
		http.Error(w, "bad end: "+err.Error(), http.StatusBadRequest)
		return
	}
	page, err := consumer.BuildAvailabilityPage(s.d, "Availability overview", resources, cats, start, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if q.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, page.Text())
		return
	}
	html, err := page.HTML()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(html)
}

// xmlReceipt is the wire form of a depot.Receipt.
type xmlReceipt struct {
	XMLName    xml.Name `xml:"receipt"`
	Branch     string   `xml:"branch,attr"`
	ReportSize int      `xml:"reportSize,attr"`
	CacheSize  int      `xml:"cacheSize,attr"`
	UnpackNs   int64    `xml:"unpackNs,attr"`
	InsertNs   int64    `xml:"insertNs,attr"`
	ArchiveNs  int64    `xml:"archiveNs,attr"`
	Added      bool     `xml:"added,attr"`
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec, err := s.d.StoreEnvelope(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	xml.NewEncoder(w).Encode(xmlReceipt{
		Branch:     rec.Branch.String(),
		ReportSize: rec.ReportSize,
		CacheSize:  rec.CacheSize,
		UnpackNs:   rec.Unpack.Nanoseconds(),
		InsertNs:   rec.Insert.Nanoseconds(),
		ArchiveNs:  rec.Archive.Nanoseconds(),
		Added:      rec.Added,
	})
}

// xmlPolicy is the wire form of a depot.Policy.
type xmlPolicy struct {
	XMLName     xml.Name `xml:"archivalPolicy"`
	Name        string   `xml:"name,attr"`
	Prefix      string   `xml:"prefix,attr"`
	Path        string   `xml:"path,attr"`
	Step        string   `xml:"step,attr"`
	Granularity int      `xml:"granularity,attr"`
	History     string   `xml:"history,attr"`
	Heartbeat   string   `xml:"heartbeat,attr"`
	// CFs is a comma-separated consolidation function list (default
	// AVERAGE).
	CFs string `xml:"cfs,attr"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var xp xmlPolicy
	if err := xml.Unmarshal(body, &xp); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, err := policyFromXML(xp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.d.AddPolicy(p); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func policyFromXML(xp xmlPolicy) (depot.Policy, error) {
	prefix, err := branch.Parse(xp.Prefix)
	if err != nil {
		return depot.Policy{}, fmt.Errorf("bad prefix: %w", err)
	}
	step, err := time.ParseDuration(xp.Step)
	if err != nil {
		return depot.Policy{}, fmt.Errorf("bad step: %w", err)
	}
	history, err := time.ParseDuration(xp.History)
	if err != nil {
		return depot.Policy{}, fmt.Errorf("bad history: %w", err)
	}
	var hb time.Duration
	if xp.Heartbeat != "" {
		if hb, err = time.ParseDuration(xp.Heartbeat); err != nil {
			return depot.Policy{}, fmt.Errorf("bad heartbeat: %w", err)
		}
	}
	var cfs []rrd.CF
	if xp.CFs != "" {
		for _, s := range strings.Split(xp.CFs, ",") {
			cf, err := parseCF(strings.TrimSpace(s))
			if err != nil {
				return depot.Policy{}, err
			}
			cfs = append(cfs, cf)
		}
	}
	return depot.Policy{
		Name:   xp.Name,
		Prefix: prefix,
		Path:   xp.Path,
		Archive: rrd.ArchivalPolicy{
			Step:        step,
			Granularity: xp.Granularity,
			History:     history,
			Heartbeat:   hb,
			CFs:         cfs,
		},
	}, nil
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	id, err := branch.Parse(r.URL.Query().Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub, ok, err := s.d.Cache().Query(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "no data at branch "+id.String(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	w.Write(sub)
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	id, err := branch.Parse(r.URL.Query().Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stored, err := s.d.Cache().Reports(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml")
	fmt.Fprintf(w, "<reports>")
	for _, st := range stored {
		fmt.Fprintf(w, `<stored branch="%s">`, xmlEscape(st.ID.String()))
		w.Write(st.XML)
		fmt.Fprintf(w, "</stored>")
	}
	fmt.Fprintf(w, "</reports>")
}

func xmlEscape(s string) string {
	var sb strings.Builder
	xml.EscapeText(&sb, []byte(s))
	return sb.String()
}

func parseCF(s string) (rrd.CF, error) {
	switch strings.ToUpper(s) {
	case "", "AVERAGE":
		return rrd.Average, nil
	case "MIN":
		return rrd.Min, nil
	case "MAX":
		return rrd.Max, nil
	case "LAST":
		return rrd.Last, nil
	default:
		return 0, fmt.Errorf("unknown consolidation function %q", s)
	}
}

func (s *Server) archiveParams(r *http.Request) (branch.ID, string, rrd.CF, time.Time, time.Time, error) {
	q := r.URL.Query()
	id, err := branch.Parse(q.Get("branch"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, err
	}
	policy := q.Get("policy")
	if policy == "" {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, fmt.Errorf("policy parameter required")
	}
	cf, err := parseCF(q.Get("cf"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, err
	}
	start, err := time.Parse(time.RFC3339, q.Get("start"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, fmt.Errorf("bad start: %w", err)
	}
	end, err := time.Parse(time.RFC3339, q.Get("end"))
	if err != nil {
		return branch.ID{}, "", 0, time.Time{}, time.Time{}, fmt.Errorf("bad end: %w", err)
	}
	return id, policy, cf, start, end, nil
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	id, policy, cf, start, end, err := s.archiveParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	series, err := s.d.FetchArchive(id, policy, cf, start, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	fmt.Fprintf(w, "time,value\n")
	for _, p := range series.Points {
		v := "nan"
		if !math.IsNaN(p.Values[0]) {
			v = strconv.FormatFloat(p.Values[0], 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s,%s\n", p.Time.Format(time.RFC3339), v)
	}
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	id, policy, cf, start, end, err := s.archiveParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	series, err := s.d.FetchArchive(id, policy, cf, start, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	out, err := rrd.Graph(series, policy, rrd.GraphOptions{
		Title:  q.Get("title"),
		YLabel: q.Get("ylabel"),
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, out)
}

// xmlStats is the wire form of depot.Stats.
type xmlStats struct {
	XMLName    xml.Name `xml:"depotStats"`
	Received   uint64   `xml:"received,attr"`
	Bytes      uint64   `xml:"bytes,attr"`
	CacheSize  int      `xml:"cacheSize,attr"`
	CacheCount int      `xml:"cacheCount,attr"`
	Archives   int      `xml:"archives,attr"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.d.Stats()
	w.Header().Set("Content-Type", "text/xml")
	xml.NewEncoder(w).Encode(xmlStats{
		Received: st.Received, Bytes: st.Bytes,
		CacheSize: st.CacheSize, CacheCount: st.CacheCount, Archives: st.Archives,
	})
}
