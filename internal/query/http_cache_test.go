package query

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/rrd"
)

// newIndexedServer builds a server over an IndexedCache-backed depot —
// the configuration where the generation-derived ETags are live.
func newIndexedServer(t *testing.T) (*httptest.Server, *depot.Depot) {
	t.Helper()
	d := depot.New(depot.NewIndexedCache())
	ts := httptest.NewServer(NewServer(d).Handler())
	t.Cleanup(ts.Close)
	return ts, d
}

func TestCacheETagRoundTrip(t *testing.T) {
	ts, _ := newIndexedServer(t)
	c := NewClient(ts.URL)
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0, 990)); err != nil {
		t.Fatal(err)
	}

	body, tag, notMod, err := c.CacheConditional("site=sdsc", "")
	if err != nil {
		t.Fatal(err)
	}
	if notMod || len(body) == 0 || tag == "" {
		t.Fatalf("first fetch: notMod=%v len=%d tag=%q", notMod, len(body), tag)
	}

	// Revalidation with the current tag transfers no body.
	body2, tag2, notMod, err := c.CacheConditional("site=sdsc", tag)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod || body2 != nil || tag2 != tag {
		t.Fatalf("revalidation: notMod=%v body=%q tag=%q", notMod, body2, tag2)
	}

	// A store invalidates the tag; the next conditional fetch pays the body.
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=spruce,site=sdsc", t0, 985)); err != nil {
		t.Fatal(err)
	}
	body3, tag3, notMod, err := c.CacheConditional("site=sdsc", tag)
	if err != nil {
		t.Fatal(err)
	}
	if notMod || tag3 == tag || !bytes.Contains(body3, []byte("spruce")) {
		t.Fatalf("after store: notMod=%v tag=%q body=%s", notMod, tag3, body3)
	}
}

func TestReportsETagAndContentLength(t *testing.T) {
	ts, _ := newIndexedServer(t)
	c := NewClient(ts.URL)
	for _, id := range []string{"tool=pathload,site=sdsc", "tool=spruce,site=sdsc"} {
		if _, err := c.StoreEnvelope(sampleEnvelope(t, id, t0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/reports?branch=site%3Dsdsc")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length = %s, body is %d bytes", cl, len(body))
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("no ETag on /reports")
	}
	if !bytes.HasPrefix(body, []byte("<reports>")) || !bytes.Contains(body, []byte(`<stored branch="tool=pathload,site=sdsc">`)) {
		t.Fatalf("body:\n%s", body)
	}

	_, _, notMod, err := c.ReportsConditional("site=sdsc", tag)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod {
		t.Fatal("reports revalidation missed")
	}
}

func TestUnversionedCacheServesWithoutETags(t *testing.T) {
	// A depot over a cache without Generation still answers, just without
	// conditional semantics.
	d := depot.New(unversionedCache{depot.NewStreamCache()})
	srv := httptest.NewServer(NewServer(d).Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "a=1", t0, 1)); err != nil {
		t.Fatal(err)
	}
	body, tag, notMod, err := c.CacheConditional("", `"0"`)
	if err != nil {
		t.Fatal(err)
	}
	if notMod || tag != "" || len(body) == 0 {
		t.Fatalf("unversioned fetch: notMod=%v tag=%q len=%d", notMod, tag, len(body))
	}
}

// unversionedCache hides the inner cache's Generation method.
type unversionedCache struct{ inner *depot.StreamCache }

func (u unversionedCache) Update(id branch.ID, reportXML []byte) (bool, error) {
	return u.inner.Update(id, reportXML)
}
func (u unversionedCache) Query(id branch.ID) ([]byte, bool, error) { return u.inner.Query(id) }
func (u unversionedCache) Reports(prefix branch.ID) ([]depot.Stored, error) {
	return u.inner.Reports(prefix)
}
func (u unversionedCache) Dump() []byte { return u.inner.Dump() }
func (u unversionedCache) Size() int    { return u.inner.Size() }
func (u unversionedCache) Count() int   { return u.inner.Count() }

func TestReadEndpointsRejectWrites(t *testing.T) {
	ts, _ := newIndexedServer(t)
	for _, path := range []string{"/cache", "/reports", "/archive", "/graph", "/stats", "/availability", "/debug/vars"} {
		resp, err := http.Post(ts.URL+path, "text/xml", strings.NewReader("<x/>"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Fatalf("POST %s: Allow = %q", path, allow)
		}
	}
}

func TestHeadCacheHasLengthNoBody(t *testing.T) {
	ts, _ := newIndexedServer(t)
	c := NewClient(ts.URL)
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "a=1", t0, 1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Head(ts.URL + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("HEAD /cache: status %d, %d body bytes", resp.StatusCode, len(body))
	}
	if cl, _ := strconv.Atoi(resp.Header.Get("Content-Length")); cl == 0 {
		t.Fatal("HEAD /cache: no Content-Length")
	}
}

func TestDebugVarsCounters(t *testing.T) {
	ts, _ := newIndexedServer(t)
	c := NewClient(ts.URL)
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0, 990)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cache("site=sdsc"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cache("site=nowhere"); err == nil {
		t.Fatal("query for absent branch succeeded")
	}
	_, tag, _, err := c.CacheConditional("site=sdsc", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, notMod, err := c.CacheConditional("site=sdsc", tag); err != nil || !notMod {
		t.Fatalf("revalidation: notMod=%v err=%v", notMod, err)
	}

	v, err := c.DebugVars()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Versioned || v.Generation != 1 {
		t.Fatalf("vars: versioned=%v generation=%d", v.Versioned, v.Generation)
	}
	if v.Received != 1 || v.CacheCount != 1 {
		t.Fatalf("vars: received=%d count=%d", v.Received, v.CacheCount)
	}
	if v.QueryHits != 2 || v.QueryMisses != 1 {
		t.Fatalf("vars: hits=%d misses=%d", v.QueryHits, v.QueryMisses)
	}
	if v.ConditionalRequests != 1 || v.NotModified != 1 {
		t.Fatalf("vars: conditional=%d notModified=%d", v.ConditionalRequests, v.NotModified)
	}
}

func TestAvailabilityMemoization(t *testing.T) {
	d := depot.New(depot.NewIndexedCache())
	if err := d.AddPolicy(consumer.AvailabilityPolicy()); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("category=Grid,resource=r1")
	for i := 1; i <= 6; i++ {
		if err := d.ArchiveUpdate(id, consumer.AvailabilityPolicyName,
			t0.Add(time.Duration(i)*10*time.Minute), 100); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewServer(d).Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	u := ts.URL + "/availability?resource=r1&category=Grid&start=" +
		t0.Format(time.RFC3339) + "&end=" + t0.Add(2*time.Hour).Format(time.RFC3339)
	fetch := func() (string, string) {
		t.Helper()
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("ETag")
	}

	first, tag := fetch()
	second, tag2 := fetch()
	if first != second || tag == "" || tag != tag2 {
		t.Fatalf("renders differ or tags odd: %q vs %q", tag, tag2)
	}
	v, err := c.DebugVars()
	if err != nil {
		t.Fatal(err)
	}
	if v.AvailabilityMisses != 1 || v.AvailabilityHits != 1 {
		t.Fatalf("memo: misses=%d hits=%d", v.AvailabilityMisses, v.AvailabilityHits)
	}

	// A depot write invalidates the memo (generation moved).
	if _, err := d.Store(branch.MustParse("tool=x,site=s"), []byte("<rep><v>1</v></rep>")); err != nil {
		t.Fatal(err)
	}
	third, tag3 := fetch()
	if tag3 == tag {
		t.Fatal("ETag unchanged after depot write")
	}
	if third != first {
		// Same underlying data, freshly rendered — content matches even
		// though the validator moved.
		t.Fatalf("re-render differs:\n%s\nvs\n%s", third, first)
	}
	v, err = c.DebugVars()
	if err != nil {
		t.Fatal(err)
	}
	if v.AvailabilityMisses != 2 {
		t.Fatalf("memo after write: misses=%d", v.AvailabilityMisses)
	}

	// Conditional availability fetch revalidates too.
	req, _ := http.NewRequest(http.MethodGet, u, nil)
	req.Header.Set("If-None-Match", tag3)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional availability: status %d", resp.StatusCode)
	}
}

func TestArchiveConditionalReads(t *testing.T) {
	ts, d := newIndexedServer(t)
	if err := d.AddPolicy(depot.Policy{
		Name:   "bw",
		Prefix: branch.MustParse("site=sdsc"),
		Path:   "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{
			Step: 10 * time.Minute, History: 24 * time.Hour,
		},
	}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(ts.URL)
	for i := 1; i <= 6; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", at, float64(900+i))); err != nil {
			t.Fatal(err)
		}
	}
	url := ts.URL + "/archive?branch=tool%3Dpathload%2Csite%3Dsdsc&policy=bw&cf=average" +
		"&start=" + t0.Format(time.RFC3339) + "&end=" + t0.Add(2*time.Hour).Format(time.RFC3339)

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /archive: %d %s", resp.StatusCode, body)
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("no ETag on /archive")
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length %q, body %d bytes", cl, len(body))
	}
	if !strings.HasPrefix(string(body), "time,value\n") {
		t.Fatalf("CSV body: %.60s", body)
	}

	// Revalidation with the current archive generation: 304, no body.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", tag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: %d, want 304", resp.StatusCode)
	}

	// HEAD carries the headers without the body.
	resp, err = http.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	head, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(head) != 0 || resp.Header.Get("ETag") != tag {
		t.Fatalf("HEAD: %d body bytes, tag %q", len(head), resp.Header.Get("ETag"))
	}

	// A new archived sample invalidates the tag.
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0.Add(70*time.Minute), 800)); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", tag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == tag {
		t.Fatalf("after store: %d tag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	if !strings.Contains(string(body2), "800") {
		t.Fatalf("stale body after invalidation: %s", body2)
	}

	// A cache-only store (no policy match) leaves the archive tag valid:
	// the archive generation is independent of the cache generation. So
	// does a store archived into a *different* series of the same policy —
	// the validator is scoped per (branch, policy), not depot-wide.
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=ncsa", t0.Add(2*time.Hour), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=iperf,site=sdsc", t0.Add(2*time.Hour), 500)); err != nil {
		t.Fatal(err)
	}
	tag2 := resp.Header.Get("ETag")
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", tag2)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("unrelated store invalidated the archive tag: %d", resp.StatusCode)
	}
}
