package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/feed"
	"inca/internal/metrics"
)

// FeedOptions configure the server's change feed (DESIGN.md §5h).
type FeedOptions struct {
	// QueueLimit bounds each subscriber's coalesced event queue; a
	// subscriber that falls further behind is demoted to a fresh
	// snapshot. Default 256.
	QueueLimit int
	// Metrics registers the hub instruments (subscribers, published/
	// coalesced/dropped counters, fan-out latency).
	Metrics *metrics.Registry
	// Agreement, when set, turns on the server-side status stream:
	// evaluation runs incrementally on depot changes and red/green
	// deltas are pushed on /feed?stream=status (plus a /summary
	// snapshot endpoint).
	Agreement *agreement.Agreement
	// Reverify is the periodic full re-evaluation interval for the
	// status stream — staleness (MaxAge) advances with wall time, with
	// no depot change to announce it. Default 5m.
	Reverify time.Duration
}

// Feed wires a depot's committed mutations to HTTP subscribers: the
// depot publishes into a fan-out hub, and /feed serves it over SSE or
// long-poll with snapshot catch-up.
type Feed struct {
	d      *depot.Depot
	hub    *feed.Hub
	status *statusFeed // nil unless FeedOptions.Agreement was set
}

// NewFeed attaches a change feed to the depot. Call Close to detach.
func NewFeed(d *depot.Depot, opts FeedOptions) *Feed {
	var source func() uint64
	if _, ok := d.CacheGeneration(); ok {
		source = func() uint64 {
			g, _ := d.CacheGeneration()
			return g
		}
	}
	f := &Feed{d: d}
	f.hub = feed.NewHub(feed.Options{
		QueueLimit:   opts.QueueLimit,
		CursorSource: source,
		Name:         "depot",
		Metrics:      opts.Metrics,
	})
	d.SetPublisher(f.publish)
	if opts.Agreement != nil {
		f.status = newStatusFeed(d, opts.Agreement, opts, f.hub)
	}
	return f
}

// Hub exposes the depot-change hub (the federated tier composes
// per-shard hubs into one).
func (f *Feed) Hub() *feed.Hub { return f.hub }

// Close detaches the feed from the depot and ends every subscriber.
func (f *Feed) Close() {
	f.d.SetPublisher(nil)
	if f.status != nil {
		f.status.stop()
	}
	f.hub.Close()
}

// changeEvent is the wire payload of one change (the SSE "data" body and
// the long-poll event object).
type changeEvent struct {
	Branch string `json:"branch"`
	Kind   string `json:"kind"`
	Report string `json:"report,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// publish is the depot's post-commit hook.
func (f *Feed) publish(c depot.Change) {
	ev := feed.Event{Branch: c.Branch}
	ce := changeEvent{Branch: c.Branch.String()}
	switch c.Kind {
	case depot.ChangeReport:
		ev.Kind = feed.KindReport
		ce.Report = string(c.Report)
	case depot.ChangePolicy:
		ev.Kind = feed.KindPolicy
		ce.Policy = string(c.Report)
		// Coalesce per policy, not per prefix: two policies on one
		// prefix are distinct events.
		ev.Key = "policy|" + ce.Policy
	case depot.ChangeManual:
		ev.Kind = feed.KindManual
		ce.Policy = string(c.Report)
		ev.Key = c.Branch.String() + "|" + ce.Policy
	}
	ce.Kind = ev.Kind.String()
	data, err := json.Marshal(ce)
	if err != nil {
		return
	}
	ev.Data = data
	f.hub.Publish(ev)
}

// snapshot renders the catch-up body for a change-stream subscriber: the
// cache subtree at its prefix, exactly what GET /cache serves (empty
// when the subtree has no data yet).
func (f *Feed) snapshot(prefix branch.ID) ([]byte, error) {
	sub, ok, err := f.d.Cache().Query(prefix)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return sub, nil
}

// handleFeed serves GET /feed?branch=&cursor=[&stream=status][&mode=poll&wait=30s].
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	if s.Feed == nil {
		http.Error(w, "feed disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	prefix, err := branch.Parse(q.Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var hub *feed.Hub
	var snap func() ([]byte, error)
	switch q.Get("stream") {
	case "", "changes":
		hub = s.Feed.hub
		snap = func() ([]byte, error) { return s.Feed.snapshot(prefix) }
	case "status":
		if s.Feed.status == nil {
			http.Error(w, "status stream disabled", http.StatusNotFound)
			return
		}
		hub = s.Feed.status.hub
		snap = s.Feed.status.snapshot
	default:
		http.Error(w, "unknown stream "+q.Get("stream"), http.StatusBadRequest)
		return
	}
	serveFeed(w, r, prefix, hub, snap)
}

// handleSummary serves the status stream's current full state as JSON —
// the paper's Figure 4 page, machine-readable, without subscribing.
func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if s.Feed == nil || s.Feed.status == nil {
		http.Error(w, "status stream disabled", http.StatusNotFound)
		return
	}
	body, err := s.Feed.status.snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}

// serveFeed is the transport layer shared by the single-depot server and
// the federated tier: subscribe, catch up with a snapshot when the
// presented cursor is not current, then stream coalesced events. SSE by
// default; mode=poll does one long-poll exchange.
func serveFeed(w http.ResponseWriter, r *http.Request, prefix branch.ID, hub *feed.Hub, snap func() ([]byte, error)) {
	cursor := r.URL.Query().Get("cursor")
	if r.URL.Query().Get("mode") == "poll" {
		wait := 30 * time.Second
		if ws := r.URL.Query().Get("wait"); ws != "" {
			if d, err := time.ParseDuration(ws); err == nil && d > 0 && d <= 5*time.Minute {
				wait = d
			}
		}
		serveLongPoll(w, r, prefix, hub, snap, cursor, wait)
		return
	}
	serveSSE(w, r, prefix, hub, snap, cursor)
}

// writeSSE frames one server-sent event; data containing newlines is
// split across data: lines per the SSE spec (clients rejoin with \n).
func writeSSE(w io.Writer, event, id string, data []byte) {
	fmt.Fprintf(w, "event: %s\nid: %s\n", event, id)
	if len(data) == 0 {
		io.WriteString(w, "data:\n")
	} else {
		for _, line := range bytes.Split(data, []byte("\n")) {
			fmt.Fprintf(w, "data: %s\n", line)
		}
	}
	io.WriteString(w, "\n")
}

func sseEventName(k feed.Kind) string {
	if k == feed.KindStatus {
		return "status"
	}
	return "change"
}

func serveSSE(w http.ResponseWriter, r *http.Request, prefix branch.ID, hub *feed.Hub, snap func() ([]byte, error), cursor string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub, needSnapshot, current := hub.Subscribe(prefix, cursor)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	if needSnapshot {
		body, err := snap()
		if err != nil {
			writeSSE(w, "error", current, []byte(err.Error()))
			return
		}
		writeSSE(w, "snapshot", current, body)
	} else {
		// The subscriber is current: confirm its cursor so it can
		// persist it even if nothing ever changes.
		writeSSE(w, "resume", current, nil)
	}
	flusher.Flush()

	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			return
		case <-ping.C:
			io.WriteString(w, ": ping\n\n")
			flusher.Flush()
		case <-sub.Ready():
			for {
				events, resync := sub.Drain()
				if resync {
					// Demoted: replace the subscriber's world with a
					// fresh snapshot at the newest cursor and go on
					// streaming (ISSUE's snapshot-then-resubscribe,
					// without paying a reconnect).
					cur := sub.Resync()
					body, err := snap()
					if err != nil {
						writeSSE(w, "error", cur, []byte(err.Error()))
						return
					}
					writeSSE(w, "snapshot", cur, body)
					continue
				}
				if len(events) == 0 {
					break
				}
				for _, e := range events {
					writeSSE(w, sseEventName(e.Kind), e.Cursor, e.Data)
				}
			}
			flusher.Flush()
		}
	}
}

// pollEvent is one event in a long-poll response body.
type pollEvent struct {
	Cursor string          `json:"cursor"`
	Kind   string          `json:"kind"`
	Event  json.RawMessage `json:"event"`
}

// pollResponse is the long-poll body: either a snapshot at a cursor, or
// a batch of events ending at a cursor.
type pollResponse struct {
	Cursor   string      `json:"cursor"`
	Snapshot *string     `json:"snapshot,omitempty"`
	Events   []pollEvent `json:"events,omitempty"`
}

func writePollJSON(w http.ResponseWriter, resp pollResponse) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(resp)
}

func serveLongPoll(w http.ResponseWriter, r *http.Request, prefix branch.ID, hub *feed.Hub, snap func() ([]byte, error), cursor string, wait time.Duration) {
	sub, needSnapshot, current := hub.Subscribe(prefix, cursor)
	defer sub.Close()
	sendSnapshot := func(cur string) {
		body, err := snap()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s := string(body)
		writePollJSON(w, pollResponse{Cursor: cur, Snapshot: &s})
	}
	if needSnapshot {
		sendSnapshot(current)
		return
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		events, resync := sub.Drain()
		if resync {
			sendSnapshot(sub.Resync())
			return
		}
		if len(events) > 0 {
			resp := pollResponse{Cursor: events[len(events)-1].Cursor}
			for _, e := range events {
				resp.Events = append(resp.Events, pollEvent{Cursor: e.Cursor, Kind: e.Kind.String(), Event: json.RawMessage(e.Data)})
			}
			writePollJSON(w, resp)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			w.WriteHeader(http.StatusNoContent)
			return
		case <-timer.C:
			// Nothing changed within the window: the caller's cursor is
			// still current.
			w.WriteHeader(http.StatusNoContent)
			return
		case <-sub.Ready():
		}
	}
}

// statusFeed runs agreement evaluation server-side: a subscriber on the
// depot hub feeds changed branches into the incremental evaluator, and
// the resulting red/green deltas are published on a second hub.
type statusFeed struct {
	hub   *feed.Hub
	cache depot.Cache

	mu  sync.Mutex // guards inc
	inc *agreement.Incremental

	stopCh chan struct{}
	doneCh chan struct{}
}

func newStatusFeed(d *depot.Depot, ag *agreement.Agreement, opts FeedOptions, src *feed.Hub) *statusFeed {
	reverify := opts.Reverify
	if reverify <= 0 {
		reverify = 5 * time.Minute
	}
	sf := &statusFeed{
		hub: feed.NewHub(feed.Options{
			QueueLimit: opts.QueueLimit,
			Name:       "status",
			Metrics:    opts.Metrics,
		}),
		cache:  d.Cache(),
		inc:    agreement.NewIncremental(ag),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	go sf.run(src, reverify)
	return sf
}

func (sf *statusFeed) stop() {
	close(sf.stopCh)
	<-sf.doneCh
	sf.hub.Close()
}

func (sf *statusFeed) run(src *feed.Hub, reverify time.Duration) {
	defer close(sf.doneCh)
	sub, _, _ := src.Subscribe(branch.ID{}, "")
	defer sub.Close()
	sf.full()
	tick := time.NewTicker(reverify)
	defer tick.Stop()
	for {
		select {
		case <-sf.stopCh:
			return
		case <-sub.Done():
			return
		case <-tick.C:
			sf.full()
		case <-sub.Ready():
			events, resync := sub.Drain()
			if resync {
				sub.Resync()
				sf.full()
				continue
			}
			var changed []branch.ID
			for _, e := range events {
				// Policy and manual-archive changes do not alter cached
				// reports, so they cannot move the agreement outcome.
				if e.Kind == feed.KindReport {
					changed = append(changed, e.Branch)
				}
			}
			if len(changed) > 0 {
				sf.update(changed)
			}
		}
	}
}

func (sf *statusFeed) full() {
	sf.mu.Lock()
	_, deltas, err := sf.inc.Full(sf.cache, time.Now())
	sf.mu.Unlock()
	if err == nil {
		sf.publishDeltas(deltas)
	}
}

func (sf *statusFeed) update(changed []branch.ID) {
	sf.mu.Lock()
	deltas, err := sf.inc.Update(sf.cache, changed, time.Now())
	sf.mu.Unlock()
	if err != nil {
		// The incremental path failed (cache read error): resynchronize
		// with a full sweep rather than drift.
		sf.full()
		return
	}
	sf.publishDeltas(deltas)
}

func (sf *statusFeed) publishDeltas(deltas []agreement.Delta) {
	for _, d := range deltas {
		row, err := json.Marshal(statusRowOf(d.Resource, d.Status))
		if err != nil {
			continue
		}
		sf.hub.Publish(feed.Event{Kind: feed.KindStatus, Key: "res|" + d.Resource, Data: row})
	}
}

// statusCellJSON is one category cell of a Figure 4 row.
type statusCellJSON struct {
	Category   string  `json:"category"`
	Pass       int     `json:"pass"`
	Fail       int     `json:"fail"`
	Percent    float64 `json:"pct"`
	Applicable bool    `json:"applicable"`
}

// statusFailureJSON is one expanded red-cell explanation.
type statusFailureJSON struct {
	Category string `json:"category"`
	Test     string `json:"test"`
	Detail   string `json:"detail"`
}

// statusRowJSON is one resource's row: the unit of both the snapshot and
// the delta stream (apply latest-wins by resource).
type statusRowJSON struct {
	Resource string              `json:"resource"`
	Site     string              `json:"site,omitempty"`
	Removed  bool                `json:"removed,omitempty"`
	Cells    []statusCellJSON    `json:"cells,omitempty"`
	Total    *statusCellJSON     `json:"total,omitempty"`
	Failures []statusFailureJSON `json:"failures,omitempty"`
}

func cellOf(c agreement.CategorySummary) statusCellJSON {
	return statusCellJSON{
		Category:   string(c.Category),
		Pass:       c.Pass,
		Fail:       c.Fail,
		Percent:    c.Percent(),
		Applicable: c.Applicable(),
	}
}

func statusRowOf(resource string, rs *agreement.ResourceStatus) statusRowJSON {
	if rs == nil {
		return statusRowJSON{Resource: resource, Removed: true}
	}
	row := statusRowJSON{Resource: rs.Resource, Site: rs.Site}
	for _, c := range rs.Summary() {
		row.Cells = append(row.Cells, cellOf(c))
	}
	total := cellOf(rs.Total())
	row.Total = &total
	for _, f := range rs.Failures() {
		row.Failures = append(row.Failures, statusFailureJSON{
			Category: string(f.Category), Test: f.Test, Detail: f.Detail,
		})
	}
	return row
}

// statusPageJSON is the status snapshot body.
type statusPageJSON struct {
	Agreement string          `json:"agreement"`
	At        time.Time       `json:"at"`
	Resources []statusRowJSON `json:"resources"`
}

func (sf *statusFeed) snapshot() ([]byte, error) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	st := sf.inc.Status()
	page := statusPageJSON{Agreement: st.Agreement.Name, At: st.At, Resources: []statusRowJSON{}}
	for _, rs := range st.Resources {
		page.Resources = append(page.Resources, statusRowOf(rs.Resource, rs))
	}
	return json.Marshal(page)
}
