package query

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/envelope"
	"inca/internal/federation"
	"inca/internal/metrics"
)

// Federated is the scatter-gather query tier over a federation of depot
// shards: it exposes the same HTTP surface as Server, but answers by
// fanning requests across the shards behind a federation.Router and
// merging the responses back into the single-depot shape (DESIGN.md §5f).
//
// Conditional requests work end-to-end: each response's ETag composes
// the ring signature with every shard's own validator, a client's
// If-None-Match decomposes back into per-shard validators, and when every
// shard answers 304 the tier answers 304 — so an up-to-date consumer
// costs one integer comparison per shard and zero merge work. Requests
// at or below the ring's affinity depth skip the fan-out entirely and
// proxy to the one owning shard.
type Federated struct {
	router         *federation.Router
	httpc          *http.Client
	reg            *metrics.Registry
	feed           *FederatedFeed // composed change feed; set by AttachFeed
	preferFollower bool

	fanouts     *metrics.Counter // requests scattered to every shard
	forwards    *metrics.Counter // requests proxied to the owning shard
	conditional *metrics.Counter // requests carrying a decomposable validator
	notModified *metrics.Counter // answered 304 (all shards unchanged)
	merges      *metrics.Counter // responses rebuilt by a document merge
	shardErrors *metrics.Counter // shard requests that failed in transport

	followerReads       *metrics.Counter // read requests served by a follower
	followerFallbacks   *metrics.Counter // follower unreachable; primary answered
	followerRegressions *metrics.Counter // follower behind the client's validator; primary answered
}

// FederatedOptions configures NewFederated.
type FederatedOptions struct {
	// Timeout bounds each per-shard HTTP request (default 30s).
	Timeout time.Duration
	// Client overrides the HTTP transport (Timeout is ignored then).
	Client *http.Client
	// Metrics, when set, registers the tier's counters there and mounts
	// /metrics on the handler.
	Metrics *metrics.Registry
	// PreferFollower sends read requests to a shard's follower when one
	// is attached, offloading the primary. Staleness is bounded by the
	// generation gate: a follower answering with a generation behind the
	// client's own validator is discarded and the primary asked instead,
	// so a consumer's view never moves backwards; replication-epoch
	// composed ETags keep promotion/attach from falsely revalidating.
	PreferFollower bool
}

// NewFederated builds the query tier over router's shards.
func NewFederated(router *federation.Router, opt FederatedOptions) *Federated {
	httpc := opt.Client
	if httpc == nil {
		to := opt.Timeout
		if to <= 0 {
			to = 30 * time.Second
		}
		httpc = &http.Client{Timeout: to}
	}
	reg := opt.Metrics
	return &Federated{
		router:         router,
		httpc:          httpc,
		reg:            reg,
		preferFollower: opt.PreferFollower,
		fanouts:        reg.Counter("inca_federated_fanouts_total", "Requests scattered to every shard."),
		forwards:       reg.Counter("inca_federated_forwards_total", "Requests proxied to the single owning shard."),
		conditional:    reg.Counter("inca_federated_conditional_total", "Requests carrying a composed validator."),
		notModified:    reg.Counter("inca_federated_not_modified_total", "Requests answered 304 — every shard unchanged."),
		merges:         reg.Counter("inca_federated_merges_total", "Responses rebuilt by a cross-shard document merge."),
		shardErrors:    reg.Counter("inca_federated_shard_errors_total", "Per-shard requests failed in transport."),

		followerReads:       reg.Counter("inca_federated_follower_reads_total", "Read requests served by a shard's follower."),
		followerFallbacks:   reg.Counter("inca_federated_follower_fallbacks_total", "Follower reads that fell back to the primary on a transport error."),
		followerRegressions: reg.Counter("inca_federated_follower_regressions_total", "Follower reads discarded by the generation gate — the follower was behind the client's validator."),
	}
}

// Handler returns the federated HTTP mux. The read surface matches
// Server's; /shards and /federation/* administer membership.
func (f *Federated) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/store", f.handleStore)
	mux.HandleFunc("/policy", f.handlePolicy)
	mux.HandleFunc("/cache", readOnly(f.handleCache))
	mux.HandleFunc("/reports", readOnly(f.handleReports))
	mux.HandleFunc("/archive", readOnly(f.handleForwarded))
	mux.HandleFunc("/graph", readOnly(f.handleForwarded))
	mux.HandleFunc("/availability", readOnly(f.handleAvailability))
	mux.HandleFunc("/stats", readOnly(f.handleStats))
	mux.HandleFunc("/debug/vars", readOnly(f.handleDebugVars))
	mux.HandleFunc("/feed", readOnly(f.handleFeed))
	mux.HandleFunc("/shards", readOnly(f.handleShards))
	mux.HandleFunc("/federation/join", f.handleJoin)
	mux.HandleFunc("/federation/leave", f.handleLeave)
	mux.HandleFunc("/federation/promote", f.handlePromote)
	mux.HandleFunc("/federation/replicate", f.handleReplicate)
	if f.reg != nil {
		mux.Handle("/metrics", f.reg.Handler())
	}
	return mux
}

// --- composed validators ---

// composeTag renders the federated entity tag: the ring signature (so a
// validator minted under one topology never matches another) followed by
// each shard's own validator in ring-member order. A shard that offered
// no validator contributes "-", which never matches a real one.
func composeTag(ringSig string, tags []string) string {
	parts := make([]string, len(tags))
	for i, t := range tags {
		t = strings.Trim(t, `"`)
		if t == "" {
			t = "-"
		}
		parts[i] = t
	}
	return `"f` + ringSig + "-" + strings.Join(parts, ".") + `"`
}

// decomposeTag recovers per-shard validators from a client's
// If-None-Match header: nil when no candidate was minted under this ring
// signature with n shards. Returned entries are quoted shard tags, ""
// where the composed tag held a placeholder.
func decomposeTag(inm, ringSig string, n int) []string {
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.Trim(cand, `"`)
		rest, ok := strings.CutPrefix(cand, "f"+ringSig+"-")
		if !ok {
			continue
		}
		parts := strings.Split(rest, ".")
		if len(parts) != n {
			continue
		}
		out := make([]string, n)
		for i, p := range parts {
			if p != "-" && p != "" {
				out[i] = `"` + p + `"`
			}
		}
		return out
	}
	return nil
}

// --- per-shard fetch and scatter ---

type shardResp struct {
	shard  federation.Shard
	status int
	header http.Header
	body   []byte
	etag   string
	err    error
}

// fetchShard asks the shard's primary — the authoritative replica.
func (f *Federated) fetchShard(s federation.Shard, path string, params url.Values, inm string) shardResp {
	base := s.BaseURL()
	if base == "" {
		return shardResp{shard: s, err: fmt.Errorf("shard %s has no querying interface", s.Name())}
	}
	return f.fetchURL(s, base, path, params, inm)
}

// tagGen extracts the numeric generation from a shard validator (the
// shards mint bare-generation ETags, see etagFor).
func tagGen(tag string) (uint64, bool) {
	tag = strings.Trim(strings.TrimSpace(tag), `"`)
	if tag == "" {
		return 0, false
	}
	g, err := strconv.ParseUint(tag, 10, 64)
	return g, err == nil
}

// fetchShardRead is fetchShard with follower read preference: when the
// tier prefers followers and the shard has one with a querying
// interface, the follower answers instead of the primary. Two guards
// bound what a follower may serve: a transport error falls back to the
// primary (availability), and a 200 whose generation is behind the
// client's own validator is discarded for the primary's answer — the
// generation gate that keeps a lagging follower from moving a consumer
// backwards in time. A follower 304 needs no gate: it means the
// follower's current generation equals the validator the client already
// holds.
func (f *Federated) fetchShardRead(s federation.Shard, path string, params url.Values, inm string) shardResp {
	base := ""
	if f.preferFollower {
		base = s.ReplicaBaseURL()
	}
	if base == "" {
		return f.fetchShard(s, path, params, inm)
	}
	resp := f.fetchURL(s, base, path, params, inm)
	if resp.err != nil {
		f.followerFallbacks.Inc()
		return f.fetchShard(s, path, params, inm)
	}
	if resp.status == http.StatusOK && inm != "" {
		if seen, ok := tagGen(inm); ok {
			if got, ok2 := tagGen(resp.etag); ok2 && got < seen {
				f.followerRegressions.Inc()
				return f.fetchShard(s, path, params, inm)
			}
		}
	}
	f.followerReads.Inc()
	return resp
}

func (f *Federated) fetchURL(s federation.Shard, base, path string, params url.Values, inm string) shardResp {
	u := base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return shardResp{shard: s, err: err}
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		f.shardErrors.Inc()
		return shardResp{shard: s, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		f.shardErrors.Inc()
		return shardResp{shard: s, err: err}
	}
	return shardResp{
		shard:  s,
		status: resp.StatusCode,
		header: resp.Header,
		body:   body,
		etag:   resp.Header.Get("ETag"),
	}
}

// scatter fans one request to shards in parallel; perTags (when non-nil)
// supplies each shard's If-None-Match. With read set the fan-out honours
// follower read preference; admin and snapshot scatters keep hitting the
// primaries.
func (f *Federated) scatter(shards []federation.Shard, path string, params url.Values, perTags []string, read bool) []shardResp {
	resps := make([]shardResp, len(shards))
	fetch := f.fetchShard
	if read {
		fetch = f.fetchShardRead
	}
	var wg sync.WaitGroup
	for i, s := range shards {
		inm := ""
		if perTags != nil {
			inm = perTags[i]
		}
		wg.Add(1)
		go func(i int, s federation.Shard, inm string) {
			defer wg.Done()
			resps[i] = fetch(s, path, params, inm)
		}(i, s, inm)
	}
	wg.Wait()
	return resps
}

// scatterConditional is the conditional fan-out: round one revalidates
// each shard with its decomposed validator; if every shard answers 304
// the caller can answer 304 without touching a byte of data. Otherwise a
// second round fetches bodies from the shards that revalidated (their
// bytes are needed for the merge), and the composed tag is rebuilt from
// the validators actually served.
func (f *Federated) scatterConditional(r *http.Request, path string, params url.Values) (resps []shardResp, composed string, unchanged bool, err error) {
	shards := f.router.Shards()
	sig := f.router.Signature()
	perTags := decomposeTag(r.Header.Get("If-None-Match"), sig, len(shards))
	if perTags != nil {
		f.conditional.Inc()
	}
	f.fanouts.Inc()
	resps = f.scatter(shards, path, params, perTags, true)
	for i := range resps {
		if resps[i].err != nil {
			return nil, "", false, fmt.Errorf("shard %s: %w", resps[i].shard.Name(), resps[i].err)
		}
	}
	if perTags != nil {
		all, sawTag := true, false
		for i := range resps {
			switch {
			case resps[i].status == http.StatusNotModified:
				sawTag = true
			case perTags[i] == "" && resps[i].status == http.StatusNotFound:
				// The shard had no data at this branch when the tag was
				// composed (its part was the "-" placeholder) and still has
				// none: unchanged as far as the merge is concerned.
			default:
				all = false
			}
			if !all {
				break
			}
		}
		if all && sawTag {
			f.notModified.Inc()
			return nil, composeTag(sig, perTags), true, nil
		}
	}
	// Refetch the shards that revalidated — the merge needs their bodies.
	var wg sync.WaitGroup
	for i := range resps {
		if resps[i].status != http.StatusNotModified {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = f.fetchShardRead(resps[i].shard, path, params, "")
		}(i)
	}
	wg.Wait()
	tags := make([]string, len(resps))
	for i := range resps {
		if resps[i].err != nil {
			return nil, "", false, fmt.Errorf("shard %s: %w", resps[i].shard.Name(), resps[i].err)
		}
		if resps[i].status == http.StatusOK {
			tags[i] = resps[i].etag
		}
	}
	return resps, composeTag(sig, tags), false, nil
}

func (f *Federated) writeNotModified(w http.ResponseWriter, tag string) {
	w.Header().Set("ETag", tag)
	w.WriteHeader(http.StatusNotModified)
}

func (f *Federated) writeBody(w http.ResponseWriter, r *http.Request, contentType, tag string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	if tag != "" {
		w.Header().Set("ETag", tag)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(body)
}

// --- owner forwarding (requests a single shard can answer) ---

// forwardOwner proxies the request to the shard owning id, re-wrapping
// the shard's validator in a composed tag so a topology change can never
// revalidate a stale answer.
func (f *Federated) forwardOwner(w http.ResponseWriter, r *http.Request, id branch.ID, path string, params url.Values) {
	shard, ok := f.router.Owner(id)
	if !ok {
		http.Error(w, "no shard owns "+id.String(), http.StatusBadGateway)
		return
	}
	f.forwards.Inc()
	sig := f.router.Signature()
	perTags := decomposeTag(r.Header.Get("If-None-Match"), sig, 1)
	inm := ""
	if perTags != nil {
		f.conditional.Inc()
		inm = perTags[0]
	}
	resp := f.fetchShardRead(shard, path, params, inm)
	if resp.err != nil {
		http.Error(w, "shard "+shard.Name()+": "+resp.err.Error(), http.StatusBadGateway)
		return
	}
	if resp.status == http.StatusNotModified {
		f.notModified.Inc()
		f.writeNotModified(w, composeTag(sig, perTags))
		return
	}
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if resp.status == http.StatusOK && resp.etag != "" {
		w.Header().Set("ETag", composeTag(sig, []string{resp.etag}))
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(resp.status)
	if r.Method != http.MethodHead {
		w.Write(resp.body)
	}
}

// handleForwarded serves the endpoints whose branch parameter names a
// single owner regardless of depth (/archive, /graph: an archived series
// lives wholly on the shard owning its branch).
func (f *Federated) handleForwarded(w http.ResponseWriter, r *http.Request) {
	id, err := branch.Parse(r.URL.Query().Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.forwardOwner(w, r, id, r.URL.Path, r.URL.Query())
}

// --- scatter-gather reads ---

func (f *Federated) handleCache(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("branch")
	id, err := branch.Parse(idStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ring := f.router.Ring()
	if !id.IsRoot() && id.Depth() >= ring.Depth() {
		// At or below the affinity depth the subtree has one owner; no
		// fan-out, no merge.
		f.forwardOwner(w, r, id, "/cache", url.Values{"branch": {idStr}})
		return
	}
	resps, tag, unchanged, err := f.scatterConditional(r, "/cache", url.Values{"branch": {idStr}})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if unchanged {
		f.writeNotModified(w, tag)
		return
	}
	var docs []federation.ShardDoc
	for _, resp := range resps {
		switch resp.status {
		case http.StatusOK:
			docs = append(docs, federation.ShardDoc{Shard: resp.shard.Name(), Body: resp.body})
		case http.StatusNotFound:
			// This shard holds nothing under the branch; it contributes
			// nothing to the merge.
		default:
			http.Error(w, fmt.Sprintf("shard %s: status %d: %s", resp.shard.Name(), resp.status, bytes.TrimSpace(resp.body)), http.StatusBadGateway)
			return
		}
	}
	if len(docs) == 0 {
		http.Error(w, "no data at branch "+id.String(), http.StatusNotFound)
		return
	}
	f.merges.Inc()
	merged, err := federation.MergeCache(docs, id, ring)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	f.writeBody(w, r, "text/xml", tag, merged)
}

func (f *Federated) handleReports(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("branch")
	id, err := branch.Parse(idStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ring := f.router.Ring()
	if !id.IsRoot() && id.Depth() >= ring.Depth() {
		f.forwardOwner(w, r, id, "/reports", url.Values{"branch": {idStr}})
		return
	}
	resps, tag, unchanged, err := f.scatterConditional(r, "/reports", url.Values{"branch": {idStr}})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if unchanged {
		f.writeNotModified(w, tag)
		return
	}
	var docs []federation.ShardDoc
	for _, resp := range resps {
		if resp.status != http.StatusOK {
			http.Error(w, fmt.Sprintf("shard %s: status %d: %s", resp.shard.Name(), resp.status, bytes.TrimSpace(resp.body)), http.StatusBadGateway)
			return
		}
		docs = append(docs, federation.ShardDoc{Shard: resp.shard.Name(), Body: resp.body})
	}
	f.merges.Inc()
	merged, err := federation.MergeReports(docs, ring)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	f.writeBody(w, r, "text/xml", tag, merged)
}

// handleAvailability scatters the overview as structured rows
// (format=json against each shard), merges them into request order, and
// renders the page exactly as a single depot would — each resource's
// availability archives live wholly on one shard, so the union of shard
// rows is the single-depot row set.
func (f *Federated) handleAvailability(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	resources := q["resource"]
	if len(resources) == 0 {
		http.Error(w, "at least one resource parameter required", http.StatusBadRequest)
		return
	}
	var cats []agreement.Category
	for _, c := range q["category"] {
		cats = append(cats, agreement.Category(c))
	}
	if len(cats) == 0 {
		cats = append(agreement.Categories[:0:0], agreement.Categories...)
		cats = append(cats, "Total")
	}
	start, err := time.Parse(time.RFC3339, q.Get("start"))
	if err != nil {
		http.Error(w, "bad start: "+err.Error(), http.StatusBadRequest)
		return
	}
	end, err := time.Parse(time.RFC3339, q.Get("end"))
	if err != nil {
		http.Error(w, "bad end: "+err.Error(), http.StatusBadRequest)
		return
	}
	format := q.Get("format")
	params := url.Values{}
	for k, v := range q {
		params[k] = v
	}
	params.Set("format", "json")
	resps, tag, unchanged, err := f.scatterConditional(r, "/availability", params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if unchanged {
		f.writeNotModified(w, tag)
		return
	}
	// Merge rows in request order: resources outer, categories inner —
	// the order BuildAvailabilityPage emits. The first shard (in ring
	// order) with a row for the pair wins; duplicates only exist
	// transiently after a rebalance.
	type pair struct {
		res string
		cat agreement.Category
	}
	rows := make(map[pair]consumer.AvailabilityRow)
	for _, resp := range resps {
		if resp.status != http.StatusOK {
			http.Error(w, fmt.Sprintf("shard %s: status %d: %s", resp.shard.Name(), resp.status, bytes.TrimSpace(resp.body)), http.StatusBadGateway)
			return
		}
		page, err := unmarshalAvailabilityPage(resp.body)
		if err != nil {
			http.Error(w, fmt.Sprintf("shard %s: %v", resp.shard.Name(), err), http.StatusBadGateway)
			return
		}
		for _, row := range page.Rows {
			key := pair{row.Resource, row.Category}
			if _, dup := rows[key]; !dup {
				rows[key] = row
			}
		}
	}
	page := &consumer.AvailabilityPage{Title: "Availability overview", Start: start, End: end}
	for _, res := range resources {
		for _, cat := range cats {
			if row, ok := rows[pair{res, cat}]; ok {
				page.Rows = append(page.Rows, row)
			}
		}
	}
	var body []byte
	contentType := "text/html; charset=utf-8"
	switch format {
	case "text":
		contentType = "text/plain; charset=utf-8"
		body = []byte(page.Text())
	case "json":
		contentType = "application/json; charset=utf-8"
		if body, err = marshalAvailabilityPage(page); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	default:
		if body, err = page.HTML(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	f.merges.Inc()
	f.writeBody(w, r, contentType, tag, body)
}

// --- writes ---

// handleStore routes an envelope to the shard owning its address — the
// HTTP counterpart of the router's wire path.
func (f *Federated) handleStore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := envelope.Address(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	shard, ok := f.router.Owner(id)
	if !ok || shard.BaseURL() == "" {
		http.Error(w, "no shard owns "+id.String(), http.StatusBadGateway)
		return
	}
	resp, err := f.httpc.Post(shard.BaseURL()+"/store", "text/xml", bytes.NewReader(body))
	if err != nil {
		f.shardErrors.Inc()
		http.Error(w, "shard "+shard.Name()+": "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	relayResponse(w, resp)
}

// handlePolicy broadcasts an archival policy to every shard — any shard
// may own branches the policy matches.
func (f *Federated) handlePolicy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, s := range f.router.Shards() {
		if s.BaseURL() == "" {
			http.Error(w, "shard "+s.Name()+" has no querying interface", http.StatusBadGateway)
			return
		}
		resp, err := f.httpc.Post(s.BaseURL()+"/policy", "text/xml", bytes.NewReader(body))
		if err != nil {
			f.shardErrors.Inc()
			http.Error(w, "shard "+s.Name()+": "+err.Error(), http.StatusBadGateway)
			return
		}
		if resp.StatusCode != http.StatusOK {
			relayResponse(w, resp)
			resp.Body.Close()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	w.WriteHeader(http.StatusOK)
}

func relayResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// --- aggregates and administration ---

func (f *Federated) handleStats(w http.ResponseWriter, r *http.Request) {
	resps := f.scatter(f.router.Shards(), "/stats", nil, nil, false)
	var total xmlStats
	for _, resp := range resps {
		if resp.err != nil {
			http.Error(w, "shard "+resp.shard.Name()+": "+resp.err.Error(), http.StatusBadGateway)
			return
		}
		var xs xmlStats
		if err := xml.Unmarshal(resp.body, &xs); err != nil {
			http.Error(w, "shard "+resp.shard.Name()+": "+err.Error(), http.StatusBadGateway)
			return
		}
		total.Received += xs.Received
		total.Bytes += xs.Bytes
		total.CacheSize += xs.CacheSize
		total.CacheCount += xs.CacheCount
		total.Archives += xs.Archives
	}
	w.Header().Set("Content-Type", "text/xml")
	xml.NewEncoder(w).Encode(total)
}

// FederatedVars is the JSON shape of the router's /debug/vars.
type FederatedVars struct {
	Shards         int    `json:"shards"`
	RingDepth      int    `json:"ring_depth"`
	RingReplicas   int    `json:"ring_replicas"`
	RingSignature  string `json:"ring_signature"`
	ReplicaEpoch   uint64 `json:"replica_epoch"`
	Routed         uint64 `json:"routed"`
	Rerouted       uint64 `json:"rerouted"`
	Unroutable     uint64 `json:"unroutable"`
	Refused        uint64 `json:"refused"`
	RerouteDropped uint64 `json:"reroute_dropped"`
	ReplicaShed    uint64 `json:"replica_shed"`
	Promotions     uint64 `json:"promotions"`

	Fanouts             uint64 `json:"fanouts"`
	Forwards            uint64 `json:"forwards"`
	ConditionalRequests uint64 `json:"conditional_requests"`
	NotModified         uint64 `json:"not_modified"`
	Merges              uint64 `json:"merges"`
	ShardErrors         uint64 `json:"shard_errors"`

	FollowerReads       uint64 `json:"follower_reads"`
	FollowerFallbacks   uint64 `json:"follower_fallbacks"`
	FollowerRegressions uint64 `json:"follower_regressions"`

	PerShard []FederatedShardVars `json:"per_shard"`
}

// FederatedShardVars is one shard's delivery accounting on /debug/vars.
// The replica_* group mirrors the primary counters for the follower tee
// and is present only when a follower is attached.
type FederatedShardVars struct {
	Name     string `json:"name"`
	Wire     string `json:"wire"`
	HTTP     string `json:"http"`
	Acked    uint64 `json:"acked"`
	Rejected uint64 `json:"rejected"`
	Requeued uint64 `json:"requeued"`
	Dropped  uint64 `json:"dropped"`
	Redials  uint64 `json:"redials"`

	ReplicaWire     string `json:"replica_wire,omitempty"`
	ReplicaHTTP     string `json:"replica_http,omitempty"`
	ReplicaAcked    uint64 `json:"replica_acked,omitempty"`
	ReplicaRequeued uint64 `json:"replica_requeued,omitempty"`
	ReplicaDropped  uint64 `json:"replica_dropped,omitempty"`
}

func (f *Federated) vars() FederatedVars {
	ring := f.router.Ring()
	st := f.router.Stats()
	v := FederatedVars{
		Shards:              ring.Size(),
		RingDepth:           ring.Depth(),
		RingReplicas:        ring.Replicas(),
		RingSignature:       ring.Signature(),
		ReplicaEpoch:        st.Epoch,
		Routed:              st.Routed,
		Rerouted:            st.Rerouted,
		Unroutable:          st.Unroutable,
		Refused:             st.Refused,
		RerouteDropped:      st.RerouteDropped,
		ReplicaShed:         st.ReplicaShed,
		Promotions:          st.Promotions,
		Fanouts:             f.fanouts.Value(),
		Forwards:            f.forwards.Value(),
		ConditionalRequests: f.conditional.Value(),
		NotModified:         f.notModified.Value(),
		Merges:              f.merges.Value(),
		ShardErrors:         f.shardErrors.Value(),
		FollowerReads:       f.followerReads.Value(),
		FollowerFallbacks:   f.followerFallbacks.Value(),
		FollowerRegressions: f.followerRegressions.Value(),
	}
	for _, ss := range st.Shards {
		sv := FederatedShardVars{
			Name:     ss.Shard.Name(),
			Wire:     ss.Shard.Wire,
			HTTP:     ss.Shard.HTTP,
			Acked:    ss.Batch.Acked,
			Rejected: ss.Batch.Rejected,
			Requeued: ss.Batch.Requeued,
			Dropped:  ss.Batch.Dropped,
			Redials:  ss.Batch.Redials,
		}
		if ss.HasReplica {
			sv.ReplicaWire = ss.Shard.ReplicaWire
			sv.ReplicaHTTP = ss.Shard.ReplicaHTTP
			sv.ReplicaAcked = ss.Replica.Acked
			sv.ReplicaRequeued = ss.Replica.Requeued
			sv.ReplicaDropped = ss.Replica.Dropped
		}
		v.PerShard = append(v.PerShard, sv)
	}
	return v
}

func (f *Federated) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(f.vars())
}

// shardTopology is the JSON shape of /shards.
type shardTopology struct {
	Signature    string      `json:"signature"`
	Depth        int         `json:"depth"`
	Replicas     int         `json:"replicas"`
	ReplicaEpoch uint64      `json:"replica_epoch"`
	Shards       []shardSpec `json:"shards"`
}

type shardSpec struct {
	Name        string `json:"name"`
	Wire        string `json:"wire"`
	HTTP        string `json:"http"`
	ReplicaWire string `json:"replica_wire,omitempty"`
	ReplicaHTTP string `json:"replica_http,omitempty"`
}

func (f *Federated) handleShards(w http.ResponseWriter, r *http.Request) {
	ring := f.router.Ring()
	top := shardTopology{Signature: ring.Signature(), Depth: ring.Depth(), Replicas: ring.Replicas(), ReplicaEpoch: f.router.Epoch()}
	for _, s := range f.router.Shards() {
		top.Shards = append(top.Shards, shardSpec{Name: s.Name(), Wire: s.Wire, HTTP: s.HTTP, ReplicaWire: s.ReplicaWire, ReplicaHTTP: s.ReplicaHTTP})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(top)
}

// handleJoin adds a shard: POST /federation/join?shard=wire/http[&migrate=1].
// With migrate=1 the ranges the new member claims are copied over before
// the ring flips, so reads stay complete throughout; copies the old
// owners keep are masked by the merge's owner-wins rule. The copy is a
// best-effort snapshot — reports ingested for a moved range mid-copy
// reach the new owner on the reporter's next cycle (the cache keeps
// latest-per-branch, so convergence is automatic).
func (f *Federated) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s, err := federation.ParseShard(r.URL.Query().Get("shard"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	migrated := 0
	if r.URL.Query().Get("migrate") == "1" {
		target := f.router.Ring().With(s.Name())
		n, err := f.migrate(f.router.Shards(), target, map[string]federation.Shard{s.Name(): s}, s.Name())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		migrated = n
	}
	if err := f.router.Join(s); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if f.feed != nil {
		f.feed.rewire()
	}
	fmt.Fprintf(w, "joined %s (migrated %d reports)\n", s.Name(), migrated)
}

// handleLeave removes a shard: POST /federation/leave?shard=wire[&migrate=1][&promote=0].
// When the shard has a follower attached the leave is a failover
// instead: the follower is promoted in place (the ring does not move, no
// data redistributes — the slice's history lives on in the follower's
// depot) and every message queued toward the dead primary redelivers to
// the promoted process. Pass promote=0 to force a real departure.
// Otherwise: with migrate=1 the departure is graceful — the router
// drains its queue to the shard (the drain barrier), the shard's reports
// are copied to their new owners, and only then does the ring flip.
// Without migrate (the shard is dead) the router harvests every
// undelivered message and re-routes it — no accepted report is lost
// either way, though data only the dead shard stored is gone until
// reporters re-send. Any re-route loss is reported, never silent.
func (f *Federated) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("shard")
	if name == "" {
		http.Error(w, "shard parameter required", http.StatusBadRequest)
		return
	}
	if s, ok := f.router.Shard(name); ok && s.HasReplica() && r.URL.Query().Get("promote") != "0" {
		f.promote(w, name)
		return
	}
	migrated := 0
	if r.URL.Query().Get("migrate") == "1" {
		if err := f.router.DrainShard(name); err != nil {
			http.Error(w, "drain "+name+": "+err.Error(), http.StatusBadGateway)
			return
		}
		var leaving *federation.Shard
		for _, s := range f.router.Shards() {
			if s.Name() == name {
				s := s
				leaving = &s
				break
			}
		}
		if leaving == nil {
			http.Error(w, "unknown shard "+name, http.StatusNotFound)
			return
		}
		target := f.router.Ring().Without(name)
		survivors := make(map[string]federation.Shard)
		for _, s := range f.router.Shards() {
			if s.Name() != name {
				survivors[s.Name()] = s
			}
		}
		n, err := f.migrate([]federation.Shard{*leaving}, target, survivors, "")
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		migrated = n
	}
	moved, lost, err := f.router.Leave(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if f.feed != nil {
		f.feed.rewire()
	}
	fmt.Fprintf(w, "left %s (migrated %d reports, re-routed %d queued messages, lost %d)\n", name, migrated, moved, lost)
}

// promote fails a shard over to its follower and rewires the composed
// feed (the promoted process serves a fresh cursor space under the new
// replica epoch).
func (f *Federated) promote(w http.ResponseWriter, name string) {
	s, moved, err := f.router.Promote(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if f.feed != nil {
		f.feed.rewire()
	}
	fmt.Fprintf(w, "promoted follower %s for shard %s (re-enqueued %d queued messages)\n", s.Wire, name, moved)
}

// handlePromote fails a shard over to its follower without waiting for a
// leave: POST /federation/promote?shard=name. The ring does not move;
// the slice's reads and ingest switch to the follower process.
func (f *Federated) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("shard")
	if name == "" {
		http.Error(w, "shard parameter required", http.StatusBadRequest)
		return
	}
	f.promote(w, name)
}

// handleReplicate attaches a follower to a running shard:
// POST /federation/replicate?shard=name&follower=wire[/http][&catchup=1].
// The router starts teeing the shard's wire stream to the follower at
// once; with catchup=1 the §5f migration path then closes the history
// gap — the primary's stored reports are fetched and re-stored through
// the follower — so a late-joining follower (or a fresh follower after a
// promotion consumed the old one) converges on the primary's full state.
func (f *Federated) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	name := q.Get("shard")
	if name == "" {
		http.Error(w, "shard parameter required", http.StatusBadRequest)
		return
	}
	fw, fh, _ := strings.Cut(q.Get("follower"), "/")
	if fw == "" {
		http.Error(w, "follower parameter required (wire[/http])", http.StatusBadRequest)
		return
	}
	if err := f.router.AttachReplica(name, fw, fh); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	copied := 0
	if q.Get("catchup") == "1" {
		s, ok := f.router.Shard(name)
		if !ok {
			http.Error(w, "unknown shard "+name, http.StatusNotFound)
			return
		}
		n, err := f.catchUp(s)
		if err != nil {
			http.Error(w, fmt.Sprintf("follower attached but catch-up failed after %d reports: %v", n, err), http.StatusBadGateway)
			return
		}
		copied = n
	}
	if f.feed != nil {
		f.feed.rewire()
	}
	fmt.Fprintf(w, "replicating %s to %s (caught up %d reports)\n", name, fw, copied)
}

// catchUp copies the primary's stored reports onto its follower — the
// §5f migration path pointed at the replica instead of a new ring owner.
// Reports tee'd live while the copy runs are simply stored twice; the
// cache keeps latest-per-branch, so convergence is automatic.
func (f *Federated) catchUp(s federation.Shard) (int, error) {
	dest := s.ReplicaBaseURL()
	if dest == "" {
		return 0, fmt.Errorf("follower of %s has no querying interface for catch-up", s.Name())
	}
	resp := f.fetchShard(s, "/reports", url.Values{"branch": {""}}, "")
	if resp.err != nil {
		return 0, fmt.Errorf("fetch %s reports: %w", s.Name(), resp.err)
	}
	if resp.status != http.StatusOK {
		return 0, fmt.Errorf("fetch %s reports: status %d", s.Name(), resp.status)
	}
	stored, err := federation.ParseReports(resp.body)
	if err != nil {
		return 0, fmt.Errorf("parse %s reports: %w", s.Name(), err)
	}
	copied := 0
	for _, st := range stored {
		env, err := envelope.Encode(envelope.Body, st.ID, st.XML)
		if err != nil {
			return copied, fmt.Errorf("encode %s: %w", st.ID, err)
		}
		put, err := f.httpc.Post(dest+"/store", "text/xml", bytes.NewReader(env))
		if err != nil {
			return copied, fmt.Errorf("store %s on follower: %w", st.ID, err)
		}
		io.Copy(io.Discard, put.Body)
		put.Body.Close()
		if put.StatusCode != http.StatusOK {
			return copied, fmt.Errorf("store %s on follower: status %d", st.ID, put.StatusCode)
		}
		copied++
	}
	return copied, nil
}

// migrate copies stored reports from the sources to their owner under the
// target ring, restricted to onlyTo when non-empty (a join migrates only
// onto the joining shard). dests maps ring names to shards reachable for
// the copy.
func (f *Federated) migrate(sources []federation.Shard, target *federation.Ring, dests map[string]federation.Shard, onlyTo string) (int, error) {
	copied := 0
	for _, src := range sources {
		resp := f.fetchShard(src, "/reports", url.Values{"branch": {""}}, "")
		if resp.err != nil {
			return copied, fmt.Errorf("fetch %s reports: %w", src.Name(), resp.err)
		}
		if resp.status != http.StatusOK {
			return copied, fmt.Errorf("fetch %s reports: status %d", src.Name(), resp.status)
		}
		stored, err := federation.ParseReports(resp.body)
		if err != nil {
			return copied, fmt.Errorf("parse %s reports: %w", src.Name(), err)
		}
		for _, st := range stored {
			owner := target.Owner(st.ID)
			if owner == src.Name() {
				continue
			}
			if onlyTo != "" && owner != onlyTo {
				continue
			}
			dest, ok := dests[owner]
			if !ok || dest.BaseURL() == "" {
				return copied, fmt.Errorf("no reachable destination %s for %s", owner, st.ID)
			}
			env, err := envelope.Encode(envelope.Body, st.ID, st.XML)
			if err != nil {
				return copied, fmt.Errorf("encode %s: %w", st.ID, err)
			}
			put, err := f.httpc.Post(dest.BaseURL()+"/store", "text/xml", bytes.NewReader(env))
			if err != nil {
				return copied, fmt.Errorf("store %s on %s: %w", st.ID, owner, err)
			}
			io.Copy(io.Discard, put.Body)
			put.Body.Close()
			if put.StatusCode != http.StatusOK {
				return copied, fmt.Errorf("store %s on %s: status %d", st.ID, owner, put.StatusCode)
			}
			copied++
		}
	}
	return copied, nil
}

// --- availability page JSON codec ---

// nanFloat marshals NaN as null (encoding/json rejects NaN outright);
// rows for never-sampled series carry NaN minima.
type nanFloat float64

func (f nanFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

func (f *nanFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = nanFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = nanFloat(v)
	return nil
}

type availPageJSON struct {
	Title string         `json:"title"`
	Start time.Time      `json:"start"`
	End   time.Time      `json:"end"`
	Rows  []availRowJSON `json:"rows"`
}

type availRowJSON struct {
	Resource string   `json:"resource"`
	Category string   `json:"category"`
	Spark    string   `json:"spark"`
	Mean     nanFloat `json:"mean"`
	Min      nanFloat `json:"min"`
	Samples  int      `json:"samples"`
}

// marshalAvailabilityPage renders the structured row form served by
// /availability?format=json — the shard-to-tier interchange the federated
// merge is built on.
func marshalAvailabilityPage(p *consumer.AvailabilityPage) ([]byte, error) {
	out := availPageJSON{Title: p.Title, Start: p.Start, End: p.End}
	for _, r := range p.Rows {
		out.Rows = append(out.Rows, availRowJSON{
			Resource: r.Resource,
			Category: string(r.Category),
			Spark:    r.Spark,
			Mean:     nanFloat(r.Mean),
			Min:      nanFloat(r.Min),
			Samples:  r.Samples,
		})
	}
	return json.Marshal(out)
}

func unmarshalAvailabilityPage(data []byte) (*consumer.AvailabilityPage, error) {
	var in availPageJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("bad availability json: %w", err)
	}
	p := &consumer.AvailabilityPage{Title: in.Title, Start: in.Start, End: in.End}
	for _, r := range in.Rows {
		p.Rows = append(p.Rows, consumer.AvailabilityRow{
			Resource: r.Resource,
			Category: agreement.Category(r.Category),
			Spark:    r.Spark,
			Mean:     float64(r.Mean),
			Min:      float64(r.Min),
			Samples:  r.Samples,
		})
	}
	return p, nil
}
