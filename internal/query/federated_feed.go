package query

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"inca/internal/branch"
	"inca/internal/federation"
	"inca/internal/feed"
)

// FederatedFeed composes the shards' change feeds into one stream on the
// federated tier: a watcher per shard subscribes to that shard's /feed
// and republishes its events into a local fan-out hub, so a consumer
// subscribes once and observes every shard's changes merged. Cursors are
// composed the same way /cache ETags are (PR 6): the ring signature
// followed by each shard's own cursor in ring-member order, joined with
// "." — "f<ringSig>-<c1>.<c2>...". A membership change mints a new
// signature, so a composed cursor from the old topology never
// revalidates: every subscriber is demoted to a fresh merged snapshot.
type FederatedFeed struct {
	fed *Federated
	hub *feed.Hub

	mu          sync.Mutex
	sig         string   // ring signature the watchers were wired under
	cursors     []string // latest per-shard cursor, ring-member order
	unsupported []string // shard names whose /feed is missing
	stopCh      chan struct{}
	closed      bool
	wg          sync.WaitGroup
}

// AttachFeed composes the shards' change feeds and mounts them on the
// tier's /feed. Call before Handler; Close the returned feed to detach.
// QueueLimit and Metrics apply to the local hub; Agreement is ignored
// (the status stream is a single-depot feature — subscribe to a shard).
func (f *Federated) AttachFeed(opts FeedOptions) *FederatedFeed {
	ff := &FederatedFeed{fed: f}
	ff.hub = feed.NewHub(feed.Options{
		QueueLimit: opts.QueueLimit,
		Name:       "federated",
		Metrics:    opts.Metrics,
	})
	f.feed = ff
	ff.rewire()
	return ff
}

// Close stops every shard watcher and ends every subscriber.
func (ff *FederatedFeed) Close() {
	ff.mu.Lock()
	if ff.closed {
		ff.mu.Unlock()
		return
	}
	ff.closed = true
	if ff.stopCh != nil {
		close(ff.stopCh)
	}
	ff.mu.Unlock()
	ff.wg.Wait()
	ff.hub.Close()
}

// composeLocked renders the composed cursor from the per-shard cursors;
// a shard that has not reported a position yet contributes "-", which
// never matches a real cursor.
func (ff *FederatedFeed) composeLocked() string {
	parts := make([]string, len(ff.cursors))
	for i, c := range ff.cursors {
		if c == "" {
			c = "-"
		}
		parts[i] = c
	}
	return "f" + ff.sig + "-" + strings.Join(parts, ".")
}

// rewire tears down the watchers and restarts them against the current
// ring. Called at attach time and after every membership change: the
// composed cursor space changes with the signature, so subscribers are
// force-resynced to a merged snapshot under the new topology.
func (ff *FederatedFeed) rewire() {
	ff.mu.Lock()
	if ff.closed {
		ff.mu.Unlock()
		return
	}
	// The router's composed signature (ring + replica epoch): a promotion
	// keeps the ring but moves the shard's feed to a different process, so
	// it must mint a new cursor space and force a resync just as a
	// membership change does.
	sig := ff.fed.router.Signature()
	if sig == ff.sig && ff.stopCh != nil {
		ff.mu.Unlock()
		return
	}
	if ff.stopCh != nil {
		close(ff.stopCh)
	}
	stop := make(chan struct{})
	shards := ff.fed.router.Shards()
	ff.stopCh = stop
	ff.sig = sig
	ff.cursors = make([]string, len(shards))
	ff.unsupported = nil
	composed := ff.composeLocked()
	ff.mu.Unlock()

	ff.hub.SetCursor(composed)
	ff.hub.ForceResync()
	for i, s := range shards {
		ff.wg.Add(1)
		go ff.watch(i, s, sig, stop)
	}
}

// setCursor records shard i's newest cursor and returns the resulting
// composed cursor. ok is false when the watcher's generation is stale
// (the ring changed under it) — the watcher must exit.
func (ff *FederatedFeed) setCursor(gen string, i int, c string) (composed string, ok bool) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.sig != gen || ff.closed {
		return "", false
	}
	ff.cursors[i] = c
	return ff.composeLocked(), true
}

func (ff *FederatedFeed) setUnsupported(gen string, name string, v bool) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.sig != gen || ff.closed {
		return
	}
	for i, n := range ff.unsupported {
		if n == name {
			if !v {
				ff.unsupported = append(ff.unsupported[:i], ff.unsupported[i+1:]...)
			}
			return
		}
	}
	if v {
		ff.unsupported = append(ff.unsupported, name)
	}
}

// unsupportedShard names a shard whose /feed is missing ("" when all
// shards stream). The tier refuses subscriptions then: serving a merged
// feed that silently omits one shard's changes would defeat the cursor
// contract.
func (ff *FederatedFeed) unsupportedShard() string {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if len(ff.unsupported) == 0 {
		return ""
	}
	return ff.unsupported[0]
}

func sleepOrStop(stop chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// watch is one shard's upstream subscription loop: subscribe at the last
// known cursor, republish changes with composed cursors, reconnect with
// backoff on transport errors. An upstream snapshot after we have been
// live means the shard demoted us (or restarted — new epoch): our own
// subscribers have a gap, so they are demoted to a merged snapshot too.
func (ff *FederatedFeed) watch(i int, s federation.Shard, gen string, stop chan struct{}) {
	defer ff.wg.Done()
	base := s.BaseURL()
	if base == "" {
		ff.setUnsupported(gen, s.Name(), true)
		return
	}
	// The tier's scatter client carries a per-request timeout, which
	// would sever a healthy stream; the watcher uses the default
	// transport instead.
	c := NewClient(base)
	cursor := ""
	live := false
	backoff := 250 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		default:
		}
		fs, err := c.FeedSubscribe("", cursor, "")
		if err != nil {
			if errors.Is(err, ErrFeedUnsupported) {
				ff.setUnsupported(gen, s.Name(), true)
			}
			if !sleepOrStop(stop, backoff) {
				return
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		ff.setUnsupported(gen, s.Name(), false)
		connDone := make(chan struct{})
		go func() {
			select {
			case <-stop:
				fs.Close()
			case <-connDone:
			}
		}()
		stale := ff.relay(i, gen, fs, &cursor, &live)
		close(connDone)
		fs.Close()
		if stale {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
		backoff = 250 * time.Millisecond
	}
}

// relay pumps one upstream connection into the local hub; returns true
// when the watcher's generation went stale and the loop must exit.
func (ff *FederatedFeed) relay(i int, gen string, fs *FeedStream, cursor *string, live *bool) bool {
	for {
		ev, err := fs.Next()
		if err != nil {
			return false
		}
		switch ev.Type {
		case "snapshot":
			*cursor = ev.Cursor
			composed, ok := ff.setCursor(gen, i, ev.Cursor)
			if !ok {
				return true
			}
			ff.hub.SetCursor(composed)
			if *live {
				// The shard handed us a snapshot we cannot forward (our
				// subscribers hold different prefixes): demote them all
				// to a merged snapshot at the new composed cursor.
				ff.hub.ForceResync()
			}
			*live = true
		case "resume":
			*cursor = ev.Cursor
			if composed, ok := ff.setCursor(gen, i, ev.Cursor); !ok {
				return true
			} else if !*live {
				ff.hub.SetCursor(composed)
			}
			*live = true
		case "change":
			*cursor = ev.Cursor
			composed, ok := ff.setCursor(gen, i, ev.Cursor)
			if !ok {
				return true
			}
			fe, err := upstreamEvent(ev)
			if err != nil {
				continue
			}
			fe.Cursor = composed
			ff.hub.PublishExternal(fe)
		case "error":
			// Shard-side snapshot failure; reconnect from scratch.
			*cursor = ""
			return false
		}
	}
}

// upstreamEvent rebuilds the hub event from a shard's wire change,
// preserving the coalescing identity Feed.publish assigned.
func upstreamEvent(ev FeedEvent) (feed.Event, error) {
	fc, err := ev.Change()
	if err != nil {
		return feed.Event{}, err
	}
	id, err := branch.Parse(fc.Branch)
	if err != nil {
		return feed.Event{}, err
	}
	fe := feed.Event{Branch: id, Data: append([]byte(nil), ev.Data...)}
	switch fc.Kind {
	case "report":
		fe.Kind = feed.KindReport
	case "policy":
		fe.Kind = feed.KindPolicy
		fe.Key = "policy|" + fc.Policy
	case "manual":
		fe.Kind = feed.KindManual
		fe.Key = fc.Branch + "|" + fc.Policy
	default:
		return feed.Event{}, fmt.Errorf("query: unknown change kind %q", fc.Kind)
	}
	return fe, nil
}

// mergedSnapshot is the catch-up body for a federated feed subscriber:
// the same scatter-and-merge /cache performs, at the moment of the call
// — at least as fresh as any composed cursor the hub has minted.
func (f *Federated) mergedSnapshot(prefix branch.ID) ([]byte, error) {
	shards := f.router.Shards()
	ring := f.router.Ring()
	resps := f.scatter(shards, "/cache", url.Values{"branch": {prefix.String()}}, nil, false)
	var docs []federation.ShardDoc
	for _, resp := range resps {
		if resp.err != nil {
			return nil, fmt.Errorf("shard %s: %w", resp.shard.Name(), resp.err)
		}
		switch resp.status {
		case http.StatusOK:
			docs = append(docs, federation.ShardDoc{Shard: resp.shard.Name(), Body: resp.body})
		case http.StatusNotFound:
			// Nothing under the prefix on this shard.
		default:
			return nil, fmt.Errorf("shard %s: status %d", resp.shard.Name(), resp.status)
		}
	}
	if len(docs) == 0 {
		return nil, nil
	}
	f.merges.Inc()
	return federation.MergeCache(docs, prefix, ring)
}

// handleFeed serves GET /feed on the federated tier — the same wire
// protocol as Server.handleFeed, backed by the composed hub and the
// merged-cache snapshot.
func (f *Federated) handleFeed(w http.ResponseWriter, r *http.Request) {
	if f.feed == nil {
		http.Error(w, "feed disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	prefix, err := branch.Parse(q.Get("branch"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch q.Get("stream") {
	case "", "changes":
	case "status":
		http.Error(w, "status stream unavailable on the federated tier; subscribe to a shard", http.StatusNotFound)
		return
	default:
		http.Error(w, "unknown stream "+q.Get("stream"), http.StatusBadRequest)
		return
	}
	if name := f.feed.unsupportedShard(); name != "" {
		http.Error(w, "shard "+name+" does not serve /feed", http.StatusServiceUnavailable)
		return
	}
	serveFeed(w, r, prefix, f.feed.hub, func() ([]byte, error) {
		return f.mergedSnapshot(prefix)
	})
}
