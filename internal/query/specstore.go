package query

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"inca/internal/agent"
)

// SpecStore holds specification documents per resource — the server side
// of the central-configuration requirement (paper Section 2.3: "A central
// location for denoting these changes, as well as an automated mechanism
// for communicating them to participating resources, is needed").
type SpecStore struct {
	mu    sync.RWMutex
	specs map[string][]byte // resource → spec XML
	gen   map[string]int    // resource → generation counter
}

// NewSpecStore returns an empty store.
func NewSpecStore() *SpecStore {
	return &SpecStore{specs: make(map[string][]byte), gen: make(map[string]int)}
}

// Put validates and stores a specification document, bumping its
// generation.
func (s *SpecStore) Put(data []byte) (resource string, err error) {
	def, err := agent.ParseSpec(data)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specs[def.Resource] = append([]byte(nil), data...)
	s.gen[def.Resource]++
	return def.Resource, nil
}

// Get returns the current document and generation for a resource.
func (s *SpecStore) Get(resource string) ([]byte, int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.specs[resource]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), data...), s.gen[resource], true
}

// Resources lists the resources with stored specifications.
func (s *SpecStore) Resources() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.specs))
	for r := range s.specs {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// EnableSpecs attaches a spec store to the server, activating the /spec
// endpoints. Returns the store for direct use.
func (s *Server) EnableSpecs() *SpecStore {
	s.specs = NewSpecStore()
	return s.specs
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	if s.specs == nil {
		http.Error(w, "specification distribution not enabled", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		resource := r.URL.Query().Get("resource")
		if resource == "" {
			w.Header().Set("Content-Type", "text/plain")
			io.WriteString(w, strings.Join(s.specs.Resources(), "\n"))
			return
		}
		data, gen, ok := s.specs.Get(resource)
		if !ok {
			http.Error(w, "no specification for "+resource, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/xml")
		w.Header().Set("X-Inca-Spec-Generation", fmt.Sprint(gen))
		w.Write(data)
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resource, err := s.specs.Put(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintf(w, "specification for %s stored\n", resource)
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

// FetchSpec retrieves a resource's specification document and generation.
func (c *Client) FetchSpec(resource string) ([]byte, int, error) {
	u := c.Base + "/spec?resource=" + resource
	resp, err := c.http().Get(u)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("query: spec: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	gen := 0
	fmt.Sscanf(resp.Header.Get("X-Inca-Spec-Generation"), "%d", &gen)
	return body, gen, nil
}

// UploadSpec stores a specification document on the server.
func (c *Client) UploadSpec(data []byte) error {
	resp, err := c.http().Post(c.Base+"/spec", "text/xml", strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("query: spec upload: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}
