package query

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inca/internal/agent"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/report"
	"inca/internal/rrd"
	"io"
)

var t0 = time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)

func newTestServer(t *testing.T) (*httptest.Server, *depot.Depot) {
	t.Helper()
	d := depot.New(depot.NewStreamCache())
	ts := httptest.NewServer(NewServer(d).Handler())
	t.Cleanup(ts.Close)
	return ts, d
}

func sampleEnvelope(t *testing.T, id string, at time.Time, value float64) []byte {
	t.Helper()
	r := report.New("grid.network.pathload", "1.0", "h", at)
	r.Body = report.Branch("metric", "bandwidth",
		report.Branch("statistic", "lowerBound",
			report.Leaff("value", "%.2f", value),
			report.Leaf("units", "Mbps")))
	data, err := report.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	env, err := envelope.Encode(envelope.Body, branch.MustParse(id), data)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestStoreAndCacheRoundTrip(t *testing.T) {
	ts, d := newTestServer(t)
	c := NewClient(ts.URL)
	rec, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0, 990))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ReportSize == 0 || rec.CacheSize == 0 || !rec.Added {
		t.Fatalf("receipt = %+v", rec)
	}
	if !rec.Branch.Equal(branch.MustParse("tool=pathload,site=sdsc")) {
		t.Fatalf("receipt branch = %s", rec.Branch)
	}
	if d.Cache().Count() != 1 {
		t.Fatal("not stored")
	}
	sub, err := c.Cache("site=sdsc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sub), "990.00") {
		t.Fatalf("cache subtree: %s", sub)
	}
	// Whole cache.
	all, err := c.Cache("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(all), "<cache>") {
		t.Fatalf("whole cache: %.60s", all)
	}
	// Missing branch → error.
	if _, err := c.Cache("site=nowhere"); err == nil {
		t.Fatal("phantom branch succeeded")
	}
}

func TestStoreRejectsJunk(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	if _, err := c.StoreEnvelope([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	resp, err := http.Get(ts.URL + "/store")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /store = %d", resp.StatusCode)
	}
}

func TestPolicyUploadAndArchiveFetch(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	err := c.UploadPolicy(depot.Policy{
		Name:   "bw",
		Prefix: branch.MustParse("site=sdsc"),
		Path:   "value,statistic=lowerBound,metric=bandwidth",
		Archive: rrd.ArchivalPolicy{
			Step: time.Hour, Granularity: 1, History: 7 * 24 * time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate upload conflicts.
	if err := c.UploadPolicy(depot.Policy{
		Name:    "bw",
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: time.Hour},
	}); err == nil {
		t.Fatal("duplicate policy accepted")
	}
	for i := 1; i <= 12; i++ {
		if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc",
			t0.Add(time.Duration(i)*time.Hour), 900+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	points, err := c.Archive("tool=pathload,site=sdsc", "bw", rrd.Average, t0, t0.Add(13*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("points = %d", len(points))
	}
	known := 0
	for _, p := range points {
		if !math.IsNaN(p.Value) {
			known++
		}
	}
	if known < 10 {
		t.Fatalf("known = %d", known)
	}
	g, err := c.Graph("tool=pathload,site=sdsc", "bw", rrd.Average, t0, t0.Add(13*time.Hour), "Bandwidth SDSC", "Mbps")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g, "Bandwidth SDSC") || !strings.Contains(g, "*") {
		t.Fatalf("graph:\n%s", g)
	}
}

func TestArchiveErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	if _, err := c.Archive("a=1", "ghost", rrd.Average, t0, t0.Add(time.Hour)); err == nil {
		t.Fatal("missing archive succeeded")
	}
	// Bad params.
	resp, err := http.Get(ts.URL + "/archive?branch=a=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing policy param = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/archive?branch=a=1&policy=p&cf=BOGUS&start=x&end=y")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus cf = %d", resp.StatusCode)
	}
}

func TestReportsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0, 990)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=spruce,site=sdsc", t0, 985)); err != nil {
		t.Fatal(err)
	}
	body, err := c.Reports("site=sdsc")
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if strings.Count(s, "<stored") != 2 {
		t.Fatalf("reports: %s", s)
	}
	if !strings.Contains(s, `branch="tool=pathload,site=sdsc"`) {
		t.Fatalf("missing branch attr: %s", s)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	c := NewClient(ts.URL)
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "a=1", t0, 1)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 1 || st.CacheCount != 1 || st.CacheSize == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestControllerOverHTTPDepot(t *testing.T) {
	// Full remote topology: controller → HTTP → depot, as in Figure 3
	// where the depot lives inside a Tomcat server.
	ts, d := newTestServer(t)
	ctl := controller.New(NewClient(ts.URL), controller.Options{Mode: envelope.Attachment})
	r := report.New("probe.x", "1.0", "h", t0)
	r.Body = report.Branch("probe", "x", report.Leaf("ok", "1"))
	data, _ := report.Marshal(r)
	resp, err := ctl.Submit(branch.MustParse("probe=x"), "h", data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheSize == 0 || resp.Elapsed <= 0 {
		t.Fatalf("response = %+v", resp)
	}
	if d.Cache().Count() != 1 {
		t.Fatal("not stored through HTTP path")
	}
}

func TestPolicyXMLValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		"junk",
		`<archivalPolicy name="x" step="soon" history="1h"/>`,
		`<archivalPolicy name="x" step="1h" history="never"/>`,
		`<archivalPolicy name="x" prefix="notbranch" step="1h" history="1h"/>`,
		`<archivalPolicy name="x" step="1h" history="1h" heartbeat="bogus"/>`,
	} {
		resp, err := http.Post(ts.URL+"/policy", "text/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("accepted %q", body)
		}
	}
}

func TestSpecDistributionEndpoints(t *testing.T) {
	d := depot.New(depot.NewStreamCache())
	srv := NewServer(d)
	store := srv.EnableSpecs()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	// Nothing stored yet.
	if _, _, err := c.FetchSpec("login1"); err == nil {
		t.Fatal("missing spec fetched")
	}
	specXML := []byte(`<specification resource="login1" workingDir="/home/inca">
  <series reporter="grid.version.globus" cron="0 * * * *" limit="1m0s" branch="probe=x,vo=tg"></series>
</specification>`)
	if err := c.UploadSpec(specXML); err != nil {
		t.Fatal(err)
	}
	data, gen, err := c.FetchSpec("login1")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation = %d", gen)
	}
	def, err := agent.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if def.Resource != "login1" || len(def.Series) != 1 || def.Series[0].Reporter != "grid.version.globus" {
		t.Fatalf("def = %+v", def)
	}
	// Re-upload bumps the generation.
	if err := c.UploadSpec(specXML); err != nil {
		t.Fatal(err)
	}
	if _, gen, _ = c.FetchSpec("login1"); gen != 2 {
		t.Fatalf("generation after update = %d", gen)
	}
	if got := store.Resources(); len(got) != 1 || got[0] != "login1" {
		t.Fatalf("resources = %v", got)
	}
	// Invalid upload rejected.
	if err := c.UploadSpec([]byte("junk")); err == nil {
		t.Fatal("junk spec accepted")
	}
	// Listing endpoint.
	resp, err := http.Get(ts.URL + "/spec")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "login1") {
		t.Fatalf("listing = %q", body)
	}
}

func TestSpecEndpointDisabled(t *testing.T) {
	ts, _ := newTestServer(t) // specs not enabled
	resp, err := http.Get(ts.URL + "/spec?resource=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAvailabilityEndpoint(t *testing.T) {
	d := depot.New(depot.NewStreamCache())
	if err := d.AddPolicy(consumer.AvailabilityPolicy()); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("category=Grid,resource=r1")
	for i := 1; i <= 6; i++ {
		if err := d.ArchiveUpdate(id, consumer.AvailabilityPolicyName,
			t0.Add(time.Duration(i)*10*time.Minute), 100); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewServer(d).Handler())
	defer ts.Close()

	u := ts.URL + "/availability?resource=r1&category=Grid&start=" +
		t0.Format(time.RFC3339) + "&end=" + t0.Add(2*time.Hour).Format(time.RFC3339)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "<table>") || !strings.Contains(string(body), "r1") {
		t.Fatalf("html page:\n%s", body)
	}
	// Text format.
	resp, err = http.Get(u + "&format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "100.0") {
		t.Fatalf("text page:\n%s", body)
	}
	// Missing params.
	resp, err = http.Get(ts.URL + "/availability")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-resource status = %d", resp.StatusCode)
	}
}

func TestGraphEndpointErrorsAndCFs(t *testing.T) {
	ts, d := newTestServer(t)
	c := NewClient(ts.URL)
	if err := c.UploadPolicy(depot.Policy{
		Name:    "p",
		Archive: rrd.ArchivalPolicy{Step: time.Hour, History: 24 * time.Hour, CFs: []rrd.CF{rrd.Average, rrd.Min, rrd.Max, rrd.Last}},
	}); err != nil {
		t.Fatal(err)
	}
	id := branch.MustParse("m=1")
	for i := 1; i <= 5; i++ {
		if err := d.ArchiveUpdate(id, "p", t0.Add(time.Duration(i)*time.Hour), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every consolidation function parses and serves.
	for _, cf := range []rrd.CF{rrd.Average, rrd.Min, rrd.Max, rrd.Last} {
		if _, err := c.Graph("m=1", "p", cf, t0, t0.Add(6*time.Hour), "t", "y"); err != nil {
			t.Fatalf("%s: %v", cf, err)
		}
	}
	// Missing archive → 404 on /graph.
	if _, err := c.Graph("m=2", "p", rrd.Average, t0, t0.Add(time.Hour), "t", "y"); err == nil {
		t.Fatal("missing archive graphed")
	}
	// Bad params → 400.
	resp, err := http.Get(ts.URL + "/graph?branch=m=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
