package query

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
)

func newFeedServer(t *testing.T, opts FeedOptions) (*httptest.Server, *depot.Depot) {
	t.Helper()
	d := depot.New(depot.NewStreamCache())
	f := NewFeed(d, opts)
	s := NewServer(d)
	s.Feed = f
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		f.Close()
		d.Close()
	})
	return ts, d
}

// nextEvent reads one feed event with a deadline.
func nextEvent(t *testing.T, fs *FeedStream, timeout time.Duration) FeedEvent {
	t.Helper()
	type res struct {
		ev  FeedEvent
		err error
	}
	ch := make(chan res, 1)
	go func() {
		ev, err := fs.Next()
		ch <- res{ev, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("feed next: %v", r.err)
		}
		return r.ev
	case <-time.After(timeout):
		t.Fatalf("no feed event within %v", timeout)
	}
	return FeedEvent{}
}

func TestFeedSSEEndToEnd(t *testing.T) {
	ts, d := newFeedServer(t, FeedOptions{})
	c := NewClient(ts.URL)

	fs, err := c.FeedSubscribe("site=sdsc", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	snap := nextEvent(t, fs, 5*time.Second)
	if snap.Type != "snapshot" || snap.Cursor == "" {
		t.Fatalf("first event = %+v, want snapshot with cursor", snap)
	}
	if len(snap.Data) != 0 {
		t.Fatalf("empty depot should snapshot empty, got %q", snap.Data)
	}

	// Store two matching reports and one outside the prefix.
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0, 990)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=ncsa", t0, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StoreEnvelope(sampleEnvelope(t, "tool=iperf,site=sdsc", t0, 991)); err != nil {
		t.Fatal(err)
	}

	ev1 := nextEvent(t, fs, 5*time.Second)
	ev2 := nextEvent(t, fs, 5*time.Second)
	for i, ev := range []FeedEvent{ev1, ev2} {
		if ev.Type != "change" {
			t.Fatalf("event %d type = %q", i, ev.Type)
		}
		fc, err := ev.Change()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(fc.Branch, "site=sdsc") {
			t.Fatalf("event outside subscription prefix: %+v", fc)
		}
		if fc.Kind != "report" || !strings.Contains(fc.Report, "<body>") {
			t.Fatalf("change body missing report: %+v", fc)
		}
	}
	if ev1.Cursor == "" || ev2.Cursor == "" || ev1.Cursor == ev2.Cursor {
		t.Fatalf("cursors not distinct: %q %q", ev1.Cursor, ev2.Cursor)
	}

	// Reconnect with the latest cursor: live resume, no snapshot.
	// (ev2 is the newest matching event, but a non-matching store came
	// after nothing — the depot's last commit was tool=iperf,site=sdsc,
	// which matched too, so ev2's cursor is the depot's newest.)
	fs2, err := c.FeedSubscribe("site=sdsc", ev2.Cursor, "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if ev := nextEvent(t, fs2, 5*time.Second); ev.Type != "resume" {
		t.Fatalf("up-to-date reconnect got %+v, want resume", ev)
	}

	// Reconnect with a stale cursor: snapshot catch-up, byte-identical
	// to a polled /cache of the same subtree.
	fs3, err := c.FeedSubscribe("site=sdsc", ev1.Cursor, "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs3.Close()
	catch := nextEvent(t, fs3, 5*time.Second)
	if catch.Type != "snapshot" {
		t.Fatalf("stale reconnect got %+v, want snapshot", catch)
	}
	polled, err := c.Cache("site=sdsc")
	if err != nil {
		t.Fatal(err)
	}
	if string(catch.Data) != string(polled) {
		t.Fatalf("snapshot != polled /cache:\nfeed %q\npoll %q", catch.Data, polled)
	}
	_ = d
}

func TestFeedLongPoll(t *testing.T) {
	ts, _ := newFeedServer(t, FeedOptions{})
	c := NewClient(ts.URL)

	// Fresh subscriber: immediate snapshot.
	resp, err := http.Get(ts.URL + "/feed?branch=&mode=poll&wait=2s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh poll: %s: %s", resp.Status, body)
	}
	var pr pollResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Cursor == "" || pr.Snapshot == nil {
		t.Fatalf("fresh poll response: %+v", pr)
	}

	// Current cursor, nothing changes: 204 within the wait window.
	start := time.Now()
	resp, err = http.Get(ts.URL + "/feed?branch=&mode=poll&wait=300ms&cursor=" + pr.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle poll: %s", resp.Status)
	}
	if time.Since(start) < 250*time.Millisecond {
		t.Fatalf("idle poll returned before the wait window: %v", time.Since(start))
	}

	// A change during the wait resolves the poll with events.
	errCh := make(chan error, 1)
	go func() {
		time.Sleep(100 * time.Millisecond)
		_, err := c.StoreEnvelope(sampleEnvelope(t, "tool=pathload,site=sdsc", t0, 990))
		errCh <- err
	}()
	resp, err = http.Get(ts.URL + "/feed?branch=&mode=poll&wait=5s&cursor=" + pr.Cursor)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("event poll: %s: %s", resp.Status, body)
	}
	var pr2 pollResponse
	if err := json.Unmarshal(body, &pr2); err != nil {
		t.Fatal(err)
	}
	if len(pr2.Events) != 1 || pr2.Events[0].Kind != "report" || pr2.Cursor != pr2.Events[0].Cursor {
		t.Fatalf("event poll response: %+v", pr2)
	}
}

func statusReport(t *testing.T, resource string, pass bool) []byte {
	t.Helper()
	r := report.New("grid.version.globus", "1.0", resource, time.Now().UTC())
	if pass {
		r.Body = report.Branch("package", "globus", report.Leaf("version", "2.4.3"))
	} else {
		r.Fail("globus exploded")
	}
	data, err := report.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFeedStatusStream(t *testing.T) {
	ag := &agreement.Agreement{
		Name: "mini",
		Packages: []agreement.PackageReq{
			{Name: "globus", Category: agreement.Grid, Version: agreement.Constraint{Op: "any"}},
		},
	}
	ts, d := newFeedServer(t, FeedOptions{Agreement: ag, Reverify: time.Hour})
	c := NewClient(ts.URL)

	fs, err := c.FeedSubscribe("", "", "status")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	snap := nextEvent(t, fs, 5*time.Second)
	if snap.Type != "snapshot" {
		t.Fatalf("first status event = %+v", snap)
	}

	// A green resource appears.
	id := branch.MustParse("reporter=grid.version.globus,resource=r1,site=sdsc")
	if _, err := d.Store(id, statusReport(t, "r1", true)); err != nil {
		t.Fatal(err)
	}
	ev := nextEvent(t, fs, 5*time.Second)
	if ev.Type != "status" {
		t.Fatalf("status delta type = %q", ev.Type)
	}
	var row statusRowJSON
	if err := json.Unmarshal(ev.Data, &row); err != nil {
		t.Fatal(err)
	}
	if row.Resource != "r1" || row.Total == nil || row.Total.Fail != 0 || row.Total.Pass != 1 {
		t.Fatalf("green delta row: %+v", row)
	}

	// It goes red: exactly one more delta, now failing.
	if _, err := d.Store(id, statusReport(t, "r1", false)); err != nil {
		t.Fatal(err)
	}
	ev = nextEvent(t, fs, 5*time.Second)
	if err := json.Unmarshal(ev.Data, &row); err != nil {
		t.Fatal(err)
	}
	if row.Total == nil || row.Total.Fail != 1 || len(row.Failures) != 1 {
		t.Fatalf("red delta row: %+v", row)
	}

	// /summary reflects the same state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, err := c.get("/summary", nil)
		if err != nil {
			t.Fatal(err)
		}
		var page statusPageJSON
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Resources) == 1 && page.Resources[0].Total != nil && page.Resources[0].Total.Fail == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("summary never converged: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestFeedUnsupportedFallsBack(t *testing.T) {
	ts, _ := newTestServer(t) // no Feed configured
	c := NewClient(ts.URL)
	if _, err := c.FeedSubscribe("", "", ""); !errors.Is(err, ErrFeedUnsupported) {
		t.Fatalf("err = %v, want ErrFeedUnsupported", err)
	}
}
