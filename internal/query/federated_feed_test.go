package query

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/federation"
)

// feedFederation is an in-process federation whose shard servers all
// stream /feed, with the composed feed attached to the tier.
type feedFederation struct {
	fed    *httptest.Server
	tier   *Federated
	router *federation.Router
	depots map[string]*depot.Depot
	single *depot.Depot
	sts    *httptest.Server
}

// newFeedShard builds one depot server with a live /feed.
func newFeedShard(t *testing.T) (*httptest.Server, *depot.Depot) {
	t.Helper()
	d := depot.New(depot.NewStreamCache())
	sf := NewFeed(d, FeedOptions{})
	srv := NewServer(d)
	srv.Feed = sf
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		// The tier's watcher holds a streaming connection open; a plain
		// Close would wait on it forever when this shard tears down
		// before the tier does (a shard joined mid-test).
		ts.CloseClientConnections()
		ts.Close()
		sf.Close()
	})
	return ts, d
}

func newFeedFederation(t *testing.T, n int) *feedFederation {
	t.Helper()
	shards := make([]federation.Shard, n)
	depots := make(map[string]*depot.Depot, n)
	for i := 0; i < n; i++ {
		ts, d := newFeedShard(t)
		name := fmt.Sprintf("shard%d", i)
		shards[i] = federation.Shard{Wire: name, HTTP: ts.URL}
		depots[name] = d
	}
	router, err := federation.NewRouter(shards, federation.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewFederated(router, FederatedOptions{})
	ff := tier.AttachFeed(FeedOptions{})
	fed := httptest.NewServer(tier.Handler())
	t.Cleanup(func() {
		fed.Close()
		ff.Close()
	})

	single := depot.New(depot.NewStreamCache())
	sts := httptest.NewServer(NewServer(single).Handler())
	t.Cleanup(sts.Close)
	return &feedFederation{fed: fed, tier: tier, router: router, depots: depots, single: single, sts: sts}
}

func (tf *feedFederation) store(t *testing.T, env []byte) {
	t.Helper()
	id, err := envelopeAddress(env)
	if err != nil {
		t.Fatal(err)
	}
	owner := tf.router.Ring().Owner(id)
	if _, err := tf.depots[owner].StoreEnvelope(env); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.single.StoreEnvelope(env); err != nil {
		t.Fatal(err)
	}
}

// TestFederatedFeedByteIdentity is the acceptance check for the composed
// feed: a subscriber that catches up through the merged stream —
// snapshot plus change events applied in order — holds a state
// byte-identical to polling /cache, on both the federated tier and the
// reference single depot.
func TestFederatedFeedByteIdentity(t *testing.T) {
	tf := newFeedFederation(t, 3)
	c := NewClient(tf.fed.URL)

	fs, err := c.FeedSubscribe("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	snap := nextEvent(t, fs, 10*time.Second)
	if snap.Type != "snapshot" {
		t.Fatalf("first event = %+v, want snapshot", snap)
	}
	if !strings.HasPrefix(snap.Cursor, "f"+tf.router.Ring().Signature()+"-") {
		t.Fatalf("cursor %q not composed under ring signature %q", snap.Cursor, tf.router.Ring().Signature())
	}

	// Materialize the consumer's state from the stream.
	state := depot.NewStreamCache()
	if len(snap.Data) > 0 {
		if state, err = depot.LoadDump(snap.Data); err != nil {
			t.Fatal(err)
		}
	}
	const n = 12
	for s := 0; s < 4; s++ {
		for p := 0; p < 3; p++ {
			id := fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", p, s)
			tf.store(t, sampleEnvelope(t, id, t0.Add(time.Duration(s*3+p)*time.Second), float64(100+p)))
		}
	}
	seen := make(map[string]bool)
	var last FeedEvent
	for len(seen) < n {
		ev := nextEvent(t, fs, 10*time.Second)
		if ev.Type == "snapshot" {
			// A shard demotion mid-test replaces the state wholesale;
			// keep going from the fresh image.
			if state, err = depot.LoadDump(ev.Data); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if ev.Type != "change" {
			t.Fatalf("unexpected event %+v", ev)
		}
		fc, err := ev.Change()
		if err != nil {
			t.Fatal(err)
		}
		id, err := branch.Parse(fc.Branch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := state.Update(id, []byte(fc.Report)); err != nil {
			t.Fatal(err)
		}
		seen[fc.Branch] = true
		last = ev
	}

	materialized := string(state.Dump())
	_, _, fedPolled := get(t, tf.fed.URL, "/cache?branch=", "")
	_, _, singlePolled := get(t, tf.sts.URL, "/cache?branch=", "")
	if materialized != string(fedPolled) {
		t.Fatalf("feed-materialized state differs from polled federated /cache\nfeed: %.300s\npoll: %.300s", materialized, fedPolled)
	}
	if materialized != string(singlePolled) {
		t.Fatalf("feed-materialized state differs from the single depot\nfeed: %.300s\nsingle: %.300s", materialized, singlePolled)
	}

	// The last composed cursor is current: reconnecting with it resumes
	// live with no snapshot.
	fs2, err := c.FeedSubscribe("", last.Cursor, "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if ev := nextEvent(t, fs2, 10*time.Second); ev.Type != "resume" {
		t.Fatalf("reconnect with current cursor got %+v, want resume", ev)
	}

	// A stale cursor yields a catch-up snapshot identical to polling.
	fs3, err := c.FeedSubscribe("", snap.Cursor, "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs3.Close()
	catch := nextEvent(t, fs3, 10*time.Second)
	if catch.Type != "snapshot" {
		t.Fatalf("stale reconnect got %+v, want snapshot", catch)
	}
	if string(catch.Data) != string(fedPolled) {
		t.Fatalf("catch-up snapshot differs from polled /cache\nfeed: %.300s\npoll: %.300s", catch.Data, fedPolled)
	}
}

// TestFederatedFeedMembershipResync: a join changes the ring signature,
// so every attached subscriber is demoted to a fresh merged snapshot
// under the new topology — composed cursors never straddle a membership
// change.
func TestFederatedFeedMembershipResync(t *testing.T) {
	tf := newFeedFederation(t, 2)
	c := NewClient(tf.fed.URL)

	fs, err := c.FeedSubscribe("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	snap := nextEvent(t, fs, 10*time.Second)
	if snap.Type != "snapshot" {
		t.Fatalf("first event = %+v", snap)
	}
	oldSig := tf.router.Ring().Signature()

	joining, _ := newFeedShard(t)
	resp, err := http.Post(tf.fed.URL+"/federation/join?shard="+url.QueryEscape("shard9/"+joining.URL), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %s", resp.Status)
	}

	re := nextEvent(t, fs, 10*time.Second)
	if re.Type != "snapshot" {
		t.Fatalf("post-join event = %+v, want forced snapshot", re)
	}
	newSig := tf.router.Ring().Signature()
	if newSig == oldSig {
		t.Fatal("join did not change the ring signature")
	}
	if !strings.HasPrefix(re.Cursor, "f"+newSig+"-") {
		t.Fatalf("post-join cursor %q not under new signature %q", re.Cursor, newSig)
	}
}

// TestFederatedFeedShardWithoutFeed: the tier refuses subscriptions
// (503, which the client maps to ErrFeedUnsupported) while any shard
// lacks /feed — a merged stream silently missing one shard's changes
// would break the cursor contract.
func TestFederatedFeedShardWithoutFeed(t *testing.T) {
	dPlain := depot.New(depot.NewStreamCache())
	plain := httptest.NewServer(NewServer(dPlain).Handler())
	t.Cleanup(plain.Close)
	withFeed, _ := newFeedShard(t)

	router, err := federation.NewRouter([]federation.Shard{
		{Wire: "shard0", HTTP: withFeed.URL},
		{Wire: "shard1", HTTP: plain.URL},
	}, federation.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tier := NewFederated(router, FederatedOptions{})
	ff := tier.AttachFeed(FeedOptions{})
	fed := httptest.NewServer(tier.Handler())
	t.Cleanup(func() {
		fed.Close()
		ff.Close()
	})

	c := NewClient(fed.URL)
	deadline := time.Now().Add(10 * time.Second)
	for {
		fs, err := c.FeedSubscribe("", "", "")
		if errors.Is(err, ErrFeedUnsupported) {
			return // 503: the plain shard was detected
		}
		if err == nil {
			fs.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("tier kept serving /feed with a feed-less shard (last err: %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
