package query

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/rrd"
)

// Client is the data-consumer (and remote-controller) side of the
// web-service interface.
type Client struct {
	// Base is the server URL, e.g. "http://inca.sdsc.edu:8080".
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(path string, params url.Values) ([]byte, error) {
	u := c.Base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	resp, err := c.http().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("query: %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// StoreEnvelope posts an envelope to the depot; it implements
// controller.DepotClient so a centralized controller can talk to a remote
// depot exactly as it would an in-process one.
func (c *Client) StoreEnvelope(data []byte) (depot.Receipt, error) {
	resp, err := c.http().Post(c.Base+"/store", "text/xml", bytes.NewReader(data))
	if err != nil {
		return depot.Receipt{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return depot.Receipt{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return depot.Receipt{}, fmt.Errorf("query: store: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var xr xmlReceipt
	if err := xml.Unmarshal(body, &xr); err != nil {
		return depot.Receipt{}, fmt.Errorf("query: bad receipt: %w", err)
	}
	id, err := branch.Parse(xr.Branch)
	if err != nil {
		return depot.Receipt{}, fmt.Errorf("query: bad receipt branch: %w", err)
	}
	return depot.Receipt{
		Branch:     id,
		ReportSize: xr.ReportSize,
		CacheSize:  xr.CacheSize,
		Unpack:     time.Duration(xr.UnpackNs),
		Insert:     time.Duration(xr.InsertNs),
		Archive:    time.Duration(xr.ArchiveNs),
		Added:      xr.Added,
	}, nil
}

// UploadPolicy uploads an archival policy.
func (c *Client) UploadPolicy(p depot.Policy) error {
	xp := xmlPolicy{
		Name:        p.Name,
		Prefix:      p.Prefix.String(),
		Path:        p.Path,
		Step:        p.Archive.Step.String(),
		Granularity: p.Archive.Granularity,
		History:     p.Archive.History.String(),
	}
	if p.Archive.Heartbeat > 0 {
		xp.Heartbeat = p.Archive.Heartbeat.String()
	}
	if len(p.Archive.CFs) > 0 {
		names := make([]string, len(p.Archive.CFs))
		for i, cf := range p.Archive.CFs {
			names[i] = cf.String()
		}
		xp.CFs = strings.Join(names, ",")
	}
	data, err := xml.Marshal(xp)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.Base+"/policy", "text/xml", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("query: policy: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// Cache fetches the subtree at a branch identifier ("" for the whole
// cache — which, as the paper notes, tasks the consumer with a large
// amount of XML processing).
func (c *Client) Cache(branchID string) ([]byte, error) {
	return c.get("/cache", url.Values{"branch": {branchID}})
}

// Reports fetches the raw report list under a branch prefix.
func (c *Client) Reports(branchID string) ([]byte, error) {
	return c.get("/reports", url.Values{"branch": {branchID}})
}

// getConditional is get with ETag revalidation: pass the entity tag from
// a previous response and a 304 comes back as (nil, sameTag, true, nil)
// without transferring the body.
func (c *Client) getConditional(path string, params url.Values, etag string) (body []byte, newETag string, notModified bool, err error) {
	u := c.Base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, "", false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, resp.Body)
		return nil, etag, true, nil
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", false, fmt.Errorf("query: %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return body, resp.Header.Get("ETag"), false, nil
}

// CacheConditional is Cache with ETag revalidation: the idiomatic poll
// loop keeps passing back the returned tag and only pays for a body when
// the depot has actually changed.
func (c *Client) CacheConditional(branchID, etag string) (body []byte, newETag string, notModified bool, err error) {
	return c.getConditional("/cache", url.Values{"branch": {branchID}}, etag)
}

// ReportsConditional is Reports with ETag revalidation.
func (c *Client) ReportsConditional(branchID, etag string) (body []byte, newETag string, notModified bool, err error) {
	return c.getConditional("/reports", url.Values{"branch": {branchID}}, etag)
}

// ErrFeedUnsupported reports that the server has no /feed endpoint (an
// older server, or one started without -feed). Consumers fall back to
// conditional polling.
var ErrFeedUnsupported = fmt.Errorf("query: server does not support /feed")

// FeedEvent is one parsed server-sent event from /feed.
type FeedEvent struct {
	// Type is "snapshot", "resume", "change", "status", or "error".
	Type string
	// Cursor is the event's stream position — persist it and pass it
	// back on reconnect.
	Cursor string
	// Data is the event body: a cache subtree (snapshot), a changeEvent
	// JSON document (change), or a status row (status).
	Data []byte
}

// FeedChange is the decoded body of a "change" event.
type FeedChange struct {
	Branch string `json:"branch"`
	Kind   string `json:"kind"`
	Report string `json:"report,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// Change decodes a "change" event's body.
func (e FeedEvent) Change() (FeedChange, error) {
	var fc FeedChange
	if err := json.Unmarshal(e.Data, &fc); err != nil {
		return FeedChange{}, fmt.Errorf("query: bad change event: %w", err)
	}
	return fc, nil
}

// FeedStream is an open /feed subscription.
type FeedStream struct {
	resp *http.Response
	br   *bufio.Reader
}

// FeedSubscribe opens the server's change feed at a branch prefix.
// cursor resumes a previous subscription ("" for a fresh one); stream
// selects "status" for the live agreement stream ("" for depot changes).
// The first event is a "snapshot" (the subscriber was behind) or a
// "resume" (its cursor is current). Returns ErrFeedUnsupported when the
// server lacks the endpoint, so callers can fall back to polling.
func (c *Client) FeedSubscribe(branchID, cursor, stream string) (*FeedStream, error) {
	params := url.Values{"branch": {branchID}}
	if cursor != "" {
		params.Set("cursor", cursor)
	}
	if stream != "" {
		params.Set("stream", stream)
	}
	req, err := http.NewRequest(http.MethodGet, c.Base+"/feed?"+params.Encode(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusMethodNotAllowed,
		http.StatusNotImplemented, http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, ErrFeedUnsupported
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("query: feed: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return &FeedStream{resp: resp, br: bufio.NewReader(resp.Body)}, nil
}

// Next blocks for the next event. Ping comments are skipped. Returns
// io.EOF (or the transport error) when the stream ends.
func (fs *FeedStream) Next() (FeedEvent, error) {
	var ev FeedEvent
	var data [][]byte
	sawData := false
	for {
		raw, err := fs.br.ReadString('\n')
		if err != nil {
			return FeedEvent{}, err
		}
		line := strings.TrimRight(raw, "\r\n")
		switch {
		case line == "":
			if ev.Type == "" && !sawData {
				continue // stray separator
			}
			ev.Data = bytes.Join(data, []byte("\n"))
			return ev, nil
		case strings.HasPrefix(line, ":"):
			continue // heartbeat comment
		case strings.HasPrefix(line, "event:"):
			ev.Type = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "id:"):
			ev.Cursor = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "data:"):
			d := line[len("data:"):]
			d = strings.TrimPrefix(d, " ")
			data = append(data, []byte(d))
			sawData = true
		}
	}
}

// Close terminates the subscription.
func (fs *FeedStream) Close() error { return fs.resp.Body.Close() }

// DebugVars fetches the server's read-path counters.
func (c *Client) DebugVars() (DebugVars, error) {
	body, err := c.get("/debug/vars", nil)
	if err != nil {
		return DebugVars{}, err
	}
	var v DebugVars
	if err := json.Unmarshal(body, &v); err != nil {
		return DebugVars{}, fmt.Errorf("query: bad debug vars: %w", err)
	}
	return v, nil
}

// ArchivePoint is one sample of a fetched archive series.
type ArchivePoint struct {
	Time  time.Time
	Value float64
}

// Archive fetches an archived series.
func (c *Client) Archive(branchID, policy string, cf rrd.CF, start, end time.Time) ([]ArchivePoint, error) {
	body, err := c.get("/archive", url.Values{
		"branch": {branchID},
		"policy": {policy},
		"cf":     {cf.String()},
		"start":  {start.Format(time.RFC3339)},
		"end":    {end.Format(time.RFC3339)},
	})
	if err != nil {
		return nil, err
	}
	rows, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("query: bad archive csv: %w", err)
	}
	var out []ArchivePoint
	for i, row := range rows {
		if i == 0 || len(row) != 2 {
			continue // header
		}
		ts, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			return nil, fmt.Errorf("query: bad archive time %q: %w", row[0], err)
		}
		v := math.NaN()
		if row[1] != "nan" {
			if v, err = strconv.ParseFloat(row[1], 64); err != nil {
				return nil, fmt.Errorf("query: bad archive value %q: %w", row[1], err)
			}
		}
		out = append(out, ArchivePoint{Time: ts, Value: v})
	}
	return out, nil
}

// Graph fetches the ASCII graph of an archived series.
func (c *Client) Graph(branchID, policy string, cf rrd.CF, start, end time.Time, title, ylabel string) (string, error) {
	body, err := c.get("/graph", url.Values{
		"branch": {branchID},
		"policy": {policy},
		"cf":     {cf.String()},
		"start":  {start.Format(time.RFC3339)},
		"end":    {end.Format(time.RFC3339)},
		"title":  {title},
		"ylabel": {ylabel},
	})
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Stats fetches depot counters.
func (c *Client) Stats() (depot.Stats, error) {
	body, err := c.get("/stats", nil)
	if err != nil {
		return depot.Stats{}, err
	}
	var xs xmlStats
	if err := xml.Unmarshal(body, &xs); err != nil {
		return depot.Stats{}, err
	}
	return depot.Stats{
		Received: xs.Received, Bytes: xs.Bytes,
		CacheSize: xs.CacheSize, CacheCount: xs.CacheCount, Archives: xs.Archives,
	}, nil
}
