package query

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"inca/internal/agreement"
	"inca/internal/branch"
	"inca/internal/consumer"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/federation"
)

// testFederation is an in-process federation: n real depots behind real
// HTTP servers, a router whose ring names them, and the scatter-gather
// tier in front — everything but the wire protocol.
type testFederation struct {
	fed    *httptest.Server
	router *federation.Router
	depots map[string]*depot.Depot // by ring name
	single *depot.Depot            // reference: one depot holding everything
	sts    *httptest.Server        // reference single-depot server
}

func newTestFederation(t *testing.T, n int) *testFederation {
	t.Helper()
	shards := make([]federation.Shard, n)
	depots := make(map[string]*depot.Depot, n)
	for i := 0; i < n; i++ {
		d := depot.New(depot.NewStreamCache())
		ts := httptest.NewServer(NewServer(d).Handler())
		t.Cleanup(ts.Close)
		name := fmt.Sprintf("shard%d", i)
		shards[i] = federation.Shard{Wire: name, HTTP: ts.URL}
		depots[name] = d
	}
	router, err := federation.NewRouter(shards, federation.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fed := httptest.NewServer(NewFederated(router, FederatedOptions{}).Handler())
	t.Cleanup(fed.Close)

	single := depot.New(depot.NewStreamCache())
	sts := httptest.NewServer(NewServer(single).Handler())
	t.Cleanup(sts.Close)
	return &testFederation{fed: fed, router: router, depots: depots, single: single, sts: sts}
}

// store routes the envelope the way production ingest would — to the ring
// owner's depot — and mirrors it into the reference depot.
func (tf *testFederation) store(t *testing.T, env []byte) {
	t.Helper()
	id, err := envelopeAddress(env)
	if err != nil {
		t.Fatal(err)
	}
	owner := tf.router.Ring().Owner(id)
	if _, err := tf.depots[owner].StoreEnvelope(env); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.single.StoreEnvelope(env); err != nil {
		t.Fatal(err)
	}
}

func federationPopulation(t *testing.T, tf *testFederation, sites, probes int) {
	t.Helper()
	for s := 0; s < sites; s++ {
		for p := 0; p < probes; p++ {
			id := fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", p, s)
			tf.store(t, sampleEnvelope(t, id, t0.Add(time.Duration(s*probes+p)*time.Second), float64(100+p)))
		}
	}
}

func get(t *testing.T, base, path string, inm string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), body
}

// TestFederatedByteIdentity is the acceptance check: the federated answer
// must be byte-identical to the single depot's for the root, a shallow
// interior branch (scatter-merge), and a deep branch (owner-forward).
func TestFederatedByteIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			tf := newTestFederation(t, n)
			federationPopulation(t, tf, 12, 4)
			paths := []string{
				"/cache?branch=",
				"/cache?branch=vo%3Dtg",
				"/cache?branch=site%3Ds03%2Cvo%3Dtg",
				"/cache?branch=probe%3Dp01%2Csite%3Ds05%2Cvo%3Dtg",
				"/reports?branch=",
				"/reports?branch=vo%3Dtg",
				"/reports?branch=site%3Ds07%2Cvo%3Dtg",
			}
			for _, p := range paths {
				wantStatus, _, want := get(t, tf.sts.URL, p, "")
				gotStatus, tag, got := get(t, tf.fed.URL, p, "")
				if gotStatus != wantStatus {
					t.Fatalf("%s: status %d, single depot %d", p, gotStatus, wantStatus)
				}
				if string(got) != string(want) {
					t.Fatalf("%s: federated answer differs from single depot\nfed:    %.200s\nsingle: %.200s", p, got, want)
				}
				if tag == "" {
					t.Fatalf("%s: no composed ETag", p)
				}
			}
		})
	}
}

func TestFederatedNotFoundParity(t *testing.T) {
	tf := newTestFederation(t, 3)
	federationPopulation(t, tf, 4, 2)
	p := "/cache?branch=site%3Dnowhere%2Cvo%3Dother"
	wantStatus, _, want := get(t, tf.sts.URL, p, "")
	gotStatus, _, got := get(t, tf.fed.URL, p, "")
	if gotStatus != wantStatus || gotStatus != http.StatusNotFound {
		t.Fatalf("status = %d, want %d", gotStatus, wantStatus)
	}
	if strings.TrimSpace(string(got)) != strings.TrimSpace(string(want)) {
		t.Fatalf("404 body %q, single depot %q", got, want)
	}
}

// TestFederatedConditional drives the composed validator end-to-end:
// revalidation answers 304 with zero merge work, one shard's ingest
// invalidates, and a validator minted under a different topology never
// matches.
func TestFederatedConditional(t *testing.T) {
	tf := newTestFederation(t, 4)
	federationPopulation(t, tf, 8, 3)
	for i, p := range []string{"/cache?branch=", "/cache?branch=probe%3Dp00%2Csite%3Ds00%2Cvo%3Dtg", "/reports?branch=vo%3Dtg"} {
		status, tag, body := get(t, tf.fed.URL, p, "")
		if status != http.StatusOK || tag == "" {
			t.Fatalf("%s: status %d tag %q", p, status, tag)
		}
		status, tag2, _ := get(t, tf.fed.URL, p, tag)
		if status != http.StatusNotModified {
			t.Fatalf("%s: revalidation status %d, want 304", p, status)
		}
		if tag2 != tag {
			t.Fatalf("%s: 304 changed the validator %q -> %q", p, tag, tag2)
		}

		// New data on whichever shard owns this branch must invalidate.
		tf.store(t, sampleEnvelope(t, "probe=p00,site=s00,vo=tg", t0.Add(time.Duration(i+1)*time.Hour), float64(555+i)))
		status, tag3, body2 := get(t, tf.fed.URL, p, tag)
		if status != http.StatusOK {
			t.Fatalf("%s: post-ingest revalidation status %d, want 200", p, status)
		}
		if tag3 == tag {
			t.Fatalf("%s: validator unchanged across ingest", p)
		}
		if string(body2) == string(body) && strings.HasPrefix(p, "/cache?branch=probe") {
			t.Fatalf("%s: body unchanged across ingest", p)
		}
	}

	// A validator composed under another ring signature must never match.
	status, tag, _ := get(t, tf.fed.URL, "/cache?branch=", "")
	_ = status
	forged := `"fdeadbeef-` + strings.TrimPrefix(strings.Trim(tag, `"`)[strings.Index(strings.Trim(tag, `"`), "-")+1:], "") + `"`
	status, _, _ = get(t, tf.fed.URL, "/cache?branch=", forged)
	if status != http.StatusOK {
		t.Fatalf("forged-signature validator revalidated: status %d", status)
	}
}

// TestFederatedScatterRace exercises the scatter-gather merge under
// concurrent readers and writers; run with -race (make test does) it
// proves the fan-out shares no unsynchronized state.
func TestFederatedScatterRace(t *testing.T) {
	tf := newTestFederation(t, 4)
	federationPopulation(t, tf, 6, 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				status, _, _ := get(t, tf.fed.URL, "/cache?branch=", "")
				if status != http.StatusOK {
					t.Errorf("reader %d: status %d", w, status)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			id := fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", i%2, i%6)
			env := sampleEnvelope(t, id, t0.Add(time.Duration(i)*time.Minute), float64(i))
			idp, err := envelopeAddress(env)
			if err != nil {
				t.Error(err)
				return
			}
			owner := tf.router.Ring().Owner(idp)
			if _, err := tf.depots[owner].StoreEnvelope(env); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestAvailabilityPageJSONRoundTrip(t *testing.T) {
	page := &consumer.AvailabilityPage{
		Title: "Availability overview",
		Start: t0,
		End:   t0.Add(24 * time.Hour),
		Rows: []consumer.AvailabilityRow{
			{Resource: "res1", Category: agreement.Categories[0], Spark: "▁▂▃", Mean: 99.5, Min: 80, Samples: 12},
			{Resource: "res2", Category: "Total", Spark: "", Mean: math.NaN(), Min: math.NaN(), Samples: 0},
		},
	}
	data, err := marshalAvailabilityPage(page)
	if err != nil {
		t.Fatal(err)
	}
	back, err := unmarshalAvailabilityPage(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Title != page.Title || !back.Start.Equal(page.Start) || len(back.Rows) != 2 {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	if back.Rows[0].Mean != 99.5 || back.Rows[0].Samples != 12 {
		t.Fatalf("row 0 = %+v", back.Rows[0])
	}
	if !math.IsNaN(back.Rows[1].Mean) || !math.IsNaN(back.Rows[1].Min) {
		t.Fatalf("NaN not preserved: %+v", back.Rows[1])
	}
}

func TestComposeDecomposeTag(t *testing.T) {
	sig := "abc123"
	tag := composeTag(sig, []string{`"4"`, "", `"9"`})
	if tag != `"fabc123-4.-.9"` {
		t.Fatalf("composed = %s", tag)
	}
	got := decomposeTag(tag, sig, 3)
	if got == nil || got[0] != `"4"` || got[1] != "" || got[2] != `"9"` {
		t.Fatalf("decomposed = %v", got)
	}
	if decomposeTag(tag, "other", 3) != nil {
		t.Fatal("decomposed under wrong signature")
	}
	if decomposeTag(tag, sig, 2) != nil {
		t.Fatal("decomposed under wrong shard count")
	}
	multi := `W/"x", ` + tag + `, "y"`
	if decomposeTag(multi, sig, 3) == nil {
		t.Fatal("candidate list not searched")
	}
}

// envelopeAddress adapts envelope.Address for tests in this package.
func envelopeAddress(env []byte) (branch.ID, error) {
	return envelope.Address(env)
}

// TestFederatedConditionalPartial404 covers the empty-shard case: a
// branch held by only some shards composes "-" placeholders for the
// rest, and revalidation must still 304 while the empty shards stay
// empty — a shard that had nothing and still has nothing is unchanged.
// Data appearing on a formerly empty shard must invalidate.
func TestFederatedConditionalPartial404(t *testing.T) {
	tf := newTestFederation(t, 2)
	ring := tf.router.Ring()

	// Find sites on each side of the ring so one shard starts empty.
	var site0, site1 string
	for s := 0; s < 64 && (site0 == "" || site1 == ""); s++ {
		prefix := branch.ID{}.Child("vo", "tg").Child("site", fmt.Sprintf("s%02d", s))
		if ring.Owner(prefix) == "shard0" && site0 == "" {
			site0 = fmt.Sprintf("s%02d", s)
		} else if ring.Owner(prefix) == "shard1" && site1 == "" {
			site1 = fmt.Sprintf("s%02d", s)
		}
	}
	if site0 == "" || site1 == "" {
		t.Fatalf("degenerate placement: no site per shard in 64 candidates")
	}

	tf.store(t, sampleEnvelope(t, "probe=p00,site="+site0+",vo=tg", t0, 100))
	status, tag, _ := get(t, tf.fed.URL, "/cache?branch=", "")
	if status != http.StatusOK || tag == "" {
		t.Fatalf("cold fetch: status %d tag %q", status, tag)
	}
	if !strings.Contains(tag, "-") {
		t.Fatalf("tag %q has no placeholder for the empty shard", tag)
	}
	status, tag2, _ := get(t, tf.fed.URL, "/cache?branch=", tag)
	if status != http.StatusNotModified {
		t.Fatalf("revalidation with an empty shard: status %d, want 304", status)
	}
	if tag2 != tag {
		t.Fatalf("304 changed the validator %q -> %q", tag, tag2)
	}

	// First data on the empty shard must break the 304.
	tf.store(t, sampleEnvelope(t, "probe=p00,site="+site1+",vo=tg", t0.Add(time.Hour), 200))
	status, tag3, _ := get(t, tf.fed.URL, "/cache?branch=", tag)
	if status != http.StatusOK {
		t.Fatalf("post-ingest revalidation: status %d, want 200", status)
	}
	if tag3 == tag {
		t.Fatal("validator unchanged after the empty shard gained data")
	}
}
