package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

// Process-spawning helpers for experiments that measure a real
// inca-server over real TCP (the capacity harness) instead of an
// in-process cell: build the binary once, start instances on ephemeral
// ports, and scan their stdout for the announced addresses — the same
// protocol the multi-process smoke tests speak.

var (
	wireAddrRE   = regexp.MustCompile(`controller listening on ([^ ]+) `)
	httpAddrRE   = regexp.MustCompile(`querying interface on http://([^ ]+) `)
	routerWireRE = regexp.MustCompile(`federation router listening on ([^ ]+) `)
	routerHTTPRE = regexp.MustCompile(`federated querying interface on http://([^ ]+) `)
)

// buildServerBinary compiles cmd/inca-server into dir and returns the
// binary path. It locates the module root through `go env GOMOD` so the
// caller's working directory does not matter.
func buildServerBinary(dir string) (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("experiments: locate module: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("experiments: not inside the inca module")
	}
	bin := filepath.Join(dir, "inca-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/inca-server")
	build.Dir = filepath.Dir(gomod)
	var stderr bytes.Buffer
	build.Stderr = &stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("experiments: build inca-server: %v: %s", err, stderr.Bytes())
	}
	return bin, nil
}

// serverProc is one spawned inca-server with a line-scanned stdout.
type serverProc struct {
	cmd   *exec.Cmd
	lines chan string
}

func startServer(bin string, args ...string) (*serverProc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("experiments: start %s %v: %w", bin, args, err)
	}
	p := &serverProc{cmd: cmd, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // never block the child on a full buffer
			}
		}
		close(p.lines)
	}()
	return p, nil
}

// expect scans stdout until a line matches re, returning the first
// capture group.
func (p *serverProc) expect(re *regexp.Regexp, timeout time.Duration) (string, error) {
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				return "", fmt.Errorf("experiments: server exited before printing %s", re)
			}
			if m := re.FindStringSubmatch(line); m != nil {
				return m[1], nil
			}
		case <-deadline:
			return "", fmt.Errorf("experiments: timed out waiting for %s", re)
		}
	}
}

// stop kills the process and reaps it.
func (p *serverProc) stop() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}
