package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/rrd"
)

// The storage-engine comparison (DESIGN.md §5g): the in-memory depot vs
// the disk engine (paged archive files behind a bounded handle LRU, plus
// a write-ahead log) across three phases — report ingest through the
// archive pipeline, raw archive updates as the series population grows
// 10x, and restart recovery (WAL replay vs checkpoint vs snapshot). The
// question the disk engine answers is the paper's depot-scalability one:
// memory stays flat no matter how many series accumulate, at a bounded
// per-operation cost.

// StorageOptions configures the storage-engine comparison.
type StorageOptions struct {
	// Updates is how many report stores the ingest cells measure
	// (default 3000).
	Updates int
	// Workers is the concurrent submitter count (default 4).
	Workers int
	// Series are the archive population scales (default 10000, 100000).
	Series []int
	// Dir is the scratch directory for the disk cells (default a fresh
	// temp directory, removed afterwards).
	Dir string
}

var storageStart = time.Date(2004, 6, 29, 0, 0, 0, 0, time.UTC)

// storageScalePolicy is the population policy: manual-only so updates
// bypass report parsing, with a small ring (one hour at one minute) so
// the cells measure engine overhead rather than ring size.
func storageScalePolicy() depot.Policy {
	return depot.Policy{
		Name:       "scale",
		Prefix:     branch.MustParse("vo=scale"),
		ManualOnly: true,
		Archive: rrd.ArchivalPolicy{
			Step: time.Minute, Granularity: 2, History: time.Hour,
		},
	}
}

func storageSeriesIDs(n int) []branch.ID {
	ids := make([]branch.ID, n)
	for i := range ids {
		ids[i] = branch.MustParse(fmt.Sprintf("probe=x%06d,site=s%02d,vo=scale", i, i%40))
	}
	return ids
}

// storageIngestCell measures report-store throughput against an
// already-built depot — the archiveCell loop with the backend chosen by
// the caller.
func storageIngestCell(d *depot.Depot, workers, updates int) (cell cellStats, err error) {
	for _, p := range ArchiveBenchPolicies() {
		if err := d.AddPolicy(p); err != nil {
			return cellStats{}, err
		}
	}
	ids := ArchiveBenchIDs(64)
	template, gmtOff := ArchiveBenchReport()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
	)
	lat := newLatencyTracker(workers, updates/workers+1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > updates {
					return
				}
				at := storageStart.Add(time.Duration(i/len(ids)+1) * time.Minute)
				data := ArchiveBenchStamp(template, gmtOff, at)
				opStart := time.Now()
				if _, serr := d.Store(ids[i%len(ids)], data); serr != nil {
					errOnce.Do(func() { err = serr })
					return
				}
				lat.observe(w, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	d.Drain()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	cell.OpsPerSec = float64(updates) / elapsed.Seconds()
	cell.P50, cell.P95, cell.P99 = lat.percentiles()
	return cell, nil
}

// storageUpdatePass drives one ArchiveUpdate per series through the
// manual-only scale policy and returns the measured cell.
func storageUpdatePass(d *depot.Depot, ids []branch.ID, at time.Time, workers int) (cell cellStats, err error) {
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
	)
	lat := newLatencyTracker(workers, len(ids)/workers+1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				opStart := time.Now()
				if uerr := d.ArchiveUpdate(ids[i], "scale", at, float64(i%100)); uerr != nil {
					errOnce.Do(func() { err = uerr })
					return
				}
				lat.observe(w, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	cell.OpsPerSec = float64(len(ids)) / elapsed.Seconds()
	cell.P50, cell.P95, cell.P99 = lat.percentiles()
	return cell, nil
}

// heapMB returns the live heap after a full collection — the experiment's
// resident-memory proxy (no /proc scraping, works everywhere).
func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// Storage runs the storage-engine comparison.
func Storage(opt StorageOptions) Result {
	if opt.Updates <= 0 {
		opt.Updates = 3000
	}
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if len(opt.Series) == 0 {
		opt.Series = []int{10_000, 100_000}
	}
	return timed("storage", "Storage engines: in-memory depot vs paged files + WAL", func(r *Result) {
		scratch := opt.Dir
		if scratch == "" {
			var err error
			if scratch, err = os.MkdirTemp("", "inca-storage-*"); err != nil {
				r.Text = "error: " + err.Error()
				return
			}
			defer os.RemoveAll(scratch)
		}
		var sb strings.Builder
		fail := func(err error) { r.Text = sb.String() + "\nerror: " + err.Error() }
		fmt.Fprintf(&sb, "%-20s %-7s %9s %12s %8s %8s %8s %9s\n",
			"phase", "backend", "series", "ops/sec", "p50us", "p95us", "p99us", "heapMB")
		row := func(phase, backend string, series int, cell cellStats, heap float64) {
			scale := "-"
			if series > 0 {
				scale = fmt.Sprint(series)
			}
			heapCol := "-"
			if heap > 0 {
				heapCol = fmt.Sprintf("%.1f", heap)
			}
			fmt.Fprintf(&sb, "%-20s %-7s %9s %12.0f %8.0f %8.0f %8.0f %9s\n",
				phase, backend, scale, cell.OpsPerSec, cell.P50, cell.P95, cell.P99, heapCol)
			m := cell.metric(phase, map[string]string{"backend": backend})
			if series > 0 {
				m.Labels["series"] = fmt.Sprint(series)
			}
			if heap > 0 {
				m.Value, m.ValueUnit = heap, "heap-mb"
			}
			r.Metrics = append(r.Metrics, m)
		}
		recoveryRow := func(phase, backend string, series int, elapsed time.Duration) {
			fmt.Fprintf(&sb, "%-20s %-7s %9d %12s %8s %8s %8s %9s\n",
				phase, backend, series, fmt.Sprintf("%.0fms", float64(elapsed)/float64(time.Millisecond)), "-", "-", "-", "-")
			r.Metrics = append(r.Metrics, Metric{
				Name:   phase,
				Labels: map[string]string{"backend": backend, "series": fmt.Sprint(series)},
				Value:  float64(elapsed) / float64(time.Millisecond), ValueUnit: "ms",
			})
		}

		// --- ingest: the report store path, five matching policies ---
		mem := depot.NewWithOptions(depot.NullCache{}, depot.Options{})
		cell, err := storageIngestCell(mem, opt.Workers, opt.Updates)
		mem.Close()
		if err != nil {
			fail(err)
			return
		}
		row("ingest", "memory", 0, cell, 0)
		disk, err := depot.OpenDisk(depot.DiskOptions{
			Cache: depot.NullCache{}, Dir: filepath.Join(scratch, "ingest"), OpenFiles: 512,
		})
		if err != nil {
			fail(err)
			return
		}
		cell, err = storageIngestCell(disk, opt.Workers, opt.Updates)
		disk.Close()
		if err != nil {
			fail(err)
			return
		}
		row("ingest", "disk", 0, cell, 0)

		// --- archive scale: create + steady-state update, growing 10x ---
		diskHeap := map[int]float64{}
		for _, scale := range opt.Series {
			ids := storageSeriesIDs(scale)
			for _, backend := range []string{"memory", "disk"} {
				var d *depot.Depot
				var err error
				dir := filepath.Join(scratch, fmt.Sprintf("%s-%d", backend, scale))
				if backend == "disk" {
					d, err = depot.OpenDisk(depot.DiskOptions{
						Cache: depot.NullCache{}, Dir: dir, OpenFiles: 64,
					})
				} else {
					d = depot.NewWithOptions(depot.NullCache{}, depot.Options{})
				}
				if err != nil {
					fail(err)
					return
				}
				if err := d.AddPolicy(storageScalePolicy()); err != nil {
					fail(err)
					return
				}
				// Heap is reported as growth over this baseline, so the id
				// population built by the harness itself is not charged to
				// the engine under test.
				baseHeap := heapMB()
				cell, err := storageUpdatePass(d, ids, storageStart, opt.Workers)
				if err != nil {
					fail(err)
					return
				}
				row("archive-create", backend, scale, cell, 0)
				cell, err = storageUpdatePass(d, ids, storageStart.Add(time.Minute), opt.Workers)
				if err != nil {
					fail(err)
					return
				}
				heap := heapMB() - baseHeap
				if heap < 0.1 {
					heap = 0.1
				}
				row("archive-update", backend, scale, cell, heap)
				if backend == "disk" {
					diskHeap[scale] = heap
				}

				// --- restart recovery over the population just built ---
				if backend == "memory" {
					snap := filepath.Join(scratch, fmt.Sprintf("snap-%d", scale))
					f, err := os.Create(snap)
					if err == nil {
						err = d.WriteSnapshot(f)
						if cerr := f.Close(); err == nil {
							err = cerr
						}
					}
					if err != nil {
						fail(err)
						return
					}
					d.Close()
					f, err = os.Open(snap)
					if err != nil {
						fail(err)
						return
					}
					t0 := time.Now()
					restored, err := depot.ReadSnapshot(f)
					elapsed := time.Since(t0)
					f.Close()
					if err != nil {
						fail(err)
						return
					}
					if got := restored.Stats().Archives; got != scale {
						fail(fmt.Errorf("snapshot recovery: %d archives, want %d", got, scale))
						return
					}
					restored.Close()
					recoveryRow("recover-snapshot", backend, scale, elapsed)
					continue
				}
				d.Close()
				// Un-checkpointed close: the next open replays the full WAL.
				t0 := time.Now()
				d, err = depot.OpenDisk(depot.DiskOptions{Cache: depot.NullCache{}, Dir: dir, OpenFiles: 64})
				elapsed := time.Since(t0)
				if err != nil {
					fail(err)
					return
				}
				if got := d.Stats().Archives; got != scale {
					fail(fmt.Errorf("WAL recovery: %d archives, want %d", got, scale))
					return
				}
				recoveryRow("recover-wal", backend, scale, elapsed)
				// Checkpoint, then measure the fast path: no replay at all.
				if err := d.Checkpoint(); err != nil {
					fail(err)
					return
				}
				d.Close()
				t0 = time.Now()
				d, err = depot.OpenDisk(depot.DiskOptions{Cache: depot.NullCache{}, Dir: dir, OpenFiles: 64})
				elapsed = time.Since(t0)
				if err != nil {
					fail(err)
					return
				}
				if got := d.Stats().Archives; got != scale {
					fail(fmt.Errorf("checkpoint recovery: %d archives, want %d", got, scale))
					return
				}
				recoveryRow("recover-checkpoint", backend, scale, elapsed)
				d.Close()
				// The population is measured; reclaim the scratch space so
				// consecutive scales do not accumulate on disk.
				os.RemoveAll(dir)
			}
		}
		r.Text = sb.String()
		if len(opt.Series) >= 2 {
			lo, hi := opt.Series[0], opt.Series[len(opt.Series)-1]
			if diskHeap[lo] > 0 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"disk-engine heap grew %.2fx while the series population grew %.0fx (%d -> %d series): resident state is the open-handle LRU, not the rings or a per-series index",
					diskHeap[hi]/diskHeap[lo], float64(hi)/float64(lo), lo, hi))
			}
		}
		r.Notes = append(r.Notes,
			"ingest cells run the full store path (cache bypassed via NullCache, five matching archive policies); disk adds a WAL append per store and paged ring writes per consolidation",
			"archive cells use a manual-only policy (no report parse) so the measured work is the engine itself; create pays file initialization + LRU eviction fsyncs, update is the steady state",
			"the heap column is live-heap growth over the pre-population baseline (full GC before each reading) — the disk engine keeps rings on disk and no per-series index in memory, so it stays flat as series grow 10x while the memory depot grows linearly",
			"recover-wal replays every logged update through the idempotent apply path; recover-checkpoint starts from the folded image and replays nothing; recover-snapshot is the memory depot's full-image read",
			"disk cells fsync on checkpoint and handle eviction, not per append: a process crash loses nothing acknowledged (page cache survives), a machine crash can lose up to one checkpoint interval — DESIGN.md §5g",
		)
	})
}
