package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Validation for committed BENCH_<id>.json artifacts: every file the
// repo carries must decode strictly against the shared result shape and
// hold internally consistent numbers, so a drive-by format change (or a
// truncated benchmark run) fails `make check` instead of silently
// shipping an artifact no tooling can read.

// ValidateResultJSON strictly decodes one serialized result and checks
// its invariants: no unknown fields, a non-empty id and title, named
// metrics, finite non-negative numbers, and ordered latency percentiles
// (p50 ≤ p95 ≤ p99 wherever measured).
func ValidateResultJSON(data []byte) (*ResultFile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rf ResultFile
	if err := dec.Decode(&rf); err != nil {
		return nil, fmt.Errorf("experiments: result does not match the shared schema: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("experiments: trailing data after the result document")
	}
	if rf.ID == "" {
		return nil, fmt.Errorf("experiments: result has no id")
	}
	if rf.Title == "" {
		return nil, fmt.Errorf("experiments: result %q has no title", rf.ID)
	}
	if badNumber(rf.ElapsedMS) {
		return nil, fmt.Errorf("experiments: result %q elapsed_ms %v not a finite non-negative number", rf.ID, rf.ElapsedMS)
	}
	for i, m := range rf.Metrics {
		if m.Name == "" {
			return nil, fmt.Errorf("experiments: result %q metric %d has no name", rf.ID, i)
		}
		for what, v := range map[string]float64{
			"ops_per_sec": m.OpsPerSec,
			"p50_us":      m.P50Micros,
			"p95_us":      m.P95Micros,
			"p99_us":      m.P99Micros,
		} {
			if badNumber(v) {
				return nil, fmt.Errorf("experiments: result %q metric %q %s=%v not a finite non-negative number", rf.ID, m.Name, what, v)
			}
		}
		if !isFinite(m.Value) {
			return nil, fmt.Errorf("experiments: result %q metric %q value=%v not finite", rf.ID, m.Name, m.Value)
		}
		if m.P50Micros > 0 && (m.P95Micros < m.P50Micros || m.P99Micros < m.P95Micros) {
			return nil, fmt.Errorf("experiments: result %q metric %q percentiles not ordered: p50=%v p95=%v p99=%v",
				rf.ID, m.Name, m.P50Micros, m.P95Micros, m.P99Micros)
		}
	}
	return &rf, nil
}

// ValidateResultFile validates one BENCH_<id>.json on disk.
func ValidateResultFile(path string) (*ResultFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rf, err := ValidateResultJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rf, nil
}

// ValidateLoadResult checks the extra contract a committed capacity run
// carries, per mode: at least minStages capacity points with strictly
// increasing client counts, and a detected knee consistent with one of
// the measured stages.
func ValidateLoadResult(rf *ResultFile, minStages int, modes ...string) error {
	if rf.ID != "load" {
		return fmt.Errorf("experiments: result id %q is not a load result", rf.ID)
	}
	for _, mode := range modes {
		points, knee := kneeFromMetrics(rf.Metrics, mode)
		if len(points) < minStages {
			return fmt.Errorf("experiments: load mode %s has %d capacity stages, want at least %d", mode, len(points), minStages)
		}
		if !sort.SliceIsSorted(points, func(i, j int) bool { return points[i].Load < points[j].Load }) {
			return fmt.Errorf("experiments: load mode %s capacity stages not in ramp order", mode)
		}
		for i := 1; i < len(points); i++ {
			if points[i].Load <= points[i-1].Load {
				return fmt.Errorf("experiments: load mode %s ramp not strictly increasing at stage %d", mode, i)
			}
		}
		if knee == nil {
			return fmt.Errorf("experiments: load mode %s has no detected knee", mode)
		}
		found := false
		for _, p := range points {
			if p.Load == knee.Value {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("experiments: load mode %s knee at %v clients matches no measured stage", mode, knee.Value)
		}
		if knee.OpsPerSec <= 0 {
			return fmt.Errorf("experiments: load mode %s knee has no throughput", mode)
		}
	}
	return nil
}

func badNumber(v float64) bool { return !isFinite(v) || v < 0 }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
