package experiments

import (
	"time"

	"inca/internal/stats"
)

// latencyTracker collects per-operation wall times with one slice per
// worker, so recording is contention-free during a measured cell.
type latencyTracker struct {
	perWorker [][]float64 // microseconds
}

func newLatencyTracker(workers, capHint int) *latencyTracker {
	t := &latencyTracker{perWorker: make([][]float64, workers)}
	for i := range t.perWorker {
		t.perWorker[i] = make([]float64, 0, capHint)
	}
	return t
}

func (t *latencyTracker) observe(worker int, d time.Duration) {
	t.perWorker[worker] = append(t.perWorker[worker], float64(d)/float64(time.Microsecond))
}

// percentiles merges every worker's samples and returns p50/p95/p99 in
// microseconds (zeros when nothing was recorded).
func (t *latencyTracker) percentiles() (p50, p95, p99 float64) {
	var all []float64
	for _, w := range t.perWorker {
		all = append(all, w...)
	}
	if len(all) == 0 {
		return 0, 0, 0
	}
	return stats.Percentile(all, 50), stats.Percentile(all, 95), stats.Percentile(all, 99)
}

// cellStats is one measured cell: throughput plus its latency
// distribution — the row Metric entries are built from.
type cellStats struct {
	OpsPerSec     float64
	P50, P95, P99 float64 // microseconds
}

func (c cellStats) metric(name string, labels map[string]string) Metric {
	return Metric{
		Name:      name,
		Labels:    labels,
		OpsPerSec: c.OpsPerSec,
		P50Micros: c.P50,
		P95Micros: c.P95,
		P99Micros: c.P99,
	}
}
