package experiments

import (
	"time"

	"inca/internal/stats"
)

// Latency reservoirs are bounded regardless of how long a cell runs:
// capHint (the caller's per-worker volume estimate) is clamped into this
// range, and anything past the cap is subsampled uniformly (Vitter's
// algorithm R) instead of accumulated. stats.TestReservoirPercentileTolerance
// pins the resulting p50/p95/p99 within 5% of exact over heavy-tailed
// streams, including workers with very different volumes.
const (
	latencyReservoirMin = 512
	latencyReservoirMax = 8192
)

// latencyTracker collects per-operation wall times with one bounded
// reservoir per worker, so recording is contention-free during a
// measured cell and memory stays capped however many operations run.
type latencyTracker struct {
	perWorker []*stats.Reservoir
}

func newLatencyTracker(workers, capHint int) *latencyTracker {
	if capHint < latencyReservoirMin {
		capHint = latencyReservoirMin
	}
	if capHint > latencyReservoirMax {
		capHint = latencyReservoirMax
	}
	t := &latencyTracker{perWorker: make([]*stats.Reservoir, workers)}
	for i := range t.perWorker {
		t.perWorker[i] = stats.NewReservoir(capHint, int64(i)+1)
	}
	return t
}

func (t *latencyTracker) observe(worker int, d time.Duration) {
	t.perWorker[worker].Add(float64(d) / float64(time.Microsecond))
}

// percentiles merges every worker's reservoir, weighted by how much
// traffic each actually saw, and returns p50/p95/p99 in microseconds
// (zeros when nothing was recorded).
func (t *latencyTracker) percentiles() (p50, p95, p99 float64) {
	ps := stats.MergedPercentiles(t.perWorker, 50, 95, 99)
	if ps[0] != ps[0] { // NaN: nothing recorded
		return 0, 0, 0
	}
	return ps[0], ps[1], ps[2]
}

// cellStats is one measured cell: throughput plus its latency
// distribution — the row Metric entries are built from.
type cellStats struct {
	OpsPerSec     float64
	P50, P95, P99 float64 // microseconds
}

func (c cellStats) metric(name string, labels map[string]string) Metric {
	return Metric{
		Name:      name,
		Labels:    labels,
		OpsPerSec: c.OpsPerSec,
		P50Micros: c.P50,
		P95Micros: c.P95,
		P99Micros: c.P99,
	}
}
