package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"inca/internal/catalog"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/gridsim"
	"inca/internal/reporter"
	"inca/internal/stats"
)

// referenceGrid builds the simulated TeraGrid used by catalog-enumeration
// experiments (no failures needed).
func referenceGrid() *gridsim.Grid {
	return gridsim.NewTeraGrid(1, gridsim.TeraGridOptions{
		InstallTime: time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC),
	})
}

// DistinctReporters enumerates the distinct reporter programs deployed to
// the simulated TeraGrid — one per template × package/service/tool, with
// destination hosts as run-time arguments, as in the real reporter
// repository behind Table 1.
func DistinctReporters(g *gridsim.Grid) []reporter.Reporter {
	src, _ := g.Resource("tg-viz-login1.uc.teragrid.org") // the richest host
	dst, _ := g.Resource("tg-login1.caltech.teragrid.org")
	var out []reporter.Reporter
	var pkgs []string
	for _, set := range []map[string]string{
		gridsim.GridPackages, gridsim.DevelopmentPackages, gridsim.ClusterPackages,
		gridsim.ExtendedPackages, gridsim.VizPackages,
	} {
		for name := range set {
			pkgs = append(pkgs, name)
		}
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		out = append(out,
			&catalog.VersionReporter{Resource: src, Package: pkg},
			&catalog.UnitTestReporter{Resource: src, Package: pkg},
		)
	}
	out = append(out,
		&catalog.EnvReporter{Resource: src},
		&catalog.SoftEnvReporter{Resource: src},
	)
	for _, svc := range gridsim.TeraGridServices {
		out = append(out,
			&catalog.ServiceReporter{Resource: src, Service: svc.Name},
			&catalog.CrossSiteReporter{Grid: g, Source: src, DestHost: dst.Host, Service: svc.Name},
		)
	}
	for _, tool := range []catalog.NetworkTool{catalog.Pathload, catalog.Pathchirp, catalog.Spruce} {
		out = append(out, &catalog.BandwidthReporter{Grid: g, Source: src, DestHost: dst.Host, Tool: tool})
	}
	for _, k := range []string{"flops", "membw", "io", "suite"} {
		out = append(out, &catalog.BenchmarkReporter{Resource: src, Kind: k})
	}
	return out
}

// Table1 regenerates the reporter-size distribution: every distinct
// deployed reporter rendered to a standalone script, line counts bucketed
// exactly as in the paper's Table 1.
func Table1() Result {
	return timed("table1", "Reporter sizes for TeraGrid deployment (lines of code)", func(r *Result) {
		g := referenceGrid()
		reporters := DistinctReporters(g)
		buckets := map[[2]int]int{}
		var keys [][2]int
		bucketFor := func(lines int) [2]int {
			lo := (lines / 50) * 50
			return [2]int{lo, lo + 50}
		}
		for _, rep := range reporters {
			b := bucketFor(catalog.ScriptLines(rep))
			if buckets[b] == 0 {
				keys = append(keys, b)
			}
			buckets[b]++
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i][0] < keys[j][0] })
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-16s %s\n", "Lines of Code", "Number of Reporters")
		total := 0
		for _, k := range keys {
			fmt.Fprintf(&sb, "%-16s %d\n", fmt.Sprintf("%d-%d", k[0], k[1]), buckets[k])
			total += buckets[k]
		}
		fmt.Fprintf(&sb, "%-16s %d\n", "Total", total)
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"paper: 130 reporters, 106 of them under 50 lines, with a long tail to 1,650 lines",
			fmt.Sprintf("reproduction: %d distinct reporter programs; destination hosts are run-time arguments here, so the catalog is smaller than the paper's per-script repository — the shape (dominant <50-line bucket, benchmark giants above 1,000 lines) is the comparison target", total),
		)
	})
}

// Table2 regenerates the reporters-per-hour-per-resource table.
func Table2() Result {
	return timed("table2", "Inca reporters executing per hour on TeraGrid systems", func(r *Result) {
		d, err := core.NewTeraGridDeployment(core.Options{Seed: 1})
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-8s %-34s %s\n", "Site", "Machine", "Number of Reporters")
		total := 0
		for _, h := range gridsim.TeraGridHosts {
			a, _ := d.AgentFor(h.Host)
			fmt.Fprintf(&sb, "%-8s %-34s %d\n", h.Site, h.Host, a.SeriesCount())
			total += a.SeriesCount()
		}
		fmt.Fprintf(&sb, "%-8s %-34s %d\n", "", "Total", total)
		r.Text = sb.String()
		r.Notes = append(r.Notes, "paper total: 1060; per-host counts reproduced exactly by the specification builder (see core.BuildSpec)")
	})
}

// Table3 lists machine characteristics: the simulated testbed machines
// from the paper plus the host actually running this reproduction.
func Table3() Result {
	return timed("table3", "Characteristics of the machines used in impact and performance experiments", func(r *Result) {
		g := referenceGrid()
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-34s %-5s %-18s %-10s %s\n", "Hostname", "CPUs", "Processor Type", "CPU (MHz)", "Memory (GB)")
		// The paper's two machines.
		fmt.Fprintf(&sb, "%-34s %-5d %-18s %-10d %.1f\n", "inca.sdsc.edu (simulated)", 4, "Intel Xeon", 2457, 2.0)
		if caltech, ok := g.Resource("tg-login1.caltech.teragrid.org"); ok {
			hw := caltech.Hardware
			fmt.Fprintf(&sb, "%-34s %-5d %-18s %-10d %.1f\n", caltech.Host+" (simulated)", hw.CPUs, hw.Processor, hw.CPUMHz, hw.MemoryGB)
		}
		// The machine this reproduction runs on.
		fmt.Fprintf(&sb, "%-34s %-5d %-18s %-10s %s\n",
			hostname()+" (this run)", runtime.NumCPU(), runtime.GOARCH, cpuMHz(), memGB())
		r.Text = sb.String()
		r.Notes = append(r.Notes, "absolute timings in Table 4 / Figure 9 reflect the 'this run' row, not 2004 hardware")
	})
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return h
}

func cpuMHz() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "n/a"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "cpu MHz") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return "n/a"
}

func memGB() string {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return "n/a"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "MemTotal:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				var kb float64
				fmt.Sscanf(fields[1], "%f", &kb)
				return fmt.Sprintf("%.1f", kb/1024/1024)
			}
		}
	}
	return "n/a"
}

// Table4Options scales the depot response-time experiment.
type Table4Options struct {
	// Hours of virtual deployment time to replay (default 6; the paper
	// observed a full week — pass 168 to match).
	Hours int
	Seed  int64
}

// Table4 regenerates the depot response-time statistics by report-size
// bucket from a replayed deployment window.
func Table4(opt Table4Options) Result {
	r, _ := Table4WithResponses(opt)
	return r
}

// Table4WithResponses additionally returns the controller response log so
// Figure 8 can be computed from the same replay instead of a second one
// (see Fig8FromResponses).
func Table4WithResponses(opt Table4Options) (Result, []controller.Response) {
	if opt.Hours <= 0 {
		opt.Hours = 6
	}
	var responses []controller.Response
	title := fmt.Sprintf("Depot response-time statistics over %d virtual hours of TeraGrid operation", opt.Hours)
	result := timed("table4", title, func(r *Result) {
		d, err := core.NewTeraGridDeployment(core.Options{Seed: opt.Seed})
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		start := d.Clock.Now()
		d.RunUntil(start.Add(time.Duration(opt.Hours)*time.Hour), 0, nil)
		responses = d.Controller.Responses()

		// Buckets from Table 4 (KB).
		edges := []int{0, 4, 10, 20, 30, 40, 50}
		perBucket := make([][]float64, len(edges)-1)
		for _, resp := range responses {
			kb := resp.ReportSize / 1024
			for i := 0; i < len(edges)-1; i++ {
				if kb >= edges[i] && kb < edges[i+1] {
					perBucket[i] = append(perBucket[i], resp.Elapsed.Seconds()*1000) // ms
					break
				}
			}
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "Response time stats (ms)  ")
		for i := 0; i < len(edges)-1; i++ {
			fmt.Fprintf(&sb, "%10s", fmt.Sprintf("%d-%d KB", edges[i], edges[i+1]))
		}
		sb.WriteString("\n")
		row := func(name string, f func(stats.Summary) float64) {
			fmt.Fprintf(&sb, "%-26s", name)
			for i := range perBucket {
				if len(perBucket[i]) == 0 {
					fmt.Fprintf(&sb, "%10s", "-")
					continue
				}
				fmt.Fprintf(&sb, "%10.3f", f(stats.Summarize(perBucket[i])))
			}
			sb.WriteString("\n")
		}
		row("mean", func(s stats.Summary) float64 { return s.Mean })
		row("std", func(s stats.Summary) float64 { return s.Std })
		row("min", func(s stats.Summary) float64 { return s.Min })
		row("max", func(s stats.Summary) float64 { return s.Max })
		row("median", func(s stats.Summary) float64 { return s.Median })
		fmt.Fprintf(&sb, "%-26s", "number of updates")
		for i := range perBucket {
			fmt.Fprintf(&sb, "%10d", len(perBucket[i]))
		}
		sb.WriteString("\n\n")

		// The Section 5.2.1 aggregates.
		var totalBytes int64
		for _, resp := range responses {
			totalBytes += int64(resp.ReportSize)
		}
		mins := float64(opt.Hours) * 60
		fmt.Fprintf(&sb, "reports received: %d (%.2f reports/min)\n", len(responses), float64(len(responses))/mins)
		fmt.Fprintf(&sb, "data received: %.2f MB (%.2f KB/min)\n", float64(totalBytes)/1024/1024, float64(totalBytes)/1024/mins)
		fmt.Fprintf(&sb, "steady-state cache size: %.2f MB (%d entries)\n",
			float64(d.Depot.Cache().Size())/1024/1024, d.Depot.Cache().Count())
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"paper (1 week): 151,955 reports at 15.07/min, 26.35 KB/min, 1.5 MB cache; response mean 1.4-2.9 s on shared 2004 hardware",
			"shape to compare: response time grows with report size; the small-report bucket dominates update counts",
			fmt.Sprintf("this run replays %d virtual hours at the same 1,060 reports/hour rate", opt.Hours),
		)
	})
	return result, responses
}
