package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/report"
	"inca/internal/rrd"
)

// The archive-pipeline ablation (ISSUE 3): how much of the ingest hot path
// does archival cost, and what do the pipeline's three levers buy —
// streaming extraction vs full DOM parse, striped shards vs one global
// archive lock, and async workers vs inline consolidation.

// ArchiveOptions configures the archive ablation.
type ArchiveOptions struct {
	// Updates is how many stores each configuration measures (default 4000).
	Updates int
	// Workers is the concurrent submitter count for the parallel rows
	// (default 8; serial rows always use 1).
	Workers int
}

var archiveBenchStart = time.Date(2004, 6, 29, 0, 0, 0, 0, time.UTC)

// ArchiveBenchPolicies returns the ablation's policy mix: two value paths
// at two granularities each plus an availability policy — five archives
// per branch, the "several pieces of data ... the same policy" shape the
// paper describes for Section 3.2.2.
func ArchiveBenchPolicies() []depot.Policy {
	pol := func(name, path string, step time.Duration) depot.Policy {
		return depot.Policy{
			Name:   name,
			Prefix: branch.MustParse("vo=tg"),
			Path:   path,
			Archive: rrd.ArchivalPolicy{
				Step: step, Granularity: 2, History: 14 * 24 * time.Hour,
			},
		}
	}
	const lower = "value,statistic=lowerBound,metric=bandwidth"
	const upper = "value,statistic=upperBound,metric=bandwidth"
	return []depot.Policy{
		pol("bw-lower", lower, 10*time.Minute),
		pol("bw-lower-hourly", lower, time.Hour),
		pol("bw-upper", upper, 10*time.Minute),
		pol("bw-upper-hourly", upper, time.Hour),
		pol("availability", "", 10*time.Minute),
	}
}

// ArchiveBenchReport builds the ablation's report: a bandwidth body whose
// two statistics are the archived leaves, padded to roughly the paper's
// 9257-byte Fig 9 size with measurement detail no policy references. The
// returned offset locates the header timestamp (RFC3339, fixed width) for
// ArchiveBenchStamp.
func ArchiveBenchReport() (template []byte, gmtOff int) {
	r := report.New("grid.network.pathload", "1.8", "loadgen", archiveBenchStart)
	pad := strings.Repeat("streamPeriod=0.000213 fleet=9 trend=PCT ", 220)
	r.Body = report.Branch("metric", "bandwidth",
		report.Branch("statistic", "lowerBound",
			report.Leaf("value", "984.99"), report.Leaf("units", "Mbps")),
		report.Branch("statistic", "upperBound",
			report.Leaf("value", "998.67"), report.Leaf("units", "Mbps")),
		report.Branch("detail", "trace", report.Leaf("log", pad)),
	)
	data, err := report.Marshal(r)
	if err != nil {
		panic(err)
	}
	stamp := []byte(archiveBenchStart.UTC().Format(time.RFC3339))
	off := bytes.Index(data, stamp)
	if off < 0 {
		panic("experiments: report template has no timestamp")
	}
	return data, off
}

// ArchiveBenchIDs returns the branch population: n probes spread over the
// vo=tg subtree every policy prefix selects.
func ArchiveBenchIDs(n int) []branch.ID {
	ids := make([]branch.ID, n)
	for i := range ids {
		ids[i] = branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", i%26, i%40))
	}
	return ids
}

// ArchiveBenchStamp copies the template with the i-th store's timestamp
// patched in, so every branch sees a strictly increasing series (RFC3339
// UTC timestamps are fixed-width, so the patch is an in-place overwrite).
func ArchiveBenchStamp(template []byte, gmtOff int, at time.Time) []byte {
	buf := make([]byte, len(template))
	copy(buf, template)
	copy(buf[gmtOff:], at.UTC().Format(time.RFC3339))
	return buf
}

// archiveCell measures store throughput for one pipeline configuration.
// The depot runs on NullCache so the cell measures the archival phase of
// Store in isolation: cache splicing is common to every configuration and
// has its own tier (BenchmarkIngestParallel*, the shards experiment).
func archiveCell(dopts depot.Options, workers, updates int) (cell cellStats, err error) {
	d := depot.NewWithOptions(depot.NullCache{}, dopts)
	defer d.Close()
	for _, p := range ArchiveBenchPolicies() {
		if err := d.AddPolicy(p); err != nil {
			return cellStats{}, err
		}
	}
	ids := ArchiveBenchIDs(64)
	template, gmtOff := ArchiveBenchReport()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
	)
	lat := newLatencyTracker(workers, updates/workers+1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > updates {
					return
				}
				at := archiveBenchStart.Add(time.Duration(i/len(ids)+1) * time.Minute)
				data := ArchiveBenchStamp(template, gmtOff, at)
				opStart := time.Now()
				if _, serr := d.Store(ids[i%len(ids)], data); serr != nil {
					errOnce.Do(func() { err = serr })
					return
				}
				lat.observe(w, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	d.Drain()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	cell.OpsPerSec = float64(updates) / elapsed.Seconds()
	cell.P50, cell.P95, cell.P99 = lat.percentiles()
	return cell, nil
}

// Archive runs the archive-pipeline ablation: global-lock + DOM parse (the
// pre-pipeline depot), sharded + streaming extraction, and the async
// worker pool, serially and under concurrent submitters.
func Archive(opt ArchiveOptions) Result {
	if opt.Updates <= 0 {
		opt.Updates = 4000
	}
	if opt.Workers <= 0 {
		opt.Workers = 8
	}
	configs := []struct {
		name string
		opts depot.Options
	}{
		{"global-sync-dom", depot.Options{ArchiveShards: 1, ParseArchive: true}},
		{"sharded-sync", depot.Options{}},
		{"sharded-async", depot.Options{AsyncArchive: true}},
	}
	return timed("archive", "Archive pipeline ablation: store throughput vs archival design", func(r *Result) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-18s %-9s %14s %10s\n", "pipeline", "workers", "reports/sec", "speedup")
		var baseline float64
		for _, cfg := range configs {
			for _, workers := range []int{1, opt.Workers} {
				cell, err := archiveCell(cfg.opts, workers, opt.Updates)
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				if baseline == 0 {
					baseline = cell.OpsPerSec
				}
				fmt.Fprintf(&sb, "%-18s %-9d %14.0f %9.2fx\n", cfg.name, workers, cell.OpsPerSec, cell.OpsPerSec/baseline)
				m := cell.metric("store", map[string]string{
					"pipeline": cfg.name, "workers": fmt.Sprint(workers),
				})
				m.Value, m.ValueUnit = cell.OpsPerSec/baseline, "x-vs-baseline"
				r.Metrics = append(r.Metrics, m)
			}
		}
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"baseline (1.00x) is the pre-pipeline depot: one archive mutex, full report.Parse per matching store",
			"five policies match every store (two leaves at two granularities each, plus availability), the Section 3.2.2 \"several pieces of data ... the same policy\" shape",
			"cells run on a null cache, so the measured work is the archival phase of Store alone; cache splicing is identical across configurations and has its own tier (shards experiment, ingest benchmarks)",
			"sharded-sync pays extraction inline but only O(extracted paths): the value leaves settle at the top of the body, then the scan jumps to the footer by byte search — the DOM baseline parses the whole report, detail subtree included",
			"sharded-async returns after the cache insert and an enqueue; the drain barrier at the end of each cell charges the deferred consolidation to the measurement, so its speedup is real throughput, not deferred work",
			"timestamps advance per store, so consolidation work (not the RRD duplicate-drop fast path) dominates each cell",
		)
	})
}
