package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"inca/internal/agreement"
	"inca/internal/catalog"
	"inca/internal/consumer"
	"inca/internal/controller"
	"inca/internal/core"
	"inca/internal/depot"
	"inca/internal/gridsim"
	"inca/internal/report"
	"inca/internal/reporter"
	"inca/internal/rrd"
	"inca/internal/stats"
)

// Fig4Options configures the status summary experiment.
type Fig4Options struct {
	Seed int64
	// HTMLPath, when set, also writes the HTML rendering there.
	HTMLPath string
}

// Fig4 regenerates the TeraGrid hosting environment status summary page:
// a short deployment run with injected failures, evaluated against the
// agreement and rendered as the Figure 4 table.
func Fig4(opt Fig4Options) Result {
	return timed("fig4", "TeraGrid hosting environment status summary page", func(r *Result) {
		gridOpt := gridsim.TeraGridOptions{
			InstallTime: time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC),
		}
		d, err := core.NewTeraGridDeployment(core.Options{Seed: opt.Seed, Grid: &gridOpt})
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		start := d.Clock.Now()
		// Inject the kinds of failures the paper's page shows: a failed
		// globus unit test on one resource, a dead gatekeeper on another.
		sdsc, _ := d.Grid.Resource("tg-login1.sdsc.teragrid.org")
		if err := sdsc.BreakPackage("globus", start); err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		ncsa, _ := d.Grid.Resource("tg-login1.ncsa.teragrid.org")
		ncsa.AddOutage(gridsim.Outage{
			Service: "gram-gatekeeper", From: start, To: start.Add(3 * time.Hour),
			Reason: "gatekeeper not responding (connection timed out)",
		})
		d.RunUntil(start.Add(time.Hour+time.Minute), 0, nil)
		status, err := d.Evaluate()
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		r.Text = consumer.SummaryText(status)
		if opt.HTMLPath != "" {
			html, err := consumer.SummaryHTML(status)
			if err == nil {
				if werr := writeFile(opt.HTMLPath, html); werr == nil {
					r.Notes = append(r.Notes, "HTML rendering written to "+opt.HTMLPath)
				}
			}
		}
		r.Notes = append(r.Notes,
			"paper: red/green summary percentages per category with an expanded error list; compare the failing globus unit test and gatekeeper outage rows",
			fmt.Sprintf("%d pieces of data compared and verified (paper: over 900)", status.PiecesVerified()),
		)
	})
}

// Fig5Options scales the availability experiment.
type Fig5Options struct {
	// Days of virtual time (default 3, covering a Monday; the paper shows
	// a full week — pass 7 to match).
	Days int
	Seed int64
	// Resource to plot (default the SDSC login node).
	Resource string
}

// Fig5 regenerates the Grid-availability-over-a-week graph: a deployment
// with Monday maintenance windows and stochastic failures, summary
// percentages archived every ten virtual minutes.
func Fig5(opt Fig5Options) Result {
	if opt.Days <= 0 {
		opt.Days = 3
	}
	if opt.Resource == "" {
		opt.Resource = "tg-login1.sdsc.teragrid.org"
	}
	title := fmt.Sprintf("Grid availability on %s over %d virtual days (10-minute samples)", opt.Resource, opt.Days)
	return timed("fig5", title, func(r *Result) {
		// Start on a Sunday so the window crosses Monday maintenance.
		start := time.Date(2004, 7, 11, 0, 0, 0, 0, time.UTC)
		d, err := core.NewTeraGridDeployment(core.Options{
			Seed:         opt.Seed,
			Start:        start,
			Cache:        depot.NewDOMCache(), // response fidelity not needed here; see DESIGN.md
			Availability: true,
		})
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		end := start.Add(time.Duration(opt.Days) * 24 * time.Hour)
		var snapErr error
		d.RunUntil(end, 10*time.Minute, func(now time.Time) {
			if _, err := d.Snapshot(); err != nil && snapErr == nil {
				snapErr = err
			}
		})
		if snapErr != nil {
			r.Text = "error: " + snapErr.Error()
			return
		}
		graph, err := consumer.AvailabilityGraph(d.Depot, opt.Resource, agreement.Grid, start, end)
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		series, err := consumer.AvailabilitySeries(d.Depot, opt.Resource, agreement.Grid, start, end)
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		vals, _ := series.Values(consumer.AvailabilityPolicyName)
		mondayVals, otherVals := splitByMondayMaintenance(series, vals)
		var sb strings.Builder
		sb.WriteString(graph)
		fmt.Fprintf(&sb, "\nsamples: %d; mean availability %.1f%%\n", countKnown(vals), meanKnown(vals))
		fmt.Fprintf(&sb, "during Monday maintenance windows: mean %.1f%% over %d samples\n",
			meanKnown(mondayVals), countKnown(mondayVals))
		fmt.Fprintf(&sb, "outside maintenance windows:       mean %.1f%% over %d samples\n",
			meanKnown(otherVals), countKnown(otherVals))
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"paper: availability near 100% with dips during Monday preventative maintenance and isolated system failures",
			"shape to compare: the Monday-window mean drops sharply below the non-maintenance mean",
		)
	})
}

func splitByMondayMaintenance(series *rrd.Series, vals []float64) (monday, other []float64) {
	for i, p := range series.Points {
		if p.Time.Weekday() == time.Monday {
			h := p.Time.Hour()
			if h >= 8 && h < 12 {
				monday = append(monday, vals[i])
				continue
			}
		}
		other = append(other, vals[i])
	}
	return
}

func countKnown(vals []float64) int {
	n := 0
	for _, v := range vals {
		if !math.IsNaN(v) {
			n++
		}
	}
	return n
}

func meanKnown(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Fig6Options configures the bandwidth collection experiment.
type Fig6Options struct {
	// Days of hourly pathload measurements (default 7, as in the paper).
	Days int
	Seed int64
}

// Fig6 regenerates the Pathload bandwidth series from SDSC to Caltech:
// hourly measurements archived through a depot policy and plotted.
func Fig6(opt Fig6Options) Result {
	if opt.Days <= 0 {
		opt.Days = 7
	}
	title := fmt.Sprintf("Pathload bandwidth SDSC → Caltech, hourly over %d days", opt.Days)
	return timed("fig6", title, func(r *Result) {
		start := time.Date(2004, 7, 7, 0, 0, 0, 0, time.UTC)
		g := gridsim.NewTeraGrid(opt.Seed, gridsim.TeraGridOptions{InstallTime: start.Add(-24 * time.Hour)})
		src, _ := g.Resource("tg-login1.sdsc.teragrid.org")
		const dst = "tg-login1.caltech.teragrid.org"
		d := depot.New(depot.NewStreamCache())
		if err := d.AddPolicy(depot.Policy{
			Name:    "pathload-lower",
			Path:    "value,statistic=lowerBound,metric=bandwidth",
			Archive: rrd.ArchivalPolicy{Step: time.Hour, Granularity: 1, History: 30 * 24 * time.Hour},
		}); err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		probe := &catalog.BandwidthReporter{Grid: g, Source: src, DestHost: dst, Tool: catalog.Pathload}
		id := core.BranchFor(probe.Name(), src.Host, src.Site.Name)
		end := start.Add(time.Duration(opt.Days) * 24 * time.Hour)
		for at := start.Add(time.Hour); !at.After(end); at = at.Add(time.Hour) {
			rep := probe.Run(&reporter.Context{Hostname: src.Host, Now: at})
			data, err := report.Marshal(rep)
			if err != nil {
				r.Text = "error: " + err.Error()
				return
			}
			if _, err := d.Store(id, data); err != nil {
				r.Text = "error: " + err.Error()
				return
			}
		}
		series, err := d.FetchArchive(id, "pathload-lower", rrd.Average, start, end)
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		graph, err := rrd.Graph(series, "pathload-lower", rrd.GraphOptions{
			Title:  "Bandwidth data measured from Pathload running from SDSC to Caltech",
			YLabel: "Mbps",
			Width:  76, Height: 14,
		})
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		vals, _ := series.Values("pathload-lower")
		s := stats.Summarize(knownOnly(vals))
		var sb strings.Builder
		sb.WriteString(graph)
		fmt.Fprintf(&sb, "\nmeasurements: %d; mean %.1f Mbps, min %.1f, max %.1f\n", s.N, s.Mean, s.Min, s.Max)
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"paper: hourly pathload lower-bound estimates around 990 Mbps with diurnal variation",
			"shape to compare: a stable ~1 Gbps band with a visible daily dip",
		)
	})
}

func knownOnly(vals []float64) []float64 {
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Fig8Options scales the report-size distribution experiment.
type Fig8Options struct {
	// Hours of deployment to replay (default 3).
	Hours int
	Seed  int64
}

// Fig8 regenerates the report-size histogram received by the centralized
// controller.
func Fig8(opt Fig8Options) Result {
	if opt.Hours <= 0 {
		opt.Hours = 3
	}
	title := fmt.Sprintf("Report sizes received by the centralized controller (%d virtual hours)", opt.Hours)
	return timed("fig8", title, func(r *Result) {
		d, err := core.NewTeraGridDeployment(core.Options{Seed: opt.Seed})
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		start := d.Clock.Now()
		d.RunUntil(start.Add(time.Duration(opt.Hours)*time.Hour), 0, nil)
		fig8Body(r, d.Controller.Responses())
	})
}

// Fig8FromResponses computes the histogram from an existing response log
// (normally Table 4's), avoiding a second week-long replay in full runs.
func Fig8FromResponses(responses []controller.Response, hours int) Result {
	title := fmt.Sprintf("Report sizes received by the centralized controller (%d virtual hours, shared with Table 4)", hours)
	return timed("fig8", title, func(r *Result) {
		fig8Body(r, responses)
	})
}

func fig8Body(r *Result, responses []controller.Response) {
	h, err := stats.NewHistogram([]float64{0, 4, 10, 20, 30, 40, 50})
	if err != nil {
		r.Text = "error: " + err.Error()
		return
	}
	for _, resp := range responses {
		h.Add(float64(resp.ReportSize) / 1024)
	}
	var sb strings.Builder
	sb.WriteString(h.Render(func(lo, hi float64) string {
		return fmt.Sprintf("%g-%g KB", lo, hi)
	}, 50))
	if frac, ok := h.CumulativeBelow(10); ok {
		fmt.Fprintf(&sb, "\n%.2f%% of reports were smaller than 10 KB (paper: 97.64%%)\n", frac*100)
	}
	r.Text = sb.String()
	r.Notes = append(r.Notes, "shape to compare: overwhelming small-report skew with a thin tail up to ~50 KB")
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
