package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestValidateResultJSONRoundTrip(t *testing.T) {
	r := Result{
		ID:      "load",
		Title:   "capacity ramp",
		Elapsed: 3 * time.Second,
		Notes:   []string{"note"},
		Metrics: []Metric{
			{Name: "capacity", Labels: map[string]string{"mode": "single", "clients": "1"}, OpsPerSec: 100, P50Micros: 10, P95Micros: 20, P99Micros: 30},
		},
		Text: "table",
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rf, err := ValidateResultJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("round-tripped result rejected: %v", err)
	}
	if rf.ID != "load" || len(rf.Metrics) != 1 {
		t.Fatalf("decoded %+v", rf)
	}
}

func TestValidateResultJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"id":"x","title":"t","elapsed_ms":1,"metrics":[],"text":"","bogus":1}`, "schema"},
		{"missing id", `{"title":"t","elapsed_ms":1,"metrics":[],"text":""}`, "no id"},
		{"missing title", `{"id":"x","elapsed_ms":1,"metrics":[],"text":""}`, "no title"},
		{"negative elapsed", `{"id":"x","title":"t","elapsed_ms":-5,"metrics":[],"text":""}`, "finite non-negative"},
		{"unnamed metric", `{"id":"x","title":"t","elapsed_ms":1,"metrics":[{"ops_per_sec":1}],"text":""}`, "no name"},
		{"negative rate", `{"id":"x","title":"t","elapsed_ms":1,"metrics":[{"name":"m","ops_per_sec":-1}],"text":""}`, "finite non-negative"},
		{"unordered percentiles", `{"id":"x","title":"t","elapsed_ms":1,"metrics":[{"name":"m","p50_us":30,"p95_us":20,"p99_us":40}],"text":""}`, "not ordered"},
		{"trailing data", `{"id":"x","title":"t","elapsed_ms":1,"metrics":[],"text":""}{}`, "trailing"},
		{"not json", `nonsense`, "schema"},
	}
	for _, tc := range cases {
		if _, err := ValidateResultJSON([]byte(tc.doc)); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func loadResultFixture(stages []int, modes []string, kneeAt float64) *ResultFile {
	rf := &ResultFile{ID: "load", Title: "capacity"}
	for _, mode := range modes {
		for i, c := range stages {
			rf.Metrics = append(rf.Metrics, Metric{
				Name:      "capacity",
				Labels:    map[string]string{"mode": mode, "clients": strconv.Itoa(c)},
				OpsPerSec: float64(1000 * (i + 1)),
				P50Micros: 10, P95Micros: 20, P99Micros: 30,
			})
		}
		if kneeAt > 0 {
			rf.Metrics = append(rf.Metrics, Metric{
				Name:      "knee",
				Labels:    map[string]string{"mode": mode},
				OpsPerSec: 5000, P95Micros: 20,
				Value: kneeAt, ValueUnit: "clients",
			})
		}
	}
	return rf
}

func TestValidateLoadResult(t *testing.T) {
	stages := []int{1, 2, 4, 8, 16}
	modes := []string{"single", "federated"}
	if err := ValidateLoadResult(loadResultFixture(stages, modes, 16), 5, modes...); err != nil {
		t.Fatalf("well-formed load result rejected: %v", err)
	}
	if err := ValidateLoadResult(loadResultFixture([]int{1, 2, 4}, modes, 4), 5, modes...); err == nil {
		t.Fatal("three-stage ramp accepted with minStages=5")
	}
	if err := ValidateLoadResult(loadResultFixture(stages, modes, 0), 5, modes...); err == nil {
		t.Fatal("kneeless load result accepted")
	}
	if err := ValidateLoadResult(loadResultFixture(stages, modes, 7), 5, modes...); err == nil {
		t.Fatal("knee at an unmeasured stage accepted")
	}
	if err := ValidateLoadResult(loadResultFixture(stages, []string{"single"}, 16), 5, modes...); err == nil {
		t.Fatal("missing federated mode accepted")
	}
	if err := ValidateLoadResult(&ResultFile{ID: "fig9"}, 5, "single"); err == nil {
		t.Fatal("non-load result accepted")
	}
}
