package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/depot"
	"inca/internal/loadgen"
)

// QueryOptions configures the read-path ablation (DESIGN.md §5).
type QueryOptions struct {
	// Budget is how long each measured cell runs (default 300ms).
	Budget time.Duration
	// Readers is the concurrent reader count for the parallel rows
	// (default 8; the serial rows always use 1).
	Readers int
}

// queryBenchPopulation returns the identifiers for a population of
// reports spread TeraGrid-style over 40 sites.
func queryBenchPopulation(reports int) []branch.ID {
	ids := make([]branch.ID, 0, reports)
	probes := (reports + 39) / 40
	for site := 0; site < 40 && len(ids) < reports; site++ {
		for probe := 0; probe < probes && len(ids) < reports; probe++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%03d,site=s%02d,vo=tg", probe, site)))
		}
	}
	return ids
}

// buildQueryCache populates a cache variant. The stream cache is loaded
// from a pre-built document rather than filled incrementally: each
// incremental insert re-streams the whole document, so a 10k-report fill
// would cost O(n²) — the very behavior this ablation exists to show.
func buildQueryCache(name string, ids []branch.ID, dump []byte, data []byte) (depot.Cache, error) {
	switch name {
	case "stream":
		return depot.LoadDump(dump)
	case "sharded16":
		c := depot.NewShardedCacheDepth(16, 2)
		for _, id := range ids {
			if _, err := c.Update(id, data); err != nil {
				return nil, err
			}
		}
		return c, nil
	case "indexed":
		c := depot.NewIndexedCache()
		for _, id := range ids {
			if _, err := c.Update(id, data); err != nil {
				return nil, err
			}
		}
		return c, nil
	default:
		return nil, fmt.Errorf("unknown cache variant %q", name)
	}
}

// queryCell runs one operation mix against a populated cache with the
// given reader count for roughly the budget, returning ops/sec.
func queryCell(c depot.Cache, ids []branch.ID, readers int, budget time.Duration, op func(depot.Cache, branch.ID) error) (cellStats, error) {
	var (
		next    atomic.Int64
		done    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		err     error
	)
	lat := newLatencyTracker(readers, 4096)
	start := time.Now()
	deadline := start.Add(budget)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				opStart := time.Now()
				if qerr := op(c, ids[i%len(ids)]); qerr != nil {
					errOnce.Do(func() { err = qerr })
					return
				}
				lat.observe(w, time.Since(opStart))
				done.Add(1)
				if time.Now().After(deadline) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	p50, p95, p99 := lat.percentiles()
	return cellStats{OpsPerSec: float64(done.Load()) / elapsed.Seconds(), P50: p50, P95: p95, P99: p99}, nil
}

func exactQueryOp(c depot.Cache, id branch.ID) error {
	sub, ok, err := c.Query(id)
	if err != nil {
		return err
	}
	if !ok || len(sub) == 0 {
		return fmt.Errorf("query %s: no data", id)
	}
	return nil
}

func prefixReportsOp(c depot.Cache, id branch.ID) error {
	// Query the site-level prefix of the identifier: a realistic dashboard
	// fetch of one site's reports.
	path := id.Path()
	prefix := branch.ID{}
	for _, p := range path[:2] {
		prefix = prefix.Child(p.Name, p.Value)
	}
	stored, err := c.Reports(prefix)
	if err != nil {
		return err
	}
	if len(stored) == 0 {
		return fmt.Errorf("reports %s: no data", prefix)
	}
	return nil
}

// Query runs the read-path ablation: exact-branch Query and site-prefix
// Reports throughput over stream, sharded and indexed caches, serially
// and under concurrent readers, at growing cache populations. The flat
// column to watch is indexed exact-query latency from 100 to 10k reports
// while the stream cache's falls off linearly with document size.
func Query(opt QueryOptions) Result {
	if opt.Budget <= 0 {
		opt.Budget = 300 * time.Millisecond
	}
	if opt.Readers <= 0 {
		opt.Readers = 8
	}
	return timed("query", "Indexed read path ablation: query throughput vs cache design and size", func(r *Result) {
		data := loadgen.MustPremadeReport(851)
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-10s %-8s %-9s %-8s %14s %12s\n",
			"cache", "reports", "readers", "op", "ops/sec", "µs/op")
		for _, population := range []int{100, 1000, 10000} {
			ids := queryBenchPopulation(population)
			// One canonical document for the population, built in O(n)
			// through the indexed cache.
			seed := depot.NewIndexedCache()
			for _, id := range ids {
				if _, err := seed.Update(id, data); err != nil {
					r.Text = "error: " + err.Error()
					return
				}
			}
			dump := seed.Dump()
			for _, name := range []string{"stream", "sharded16", "indexed"} {
				c, err := buildQueryCache(name, ids, dump, data)
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				for _, readers := range []int{1, opt.Readers} {
					for _, mix := range []struct {
						name string
						op   func(depot.Cache, branch.ID) error
					}{
						{"query", exactQueryOp},
						{"reports", prefixReportsOp},
					} {
						cell, err := queryCell(c, ids, readers, opt.Budget, mix.op)
						if err != nil {
							r.Text = "error: " + err.Error()
							return
						}
						fmt.Fprintf(&sb, "%-10s %-8d %-9d %-8s %14.0f %12.2f\n",
							name, population, readers, mix.name, cell.OpsPerSec, 1e6/cell.OpsPerSec*float64(readers))
						r.Metrics = append(r.Metrics, cell.metric(mix.name, map[string]string{
							"cache": name, "reports": fmt.Sprint(population), "readers": fmt.Sprint(readers),
						}))
					}
				}
			}
		}
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"851-byte reports; population spread over 40 sites (site-prefix Reports touches ~1/40 of the cache)",
			"stream answers every query by SAX-scanning the whole document, so its per-op cost grows linearly with the cache (the §5.2 scaling wall on the read side); its 10k fill is done via LoadDump because incremental filling is itself quadratic",
			"sharded16 pays the same scan over a ~1/16 document when the query is at or below the shard depth",
			"indexed resolves the branch through its in-memory index and serializes only the requested subtree: exact-query cost stays flat from 100 to 10k reports",
			"µs/op is wall-clock normalized by reader count (per-reader latency)",
		)
	})
}
