// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each experiment
// returns a Result whose Text is the table/series the paper reports;
// cmd/inca-bench prints them and bench_test.go wraps the hot paths in
// testing.B benchmarks.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Result is one regenerated artifact.
type Result struct {
	// ID is the experiment identifier (e.g. "table4", "fig9").
	ID string
	// Title describes the paper artifact.
	Title string
	// Text is the regenerated table/series/plot.
	Text string
	// Notes records scaling decisions and paper-vs-measured remarks.
	Notes []string
	// Elapsed is how long the experiment took to run.
	Elapsed time.Duration
	// Metrics carries the machine-readable measurements behind Text —
	// what `inca-bench -json` writes to BENCH_<id>.json so results can be
	// compared across runs without scraping tables.
	Metrics []Metric
}

// Metric is one named measurement: a throughput (ops/sec) plus the
// latency distribution behind it, under a set of identifying labels
// (shard count, worker count, cache implementation, ...).
type Metric struct {
	// Name identifies the measured operation ("ingest", "query-exact").
	Name string `json:"name"`
	// Labels identify the configuration the measurement ran under.
	Labels map[string]string `json:"labels,omitempty"`
	// OpsPerSec is the measured throughput.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// P50/P95/P99 are latency percentiles in microseconds (0 = not
	// measured).
	P50Micros float64 `json:"p50_us,omitempty"`
	P95Micros float64 `json:"p95_us,omitempty"`
	P99Micros float64 `json:"p99_us,omitempty"`
	// Value carries a metric that is neither a rate nor a latency
	// (speedup factor, byte count), named by ValueUnit.
	Value     float64 `json:"value,omitempty"`
	ValueUnit string  `json:"value_unit,omitempty"`
}

// ResultFile is the file shape of a serialized Result — what
// BENCH_<id>.json holds, and what ValidateResultJSON decodes.
type ResultFile struct {
	ID        string   `json:"id"`
	Title     string   `json:"title"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Notes     []string `json:"notes,omitempty"`
	Metrics   []Metric `json:"metrics"`
	Text      string   `json:"text"`
}

// WriteJSON serializes the result for BENCH_<id>.json.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ResultFile{
		ID:        r.ID,
		Title:     r.Title,
		ElapsedMS: float64(r.Elapsed) / float64(time.Millisecond),
		Notes:     r.Notes,
		Metrics:   r.Metrics,
		Text:      r.Text,
	})
}

// String renders the result for the terminal.
func (r Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s — %s (ran in %v)\n\n", strings.ToUpper(r.ID), r.Title, r.Elapsed.Round(time.Millisecond))
	sb.WriteString(r.Text)
	if len(r.Notes) > 0 {
		sb.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "  - %s\n", n)
		}
	}
	return sb.String()
}

// timer wraps an experiment body with elapsed-time measurement.
func timed(id, title string, fn func(r *Result)) Result {
	r := Result{ID: id, Title: title}
	start := time.Now()
	fn(&r)
	r.Elapsed = time.Since(start)
	return r
}

// All runs every experiment with default options, in paper order.
func All() []Result {
	return []Result{
		Table1(),
		Table2(),
		Table3(),
		Table4(Table4Options{}),
		Fig4(Fig4Options{}),
		Fig5(Fig5Options{}),
		Fig6(Fig6Options{}),
		Fig7(Fig7Options{}),
		Fig8(Fig8Options{}),
		Fig9(Fig9Options{}),
	}
}

// ByID runs one experiment by its identifier.
func ByID(id string) (Result, error) {
	switch strings.ToLower(id) {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(), nil
	case "table4":
		return Table4(Table4Options{}), nil
	case "fig4":
		return Fig4(Fig4Options{}), nil
	case "fig5":
		return Fig5(Fig5Options{}), nil
	case "fig6":
		return Fig6(Fig6Options{}), nil
	case "fig7":
		return Fig7(Fig7Options{}), nil
	case "fig8":
		return Fig8(Fig8Options{}), nil
	case "fig9":
		return Fig9(Fig9Options{}), nil
	case "shards":
		return Shards(ShardsOptions{}), nil
	case "query":
		return Query(QueryOptions{}), nil
	case "archive":
		return Archive(ArchiveOptions{}), nil
	case "federation":
		return Federation(FederationOptions{}), nil
	case "storage":
		return Storage(StorageOptions{}), nil
	case "feed":
		return Feed(FeedOptions{}), nil
	case "replication":
		return Replication(ReplicationOptions{}), nil
	case "load":
		return Load(LoadOptions{})
	default:
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (table1-4, fig4-9, shards, query, archive, federation, storage, feed, replication, load)", id)
	}
}
