package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/controller"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/federation"
	"inca/internal/loadgen"
)

// The federated multi-depot experiment (DESIGN.md §5f): shard the branch
// space over N depots with the production consistent-hash ring and
// measure how ingest and query throughput scale with the shard count.
// This is the in-process mirror of the deployed topology — the same ring
// decides placement, each shard is a full depot with its own canonical
// document, and the 1-shard row is the single-depot baseline every
// speedup is quoted against. BenchmarkFederatedIngest/Query in
// bench_test.go wrap the same cells under testing.B.

// FederationOptions configures the federation scaling experiment.
type FederationOptions struct {
	// Updates is how many steady-state submissions each ingest cell
	// measures (default 2000).
	Updates int
	// Budget is how long each query cell runs (default 200ms).
	Budget time.Duration
	// Workers is the concurrent submitter/reader count (default 8).
	Workers int
	// Population is the query cells' report count (default 4000).
	Population int
	// Shards lists the shard counts to measure (default 1, 2, 4, 8).
	Shards []int
}

func (o *FederationOptions) fill() {
	if o.Updates <= 0 {
		o.Updates = 2000
	}
	if o.Budget <= 0 {
		o.Budget = 200 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Population <= 0 {
		o.Population = 4000
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4, 8}
	}
}

// FederationIDs returns the benchmark population: the TeraGrid shape (40
// sites × 26 probes) whose site prefixes the ring spreads over shards.
func FederationIDs() []branch.ID {
	ids := make([]branch.ID, 0, 40*26)
	for site := 0; site < 40; site++ {
		for probe := 0; probe < 26; probe++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site)))
		}
	}
	return ids
}

// NewFederatedDepots builds n stream-cache depots and the ring that
// partitions branches across them — the exact placement a production
// `-federate` router computes, driven in-process.
func NewFederatedDepots(n int) ([]*depot.Depot, *federation.Ring) {
	depots := make([]*depot.Depot, n)
	names := make([]string, n)
	for i := range depots {
		depots[i] = depot.New(depot.NewStreamCache())
		names[i] = fmt.Sprintf("shard%d", i)
	}
	return depots, federation.NewRing(names, federation.RingOptions{})
}

// federationIngestCell measures steady-state ingest through the full
// controller → envelope → ring → shard-depot path.
func federationIngestCell(shards, workers, updates int) (cellStats, error) {
	depots, ring := NewFederatedDepots(shards)
	backends := make([]controller.DepotClient, len(depots))
	for i, d := range depots {
		backends[i] = d
	}
	var dc controller.DepotClient
	if shards == 1 {
		dc = backends[0]
	} else {
		sd, err := controller.NewShardedDepotFunc(backends, ring.OwnerIndex)
		if err != nil {
			return cellStats{}, err
		}
		dc = sd
	}
	ctl := controller.New(dc, controller.Options{Mode: envelope.Attachment, MaxResponses: 256})
	data := loadgen.MustPremadeReport(9257)
	ids := FederationIDs()
	for _, id := range ids {
		if _, err := ctl.Submit(id, "loadgen", data); err != nil {
			return cellStats{}, err
		}
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		err     error
	)
	lat := newLatencyTracker(workers, updates/workers+1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > updates {
					return
				}
				opStart := time.Now()
				if _, serr := ctl.Submit(ids[i%len(ids)], "loadgen", data); serr != nil {
					errOnce.Do(func() { err = serr })
					return
				}
				lat.observe(w, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	p50, p95, p99 := lat.percentiles()
	return cellStats{OpsPerSec: float64(updates) / elapsed.Seconds(), P50: p50, P95: p95, P99: p99}, nil
}

// federationQueryCell measures exact-branch reads routed to the owning
// shard — the query tier's owner-forward path, which a deep federated
// /cache request resolves to without any fan-out. Shard caches are built
// O(n) through indexed-cache dumps (incremental stream fill is
// quadratic), each holding exactly the ring's slice of the population.
func federationQueryCell(shards, readers, population int, budget time.Duration) (cellStats, error) {
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
	}
	ring := federation.NewRing(names, federation.RingOptions{})
	ids := queryBenchPopulation(population)
	data := loadgen.MustPremadeReport(851)
	seeds := make([]*depot.IndexedCache, shards)
	for i := range seeds {
		seeds[i] = depot.NewIndexedCache()
	}
	for _, id := range ids {
		if _, err := seeds[ring.OwnerIndex(id)].Update(id, data); err != nil {
			return cellStats{}, err
		}
	}
	caches := make([]depot.Cache, shards)
	for i, seed := range seeds {
		c, err := depot.LoadDump(seed.Dump())
		if err != nil {
			return cellStats{}, err
		}
		caches[i] = c
	}
	var (
		next    atomic.Int64
		done    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		err     error
	)
	lat := newLatencyTracker(readers, 4096)
	start := time.Now()
	deadline := start.Add(budget)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				id := ids[i%len(ids)]
				// The site-level prefix is the ring's affinity key, so the
				// whole answer lives on one shard — the owner-forward path.
				path := id.Path()
				prefix := branch.ID{}
				for _, p := range path[:2] {
					prefix = prefix.Child(p.Name, p.Value)
				}
				opStart := time.Now()
				stored, qerr := caches[ring.OwnerIndex(prefix)].Reports(prefix)
				if qerr != nil {
					errOnce.Do(func() { err = qerr })
					return
				}
				if len(stored) == 0 {
					errOnce.Do(func() { err = fmt.Errorf("reports %s: no data", prefix) })
					return
				}
				lat.observe(w, time.Since(opStart))
				done.Add(1)
				if time.Now().After(deadline) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	p50, p95, p99 := lat.percentiles()
	return cellStats{OpsPerSec: float64(done.Load()) / elapsed.Seconds(), P50: p50, P95: p95, P99: p99}, nil
}

// Federation runs the scaling experiment: ingest and owner-routed query
// throughput at each shard count, with speedups against the 1-shard
// single-depot baseline.
func Federation(opt FederationOptions) Result {
	opt.fill()
	return timed("federation", "Federated multi-depot scaling: throughput vs shard count", func(r *Result) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-8s %-8s %-9s %14s %10s %10s %10s %10s\n",
			"op", "shards", "workers", "ops/sec", "speedup", "p50µs", "p95µs", "p99µs")
		var ingestBase, queryBase float64
		for _, shards := range opt.Shards {
			cell, err := federationIngestCell(shards, opt.Workers, opt.Updates)
			if err != nil {
				r.Text = "error: " + err.Error()
				return
			}
			if ingestBase == 0 {
				ingestBase = cell.OpsPerSec
			}
			speedup := cell.OpsPerSec / ingestBase
			fmt.Fprintf(&sb, "%-8s %-8d %-9d %14.0f %9.2fx %10.1f %10.1f %10.1f\n",
				"ingest", shards, opt.Workers, cell.OpsPerSec, speedup, cell.P50, cell.P95, cell.P99)
			m := cell.metric("ingest", map[string]string{
				"shards": fmt.Sprint(shards), "workers": fmt.Sprint(opt.Workers),
			})
			m.Value, m.ValueUnit = speedup, "x-vs-single-depot"
			r.Metrics = append(r.Metrics, m)
		}
		for _, shards := range opt.Shards {
			cell, err := federationQueryCell(shards, opt.Workers, opt.Population, opt.Budget)
			if err != nil {
				r.Text = "error: " + err.Error()
				return
			}
			if queryBase == 0 {
				queryBase = cell.OpsPerSec
			}
			speedup := cell.OpsPerSec / queryBase
			fmt.Fprintf(&sb, "%-8s %-8d %-9d %14.0f %9.2fx %10.1f %10.1f %10.1f\n",
				"query", shards, opt.Workers, cell.OpsPerSec, speedup, cell.P50, cell.P95, cell.P99)
			m := cell.metric("query", map[string]string{
				"shards": fmt.Sprint(shards), "workers": fmt.Sprint(opt.Workers),
			})
			m.Value, m.ValueUnit = speedup, "x-vs-single-depot"
			r.Metrics = append(r.Metrics, m)
		}
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"placement is the production consistent-hash ring (256 virtual nodes per shard, branch-prefix affinity depth 2), driven in-process — the same partition a -federate router computes",
			"1-shard rows are the single-depot baseline (1.00x); the speedup has the same two sources as the sharded-cache ablation, but across depots: per-shard locks remove contention and each shard's canonical document is ~1/N the size, so the splice every insert pays shrinks",
			"ingest runs the full controller → envelope → depot path with 9257-byte reports over the TeraGrid population (40 sites × 26 probes)",
			"query measures site-prefix Reports routed to the owning shard — the owner-forward path a deep federated request takes (the site prefix is exactly the ring's affinity key); scatter-merge reads are covered by TestFederatedByteIdentity and the federation smoke test",
			"latency percentiles are per-operation wall times across all workers",
		)
	})
}
