package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/federation"
	"inca/internal/loadgen"
	"inca/internal/wire"
)

// The replication experiment (DESIGN.md §5i): the federation router's
// follower tee against the unreplicated router, and the cost of a
// failover. The router, its per-shard batch clients, and the shard
// endpoints are all production pieces over real TCP — only the shard
// behind the socket is a stub that acks and counts, so the measured
// path is exactly the tee (second EnqueueCustody + second connection's
// batches), not depot work.

// ReplicationOptions configures the replication experiment.
type ReplicationOptions struct {
	// Messages is how many reports each ingest cell routes (default 4000).
	Messages int
	// Workers is the concurrent Handle caller count (default 8).
	Workers int
	// Shards is the primary count (default 2).
	Shards int
	// FailoverRounds is how many promote-and-drain rounds the failover
	// cell averages over (default 5).
	FailoverRounds int
	// FailoverQueue is how many messages sit queued toward the dead
	// primary when failover starts (default 500).
	FailoverQueue int
}

func (o *ReplicationOptions) fill() {
	if o.Messages <= 0 {
		o.Messages = 4000
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.FailoverRounds <= 0 {
		o.FailoverRounds = 5
	}
	if o.FailoverQueue <= 0 {
		o.FailoverQueue = 500
	}
}

// ackSink is a real wire server that acks everything and counts.
type ackSink struct {
	srv   *wire.Server
	acked atomic.Int64
}

func newAckSink() (*ackSink, error) {
	s := &ackSink{}
	srv, err := wire.Serve("127.0.0.1:0", func(m *wire.Message, remote string) *wire.Ack {
		s.acked.Add(1)
		return &wire.Ack{OK: true}
	})
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// deadSinkAddr returns an address nothing listens on (bind, note the
// port, close): the stand-in for a SIGKILLed primary.
func deadSinkAddr() (string, error) {
	s, err := newAckSink()
	if err != nil {
		return "", err
	}
	addr := s.srv.Addr()
	s.srv.Close()
	return addr, nil
}

func replicationBatch() wire.BatchOptions {
	return wire.BatchOptions{FlushInterval: time.Millisecond, DialTimeout: time.Second, IOTimeout: 5 * time.Second}
}

// replicationIngestCell measures Handle throughput through a router whose
// shards all ack instantly, with or without a follower tee per shard.
func replicationIngestCell(shards, workers, messages int, replicate bool) (cellStats, error) {
	var sinks []*ackSink
	defer func() {
		for _, s := range sinks {
			s.srv.Close()
		}
	}()
	specs := make([]federation.Shard, shards)
	for i := range specs {
		p, err := newAckSink()
		if err != nil {
			return cellStats{}, err
		}
		sinks = append(sinks, p)
		specs[i] = federation.Shard{Wire: p.srv.Addr()}
		if replicate {
			f, err := newAckSink()
			if err != nil {
				return cellStats{}, err
			}
			sinks = append(sinks, f)
			specs[i].ReplicaWire = f.srv.Addr()
		}
	}
	r, err := federation.NewRouter(specs, federation.RouterOptions{Batch: replicationBatch()})
	if err != nil {
		return cellStats{}, err
	}
	defer r.Close()

	ids := FederationIDs()
	data := loadgen.MustPremadeReport(851)
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		cellErr error
	)
	lat := newLatencyTracker(workers, messages/workers+1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > messages {
					return
				}
				m := &wire.Message{Branch: ids[i%len(ids)].String(), Hostname: "bench", Report: data}
				opStart := time.Now()
				if ack := r.Handle(m, "bench"); !ack.OK {
					errOnce.Do(func() { cellErr = fmt.Errorf("nack: %s", ack.Message) })
					return
				}
				lat.observe(w, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	if cellErr != nil {
		return cellStats{}, cellErr
	}
	if err := r.Drain(); err != nil {
		return cellStats{}, err
	}
	elapsed := time.Since(start)
	p50, p95, p99 := lat.percentiles()
	return cellStats{OpsPerSec: float64(messages) / elapsed.Seconds(), P50: p50, P95: p95, P99: p99}, nil
}

// replicationFailoverCell measures the failover drain: queue messages
// toward a dead primary whose follower is live, then time Promote (ring
// swap + harvest + re-enqueue) through Drain (every message redelivered).
func replicationFailoverCell(rounds, queued int) ([]float64, error) {
	durations := make([]float64, 0, rounds)
	ids := FederationIDs()
	data := loadgen.MustPremadeReport(851)
	for round := 0; round < rounds; round++ {
		dead, err := deadSinkAddr()
		if err != nil {
			return nil, err
		}
		follower, err := newAckSink()
		if err != nil {
			return nil, err
		}
		bo := replicationBatch()
		bo.MaxPending = -1 // hold the whole queue toward the dead primary
		r, err := federation.NewRouter(
			[]federation.Shard{{Wire: dead, ReplicaWire: follower.srv.Addr()}},
			federation.RouterOptions{Batch: bo})
		if err != nil {
			follower.srv.Close()
			return nil, err
		}
		for i := 0; i < queued; i++ {
			m := &wire.Message{Branch: ids[i%len(ids)].String(), Hostname: "bench", Report: data}
			if ack := r.Handle(m, "bench"); !ack.OK {
				r.Close()
				follower.srv.Close()
				return nil, fmt.Errorf("nack: %s", ack.Message)
			}
		}
		start := time.Now()
		if _, _, err := r.Promote(dead); err != nil {
			r.Close()
			follower.srv.Close()
			return nil, err
		}
		if err := r.Drain(); err != nil {
			r.Close()
			follower.srv.Close()
			return nil, err
		}
		durations = append(durations, float64(time.Since(start))/float64(time.Millisecond))
		r.Close()
		follower.srv.Close()
	}
	return durations, nil
}

// Replication runs the §5i experiment: the follower tee's ingest
// overhead against the unreplicated router, and the promote-and-drain
// failover latency.
func Replication(opt ReplicationOptions) Result {
	opt.fill()
	return timed("replication", "Per-shard replication: follower-tee overhead and failover drain", func(r *Result) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-10s %-8s %-9s %14s %10s %10s %10s %10s\n",
			"mode", "shards", "workers", "ops/sec", "overhead", "p50µs", "p95µs", "p99µs")
		var base float64
		for _, replicate := range []bool{false, true} {
			cell, err := replicationIngestCell(opt.Shards, opt.Workers, opt.Messages, replicate)
			if err != nil {
				r.Text = "error: " + err.Error()
				return
			}
			mode, overhead := "primary", 1.0
			if replicate {
				mode = "tee"
				overhead = base / cell.OpsPerSec
			} else {
				base = cell.OpsPerSec
			}
			fmt.Fprintf(&sb, "%-10s %-8d %-9d %14.0f %9.2fx %10.1f %10.1f %10.1f\n",
				mode, opt.Shards, opt.Workers, cell.OpsPerSec, overhead, cell.P50, cell.P95, cell.P99)
			m := cell.metric("ingest", map[string]string{
				"replicate": fmt.Sprint(replicate), "shards": fmt.Sprint(opt.Shards), "workers": fmt.Sprint(opt.Workers),
			})
			m.Value, m.ValueUnit = overhead, "x-cost-vs-unreplicated"
			r.Metrics = append(r.Metrics, m)
		}
		failovers, err := replicationFailoverCell(opt.FailoverRounds, opt.FailoverQueue)
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		var worst, sum float64
		for _, d := range failovers {
			sum += d
			if d > worst {
				worst = d
			}
		}
		mean := sum / float64(len(failovers))
		fmt.Fprintf(&sb, "\nfailover (promote + re-enqueue + redeliver %d queued): mean %.1fms, worst %.1fms over %d rounds\n",
			opt.FailoverQueue, mean, worst, len(failovers))
		r.Metrics = append(r.Metrics, Metric{
			Name:   "failover-drain",
			Labels: map[string]string{"queued": fmt.Sprint(opt.FailoverQueue), "rounds": fmt.Sprint(opt.FailoverRounds)},
			Value:  mean, ValueUnit: "ms-mean-promote-to-drained",
		})
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"router, batch clients, and wire servers are the production pieces over real TCP; the shard behind each socket is an ack-and-count stub, so the cells isolate the routing tier from depot work",
			"tee mode pays one extra EnqueueCustody plus a second connection's batch writes per message; the primary ack never waits on the follower (a full follower backlog is counted shed, not blocking)",
			"failover measures Promote (ring identity swap + CloseHarvest + re-enqueue toward the follower) through Drain with the queue already replicated by the tee — steady-state failover, not catch-up",
			"overhead is unreplicated ops/sec divided by tee ops/sec (1.00x = free)",
		)
	})
}
