package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"inca/internal/loadgen"
	"inca/internal/stats"
)

// Load is the DiPerF-style closed-loop capacity experiment (DESIGN.md
// §5j): spawn a real inca-server (and, in federated mode, a router in
// front of real shard processes), ramp concurrent closed-loop workers
// through staged levels of mixed write/read traffic over real TCP, and
// locate the saturation knee — the load where throughput plateaus while
// response time inflects. The committed BENCH_load.json is this
// experiment's output.

// LoadOptions configures the capacity ramp.
type LoadOptions struct {
	// Stages is the concurrency ramp (default loadgen.DefaultStages:
	// 1, 2, 4, 8, 16, 32).
	Stages []int
	// StageDuration is each stage's measured window (default 2s).
	StageDuration time.Duration
	// Warmup settles each stage before measuring (default 300ms).
	Warmup time.Duration
	// Modes selects the topologies to ramp: "single" (one depot server)
	// and/or "federated" (a router over Shards shard processes).
	// Default: both.
	Modes []string
	// Shards is the federated shard count (default 4).
	Shards int
	// ReportSize, WriteBatch, Sites, Probes pass through to the harness.
	ReportSize, WriteBatch, Sites, Probes int
}

func (o *LoadOptions) fill() error {
	if len(o.Stages) == 0 {
		o.Stages = append([]int(nil), loadgen.DefaultStages...)
	}
	if err := loadgen.ValidateStages(o.Stages); err != nil {
		return err
	}
	if o.StageDuration <= 0 {
		o.StageDuration = 2 * time.Second
	}
	if len(o.Modes) == 0 {
		o.Modes = []string{"single", "federated"}
	}
	for _, m := range o.Modes {
		if m != "single" && m != "federated" {
			return fmt.Errorf("experiments: unknown load mode %q (single, federated)", m)
		}
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	return nil
}

// Load runs the capacity experiment.
func Load(opt LoadOptions) (Result, error) {
	if err := opt.fill(); err != nil {
		return Result{}, err
	}
	dir, err := os.MkdirTemp("", "inca-load-")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	bin, err := buildServerBinary(dir)
	if err != nil {
		return Result{}, err
	}
	var runErr error
	r := timed("load", "Closed-loop capacity ramp to the saturation knee (DiPerF methodology)", func(r *Result) {
		r.Notes = append(r.Notes,
			fmt.Sprintf("closed-loop ramp %v, %s per stage after %s warmup", opt.Stages, opt.StageDuration, warmupNote(opt.Warmup)),
			"mixed workload per worker: batched wire writes, conditional /cache+/reports revalidations, cold site-prefix deep reads")
		var sections []string
		for _, mode := range opt.Modes {
			curve, err := runLoadMode(mode, bin, opt)
			if err != nil {
				runErr = fmt.Errorf("experiments: load mode %s: %w", mode, err)
				return
			}
			sections = append(sections, renderLoadCurve(mode, curve))
			for _, s := range curve.Stages {
				r.Metrics = append(r.Metrics, Metric{
					Name: "capacity",
					Labels: map[string]string{
						"mode":    mode,
						"clients": strconv.Itoa(s.Concurrency),
					},
					OpsPerSec: s.OpsPerSec,
					P50Micros: s.P50,
					P95Micros: s.P95,
					P99Micros: s.P99,
				})
			}
			if curve.KneeFound {
				r.Metrics = append(r.Metrics, Metric{
					Name:      "knee",
					Labels:    map[string]string{"mode": mode},
					OpsPerSec: curve.Knee.Throughput,
					P95Micros: curve.Knee.P95,
					Value:     curve.Knee.Load,
					ValueUnit: "clients",
				})
				r.Notes = append(r.Notes, fmt.Sprintf("%s knee: %s", mode, curve.Knee.Reason))
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf("%s: no saturation knee within the ramp — extend the stages", mode))
			}
		}
		r.Text = strings.Join(sections, "\n")
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return r, nil
}

func warmupNote(w time.Duration) string {
	if w <= 0 {
		return "default"
	}
	return w.String()
}

// runLoadMode spawns the topology for one mode and ramps the harness
// against it.
func runLoadMode(mode, bin string, opt LoadOptions) (*loadgen.Curve, error) {
	const announce = 20 * time.Second
	var procs []*serverProc
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	start := func(args ...string) (*serverProc, error) {
		p, err := startServer(bin, args...)
		if err == nil {
			procs = append(procs, p)
		}
		return p, err
	}

	var wireAddr, httpAddr string
	switch mode {
	case "single":
		p, err := start("-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		if wireAddr, err = p.expect(wireAddrRE, announce); err != nil {
			return nil, err
		}
		if httpAddr, err = p.expect(httpAddrRE, announce); err != nil {
			return nil, err
		}
	case "federated":
		var members []string
		for i := 0; i < opt.Shards; i++ {
			p, err := start("-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			w, err := p.expect(wireAddrRE, announce)
			if err != nil {
				return nil, err
			}
			h, err := p.expect(httpAddrRE, announce)
			if err != nil {
				return nil, err
			}
			members = append(members, w+"/"+h)
		}
		p, err := start("-federate", strings.Join(members, ","), "-tcp", "127.0.0.1:0", "-http", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		if wireAddr, err = p.expect(routerWireRE, announce); err != nil {
			return nil, err
		}
		if httpAddr, err = p.expect(routerHTTPRE, announce); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown load mode %q", mode)
	}

	h, err := loadgen.NewHarness(loadgen.HarnessOptions{
		WireAddr:      wireAddr,
		HTTPBase:      "http://" + httpAddr,
		Stages:        opt.Stages,
		StageDuration: opt.StageDuration,
		Warmup:        opt.Warmup,
		ReportSize:    opt.ReportSize,
		WriteBatch:    opt.WriteBatch,
		Sites:         opt.Sites,
		Probes:        opt.Probes,
	})
	if err != nil {
		return nil, err
	}
	return h.Run()
}

// renderLoadCurve formats one mode's load-vs-response-time table the way
// the DiPerF plots read: one row per offered load, throughput beside the
// latency distribution, the knee marked inline.
func renderLoadCurve(mode string, curve *loadgen.Curve) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode=%s\n", mode)
	fmt.Fprintf(&sb, "%8s %10s %10s %10s %10s %9s %7s %7s\n",
		"clients", "ops/s", "p50(us)", "p95(us)", "p99(us)", "srv-ops/s", "304s", "errors")
	for i, s := range curve.Stages {
		srv := s.Server["inca_controller_accepted_total"] + s.Server["inca_federation_routed_total"]
		var notMod, errs int64
		for class := 0; class < loadgen.NumOpClasses; class++ {
			notMod += s.Classes[class].NotModified
			errs += s.Classes[class].Errors
		}
		marker := ""
		if curve.KneeFound && i == curve.Knee.Index {
			marker = "  <- knee"
		}
		fmt.Fprintf(&sb, "%8d %10.0f %10.0f %10.0f %10.0f %9.0f %7d %7d%s\n",
			s.Concurrency, s.OpsPerSec, s.P50, s.P95, s.P99,
			srv/s.Window.Seconds(), notMod, errs, marker)
	}
	if curve.KneeFound {
		fmt.Fprintf(&sb, "knee: %.0f clients at %.0f ops/s (p95 %.0fus, latency-confirmed=%v)\n",
			curve.Knee.Load, curve.Knee.Throughput, curve.Knee.P95, curve.Knee.LatencyConfirmed)
	} else {
		sb.WriteString("knee: not reached within the ramp\n")
	}
	return sb.String()
}

// kneeFromMetrics recovers the per-mode curve and knee out of a
// serialized load result — how validation tooling checks a committed
// BENCH_load.json without rerunning the ramp.
func kneeFromMetrics(metrics []Metric, mode string) (points []stats.CurvePoint, knee *Metric) {
	for i, m := range metrics {
		switch {
		case m.Name == "capacity" && m.Labels["mode"] == mode:
			clients, err := strconv.Atoi(m.Labels["clients"])
			if err != nil {
				continue
			}
			points = append(points, stats.CurvePoint{Load: float64(clients), Throughput: m.OpsPerSec, P95: m.P95Micros})
		case m.Name == "knee" && m.Labels["mode"] == mode:
			knee = &metrics[i]
		}
	}
	return points, knee
}
