package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"inca/internal/agent"
	"inca/internal/branch"
	"inca/internal/core"
	"inca/internal/gridsim"
	"inca/internal/simtime"
	"inca/internal/stats"
)

func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Fig7Options scales the agent system-impact experiment.
type Fig7Options struct {
	// Days of virtual observation (default 7, matching the paper's week of
	// `top` sampling at Caltech).
	Days int
	Seed int64
}

// Fig7 regenerates the distributed-controller CPU and memory histograms:
// the Caltech agent (128 hourly reporters) observed for a week with
// samples every 10–11 seconds of virtual time, as in Section 5.1.
func Fig7(opt Fig7Options) Result {
	if opt.Days <= 0 {
		opt.Days = 7
	}
	title := fmt.Sprintf("Distributed controller CPU/memory utilization at Caltech (%d virtual days)", opt.Days)
	return timed("fig7", title, func(r *Result) {
		start := time.Date(2004, 6, 29, 0, 0, 0, 0, time.UTC)
		clock := simtime.NewSim(start)
		grid := gridsim.NewTeraGrid(opt.Seed, gridsim.DefaultTeraGridOptions(start.Add(-30*24*time.Hour)))
		res, _ := grid.Resource("tg-login1.caltech.teragrid.org")
		spec, err := core.BuildSpec(grid, res, rand.New(rand.NewSource(opt.Seed+7)))
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		// The paper measured only the controller process; reports are
		// discarded rather than forwarded.
		sink := agent.SinkFunc(func(branch.ID, string, []byte) error { return nil })
		a, err := agent.New(spec, clock, sink, agent.Simulated)
		if err != nil {
			r.Text = "error: " + err.Error()
			return
		}
		end := start.Add(time.Duration(opt.Days) * 24 * time.Hour)
		var cpu, mem []float64
		// Samples every 10–11 s (alternating), as the paper's top loop did.
		sampleGap := []time.Duration{10 * time.Second, 11 * time.Second}
		nextSample := start
		gapIdx := 0
		for clock.Now().Before(end) {
			// Next event: reporter fire or sample, whichever is sooner.
			target := nextSample
			if nf, ok := a.Scheduler().NextFire(); ok && nf.Before(target) {
				target = nf
			}
			clock.AdvanceTo(target)
			a.Scheduler().RunPending()
			now := clock.Now()
			if !now.Before(nextSample) {
				c, m := a.UsageAt(now)
				// Report per-CPU utilization as the paper does.
				cpu = append(cpu, c/float64(res.Hardware.CPUs))
				mem = append(mem, m)
				nextSample = nextSample.Add(sampleGap[gapIdx])
				gapIdx = 1 - gapIdx
				// Keep the interval log bounded.
				a.TrimIntervalsBefore(now.Add(-time.Hour))
			}
		}

		cpuHist, _ := stats.NewHistogram([]float64{0, 2, 4, 6, 8, 10})
		cpuHist.AddAll(cpu)
		memHist, _ := stats.NewHistogram([]float64{0, 20, 40, 60, 80, 107, 150})
		memHist.AddAll(mem)
		cpuSum := stats.Summarize(cpu)
		memSum := stats.Summarize(mem)

		var sb strings.Builder
		fmt.Fprintf(&sb, "(a) CPU utilization (%% per CPU), %d samples\n", len(cpu))
		sb.WriteString(cpuHist.Render(func(lo, hi float64) string {
			return fmt.Sprintf("%g-%g%%", lo, hi)
		}, 50))
		fmt.Fprintf(&sb, "mean %.3f%% per CPU; %.1f%% of samples below 2%% per CPU (paper: 99.7%%)\n\n",
			cpuSum.Mean, 100*stats.FractionBelow(cpu, 2))
		fmt.Fprintf(&sb, "(b) Memory utilization (MB resident), %d samples\n", len(mem))
		sb.WriteString(memHist.Render(func(lo, hi float64) string {
			return fmt.Sprintf("%g-%g MB", lo, hi)
		}, 50))
		fmt.Fprintf(&sb, "mean %.1f MB; %.1f%% of samples below 107 MB (paper: 97.6%%)\n",
			memSum.Mean, 100*stats.FractionBelow(mem, 107))
		st := a.Stats()
		fmt.Fprintf(&sb, "\nreporter executions: %d (%d failures, %d killed)\n", st.Runs, st.Failures, st.Killed)
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"paper: 57,149 samples over a week; average 0.02% CPU per CPU and 35 MB resident (daemon 18 MB + one forked reporter)",
			"shape to compare: CPU mass in the lowest bucket; memory dominated by the daemon-plus-one-fork level with a short tail of overlapping forks",
			"the paper's one-off 1 GB fork-storm spike was a Schedule::Cron bug and is not modeled",
		)
	})
}
