package experiments

import (
	"fmt"
	"os"
	"strings"

	"inca/internal/branch"
	"inca/internal/controller"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/loadgen"
	"inca/internal/stats"
)

// Fig9Options configures the synthetic depot workload experiment.
type Fig9Options struct {
	// UpdatesPerCell is how many steady-state updates to measure per
	// (cache size, report size) point (default 40).
	UpdatesPerCell int
	// Ablations also runs the attachment-envelope, split-cache and
	// DOM-cache variants for the largest configuration.
	Ablations bool
}

// cell measures one (cache size, report size) point: steady-state updates
// through the full controller→envelope→depot path, on a cache pre-filled
// to the target size (Section 5.2.2's methodology).
func fig9Cell(mode envelope.Mode, cache depot.Cache, cacheTarget, reportSize, updates int) (total, insert, unpack stats.Summary, err error) {
	d := depot.New(cache)
	ctl := controller.New(d, controller.Options{Mode: mode})
	const slots = 8 // measurement identifiers holding reportSize entries
	fillTarget := cacheTarget - slots*reportSize
	if fillTarget < 0 {
		fillTarget = 0
	}
	if _, err = loadgen.FillToSize(loadgen.CacheStore{Cache: cache}, fillTarget, 9257); err != nil {
		return
	}
	data := loadgen.MustPremadeReport(reportSize)
	slotID := func(i int) branch.ID {
		return branch.MustParse(fmt.Sprintf("slot=m%02d,size=s%d,vo=synthetic", i%slots, reportSize))
	}
	// Seed the measurement slots so later updates are replacements.
	for i := 0; i < slots; i++ {
		if _, err = ctl.Submit(slotID(i), "loadgen", data); err != nil {
			return
		}
	}
	ctl.ResetResponses()
	for i := 0; i < updates; i++ {
		if _, err = ctl.Submit(slotID(i), "loadgen", data); err != nil {
			return
		}
	}
	var totalMs, insertMs, unpackMs []float64
	for _, resp := range ctl.Responses() {
		totalMs = append(totalMs, resp.Elapsed.Seconds()*1000)
		insertMs = append(insertMs, resp.Insert.Seconds()*1000)
		unpackMs = append(unpackMs, resp.Unpack.Seconds()*1000)
	}
	return stats.Summarize(totalMs), stats.Summarize(insertMs), stats.Summarize(unpackMs), nil
}

// Fig9 regenerates the depot response-time versus report-size curves for
// each cache size, separating total response time from the cache-insert
// component (the paper's two lines per cache size).
func Fig9(opt Fig9Options) Result {
	if opt.UpdatesPerCell <= 0 {
		opt.UpdatesPerCell = 40
	}
	return timed("fig9", "Depot response and XML-processing time, synthetic workload (cache size × report size)", func(r *Result) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-10s %-12s %12s %12s %12s\n",
			"cache", "report (B)", "total (ms)", "insert (ms)", "unpack (ms)")
		for _, cacheTarget := range loadgen.PaperCacheSizes {
			for _, reportSize := range loadgen.PaperReportSizes {
				total, insert, unpack, err := fig9Cell(envelope.Body, depot.NewStreamCache(),
					cacheTarget, reportSize, opt.UpdatesPerCell)
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				fmt.Fprintf(&sb, "%-10s %-12d %12.3f %12.3f %12.3f\n",
					fmt.Sprintf("%.1f MB", float64(cacheTarget)/1024/1024),
					reportSize, total.Mean, insert.Mean, unpack.Mean)
			}
		}
		if opt.Ablations {
			sb.WriteString("\nAblations (largest cache, largest report):\n")
			fmt.Fprintf(&sb, "%-40s %12s %12s %12s\n", "variant", "total (ms)", "insert (ms)", "unpack (ms)")
			big := loadgen.PaperCacheSizes[len(loadgen.PaperCacheSizes)-1]
			bigReport := loadgen.PaperReportSizes[len(loadgen.PaperReportSizes)-1]
			tmpDir, err := os.MkdirTemp("", "inca-fig9-*")
			if err != nil {
				r.Text = "error: " + err.Error()
				return
			}
			defer os.RemoveAll(tmpDir)
			variants := []struct {
				name  string
				mode  envelope.Mode
				cache func() (depot.Cache, error)
			}{
				{"body envelope + single cache (paper)", envelope.Body, func() (depot.Cache, error) { return depot.NewStreamCache(), nil }},
				{"attachment envelope (paper's fix)", envelope.Attachment, func() (depot.Cache, error) { return depot.NewStreamCache(), nil }},
				{"split cache (paper's fix)", envelope.Body, func() (depot.Cache, error) { return depot.NewSplitCacheDepth(2), nil }},
				{"DOM cache (design rejected in §3.2.2)", envelope.Body, func() (depot.Cache, error) { return depot.NewDOMCache(), nil }},
				{"write-through file cache (deployed §3.2.2)", envelope.Body, func() (depot.Cache, error) {
					return depot.OpenFileCache(tmpDir + "/cache.xml")
				}},
			}
			for _, v := range variants {
				cache, err := v.cache()
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				total, insert, unpack, err := fig9Cell(v.mode, cache, big, bigReport, opt.UpdatesPerCell)
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				fmt.Fprintf(&sb, "%-40s %12.3f %12.3f %12.3f\n", v.name, total.Mean, insert.Mean, unpack.Mean)
			}
		}
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"paper: response time grows with both cache size and report size; unpacking the SOAP body costs ~3 s for the largest reports regardless of cache size",
			"shape to compare: insert time scales with cache size; unpack time scales with report size and is cache-size independent; total = insert + unpack (+archive)",
			"absolute times are 2-4 orders of magnitude below 2004 Java/Axis numbers; the curves' shape is the reproduction target",
		)
	})
}
