package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inca/internal/branch"
	"inca/internal/controller"
	"inca/internal/depot"
	"inca/internal/envelope"
	"inca/internal/loadgen"
)

// ShardsOptions configures the sharded-cache ablation (DESIGN.md §5).
type ShardsOptions struct {
	// Updates is how many steady-state submissions each (shards, workers)
	// point measures (default 2000).
	Updates int
	// Workers is the concurrent submitter count for the parallel rows
	// (default 8; the serial rows always use 1).
	Workers int
}

// shardsCell measures ingest throughput through the full controller →
// envelope → depot path against an n-shard cache with the given number of
// concurrent submitters, over the TeraGrid-shaped population (40 sites ×
// 26 probes, 9257-byte reports).
func shardsCell(shards, workers, updates int) (cell cellStats, err error) {
	var cache depot.Cache
	if shards == 1 {
		cache = depot.NewStreamCache()
	} else {
		cache = depot.NewShardedCacheDepth(shards, 2)
	}
	d := depot.New(cache)
	ctl := controller.New(d, controller.Options{Mode: envelope.Attachment, MaxResponses: 256})
	data := loadgen.MustPremadeReport(9257)
	ids := make([]branch.ID, 0, 40*26)
	for site := 0; site < 40; site++ {
		for probe := 0; probe < 26; probe++ {
			ids = append(ids, branch.MustParse(fmt.Sprintf("probe=p%02d,site=s%02d,vo=tg", probe, site)))
		}
	}
	for _, id := range ids {
		if _, err = ctl.Submit(id, "loadgen", data); err != nil {
			return cellStats{}, err
		}
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
	)
	lat := newLatencyTracker(workers, updates/workers+1)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > updates {
					return
				}
				opStart := time.Now()
				if _, serr := ctl.Submit(ids[i%len(ids)], "loadgen", data); serr != nil {
					errOnce.Do(func() { err = serr })
					return
				}
				lat.observe(w, time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err != nil {
		return cellStats{}, err
	}
	cell.OpsPerSec = float64(updates) / elapsed.Seconds()
	cell.P50, cell.P95, cell.P99 = lat.percentiles()
	return cell, nil
}

// Shards runs the sharded-cache ablation: steady-state ingest throughput
// for 1-, 4- and 16-shard caches, serially and under concurrent
// submitters. The 1-shard serial row is the StreamCache baseline the
// paper's depot corresponds to.
func Shards(opt ShardsOptions) Result {
	if opt.Updates <= 0 {
		opt.Updates = 2000
	}
	if opt.Workers <= 0 {
		opt.Workers = 8
	}
	return timed("shards", "Sharded depot cache ablation: ingest throughput vs shard count", func(r *Result) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-8s %-9s %14s %10s\n", "shards", "workers", "reports/sec", "speedup")
		var baseline float64
		for _, shards := range []int{1, 4, 16} {
			for _, workers := range []int{1, opt.Workers} {
				cell, err := shardsCell(shards, workers, opt.Updates)
				if err != nil {
					r.Text = "error: " + err.Error()
					return
				}
				if baseline == 0 {
					baseline = cell.OpsPerSec
				}
				fmt.Fprintf(&sb, "%-8d %-9d %14.0f %9.2fx\n", shards, workers, cell.OpsPerSec, cell.OpsPerSec/baseline)
				m := cell.metric("ingest", map[string]string{
					"shards": fmt.Sprint(shards), "workers": fmt.Sprint(workers),
				})
				m.Value, m.ValueUnit = cell.OpsPerSec/baseline, "x-vs-baseline"
				r.Metrics = append(r.Metrics, m)
			}
		}
		r.Text = sb.String()
		r.Notes = append(r.Notes,
			"baseline (1.00x) is the 1-shard serial StreamCache, the paper's single-document depot",
			"the speedup has two sources: per-shard locks remove submitter contention, and each shard document is ~1/N the size, so the splice every insert pays (linear in document size, §5.2.1) shrinks even on one core",
			"serial Fig 9 curves are unaffected: the sharded cache is opt-in and the StreamCache path is untouched",
		)
	})
}
